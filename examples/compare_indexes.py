"""Index shoot-out: every algorithm in the library on one workload.

Reproduces the paper's central comparison in miniature: builds all fourteen
indexes over the same anti-correlated relation and reports build time and
mean tuples-evaluated (Definition 9 cost) over a batch of random-preference
queries, sorted best-first.

Run:  python examples/compare_indexes.py [n] [d] [k]
"""

from __future__ import annotations

import sys

from repro import ALGORITHMS
from repro.bench.harness import build_index, measure_cost
from repro.bench.workload import Workload


def main(n: int = 6000, d: int = 4, k: int = 10) -> None:
    workload = Workload.make("ANT", n, d, queries=15, seed=42)
    print(f"workload: anti-correlated, n={n}, d={d}, top-{k}, "
          f"{len(workload.weights)} random queries\n")

    rows = []
    for name, cls in sorted(ALGORITHMS.items()):
        index = build_index(cls, workload, max_k=k)
        cell = measure_cost(index, workload, k)
        rows.append((cell.mean_cost, name, index.build_stats.seconds, cell))

    rows.sort()
    header = f"{'algorithm':>10} {'mean cost':>10} {'min':>7} {'max':>7} {'build(s)':>9}"
    print(header)
    print("-" * len(header))
    for mean_cost, name, build_seconds, cell in rows:
        print(f"{name:>10} {mean_cost:>10.1f} {cell.min_cost:>7d} "
              f"{cell.max_cost:>7d} {build_seconds:>9.3f}")

    best = rows[0]
    scan = next(r for r in rows if r[1] == "SCAN")
    print(f"\n{best[1]} evaluates {scan[0] / best[0]:.0f}x fewer tuples than a scan;")
    dl = next(r for r in rows if r[1] == "DL")
    dg = next(r for r in rows if r[1] == "DG")
    print(f"DL beats DG by {dg[0] / dl[0]:.1f}x on this workload — the paper's "
          "fine-sublayer ∃-dominance filtering at work.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
