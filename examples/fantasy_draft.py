"""Maximization top-k: drafting fantasy players with the DL+ index.

"Find the best players by my weighting of points/rebounds/assists/..." is
a *maximization* query; the paper's §II remark — flip the sign — turns it
into the minimization world every index here speaks.  This example builds
a synthetic 8,000-player table, embeds it, and answers several drafting
strategies from one index, decoding scores back to raw stat units.

Run:  python examples/fantasy_draft.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DLPlusIndex
from repro.data.players import PLAYER_STATS, synthetic_players


STRATEGIES = {
    "pure scorer":        np.array([0.80, 0.05, 0.05, 0.05, 0.05]),
    "balanced":           np.array([0.20, 0.20, 0.20, 0.20, 0.20]),
    "playmaker":          np.array([0.30, 0.05, 0.55, 0.05, 0.05]),
    "defensive anchor":   np.array([0.10, 0.30, 0.05, 0.25, 0.30]),
}


def main() -> None:
    table = synthetic_players(8_000, seed=21)
    index = DLPlusIndex(table.relation, max_layers=10).build()
    print(f"{table.n} players indexed "
          f"({index.build_stats.num_layers} layers, "
          f"{index.build_stats.seconds:.2f}s build)\n")

    for strategy, weights in STRATEGIES.items():
        result = index.query(weights, k=5)
        raw_values = table.decode_scores(weights, result.scores)
        print(f"{strategy} (weights {weights.tolist()}):")
        for rank, (pid, value) in enumerate(zip(result.ids, raw_values), 1):
            stats = ", ".join(
                f"{name} {table.raw[int(pid), i]:.1f}"
                for i, name in enumerate(PLAYER_STATS[:3])
            )
            print(f"  {rank}. player {int(pid):6d}  weighted avg {value:5.2f}  ({stats})")
        print(f"  cost: {result.cost} of {table.n} players evaluated\n")

    # Sanity: the pure-scorer top-1 really has (near-)maximal points.
    top = index.query(STRATEGIES["pure scorer"], k=1)
    best_points = table.raw[:, 0].max()
    got_points = table.raw[int(top.ids[0]), 0]
    print(f"pure-scorer top-1 scores {got_points:.1f} points "
          f"(league max {best_points:.1f})")


if __name__ == "__main__":
    main()
