"""The paper's Example 1: a hotel-finding service with SQL-style top-k.

Builds the exact Fig. 1 toy dataset plus a larger synthetic hotel table
partitioned by city, registers both in the mini SQL front-end, and runs the
paper's `ORDER BY ... STOP AFTER k` queries for users Alice and Betty.

Run:  python examples/hotel_finder.py
"""

from __future__ import annotations

import numpy as np

from repro.data.hotels import HOTEL_NAMES, synthetic_hotels, toy_hotels
from repro.sql import Database


def main() -> None:
    db = Database()

    # --- The paper's 11-hotel toy dataset (Fig. 1) --------------------- #
    db.register("toy", toy_hotels())
    alice = db.execute(
        "SELECT * FROM toy ORDER BY 0.5*price + 0.5*distance STOP AFTER 5"
    )
    print("Alice (0.5, 0.5), top-5:",
          [HOTEL_NAMES[i] for i in alice.ids],
          f"— {alice.cost} of 11 tuples evaluated")

    betty = db.execute(
        "SELECT * FROM toy ORDER BY 0.75*price + 0.25*distance STOP AFTER 5"
    )
    print("Betty (0.75, 0.25), top-5:",
          [HOTEL_NAMES[i] for i in betty.ids],
          f"— {betty.cost} of 11 tuples evaluated")

    # --- A bigger city-partitioned hotel table ------------------------- #
    relation, cities = synthetic_hotels(20_000, seed=3, city_count=4)
    city_names = np.asarray(["washington", "newyork", "boston", "chicago"])
    labels = city_names[cities]
    db.register("hotel", relation, labels={"city": labels})

    query = (
        "SELECT * FROM hotel WHERE city = 'washington' "
        "ORDER BY 0.5*price + 0.5*distance STOP AFTER 5"
    )
    print(f"\n{query}")
    answer = db.execute(query)
    print(f"answered by {answer.algorithm}, "
          f"{answer.cost} tuples evaluated out of "
          f"{int((labels == 'washington').sum())} Washington hotels:")
    for rank, (tid, score) in enumerate(zip(answer.ids, answer.scores), 1):
        price, distance = relation.tuple(int(tid))
        print(f"  {rank}. hotel #{int(tid):6d}  price={price:.3f} "
              f"distance={distance:.3f}  score={score:.4f}")

    # Same city, different taste: price is four times as important.
    price_sensitive = db.execute(
        "SELECT * FROM hotel WHERE city = 'washington' "
        "ORDER BY 0.8*price + 0.2*distance STOP AFTER 5"
    )
    print("\nprice-sensitive top-5 ids:",
          [int(i) for i in price_sensitive.ids],
          f"— cost {price_sensitive.cost} (index reused, no rebuild)")


if __name__ == "__main__":
    main()
