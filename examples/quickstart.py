"""Quickstart: build a dual-resolution layer index and run top-k queries.

Generates an anti-correlated relation (the paper's hard case), builds the
DL+ index, answers a few queries with different user preferences, and shows
the cost advantage over a full scan.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DLPlusIndex, ScanIndex, generate, random_weight_vector


def main() -> None:
    # 1. A relation: 10,000 tuples over 4 attributes in [0, 1], lower=better.
    relation = generate("ANT", n=10_000, d=4, seed=7)
    print(f"relation: {relation.n} tuples x {relation.d} attributes")

    # 2. Build the paper's DL+ index once; it serves any (weights, k) query.
    #    max_layers bounds construction to what top-50 queries can reach.
    index = DLPlusIndex(relation, max_layers=50).build()
    stats = index.build_stats
    print(f"built {stats.algorithm}: {stats.num_layers} coarse layers, "
          f"{int(stats.extra['fine_sublayers'])} fine sublayers, "
          f"{stats.seconds:.2f}s")

    # 3. Query with an explicit preference: attribute 0 matters most.
    weights = np.array([0.55, 0.25, 0.12, 0.08])
    result = index.query(weights, k=10)
    print("\ntop-10 for weights", np.round(weights, 3).tolist())
    for rank, (tid, score) in enumerate(zip(result.ids, result.scores), 1):
        print(f"  {rank:2d}. tuple {int(tid):6d}  score={score:.4f}")
    print(f"cost: {result.cost} of {relation.n} tuples evaluated "
          f"({result.counter.pseudo} virtual)")

    # 4. Random preferences: the index never rebuilds, cost stays tiny.
    scan = ScanIndex(relation).build()
    rng = np.random.default_rng(0)
    total_dl = total_scan = 0
    for _ in range(20):
        w = random_weight_vector(relation.d, rng)
        total_dl += index.query(w, 10).cost
        total_scan += scan.query(w, 10).cost
    print(f"\n20 random queries: DL+ evaluated {total_dl} tuples, "
          f"a full scan {total_scan} — {total_scan / total_dl:.0f}x less work")


if __name__ == "__main__":
    main()
