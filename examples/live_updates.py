"""A live service: paging cursors, dynamic updates, and the index advisor.

Simulates an interactive deployment of the dual-resolution index:

1. the advisor inspects the data and recommends an index;
2. a user pages through results ("10 more") with a resumable cursor, paying
   only the marginal gate-openings per page;
3. hotels appear and disappear (price changes, sold-out rooms) through the
   dynamic index, which repairs its layers without re-peeling skylines.

Run:  python examples/live_updates.py
"""

from __future__ import annotations

import numpy as np

from repro.advisor import recommend_index
from repro.core import DLPlusIndex, DynamicDualLayerIndex, TopKCursor
from repro.data.hotels import synthetic_hotels


def main() -> None:
    relation, _ = synthetic_hotels(8000, seed=13)

    # --- 1. Ask the advisor ------------------------------------------- #
    advice = recommend_index(relation, expected_k=10, queries_per_update=1e6)
    print("advisor says:")
    print(advice.describe())

    # --- 2. Page through results with a cursor ------------------------ #
    index = DLPlusIndex(relation, max_layers=40).build()
    weights = np.array([0.65, 0.35])  # price-conscious traveller
    cursor = TopKCursor(index.structure, weights)
    print("\npaging with a resumable cursor (10 per page):")
    for page in range(3):
        ids, scores = cursor.fetch(10)
        print(f"  page {page + 1}: hotels {ids[:4].tolist()}... "
              f"best score {scores[0]:.4f}, "
              f"cumulative cost {cursor.counter.total} tuples")
    flat_cost = index.query(weights, 30).cost
    print(f"  three pages cost {cursor.counter.total} evaluations; "
          f"a from-scratch top-30 costs {flat_cost}")

    # --- 3. Dynamic inserts and deletes ------------------------------- #
    print("\ndynamic maintenance (inserts and deletes, no re-peel):")
    dynamic = DynamicDualLayerIndex(d=2)
    rng = np.random.default_rng(7)
    ids = [dynamic.insert(row) for row in relation.matrix[:3000]]
    top_ids, top_scores = dynamic.query(weights, 5)
    print(f"  after 3000 inserts: top-5 {top_ids.tolist()} "
          f"({len(dynamic.layers())} layers)")

    # A new unbeatable hotel opens downtown:
    star = dynamic.insert(np.array([0.01, 0.02]))
    top_ids, _ = dynamic.query(weights, 5)
    assert int(top_ids[0]) == star
    print(f"  insert of a dominating hotel -> new top-1 is id {star}")

    # It sells out; the old order returns:
    dynamic.delete(star)
    restored, _ = dynamic.query(weights, 5)
    print(f"  after deleting it -> top-5 {restored.tolist()}")

    # Random churn keeps the partition exact (spot check one query):
    for _ in range(200):
        if rng.random() < 0.5 and ids:
            victim = ids.pop(int(rng.integers(len(ids))))
            dynamic.delete(victim)
        else:
            ids.append(dynamic.insert(rng.random(2)))
    got_ids, got_scores = dynamic.query(weights, 5)
    print(f"  after 200 random updates: top-5 scores "
          f"{np.round(got_scores, 4).tolist()} over {dynamic.n} live hotels")


if __name__ == "__main__":
    main()
