"""Weight sensitivity and the §V zero layer, visualized in ASCII.

Walks the 2-D weight space (w1 from 0 to 1), showing how the top-1 hotel
changes across the weight ranges of §V-A, then demonstrates the selective
access the zero layer buys: DL+ answers top-1 with a single tuple
evaluation at any weight, while DL must scan all of L^{11}.

Run:  python examples/weight_sensitivity.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DLIndex, DLPlusIndex
from repro.data.hotels import HOTEL_NAMES, toy_hotels


def main() -> None:
    relation = toy_hotels()
    dl = DLIndex(relation).build()
    dlp = DLPlusIndex(relation).build()

    # The §V-A weight-range partition computed by the DL+ build.
    print("weight ranges of L^11 (w1 = weight on price):")
    for lo, hi, tid in dlp.weight_partition.ranges():
        print(f"  w1 in [{lo:.3f}, {hi:.3f}]  ->  top-1 = {HOTEL_NAMES[tid]}")

    print("\nw1 sweep (top-3 per weight, DL+ vs DL cost):")
    print(f"{'w1':>5} {'top-3':>12} {'DL+ cost':>9} {'DL cost':>8}")
    for w1 in np.linspace(0.05, 0.95, 10):
        w = np.array([w1, 1 - w1])
        plus = dlp.query(w, 3)
        base = dl.query(w, 3)
        names = ",".join(HOTEL_NAMES[i] for i in plus.ids)
        assert list(plus.ids) == list(base.ids)
        print(f"{w1:>5.2f} {names:>12} {plus.cost:>9d} {base.cost:>8d}")

    print("\ntop-1 costs (the §V selling point):")
    for w1 in (0.2, 0.42, 0.5, 0.8):
        w = np.array([w1, 1 - w1])
        plus = dlp.query(w, 1)
        base = dl.query(w, 1)
        print(f"  w1={w1:.2f}: DL+ evaluates {plus.cost} tuple(s), "
              f"DL evaluates {base.cost} (all of L^11)")


if __name__ == "__main__":
    main()
