"""Disk-layout simulation: the paper's §VI-A remark, measured.

"These algorithms can be modified into disk-based algorithms, where tuples
in the same layer are stored in the same disk block to reduce I/O cost."
This example builds a DL index, stores the relation two ways — a plain heap
file vs. pages clustered by fine sublayer — and replays query access traces
through an LRU buffer pool to count page faults.

Run:  python examples/disk_layout.py
"""

from __future__ import annotations

import numpy as np

from repro import DLIndex, generate, random_weight_vector
from repro.storage import (
    BlockStore,
    IOCostModel,
    layer_clustered_placement,
    row_order_placement,
)

PAGE_CAPACITY = 64  # tuples per page (e.g. 4 KiB page / 64-byte tuple)
BUFFER_PAGES = 8


def main() -> None:
    relation = generate("ANT", n=12_000, d=3, seed=11)
    index = DLIndex(relation, max_layers=30).build()
    print(f"relation: {relation.n} tuples; index: "
          f"{index.build_stats.num_layers} coarse layers")

    sublayer_sequence = [
        sublayer
        for sublayers in index.blueprint.fine_layers
        for sublayer in sublayers
    ]
    leftover = index.blueprint.leftover
    if leftover.shape[0]:
        sublayer_sequence.append(leftover)
    layouts = {
        "heap file (id order)": BlockStore(
            row_order_placement(relation.n), PAGE_CAPACITY
        ),
        "layer-clustered pages": BlockStore(
            layer_clustered_placement(sublayer_sequence, relation.n),
            PAGE_CAPACITY,
        ),
    }

    rng = np.random.default_rng(1)
    weights = [random_weight_vector(relation.d, rng) for _ in range(25)]

    print(f"\npage capacity {PAGE_CAPACITY} tuples, buffer {BUFFER_PAGES} pages, "
          f"25 random top-10 queries (cold cache per query):")
    results = {}
    for name, store in layouts.items():
        model = IOCostModel(index, store, buffer_capacity=BUFFER_PAGES)
        faults = touched = accessed = 0
        for w in weights:
            report = model.run_query(w, 10)
            faults += report.page_faults
            touched += report.pages_touched
            accessed += report.tuples_accessed
        results[name] = faults
        print(f"  {name:>22}: {faults:4d} page faults, "
              f"{touched} pages touched, {accessed} tuples accessed")

    heap, clustered = results["heap file (id order)"], results["layer-clustered pages"]
    print(f"\nlayer clustering cuts page faults by {heap / clustered:.1f}x — "
          "the traversal touches a handful of consecutive sublayer pages "
          "instead of scattering across the heap.")


if __name__ == "__main__":
    main()
