"""Fig. 13: DG vs DL with varying dimensionality d.

Paper shape: the DG/DL gap grows with d (≈2.5x at d=5 on anti-correlated
data) — coarse layers balloon with dimensionality and the ∃-dominance
splitting pays increasingly more.
"""

from __future__ import annotations

import pytest

from conftest import run_d_sweep

EXPERIMENT = "fig13"


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_fig13_series(distribution, ctx, benchmark):
    sweep = run_d_sweep(ctx, EXPERIMENT, distribution)
    dg = sweep.mean_series("DG")
    dl = sweep.mean_series("DL")
    assert all(l <= g for l, g in zip(dl, dg))
    # Gap at d=5 meaningfully larger than at d=2.
    assert dg[-1] / dl[-1] > dg[0] / dl[0]
    workload = ctx.workload(distribution, ctx.config.scaled_n(5), 5)
    index = ctx.index("DL", workload, max_k=10)
    from conftest import timed_query_batch

    timed_query_batch(benchmark, index, workload, k=10)
