"""Ablation: disk layout — layer-clustered pages vs. a heap file.

Not a paper figure; quantifies the paper's §VI-A remark that storing the
tuples of a layer in the same disk block reduces I/O cost.  Replays DL
query traces through an LRU buffer against both layouts and reports page
faults.
"""

from __future__ import annotations

import pytest

from repro.storage import (
    BlockStore,
    IOCostModel,
    layer_clustered_placement,
    row_order_placement,
)

from conftest import record

PAGE_CAPACITY = 64
BUFFER_PAGES = 8


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_disk_layout_ablation(distribution, ctx, benchmark):
    workload = ctx.workload(distribution, min(ctx.config.n, 6000), 4)
    index = ctx.index("DL", workload, max_k=10)

    sequence = [
        sublayer
        for sublayers in index.blueprint.fine_layers
        for sublayer in sublayers
    ]
    if index.blueprint.leftover.shape[0]:
        sequence.append(index.blueprint.leftover)

    stores = {
        "heap": BlockStore(row_order_placement(workload.relation.n), PAGE_CAPACITY),
        "clustered": BlockStore(
            layer_clustered_placement(sequence, workload.relation.n), PAGE_CAPACITY
        ),
    }
    faults = {}
    for name, store in stores.items():
        model = IOCostModel(index, store, buffer_capacity=BUFFER_PAGES)
        faults[name] = sum(
            model.run_query(w, 10).page_faults for w in workload.weights
        )
    record(
        "ablation_disk_layout",
        f"\nDisk layout ablation [{distribution}, n={workload.relation.n}, "
        f"d=4, k=10, page={PAGE_CAPACITY} tuples, buffer={BUFFER_PAGES} pages]\n"
        f"  heap-file page faults:       {faults['heap']}\n"
        f"  layer-clustered page faults: {faults['clustered']}\n"
        f"  reduction: {faults['heap'] / max(faults['clustered'], 1):.1f}x\n",
    )
    assert faults["clustered"] < faults["heap"]

    model = IOCostModel(index, stores["clustered"], buffer_capacity=BUFFER_PAGES)
    benchmark(lambda: model.run_query(workload.weights[0], 10))
