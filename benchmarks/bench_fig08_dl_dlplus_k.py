"""Fig. 8: DL vs DL+ with varying retrieval size k.

Paper shape: DL+ accesses ~2x fewer tuples than DL at every k (the gap is
roughly constant), and both grow linearly in k.
"""

from __future__ import annotations

import pytest

from conftest import run_k_sweep, timed_query_batch

EXPERIMENT = "fig8"


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_fig08_series(distribution, ctx, benchmark):
    sweep, workload = run_k_sweep(ctx, EXPERIMENT, distribution)
    dl = sweep.mean_series("DL")
    dlp = sweep.mean_series("DL+")
    # DL+ wins at every k; both curves are monotone in k.
    assert all(p <= b for p, b in zip(dlp, dl))
    assert dl == sorted(dl)
    assert dlp == sorted(dlp)
    index = ctx.index("DL+", workload, max_k=50)
    timed_query_batch(benchmark, index, workload, k=10)
