"""Ablation: zero-layer cluster count (the knob the paper leaves to [5]).

Sweeps the k-means cluster count of DL+'s zero layer.  Too few clusters
make loose pseudo minima (weak gating); too many make the pseudo layer
itself expensive to traverse.  The default ``⌈√|L¹|⌉`` heuristic should sit
near the sweet spot.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import measure_cost
from repro.bench.reporting import format_series_table
from repro.bench.harness import SweepResult, CellResult
from repro.core import DLPlusIndex
from repro.core.zero_layer import default_cluster_count

from conftest import record

CLUSTER_COUNTS = [2, 4, 8, 16, 32, 64]


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_cluster_count_ablation(distribution, ctx, benchmark):
    config = ctx.config
    workload = ctx.workload(distribution, config.n, 4)
    sweep = SweepResult(parameter="clusters", values=list(CLUSTER_COUNTS))
    series: list[CellResult] = []
    for clusters in CLUSTER_COUNTS:
        index = DLPlusIndex(
            workload.relation,
            max_layers=10,
            clusters=clusters,
            zero_layer="clusters",
        ).build()
        series.append(measure_cost(index, workload, 10))
    sweep.series["DL+"] = series

    default = default_cluster_count(
        ctx.index("DL", workload, max_k=10).build_stats.layer_sizes[0]
    )
    record(
        "ablation_clusters",
        format_series_table(
            f"Ablation: DL+ zero-layer cluster count [{distribution}, "
            f"n={config.n}, d=4, k=10; default heuristic -> {default}]",
            sweep,
        ),
    )
    costs = sweep.mean_series("DL+")
    # Sanity: some cluster count beats both extremes or ties them.
    assert min(costs) <= costs[0] and min(costs) <= costs[-1]
    benchmark(lambda: None)
