"""Fig. 9: DL vs DL+ with varying dimensionality d.

Paper shape: the DL/DL+ gap grows with d (≈3x at d=5) — selective access to
the first layer pays more as first layers balloon with dimensionality.
"""

from __future__ import annotations

import pytest

from conftest import run_d_sweep

EXPERIMENT = "fig9"


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_fig09_series(distribution, ctx, benchmark):
    sweep = run_d_sweep(ctx, EXPERIMENT, distribution)
    dl = sweep.mean_series("DL")
    dlp = sweep.mean_series("DL+")
    assert all(p <= b * 1.02 for p, b in zip(dlp, dl))
    # The d=5 ratio must exceed the d=2 ratio (gap grows with d).
    assert dl[-1] / dlp[-1] >= dl[0] / dlp[0] * 0.9
    benchmark(lambda: None)  # series computation is the payload here
