"""Fig. 15: HL+ vs DL+ with varying dimensionality d.

Paper shape: DL+ far below HL+ at every d, with the gap exploding on
high-dimensional anti-correlated data (up to two orders of magnitude at
d=5) — HL+ suffers the curse of dimensionality through huge convex layers.
"""

from __future__ import annotations

import pytest

from conftest import run_d_sweep, timed_query_batch

EXPERIMENT = "fig15"


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_fig15_series(distribution, ctx, benchmark):
    sweep = run_d_sweep(ctx, EXPERIMENT, distribution)
    hlp = sweep.mean_series("HL+")
    dlp = sweep.mean_series("DL+")
    assert all(l <= h for l, h in zip(dlp, hlp))
    # Advantage grows with d.
    assert hlp[-1] / dlp[-1] >= hlp[0] / dlp[0]
    workload = ctx.workload(distribution, ctx.config.scaled_n(4), 4)
    index = ctx.index("HL+", workload, max_k=10)
    timed_query_batch(benchmark, index, workload, k=10)
