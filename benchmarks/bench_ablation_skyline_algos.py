"""Ablation: skyline algorithm used for coarse-layer peeling.

The paper uses BSkyTree [28]; the skyline is unique, so the choice affects
construction time only.  This bench times DL construction with each of the
three implemented algorithms and verifies identical layer structure.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_build_table
from repro.core import DLIndex

from conftest import record

ALGORITHMS = ["sfs", "bskytree", "bnl"]


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_skyline_algorithm_ablation(distribution, ctx, benchmark):
    workload = ctx.workload(distribution, min(ctx.config.n, 4000), 4)
    stats = []
    layer_shapes = []
    for algorithm in ALGORITHMS:
        index = DLIndex(
            workload.relation, max_layers=10, skyline_algorithm=algorithm
        ).build()
        index.build_stats.algorithm = f"DL[{algorithm}]"
        stats.append(index.build_stats)
        layer_shapes.append(index.build_stats.layer_sizes)
    record(
        "ablation_skyline",
        format_build_table(
            f"Ablation: coarse-peel skyline algorithm [{distribution}]", stats
        ),
    )
    # The skyline is unique: identical layers regardless of algorithm.
    assert layer_shapes[0] == layer_shapes[1] == layer_shapes[2]
    benchmark(
        lambda: DLIndex(
            workload.relation, max_layers=5, skyline_algorithm="sfs"
        ).build()
    )
