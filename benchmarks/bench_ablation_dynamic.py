"""Ablation: dynamic maintenance vs. rebuild-from-scratch.

Not a paper figure (the paper builds statically).  Measures what the
incremental layer cascades buy: after a batch of single-tuple updates, the
dynamic index repairs its partition and rebuilds gates *without* the
skyline peel, versus constructing a fresh DL index over the mutated data.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import DLIndex
from repro.core.maintenance import DynamicDualLayerIndex
from repro.relation import Relation

from conftest import record

UPDATES = 50


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_dynamic_vs_rebuild(distribution, ctx, benchmark):
    workload = ctx.workload(distribution, min(ctx.config.n, 4000), 3)
    matrix = workload.relation.matrix
    rng = np.random.default_rng(3)

    dynamic = DynamicDualLayerIndex(d=3)
    ids = [dynamic.insert(row) for row in matrix]
    dynamic.query(np.ones(3) / 3, 10)  # force initial structure build

    # Timed phase: a burst of updates + one query (partition repair is the
    # incremental part; the gate rebuild is shared with the static path).
    t0 = time.perf_counter()
    for _ in range(UPDATES):
        if rng.random() < 0.5 and len(ids) > 10:
            dynamic.delete(ids.pop(int(rng.integers(len(ids)))))
        else:
            ids.append(dynamic.insert(rng.random(3)))
    dynamic.query(np.ones(3) / 3, 10)
    dynamic_seconds = time.perf_counter() - t0

    # Static path: rebuild a DL index over the mutated data from scratch.
    live = np.vstack([dynamic.values_of(i) for i in sorted(ids)])
    t0 = time.perf_counter()
    DLIndex(Relation(live, check_domain=False), max_layers=10).build()
    static_seconds = time.perf_counter() - t0

    record(
        "ablation_dynamic",
        f"\nDynamic maintenance vs rebuild [{distribution}, "
        f"n={matrix.shape[0]}, d=3, {UPDATES} updates]\n"
        f"  {UPDATES} updates + query via dynamic index: "
        f"{dynamic_seconds:.3f}s\n"
        f"  fresh DL build over mutated data:          "
        f"{static_seconds:.3f}s\n",
    )
    # The partition repair itself must not cost more than a full build per
    # update; assert a generous aggregate bound (shapes, not microbenchmark).
    assert dynamic_seconds < static_seconds * (UPDATES / 2)

    def one_update_cycle():
        tuple_id = dynamic.insert(rng.random(3))
        dynamic.delete(tuple_id)

    benchmark(one_update_cycle)
