"""Fig. 12: HL+ vs DL+ with varying retrieval size k.

Paper shape: DL+ far below HL+, and the gap *widens* with k (HL+'s
threshold processing is sensitive to the retrieval size; at k=50 on
anti-correlated data the paper reports an order of magnitude).
"""

from __future__ import annotations

import pytest

from conftest import run_k_sweep, timed_query_batch

EXPERIMENT = "fig12"


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_fig12_series(distribution, ctx, benchmark):
    sweep, workload = run_k_sweep(ctx, EXPERIMENT, distribution)
    hlp = sweep.mean_series("HL+")
    dlp = sweep.mean_series("DL+")
    assert all(l <= h for l, h in zip(dlp, hlp))
    # Strong advantage at the largest k.
    assert hlp[-1] / dlp[-1] > 2.0
    index = ctx.index("HL+", workload, max_k=50)
    timed_query_batch(benchmark, index, workload, k=10)
