"""Table IV: index construction time per algorithm (IND and ANT).

Paper shape: HL/HL+ build fastest (convex peel + sorting only), DG/DG+ next
(skyline peel + dominance wiring), DL/DL+ slowest (skylines *and* convex
sublayers and ∃-gates); ANT costs far more than IND (bigger layers); the
"+" variants add under ~1% for the zero layer.
"""

from __future__ import annotations

import pytest

from repro.baselines import DGIndex, DGPlusIndex, HLIndex, HLPlusIndex
from repro.bench.harness import build_index
from repro.bench.reporting import format_build_table
from repro.core import DLIndex, DLPlusIndex

from conftest import record

CLASSES = [HLIndex, HLPlusIndex, DGIndex, DGPlusIndex, DLIndex, DLPlusIndex]


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_table4_construction(distribution, ctx, benchmark):
    workload = ctx.workload(distribution, ctx.config.n, 4)
    stats = []
    for cls in CLASSES:
        index = build_index(cls, workload, max_k=10)
        stats.append(index.build_stats)
    record(
        "table4",
        format_build_table(
            f"Table IV: construction time [{distribution}, "
            f"n={ctx.config.n}, d=4, max_layers=10]",
            stats,
        ),
    )

    by_name = {s.algorithm: s.seconds for s in stats}
    # The paper's ordering: HL <= DG <= DL (allow generous slack for noise).
    assert by_name["HL"] <= by_name["DG"] * 2
    assert by_name["DG"] <= by_name["DL"] * 2

    # Timed payload: rebuild the paper's proposed index.
    benchmark(lambda: DLIndex(workload.relation, max_layers=10).build())
