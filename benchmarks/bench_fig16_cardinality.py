"""Fig. 16: DG+ vs DL+ with varying cardinality n.

Paper shape: both algorithms are nearly flat in n — layered indexes give
access proportional to k, not n — with DL+ below DG+ throughout.
"""

from __future__ import annotations

import pytest

from conftest import run_n_sweep, timed_query_batch

EXPERIMENT = "fig16"


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_fig16_series(distribution, ctx, benchmark):
    sweep = run_n_sweep(ctx, EXPERIMENT, distribution)
    dgp = sweep.mean_series("DG+")
    dlp = sweep.mean_series("DL+")
    assert all(l <= g * 1.05 for l, g in zip(dlp, dgp))
    # Near-flat in n: a 5x cardinality change moves cost far less than 5x.
    assert max(dlp) / min(dlp) < 3.0
    assert max(dgp) / min(dgp) < 3.0
    workload = ctx.workload(distribution, sweep.values[0], 4)
    index = ctx.index("DL+", workload, max_k=10)
    timed_query_batch(benchmark, index, workload, k=10)
