"""Fig. 11: DG+ vs DL+ with varying retrieval size k.

Paper shape: the optimized variants preserve the DL-over-DG advantage — DL+
stays below DG+ at every k.
"""

from __future__ import annotations

import pytest

from conftest import run_k_sweep, timed_query_batch

EXPERIMENT = "fig11"


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_fig11_series(distribution, ctx, benchmark):
    sweep, workload = run_k_sweep(ctx, EXPERIMENT, distribution)
    dgp = sweep.mean_series("DG+")
    dlp = sweep.mean_series("DL+")
    assert all(l <= g * 1.02 for l, g in zip(dlp, dgp))
    index = ctx.index("DG+", workload, max_k=50)
    timed_query_batch(benchmark, index, workload, k=10)
