"""Shared machinery for the per-figure benchmark modules.

Each ``bench_*.py`` module reproduces one table/figure of the paper's §VI:
it computes the paper's series (mean tuples evaluated — Definition 9 — per
sweep point) once per session, prints it, appends it to
``benchmarks/results/``, and lets pytest-benchmark time a representative
query batch per algorithm.

Scale knobs (defaults in :class:`repro.bench.workload.BenchConfig`):
``REPRO_BENCH_N``, ``REPRO_BENCH_QUERIES``, ``REPRO_BENCH_SEED``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.experiments import ALGORITHM_CLASSES, EXPERIMENTS
from repro.bench.harness import build_index, measure_cost, run_sweep
from repro.bench.plotting import ascii_series_chart
from repro.bench.reporting import format_series_table
from repro.bench.workload import BenchConfig, Workload

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    return BenchConfig()


class BenchContext:
    """Session-wide caches: workloads and built indexes."""

    def __init__(self, config: BenchConfig) -> None:
        self.config = config
        self._workloads: dict[tuple, Workload] = {}
        self._indexes: dict[tuple, object] = {}

    def workload(self, distribution: str, n: int, d: int) -> Workload:
        key = (distribution, n, d)
        if key not in self._workloads:
            self._workloads[key] = Workload.make(
                distribution, n, d, self.config.queries, self.config.seed
            )
        return self._workloads[key]

    def index(self, name: str, workload: Workload, max_k: int):
        key = (name, workload.distribution, workload.n, workload.d, max_k)
        if key not in self._indexes:
            self._indexes[key] = build_index(
                ALGORITHM_CLASSES[name], workload, max_k=max_k
            )
        return self._indexes[key]


@pytest.fixture(scope="session")
def ctx(bench_config) -> BenchContext:
    return BenchContext(bench_config)


def record(experiment_id: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    with path.open("a") as handle:
        handle.write(text)


def run_k_sweep(ctx: BenchContext, experiment_id: str, distribution: str):
    """Execute a k-sweep spec on one distribution and record the table."""
    spec = EXPERIMENTS[experiment_id]
    config = ctx.config
    workload = ctx.workload(distribution, config.n, 4)
    max_k = max(spec.values)
    sweep = run_sweep(
        "k",
        list(spec.values),
        {name: ALGORITHM_CLASSES[name] for name in spec.algorithms},
        workload_for=lambda value: workload,
        k_for=lambda value: int(value),
        index_for=ctx.index,
    )
    label = (
        f"{spec.title} [{distribution}, n={config.n}, d=4, "
        f"{config.queries} queries]"
    )
    record(
        experiment_id,
        format_series_table(label, sweep, ratio=spec.ratio)
        + "\n"
        + ascii_series_chart(label, sweep),
    )
    return sweep, workload


def run_d_sweep(ctx: BenchContext, experiment_id: str, distribution: str):
    """Execute a d-sweep spec on one distribution and record the table."""
    spec = EXPERIMENTS[experiment_id]
    config = ctx.config

    sweep = run_sweep(
        "d",
        list(spec.values),
        {name: ALGORITHM_CLASSES[name] for name in spec.algorithms},
        workload_for=lambda d: ctx.workload(
            distribution, config.scaled_n(int(d)), int(d)
        ),
        k_for=lambda d: 10,
        index_for=ctx.index,
    )
    label = f"{spec.title} [{distribution}, k=10, {config.queries} queries]"
    record(
        experiment_id,
        format_series_table(label, sweep, ratio=spec.ratio)
        + "\n"
        + ascii_series_chart(label, sweep),
    )
    return sweep


def run_n_sweep(ctx: BenchContext, experiment_id: str, distribution: str):
    """Execute the cardinality sweep (fig16) and record the table."""
    spec = EXPERIMENTS[experiment_id]
    config = ctx.config

    sweep = run_sweep(
        "n",
        [int(config.n * multiple) for multiple in spec.values],
        {name: ALGORITHM_CLASSES[name] for name in spec.algorithms},
        workload_for=lambda n: ctx.workload(distribution, int(n), 4),
        k_for=lambda n: 10,
        index_for=ctx.index,
    )
    label = (
        f"{spec.title} [{distribution}, k=10, d=4, {config.queries} queries]"
    )
    record(
        experiment_id,
        format_series_table(label, sweep, ratio=spec.ratio)
        + "\n"
        + ascii_series_chart(label, sweep),
    )
    return sweep


def timed_query_batch(benchmark, index, workload, k: int) -> None:
    """pytest-benchmark payload: answer the whole query batch once."""

    def batch():
        for weights in workload.weights:
            index.query(weights, k)

    benchmark(batch)
