"""Grand table: every index in the library on the default workload.

Not a paper figure — a library-wide summary lining up the layer-based
family (the paper's subject) against the list-based and view-based related
work under identical cost accounting.
"""

from __future__ import annotations

import pytest

from repro import ALGORITHMS
from repro.bench.harness import build_index, measure_cost

from conftest import record


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_all_algorithms_table(distribution, ctx, benchmark):
    config = ctx.config
    workload = ctx.workload(distribution, min(config.n, 6000), 4)
    rows = []
    for name, cls in sorted(ALGORITHMS.items()):
        index = build_index(cls, workload, max_k=10)
        cell = measure_cost(index, workload, 10)
        rows.append((cell.mean_cost, name, index.build_stats.seconds))
    rows.sort()
    lines = [
        f"\nAll algorithms [{distribution}, n={workload.n}, d=4, k=10, "
        f"{config.queries} queries]",
        f"{'algorithm':>10} {'mean cost':>12} {'build (s)':>10}",
    ]
    lines.append("-" * len(lines[-1]))
    for mean_cost, name, seconds in rows:
        lines.append(f"{name:>10} {mean_cost:>12.1f} {seconds:>10.3f}")
    record("ablation_all_algorithms", "\n".join(lines) + "\n")

    by_name = {name: cost for cost, name, _ in rows}
    # The paper's headline ordering at defaults.
    assert by_name["DL+"] <= by_name["DG+"] * 1.05
    assert by_name["DL"] <= by_name["DG"]
    assert by_name["DL+"] < by_name["HL+"]
    assert by_name["SCAN"] == float(workload.n)
    benchmark(lambda: None)
