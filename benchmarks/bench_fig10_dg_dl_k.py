"""Fig. 10: DG vs DL with varying retrieval size k.

Paper shape: DL consistently accesses fewer tuples than DG at every k
(about 3x fewer on anti-correlated data), with a gap stable in k — the
∃-dominance fine-sublayer filtering (Theorem 5 guarantees DL <= DG).
"""

from __future__ import annotations

import pytest

from conftest import run_k_sweep, timed_query_batch

EXPERIMENT = "fig10"


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_fig10_series(distribution, ctx, benchmark):
    sweep, workload = run_k_sweep(ctx, EXPERIMENT, distribution)
    dg = sweep.mean_series("DG")
    dl = sweep.mean_series("DL")
    # Theorem 5 shape: DL at or below DG at every sweep point.
    assert all(l <= g for l, g in zip(dl, dg))
    # Meaningful advantage at the largest k.
    assert dg[-1] / dl[-1] > 1.2
    index = ctx.index("DL", workload, max_k=50)
    timed_query_batch(benchmark, index, workload, k=10)
