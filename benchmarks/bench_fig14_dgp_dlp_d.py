"""Fig. 14: DG+ vs DL+ with varying dimensionality d.

Paper shape: DL+ below DG+ throughout, gap widening with d — the
dual-resolution zero layer (fine pseudo sublayers) beats DG+'s flat one.
"""

from __future__ import annotations

import pytest

from conftest import run_d_sweep, timed_query_batch

EXPERIMENT = "fig14"


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
def test_fig14_series(distribution, ctx, benchmark):
    sweep = run_d_sweep(ctx, EXPERIMENT, distribution)
    dgp = sweep.mean_series("DG+")
    dlp = sweep.mean_series("DL+")
    assert all(l <= g * 1.05 for l, g in zip(dlp, dgp))
    workload = ctx.workload(distribution, ctx.config.scaled_n(4), 4)
    index = ctx.index("DL+", workload, max_k=10)
    timed_query_batch(benchmark, index, workload, k=10)
