"""Synthetic player table and the maximization embedding."""

import numpy as np
import pytest

from repro.core import DLIndex
from repro.data.players import (
    PLAYER_STATS,
    maximization_relation,
    synthetic_players,
)
from repro.exceptions import SchemaError


def test_shapes_and_embedding_domain():
    table = synthetic_players(500, seed=1)
    assert table.n == 500
    assert table.raw.shape == (500, 5)
    assert table.relation.schema.attributes == PLAYER_STATS
    assert table.relation.matrix.min() >= 0.0
    assert table.relation.matrix.max() <= 1.0


def test_embedding_reverses_order():
    """Higher raw stat -> lower embedded value, per attribute."""
    table = synthetic_players(200, seed=2)
    for column in range(5):
        raw_order = np.argsort(table.raw[:, column])
        embedded = table.relation.matrix[raw_order, column]
        assert np.all(np.diff(embedded) <= 1e-12)


def test_top1_maximizes_weighted_raw_average():
    table = synthetic_players(800, seed=3)
    index = DLIndex(table.relation).build()
    weights = np.array([0.5, 0.2, 0.1, 0.1, 0.1])
    result = index.query(weights, 1)
    # Normalized raw maximization objective, same normalization the
    # embedding used:
    span = np.where(table.hi > table.lo, table.hi - table.lo, 1.0)
    normalized = (table.raw - table.lo) / span
    objective = normalized @ (weights / weights.sum())
    assert int(result.ids[0]) == int(np.argmax(objective))


def test_decode_scores_roundtrip():
    table = synthetic_players(300, seed=4)
    index = DLIndex(table.relation).build()
    weights = np.array([0.3, 0.3, 0.2, 0.1, 0.1])
    result = index.query(weights, 5)
    decoded = table.decode_scores(weights, result.scores)
    # Decoded values descend (best first) and live within raw stat bounds.
    assert np.all(np.diff(decoded) <= 1e-9)
    w = weights / weights.sum()
    assert decoded.max() <= float(w @ table.hi) + 1e-9
    assert decoded.min() >= float(w @ table.lo) - 1e-9


def test_positive_stat_correlation():
    table = synthetic_players(3000, seed=5)
    corr = np.corrcoef(table.raw[:, 0], table.raw[:, 1])[0, 1]
    assert corr > 0.15  # latent skill factor induces positive correlation


def test_validation():
    with pytest.raises(SchemaError):
        synthetic_players(0)
    with pytest.raises(SchemaError):
        maximization_relation(np.ones((5, 3)))


def test_constant_stat_column_handled():
    raw = np.ones((10, 5))
    raw[:, 0] = np.arange(10)
    table = maximization_relation(raw)
    # Constant columns embed to a constant without dividing by zero.
    assert np.all(np.isfinite(table.relation.matrix))
