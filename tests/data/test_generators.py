"""Synthetic generators: shapes, domains, determinism, distribution traits."""

import numpy as np
import pytest

from repro.data import generate
from repro.data.generators import (
    generate_anticorrelated,
    generate_clustered,
    generate_correlated,
    generate_independent,
)
from repro.exceptions import SchemaError
from repro.skyline import skyline


@pytest.mark.parametrize("name", ["IND", "ANT", "COR", "CLU"])
def test_shapes_and_domain(name):
    rel = generate(name, 500, 4, seed=1)
    assert rel.n == 500
    assert rel.d == 4
    assert rel.matrix.min() > 0.0
    assert rel.matrix.max() < 1.0


@pytest.mark.parametrize("name", ["IND", "ANT", "COR", "CLU"])
def test_deterministic_given_seed(name):
    a = generate(name, 100, 3, seed=7)
    b = generate(name, 100, 3, seed=7)
    np.testing.assert_array_equal(a.matrix, b.matrix)
    c = generate(name, 100, 3, seed=8)
    assert not np.array_equal(a.matrix, c.matrix)


def test_case_insensitive_dispatch():
    rel = generate("ant", 50, 2, seed=0)
    assert rel.n == 50


def test_unknown_distribution_rejected():
    with pytest.raises(SchemaError, match="unknown distribution"):
        generate("ZIPF", 10, 2)


def test_invalid_sizes_rejected():
    with pytest.raises(SchemaError):
        generate_independent(-1, 2)
    with pytest.raises(SchemaError):
        generate_independent(10, 0)
    with pytest.raises(SchemaError):
        generate_clustered(10, 2, clusters=0)


def test_anticorrelated_has_larger_skyline_than_independent():
    """The defining trait the paper's evaluation leans on."""
    ind = generate_independent(2000, 3, seed=3)
    ant = generate_anticorrelated(2000, 3, seed=3)
    assert len(skyline(ant.matrix)) > 2 * len(skyline(ind.matrix))


def test_correlated_has_smaller_skyline_than_independent():
    ind = generate_independent(2000, 3, seed=4)
    cor = generate_correlated(2000, 3, seed=4)
    assert len(skyline(cor.matrix)) < len(skyline(ind.matrix))


def test_anticorrelated_negative_pairwise_correlation():
    ant = generate_anticorrelated(4000, 2, seed=5)
    corr = np.corrcoef(ant.matrix[:, 0], ant.matrix[:, 1])[0, 1]
    assert corr < -0.3


def test_zero_cardinality_allowed():
    rel = generate("IND", 0, 3, seed=0)
    assert rel.n == 0


def test_generator_accepts_generator_instance():
    rng = np.random.default_rng(11)
    rel = generate("IND", 10, 2, seed=rng)
    assert rel.n == 10
