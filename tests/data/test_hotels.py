"""Toy hotel dataset: structure, helpers, and the synthetic variant."""

import numpy as np

from repro.data.hotels import (
    HOTEL_NAMES,
    RAW_HOTELS,
    hotel_id,
    hotel_names,
    synthetic_hotels,
    toy_hotels,
)


def test_eleven_named_hotels():
    rel = toy_hotels()
    assert rel.n == 11
    assert rel.d == 2
    assert rel.schema.attributes == ("price", "distance")
    assert len(HOTEL_NAMES) == 11
    assert len(RAW_HOTELS) == 11


def test_normalization_is_divide_by_ten():
    rel = toy_hotels()
    for name in HOTEL_NAMES:
        raw = RAW_HOTELS[name]
        np.testing.assert_allclose(
            rel.tuple(hotel_id(name)), np.asarray(raw) / 10.0
        )


def test_hotel_names_roundtrip():
    assert hotel_names([0, 5, 10]) == ["a", "f", "k"]
    assert [hotel_id(n) for n in ("a", "f", "k")] == [0, 5, 10]


def test_synthetic_hotels_shape_and_labels():
    rel, cities = synthetic_hotels(200, seed=1, city_count=3)
    assert rel.n == 200
    assert cities.shape == (200,)
    assert set(np.unique(cities)) <= {0, 1, 2}
    assert rel.matrix.min() > 0 and rel.matrix.max() < 1


def test_synthetic_hotels_anticorrelated():
    rel, _ = synthetic_hotels(3000, seed=2)
    corr = np.corrcoef(rel.matrix[:, 0], rel.matrix[:, 1])[0, 1]
    assert corr < -0.5
