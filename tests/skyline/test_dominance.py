"""Dominance primitives (Definition 2)."""

import numpy as np

from repro.skyline import (
    dominance_matrix,
    dominates,
    dominates_any,
    dominators_of,
    is_dominated,
)


def test_dominates_strict_somewhere():
    assert dominates([0.1, 0.2], [0.1, 0.3])
    assert dominates([0.1, 0.2], [0.2, 0.3])
    assert not dominates([0.1, 0.2], [0.1, 0.2])  # equal: no strict attr
    assert not dominates([0.1, 0.4], [0.2, 0.3])  # incomparable
    assert not dominates([0.2, 0.3], [0.1, 0.4])


def test_is_dominated():
    against = np.array([[0.5, 0.5], [0.2, 0.8]])
    assert is_dominated(np.array([0.6, 0.6]), against)
    assert not is_dominated(np.array([0.1, 0.1]), against)
    assert not is_dominated(np.array([0.5, 0.5]), against)  # equal only
    assert not is_dominated(np.array([0.6, 0.6]), np.empty((0, 2)))


def test_dominates_any_mask():
    points = np.array([[0.6, 0.6], [0.1, 0.1], [0.5, 0.5]])
    against = np.array([[0.5, 0.5]])
    np.testing.assert_array_equal(
        dominates_any(points, against), [True, False, False]
    )


def test_dominates_any_empty_inputs():
    assert dominates_any(np.empty((0, 2)), np.ones((3, 2))).shape == (0,)
    np.testing.assert_array_equal(
        dominates_any(np.ones((2, 2)), np.empty((0, 2))), [False, False]
    )


def test_dominance_matrix():
    rows = np.array([[0.1, 0.1], [0.9, 0.9]])
    cols = np.array([[0.2, 0.2], [0.05, 0.5]])
    matrix = dominance_matrix(rows, cols)
    np.testing.assert_array_equal(matrix, [[True, False], [False, False]])


def test_dominance_matrix_empty():
    assert dominance_matrix(np.empty((0, 2)), np.ones((2, 2))).shape == (0, 2)


def test_dominators_of():
    candidates = np.array([[0.1, 0.1], [0.3, 0.3], [0.2, 0.9]])
    np.testing.assert_array_equal(
        dominators_of(np.array([0.3, 0.3]), candidates), [0]
    )
    assert dominators_of(np.array([0.0, 0.0]), candidates).shape == (0,)


def test_dominates_any_chunking_consistency(rng):
    """Chunked mask equals the naive all-pairs computation."""
    points = rng.random((150, 3))
    against = rng.random((5000, 3))
    mask = dominates_any(points, against)
    naive = np.array([is_dominated(p, against) for p in points])
    np.testing.assert_array_equal(mask, naive)


def test_dominance_matrix_chunking_consistency(rng, monkeypatch):
    """Chunked matrix equals the one-shot dense broadcast."""
    from repro.skyline import dominance

    rows = rng.random((700, 3))
    cols = rng.random((90, 3))
    full = dominance_matrix(rows, cols)
    monkeypatch.setattr(dominance, "_CHUNK", 64)  # force many blocks
    chunked = dominance_matrix(rows, cols)
    np.testing.assert_array_equal(full, chunked)
    naive = np.array([[dominates(r, c) for c in cols] for r in rows])
    np.testing.assert_array_equal(full, naive)
