"""The three skyline algorithms: correctness, agreement, edge cases."""

import numpy as np
import pytest

from repro.skyline import (
    is_dominated,
    skyline,
    skyline_bnl,
    skyline_bskytree,
    skyline_sfs,
)

ALGORITHMS = [skyline_bnl, skyline_sfs, skyline_bskytree]


def brute_skyline(points: np.ndarray) -> np.ndarray:
    keep = [
        i
        for i in range(points.shape[0])
        if not is_dominated(points[i], np.delete(points, i, axis=0))
    ]
    return np.asarray(keep, dtype=np.intp)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("d", [1, 2, 3, 4])
def test_matches_bruteforce(algorithm, d, rng):
    points = rng.random((120, d))
    np.testing.assert_array_equal(algorithm(points), brute_skyline(points))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_empty_input(algorithm):
    assert algorithm(np.empty((0, 3))).shape == (0,)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_single_point(algorithm):
    np.testing.assert_array_equal(algorithm(np.array([[0.5, 0.5]])), [0])


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_all_duplicates_survive(algorithm):
    """Identical tuples do not dominate each other (no strict attribute)."""
    points = np.tile([0.3, 0.7], (5, 1))
    np.testing.assert_array_equal(algorithm(points), np.arange(5))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_total_order_chain(algorithm):
    """A strictly dominated chain keeps only its minimum."""
    points = np.array([[i / 10, i / 10] for i in range(1, 6)])
    np.testing.assert_array_equal(algorithm(points), [0])


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_anti_chain_all_kept(algorithm):
    points = np.array([[0.1, 0.9], [0.3, 0.7], [0.5, 0.5], [0.7, 0.3]])
    np.testing.assert_array_equal(algorithm(points), np.arange(4))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_equal_sums_incomparable(algorithm):
    """Ties in the SFS sort key must not suppress incomparable tuples."""
    points = np.array([[0.5, 0.5], [0.4, 0.6], [0.6, 0.4], [0.3, 0.7]])
    np.testing.assert_array_equal(algorithm(points), np.arange(4))


def test_large_agreement(rng):
    points = rng.random((3000, 4))
    a = skyline_sfs(points)
    b = skyline_bskytree(points)
    np.testing.assert_array_equal(a, b)


def test_dispatch_by_name(rng):
    points = rng.random((50, 3))
    np.testing.assert_array_equal(
        skyline(points, "bnl"), skyline(points, "bskytree")
    )
    with pytest.raises(ValueError, match="unknown skyline"):
        skyline(points, "quantum")
