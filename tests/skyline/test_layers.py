"""Skyline-layer and convex-layer peeling invariants."""

import numpy as np
import pytest

from repro.relation import top_k_bruteforce
from repro.skyline import (
    convex_layers,
    dominates_any,
    is_dominated,
    skyline_layers,
)


def test_skyline_layers_partition(rng):
    points = rng.random((300, 3))
    layers, leftover = skyline_layers(points)
    assert leftover.shape[0] == 0
    all_ids = np.concatenate(layers)
    assert all_ids.shape[0] == 300
    assert np.unique(all_ids).shape[0] == 300


def test_convex_layers_partition(rng):
    points = rng.random((300, 3))
    layers, leftover = convex_layers(points)
    assert leftover.shape[0] == 0
    all_ids = np.concatenate(layers)
    assert np.unique(all_ids).shape[0] == 300


def test_skyline_layer_internal_nondominance(rng):
    points = rng.random((200, 3))
    layers, _ = skyline_layers(points)
    for layer in layers:
        block = points[layer]
        for i in range(block.shape[0]):
            assert not is_dominated(block[i], np.delete(block, i, axis=0))


def test_every_deeper_tuple_dominated_by_previous_layer(rng):
    points = rng.random((200, 3))
    layers, _ = skyline_layers(points)
    for prev, layer in zip(layers, layers[1:]):
        mask = dominates_any(points[layer], points[prev])
        assert np.all(mask), "each tuple must have a dominator one layer up"


def test_max_layers_bound(rng):
    points = rng.random((300, 3))
    layers, leftover = skyline_layers(points, max_layers=2)
    assert len(layers) == 2
    assert leftover.shape[0] == 300 - sum(layer.shape[0] for layer in layers)
    full_layers, _ = skyline_layers(points)
    np.testing.assert_array_equal(layers[0], full_layers[0])
    np.testing.assert_array_equal(layers[1], full_layers[1])


@pytest.mark.parametrize("peel", [skyline_layers, convex_layers])
def test_rank_i_within_first_i_layers(peel, rng):
    """The layer-index contract: the i-th best tuple is in the first i layers."""
    points = rng.random((150, 3))
    layers, _ = peel(points)
    layer_of = np.empty(150, dtype=int)
    for depth, layer in enumerate(layers):
        layer_of[layer] = depth + 1
    for _ in range(5):
        w = rng.dirichlet(np.ones(3))
        ids, _ = top_k_bruteforce(points, w, 20)
        for rank, tid in enumerate(ids, start=1):
            assert layer_of[tid] <= rank


def test_empty_input():
    layers, leftover = skyline_layers(np.empty((0, 3)))
    assert layers == []
    assert leftover.shape[0] == 0


def test_convex_layers_duplicates():
    points = np.tile([0.2, 0.8], (4, 1))
    layers, leftover = convex_layers(points)
    assert leftover.shape[0] == 0
    assert sum(layer.shape[0] for layer in layers) == 4


def test_unknown_algorithm_rejected(rng):
    with pytest.raises(ValueError):
        skyline_layers(rng.random((10, 2)), algorithm="nope")
