"""Example scripts: compile everything, execute the fast ones."""

import importlib.util
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("script", sorted(p.name for p in EXAMPLES_DIR.glob("*.py")))
def test_example_compiles(script):
    py_compile.compile(str(EXAMPLES_DIR / script), doraise=True)


def test_examples_directory_has_at_least_three():
    assert len(list(EXAMPLES_DIR.glob("*.py"))) >= 3


def test_weight_sensitivity_runs(capsys):
    load_example("weight_sensitivity.py").main()
    out = capsys.readouterr().out
    assert "weight ranges" in out
    assert "DL+ evaluates 1 tuple(s)" in out


def test_compare_indexes_runs_small(capsys):
    load_example("compare_indexes.py").main(400, 2, 5)
    out = capsys.readouterr().out
    assert "DL+" in out and "SCAN" in out
    assert "fewer tuples than a scan" in out


def test_hotel_finder_runs(capsys, monkeypatch):
    module = load_example("hotel_finder.py")
    # Shrink the big table for test speed.
    import repro.data.hotels as hotels

    original = hotels.synthetic_hotels

    def small(n, seed=None, city_count=4):
        return original(min(n, 1500), seed=seed, city_count=city_count)

    monkeypatch.setattr(module, "synthetic_hotels", small)
    module.main()
    out = capsys.readouterr().out
    assert "Alice (0.5, 0.5), top-5: ['a', 'b', 'f', 'd', 'e']" in out
    assert "answered by DL+" in out
