"""End-to-end CLI: generate → build → query, plus compare."""


from repro.cli import main


def test_generate_build_query_pipeline(tmp_path, capsys):
    data = tmp_path / "rel.npz"
    index = tmp_path / "index.pkl"

    assert main([
        "generate", "--distribution", "ANT", "--n", "300", "--d", "3",
        "--seed", "1", "--out", str(data),
    ]) == 0
    out = capsys.readouterr().out
    assert "300 x 3" in out

    assert main([
        "build", "--data", str(data), "--algorithm", "DL+", "--out", str(index),
    ]) == 0
    out = capsys.readouterr().out
    assert "DL+" in out

    assert main([
        "query", "--index", str(index), "--weights", "0.4,0.3,0.3", "--k", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert out.count("tuple") >= 5
    assert "cost:" in out


def test_query_with_random_weights(tmp_path, capsys):
    data = tmp_path / "rel.npz"
    index = tmp_path / "index.pkl"
    main(["generate", "--n", "100", "--d", "2", "--out", str(data)])
    main(["build", "--data", str(data), "--algorithm", "DG", "--out", str(index)])
    capsys.readouterr()
    assert main(["query", "--index", str(index), "--k", "3"]) == 0
    out = capsys.readouterr().out
    assert "random weights" in out


def test_compare_command(capsys):
    assert main([
        "compare", "--distribution", "IND", "--n", "200", "--d", "2",
        "--k", "5", "--queries", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "DL+" in out and "SCAN" in out


def test_analyze_command(tmp_path, capsys):
    data = tmp_path / "rel.npz"
    index = tmp_path / "index.pkl"
    main(["generate", "--n", "200", "--d", "3", "--out", str(data)])
    main(["build", "--data", str(data), "--algorithm", "DL", "--out", str(index)])
    capsys.readouterr()
    assert main(["analyze", "--index", str(index), "--k", "5"]) == 0
    out = capsys.readouterr().out
    assert "coarse layers" in out
    assert "cost bounds" in out


def test_advise_command(tmp_path, capsys):
    data = tmp_path / "rel.npz"
    main(["generate", "--distribution", "ANT", "--n", "3000", "--d", "4",
          "--out", str(data)])
    capsys.readouterr()
    assert main(["advise", "--data", str(data), "--k", "10"]) == 0
    out = capsys.readouterr().out
    assert "recommended index:" in out
    assert "rationale:" in out


def test_sql_command(tmp_path, capsys):
    data = tmp_path / "rel.npz"
    main(["generate", "--n", "300", "--d", "2", "--out", str(data)])
    capsys.readouterr()
    assert main([
        "sql", "--data", str(data),
        "EXPLAIN SELECT a0 FROM r WHERE a0 <= 0.8 "
        "ORDER BY a0 + a1 STOP AFTER 3",
    ]) == 0
    out = capsys.readouterr().out
    assert "TopK(k=3" in out
    assert "tuples evaluated" in out
    assert out.count("\n1  ") or "1  " in out


def test_build_with_max_layers(tmp_path, capsys):
    data = tmp_path / "rel.npz"
    index = tmp_path / "index.pkl"
    main(["generate", "--n", "200", "--d", "2", "--out", str(data)])
    assert main([
        "build", "--data", str(data), "--algorithm", "DL",
        "--max-layers", "5", "--out", str(index),
    ]) == 0


def test_bench_command_tiny_scale(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_N", "400")
    monkeypatch.setenv("REPRO_BENCH_QUERIES", "2")
    assert main(["bench", "--experiment", "fig10"]) == 0
    out = capsys.readouterr().out
    assert "Fig 10" in out
    assert "DG/DL" in out
    assert "[ANT]" in out
