"""The paper's worked examples, executed end-to-end on the toy dataset.

These tests pin the reconstruction of Fig. 1 to every structural statement
the paper makes about it: the skyline layers of Fig. 2(a), the convex layers
of Fig. 2(b), the dual-resolution layout of Fig. 5 / Example 3, the
∃-dominance facts of Example 2, the tuple statuses of Example 4, and the
full Table III query trace of Example 5.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.core.build import build_dual_layer
from repro.data.hotels import HOTEL_NAMES, RAW_HOTELS, hotel_id, toy_hotels
from repro.geometry import convex_combination_dominates
from repro.skyline import convex_layers, skyline_layers

from tests.conftest import names_of


@pytest.fixture(scope="module")
def toy_matrix():
    return toy_hotels().matrix


def test_fig1_score_of_a_is_3_5_on_raw_grid():
    price, distance = RAW_HOTELS["a"]
    assert 0.5 * price + 0.5 * distance == pytest.approx(3.5)


def test_fig2a_skyline_layers(toy_matrix):
    layers, leftover = skyline_layers(toy_matrix)
    assert leftover.shape[0] == 0
    assert [names_of(layer) for layer in layers] == [
        {"a", "b", "c", "f", "g"},
        {"d", "e", "i", "j"},
        {"h", "k"},
    ]


def test_fig2b_convex_layers(toy_matrix):
    layers, leftover = convex_layers(toy_matrix)
    assert leftover.shape[0] == 0
    assert [names_of(layer) for layer in layers] == [
        {"a", "b", "c"},
        {"d", "f", "g"},
        {"e", "j"},
        {"h", "i"},
        {"k"},
    ]


def test_example3_dual_resolution_fine_layers(toy_matrix):
    blueprint = build_dual_layer(toy_matrix)
    fine = [
        [names_of(sublayer) for sublayer in sublayers]
        for sublayers in blueprint.fine_layers
    ]
    assert fine == [
        [{"a", "b", "c"}, {"f", "g"}],
        [{"d", "e", "j"}, {"i"}],
        [{"h", "k"}],
    ]


def test_example2_eds_facts(toy_matrix, toy_ids):
    ab = toy_matrix[[toy_ids["a"], toy_ids["b"]]]
    bc = toy_matrix[[toy_ids["b"], toy_ids["c"]]]
    f = toy_matrix[toy_ids["f"]]
    g = toy_matrix[toy_ids["g"]]
    # {a,b} is an EDS of f; {b,c} is an EDS of g (Examples 2 and 3) —
    # and not the other way around.
    assert convex_combination_dominates(ab, f)
    assert not convex_combination_dominates(bc, f)
    assert convex_combination_dominates(bc, g)
    assert not convex_combination_dominates(ab, g)


def test_fig5_forall_edges(toy_matrix, toy_ids):
    blueprint = build_dual_layer(toy_matrix)
    structure = blueprint.structure

    def forall_children_of(name):
        return names_of(structure.forall_children[toy_ids[name]])

    # "a ∀-dominates {d, e, i}" (Example 3).
    assert forall_children_of("a") == {"d", "e", "i"}
    # i's parents are exactly {a, f} (Example 4: after a and f, i is free).
    i_parents = {
        name
        for name in ("a", "b", "c", "f", "g")
        if toy_ids["i"] in structure.forall_children[toy_ids[name]]
    }
    assert i_parents == {"a", "f"}
    # b is connected to j (Example 5 step 6) but popping b alone must not
    # free j (Table III shows j not enqueued at that point).
    assert toy_ids["j"] in structure.forall_children[toy_ids["b"]]
    assert structure.forall_parent_count[toy_ids["j"]] >= 2


def test_example4_initial_statuses(toy_matrix, toy_ids):
    structure = build_dual_layer(toy_matrix).structure
    # ∀-dominance-free: the whole first coarse layer.
    forall_free = {
        HOTEL_NAMES[node]
        for node in range(structure.n_real)
        if structure.forall_parent_count[node] == 0
    }
    assert forall_free == {"a", "b", "c", "f", "g"}
    # ∃-dominance-free: the first fine sublayer of each coarse layer.
    exists_free = {
        HOTEL_NAMES[node]
        for node in range(structure.n_real)
        if not structure.exists_gated[node]
    }
    assert exists_free == {"a", "b", "c", "d", "e", "j", "h", "k"}
    # Seeds (both conditions): exactly L^{11}.
    assert names_of(structure.static_seeds) == {"a", "b", "c"}


def test_example5_table3_trace(toy):
    """k=3, w=(0.5, 0.5): pop order a, b, f; d, e, g accessed; i, j not."""
    index = DLIndex(toy).build()
    result = index.query(np.array([0.5, 0.5]), 3)
    assert [HOTEL_NAMES[i] for i in result.ids] == ["a", "b", "f"]
    # Accessed tuples: seeds {a,b,c} + {d,e,f} after popping a + {g} after
    # popping b = 7 evaluations; i and j stay gated.
    assert result.cost == 7


def test_example1_top5(toy):
    index = DLIndex(toy).build()
    result = index.query(np.array([0.5, 0.5]), 5)
    assert [HOTEL_NAMES[i] for i in result.ids] == ["a", "b", "f", "d", "e"]


def test_section5a_dlplus_top1_single_access(toy):
    """The 2-D zero layer answers top-1 with exactly one tuple evaluated."""
    index = DLPlusIndex(toy).build()
    for w1, expected in ((0.5, "a"), (0.42, "b"), (0.2, "c")):
        result = index.query(np.array([w1, 1 - w1]), 1)
        assert [HOTEL_NAMES[i] for i in result.ids] == [expected]
        assert result.cost == 1


def test_section5b_clusters_match_paper(toy):
    """Fig. 7: L¹ clusters {a,b,f} and {c,g} with minima (1,4.4), (6,1)/10."""
    index = DLPlusIndex(toy, zero_layer="clusters", clusters=2).build()
    structure = index.structure
    pseudo = structure.values[structure.n_real :]
    expected = {(0.10, 0.44), (0.60, 0.10)}
    got = {tuple(np.round(row, 6)) for row in pseudo}
    assert got == expected


def test_dl_vs_dg_cost_on_toy(toy):
    from repro.baselines import DGIndex

    dl = DLIndex(toy).build()
    dg = DGIndex(toy).build()
    w = np.array([0.5, 0.5])
    for k in (1, 2, 3, 5, 8, 11):
        assert dl.query(w, k).cost <= dg.query(w, k).cost


def test_hotel_id_helpers():
    assert hotel_id("a") == 0
    assert hotel_id("k") == 10
    assert HOTEL_NAMES[hotel_id("f")] == "f"
