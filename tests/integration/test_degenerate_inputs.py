"""Failure injection / degenerate inputs across the whole stack.

Every index must behave sensibly on the pathological relations real
deployments produce: duplicates, constant columns, collinear geometry,
single tuples, n < d, and adversarial weights.
"""

import numpy as np

from repro import ALGORITHMS
from repro.relation import Relation, Schema, top_k_bruteforce

CORE_NAMES = ["DL", "DL+", "DG", "DG+", "HL+", "ONION", "PL", "AppRI"]


def check_against_bruteforce(relation, names=CORE_NAMES, ks=(1, 3)):
    rng = np.random.default_rng(0)
    for name in names:
        index = ALGORITHMS[name](relation).build()
        for _ in range(3):
            w = np.clip(rng.dirichlet(np.ones(relation.d)), 1e-6, None)
            for k in ks:
                result = index.query(w, k)
                _, ref = top_k_bruteforce(relation.matrix, w / w.sum(), k)
                np.testing.assert_allclose(
                    np.sort(result.scores), np.sort(ref), atol=1e-9,
                    err_msg=f"{name} failed",
                )


def test_all_identical_tuples():
    check_against_bruteforce(Relation(np.tile([0.4, 0.6], (20, 1))))


def test_many_duplicates():
    base = np.array([[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]])
    matrix = np.repeat(base, 7, axis=0)
    check_against_bruteforce(Relation(matrix))


def test_constant_column():
    rng = np.random.default_rng(1)
    matrix = np.column_stack([rng.random(30), np.full(30, 0.5)])
    check_against_bruteforce(Relation(matrix))


def test_collinear_diagonal():
    values = np.linspace(0.05, 0.95, 15)
    matrix = np.column_stack([values, values])
    check_against_bruteforce(Relation(matrix))


def test_anti_diagonal_exactly():
    values = np.linspace(0.05, 0.95, 15)
    matrix = np.column_stack([values, 1.0 - values])
    check_against_bruteforce(Relation(matrix))


def test_coplanar_3d():
    rng = np.random.default_rng(2)
    xy = rng.random((25, 2)) * 0.5
    z = 0.9 - 0.5 * xy[:, 0] - 0.4 * xy[:, 1]
    check_against_bruteforce(Relation(np.column_stack([xy, z])))


def test_single_tuple():
    check_against_bruteforce(Relation([[0.3, 0.7]]), ks=(1,))


def test_two_tuples():
    check_against_bruteforce(Relation([[0.3, 0.7], [0.7, 0.3]]), ks=(1, 2))


def test_n_smaller_than_d():
    matrix = np.array([[0.1, 0.9, 0.5, 0.3], [0.9, 0.1, 0.4, 0.6]])
    check_against_bruteforce(Relation(matrix), ks=(1, 2))


def test_one_dimensional():
    rng = np.random.default_rng(3)
    relation = Relation(rng.random((30, 1)))
    # 1-D exercises the geometric edge paths of every layer index.
    check_against_bruteforce(relation, names=["DL", "DG", "ONION", "PL"], ks=(1, 5))


def test_extreme_weight_skew():
    rng = np.random.default_rng(4)
    relation = Relation(rng.random((60, 3)), Schema(("a", "b", "c")))
    w = np.array([1e-8, 1e-8, 1.0])
    for name in ("DL", "DL+", "DG+", "HL+"):
        index = ALGORITHMS[name](relation).build()
        result = index.query(w, 5)
        _, ref = top_k_bruteforce(relation.matrix, w / w.sum(), 5)
        np.testing.assert_allclose(np.sort(result.scores), np.sort(ref), atol=1e-9)


def test_near_zero_spread():
    rng = np.random.default_rng(5)
    matrix = 0.5 + rng.random((25, 3)) * 1e-9
    check_against_bruteforce(Relation(matrix, check_domain=False))


def test_grid_clusters_heavy_ties():
    rng = np.random.default_rng(6)
    matrix = rng.integers(0, 4, size=(50, 3)) / 4.0
    check_against_bruteforce(Relation(matrix, check_domain=False))
