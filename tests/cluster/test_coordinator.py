"""ClusterEngine: bitwise equality with a single node, cost dominance,
failover, caching, and routed maintenance — the PR's acceptance suite."""

import numpy as np
import pytest

from repro.cluster import ClusterEngine, FailingShard
from repro.core import DLPlusIndex
from repro.data import generate
from repro.exceptions import InvalidQueryError
from repro.relation import random_weight_vector
from repro.serving import QueryEngine


def single_node(relation):
    return QueryEngine(DLPlusIndex(relation), cache_size=0)


# ---------------------------------------------------------------------- #
# Acceptance property grid: distribution x d x shards x partitioner x merge
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
@pytest.mark.parametrize("d", [2, 4])
@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("partitioner", ["round-robin", "angular"])
def test_cluster_matches_single_node_bitwise(distribution, d, shards, partitioner):
    relation = generate(distribution, 180, d, seed=37)
    reference = single_node(relation)
    cluster = ClusterEngine(
        relation, shards=shards, partitioner=partitioner, cache_size=0
    )
    rng = np.random.default_rng(91)
    for k in (1, 5, 23):
        w = random_weight_vector(d, rng)
        ref = reference.query(w, k)
        naive = cluster.query(w, k, merge="naive")
        threshold = cluster.query(w, k, merge="threshold")
        for got in (naive, threshold):
            np.testing.assert_array_equal(got.ids, ref.ids)
            assert got.scores.tobytes() == ref.scores.tobytes()
            assert not got.partial
        # Threshold merge never pays more than the naive merge.
        assert threshold.cost <= naive.cost
        # Per-shard costs sum to the merged Definition 9 total.
        assert sum(threshold.shard_costs.values()) == threshold.cost
        assert sum(naive.shard_costs.values()) == naive.cost


def test_single_shard_threshold_cost_equals_single_node():
    """shards=1 degenerates exactly: same answer, same Definition 9 cost."""
    relation = generate("ANT", 200, 3, seed=5)
    reference = single_node(relation)
    cluster = ClusterEngine(relation, shards=1, cache_size=0)
    rng = np.random.default_rng(13)
    for _ in range(5):
        w = random_weight_vector(3, rng)
        ref = reference.query(w, 10)
        got = cluster.query(w, 10, merge="threshold")
        np.testing.assert_array_equal(got.ids, ref.ids)
        assert got.cost == ref.cost


def test_k_larger_than_relation_is_clamped():
    relation = generate("IND", 60, 3, seed=3)
    cluster = ClusterEngine(relation, shards=4, cache_size=0)
    ref = single_node(relation).query(np.array([0.3, 0.3, 0.4]), 500)
    got = cluster.query(np.array([0.3, 0.3, 0.4]), 500)
    assert len(got.ids) == relation.n
    np.testing.assert_array_equal(got.ids, ref.ids)


def test_invalid_queries_raise():
    relation = generate("IND", 50, 2, seed=1)
    cluster = ClusterEngine(relation, shards=2)
    with pytest.raises(InvalidQueryError):
        cluster.query(np.array([0.5, 0.5]), 0)
    with pytest.raises(InvalidQueryError):
        cluster.query(np.array([0.5, 0.5]), 5, merge="zipper")
    with pytest.raises(InvalidQueryError):
        ClusterEngine(relation, shards=2, merge="zipper")


def test_non_integral_k_rejected_cluster_wide():
    """Regression companion to the engine-side fix: the coordinator used
    to pre-truncate k with int() before scattering, so k=2.5 silently
    served k=2 across every shard."""
    relation = generate("IND", 60, 2, seed=2)
    cluster = ClusterEngine(relation, shards=2)
    w = np.array([0.5, 0.5])
    with pytest.raises(InvalidQueryError):
        cluster.query(w, 2.5)
    with pytest.raises(InvalidQueryError):
        cluster.query_batch(np.vstack([w, w]), 2.5)
    with pytest.raises(InvalidQueryError):
        cluster.query_many([(w, 5), (w, 2.5)])
    # Integral floats stay accepted and serve the same bytes.
    a = cluster.query(w, np.float64(5.0))
    b = cluster.query(w, 5)
    assert a.ids.tobytes() == b.ids.tobytes()
    assert a.scores.tobytes() == b.scores.tobytes()


# ---------------------------------------------------------------------- #
# Batch / concurrent surfaces
# ---------------------------------------------------------------------- #


def test_query_batch_and_many_match_query():
    relation = generate("ANT", 150, 3, seed=23)
    cluster = ClusterEngine(relation, shards=3, partitioner="angular")
    rng = np.random.default_rng(7)
    weights = [random_weight_vector(3, rng) for _ in range(6)]
    singles = [cluster.query(w, 8) for w in weights]
    batched = cluster.query_batch(np.vstack(weights), 8)
    pooled = cluster.query_many([(w, 8) for w in weights], max_workers=3)
    for ref, b, p in zip(singles, batched, pooled):
        np.testing.assert_array_equal(b.ids, ref.ids)
        np.testing.assert_array_equal(p.ids, ref.ids)
        assert b.scores.tobytes() == ref.scores.tobytes()
        assert p.scores.tobytes() == ref.scores.tobytes()
    assert cluster.query_many([]) == []


def test_scatter_workers_naive_merge_matches_sequential():
    relation = generate("IND", 160, 3, seed=41)
    sequential = ClusterEngine(relation, shards=4, cache_size=0)
    scattered = ClusterEngine(relation, shards=4, cache_size=0, scatter_workers=4)
    w = np.array([0.25, 0.4, 0.35])
    a = sequential.query(w, 12, merge="naive")
    b = scattered.query(w, 12, merge="naive")
    np.testing.assert_array_equal(a.ids, b.ids)
    assert a.scores.tobytes() == b.scores.tobytes()
    assert a.cost == b.cost


def test_query_batch_wide_group_bitwise_and_records_batches():
    """A wide batch (>= the batch-kernel dispatch width) goes to each
    shard as one weight group; every row must still match the per-query
    path bitwise, and both coordinator and shard registries must record
    the batched execution."""
    relation = generate("IND", 200, 3, seed=47)
    reference = ClusterEngine(relation, shards=3, cache_size=0)
    batched = ClusterEngine(relation, shards=3, cache_size=0)
    rng = np.random.default_rng(47)
    weights = np.vstack([random_weight_vector(3, rng) for _ in range(16)])
    singles = [reference.query(w, 7, merge="naive") for w in weights]
    results = batched.query_batch(weights, 7, merge="naive")
    for ref, got in zip(singles, results):
        np.testing.assert_array_equal(got.ids, ref.ids)
        assert got.scores.tobytes() == ref.scores.tobytes()
        assert got.cost == ref.cost
        assert got.shard_costs == ref.shard_costs
    assert batched.metrics.batches == 1
    assert batched.metrics.batch_rows == 16
    stats = batched.stats()
    assert stats["batches"] == 1.0
    assert stats["shards"]["batches"] == 3.0  # one group per shard
    assert stats["shards"]["batch_rows"] == 48.0


def test_query_batch_deduplicates_repeated_rows_through_cache():
    relation = generate("ANT", 150, 3, seed=49)
    cluster = ClusterEngine(relation, shards=2, cache_size=32)
    rng = np.random.default_rng(49)
    base = np.vstack([random_weight_vector(3, rng) for _ in range(5)])
    weights = np.vstack([base, base[0], base[2]])  # 2 duplicate rows
    results = cluster.query_batch(weights, 6)
    assert results[5].merge == "cache" and results[5].cost == 0
    assert results[6].merge == "cache" and results[6].cost == 0
    np.testing.assert_array_equal(results[5].ids, results[0].ids)
    np.testing.assert_array_equal(results[6].ids, results[2].ids)
    assert cluster.metrics.cache_hits == 2


def test_query_batch_failover_and_partial():
    """The batched scatter path honors replica failover (exact answers,
    recovered_shards set) and, without a replica, degrades every row of
    the group to a partial answer that is never cached."""
    relation = generate("IND", 160, 3, seed=53)
    rng = np.random.default_rng(53)
    weights = np.vstack([random_weight_vector(3, rng) for _ in range(10)])

    replicated = ClusterEngine(relation, shards=2, replicate=True, cache_size=0)
    replicated.shards[0] = FailingShard(replicated.shards[0], failed=True)
    ref = single_node(relation)
    for got, w in zip(replicated.query_batch(weights, 8), weights):
        expected = ref.query(w, 8)
        np.testing.assert_array_equal(got.ids, expected.ids)
        assert got.scores.tobytes() == expected.scores.tobytes()
        assert not got.partial and got.recovered_shards == (0,)

    bare = ClusterEngine(relation, shards=2, cache_size=16)
    dead = FailingShard(bare.shards[1], failed=True)
    bare.shards[1] = dead
    partials = bare.query_batch(weights, 8)
    assert all(r.partial and r.failed_shards == (1,) for r in partials)
    dead.restore()
    healed = bare.query_batch(weights, 8)
    for got, w in zip(healed, weights):
        assert not got.partial
        assert got.merge != "cache"  # partial answers were not cached
        expected = ref.query(w, 8)
        np.testing.assert_array_equal(got.ids, expected.ids)


def test_cluster_kernel_knob_propagates_to_shards():
    relation = generate("IND", 150, 3, seed=59)
    with pytest.raises(InvalidQueryError):
        ClusterEngine(relation, shards=2, kernel="simd")
    reference = ClusterEngine(relation, shards=2, cache_size=0, kernel="reference")
    default = ClusterEngine(relation, shards=2, cache_size=0)
    assert all(s.engine.kernel == "reference" for s in reference.shards)
    assert all(s.engine.kernel == "auto" for s in default.shards)
    w = np.array([0.3, 0.3, 0.4])
    a = reference.query(w, 9)
    b = default.query(w, 9)
    np.testing.assert_array_equal(a.ids, b.ids)
    assert a.scores.tobytes() == b.scores.tobytes()


# ---------------------------------------------------------------------- #
# Failover
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("merge", ["naive", "threshold"])
def test_failed_shard_with_replica_serves_exact_answer(merge):
    relation = generate("IND", 160, 3, seed=53)
    reference = single_node(relation)
    cluster = ClusterEngine(relation, shards=2, replicate=True, cache_size=0)
    cluster.shards[0] = FailingShard(cluster.shards[0], failed=True)
    w = np.array([0.3, 0.3, 0.4])
    got = cluster.query(w, 10, merge=merge)
    ref = reference.query(w, 10)
    np.testing.assert_array_equal(got.ids, ref.ids)
    assert got.scores.tobytes() == ref.scores.tobytes()
    assert not got.partial
    assert got.recovered_shards == (0,)
    assert got.failed_shards == ()


@pytest.mark.parametrize("merge", ["naive", "threshold"])
def test_failed_shard_without_replica_degrades_to_partial(merge):
    relation = generate("IND", 160, 3, seed=53)
    cluster = ClusterEngine(relation, shards=2, cache_size=4)
    dead = FailingShard(cluster.shards[1], failed=True)
    cluster.shards[1] = dead
    w = np.array([0.3, 0.3, 0.4])
    got = cluster.query(w, 10, merge=merge)
    assert got.partial
    assert got.failed_shards == (1,)
    # The surviving shard still answers its own slice, in order.
    live_ids = cluster.shards[0].global_ids
    assert np.all(np.isin(got.ids, live_ids))
    assert np.all(np.diff(got.scores) >= 0)
    # Partial answers are never cached: restoring the shard un-degrades
    # the very same query.
    dead.restore()
    healed = cluster.query(w, 10, merge=merge)
    assert not healed.partial
    ref = single_node(relation).query(w, 10)
    np.testing.assert_array_equal(healed.ids, ref.ids)


# ---------------------------------------------------------------------- #
# Cache + maintenance
# ---------------------------------------------------------------------- #


def test_cache_hits_and_version_invalidation():
    relation = generate("IND", 120, 3, seed=61)
    cluster = ClusterEngine(relation, shards=2, cache_size=16)
    w = np.array([0.2, 0.5, 0.3])
    first = cluster.query(w, 5)
    hit = cluster.query(w, 5)
    assert hit.merge == "cache" and hit.cost == 0
    np.testing.assert_array_equal(hit.ids, first.ids)
    assert cluster.metrics.cache_hits == 1

    version = cluster.version
    gid = cluster.insert(np.array([0.5, 0.5, 0.5]))
    assert cluster.version == version + 1
    missed = cluster.query(w, 5)  # old entry invalidated by the bump
    assert missed.merge != "cache"
    cluster.delete(gid)
    assert cluster.version == version + 2


def test_insert_routes_to_owner_and_is_servable():
    relation = generate("IND", 90, 3, seed=67)
    reference_matrix = relation.matrix
    cluster = ClusterEngine(relation, shards=3, partitioner="angular")
    n0 = cluster.n
    values = np.array([0.005, 0.004, 0.006])  # dominates: must top the list
    gid = cluster.insert(values)
    assert gid == n0 and cluster.n == n0 + 1
    got = cluster.query(np.ones(3), 1)
    assert int(got.ids[0]) == gid
    # The cluster answer equals a single node over the grown relation.
    from repro.relation import Relation

    grown = Relation(
        np.vstack([reference_matrix, values[None, :]]), check_domain=False
    )
    ref = single_node(grown).query(np.ones(3), 10)
    full = cluster.query(np.ones(3), 10)
    np.testing.assert_array_equal(full.ids, ref.ids)
    assert full.scores.tobytes() == ref.scores.tobytes()

    cluster.delete(gid)
    assert cluster.n == n0
    with pytest.raises(InvalidQueryError):
        cluster.delete(gid)  # already gone
    with pytest.raises(InvalidQueryError):
        cluster.insert(np.array([0.5, 0.5]))  # wrong arity


def test_stats_aggregates_per_shard_metrics():
    relation = generate("IND", 120, 3, seed=71)
    cluster = ClusterEngine(relation, shards=2, cache_size=0)
    for merge in ("naive", "threshold"):
        cluster.query(np.array([0.4, 0.3, 0.3]), 5, merge=merge)
    stats = cluster.stats()
    assert stats["queries"] == 2.0
    assert stats["num_shards"] == 2.0
    # Each merge folded one query into each shard's registry.
    assert stats["shards"]["queries"] == 4.0
    assert set(stats["per_shard"]) == {0, 1}
    assert stats["shards"]["total_cost"] == sum(
        entry["total_cost"] for entry in stats["per_shard"].values()
    )
