"""Shard/cluster snapshot hydration: build-or-reopen, bitwise answers."""

import numpy as np
import pytest

from repro.cluster import ClusterEngine
from repro.cluster.shard import Shard
from repro.core import DLPlusIndex
from repro.data import generate
from repro.io.snapshot import MANIFEST_NAME, SnapshotIndex, read_manifest


@pytest.fixture()
def relation():
    return generate("IND", 400, 3, seed=17)


def _shard(relation, **kwargs):
    return Shard(
        0, relation, np.arange(relation.n), index_class=DLPlusIndex, **kwargs
    )


def assert_answers_agree(shards, d, *, queries=6, seed=5, k=5):
    rng = np.random.default_rng(seed)
    for _ in range(queries):
        w = rng.dirichlet(np.ones(d))
        answers = [shard.topk(w, k) for shard in shards]
        first = answers[0]
        for other in answers[1:]:
            np.testing.assert_array_equal(first.global_ids, other.global_ids)
            assert first.scores.tobytes() == other.scores.tobytes()


def test_shard_builds_then_reopens_snapshot(relation, tmp_path):
    home = tmp_path / "shard0"
    first = _shard(relation, snapshot_dir=home)
    assert first.snapshot_path == home
    assert (home / MANIFEST_NAME).exists()
    assert isinstance(first.engine.index, SnapshotIndex)

    # A second shard over the same data adopts the snapshot instead of
    # rebuilding; answers stay bitwise identical to a plain build.
    second = _shard(relation, snapshot_dir=home)
    assert isinstance(second.engine.index, SnapshotIndex)
    assert_answers_agree([_shard(relation), first, second], 3)


def test_shard_rejects_stale_snapshot(relation, tmp_path):
    """A snapshot of *different* data at the path must be rebuilt, never
    served."""
    home = tmp_path / "shard0"
    _shard(relation, snapshot_dir=home)
    other = generate("ANT", 400, 3, seed=99)
    rebuilt = _shard(other, snapshot_dir=home)
    reopened = _shard(other, snapshot_dir=home)  # now adopts the new bytes
    assert_answers_agree([_shard(other), rebuilt, reopened], 3, seed=6)


def test_shard_maintenance_resnapshots(relation, tmp_path):
    home = tmp_path / "shard0"
    shard = _shard(relation, snapshot_dir=home)
    plain = _shard(relation)
    row = np.array([0.4, 0.2, 0.6])
    shard.insert(relation.n, row)
    plain.insert(relation.n, row)
    # the rebuild refreshed the on-disk snapshot too
    assert read_manifest(home)["n_real"] == relation.n + 1
    assert isinstance(shard.engine.index, SnapshotIndex)
    assert_answers_agree([plain, shard], 3, seed=7, queries=4)


def test_cluster_snapshot_dir_roundtrip(relation, tmp_path):
    plain = ClusterEngine(
        relation, shards=2, index_class=DLPlusIndex, cache_size=0
    )
    built = ClusterEngine(
        relation,
        shards=2,
        index_class=DLPlusIndex,
        cache_size=0,
        snapshot_dir=tmp_path / "cluster",
    )
    reopened = ClusterEngine(
        relation,
        shards=2,
        index_class=DLPlusIndex,
        cache_size=0,
        snapshot_dir=tmp_path / "cluster",
    )
    for shard in reopened.shards:
        assert isinstance(shard.engine.index, SnapshotIndex)
    rng = np.random.default_rng(8)
    for _ in range(6):
        w = rng.dirichlet(np.ones(3))
        k = int(rng.integers(1, 9))
        a = plain.query(w, k)
        b = built.query(w, k)
        c = reopened.query(w, k)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.ids, c.ids)
        assert a.scores.tobytes() == b.scores.tobytes() == c.scores.tobytes()
