"""Shards: global-id answers, replicas, failure injection, maintenance."""

import numpy as np
import pytest

from repro.cluster import FailingShard, build_shards, make_partitioning
from repro.core import DLPlusIndex
from repro.data import generate
from repro.exceptions import InvalidQueryError, ShardFailedError
from repro.relation import top_k_bruteforce


@pytest.fixture(scope="module")
def relation():
    return generate("IND", 240, 3, seed=17)


@pytest.fixture(scope="module")
def shards(relation):
    part = make_partitioning(relation, 3, "round-robin")
    return build_shards(part, index_class=DLPlusIndex)


W = np.array([0.2, 0.45, 0.35])


def test_topk_answers_in_global_id_space(relation, shards):
    for shard in shards:
        answer = shard.topk(W, 5)
        # Answer ids are drawn from this shard's global ids...
        assert np.all(np.isin(answer.global_ids, shard.global_ids))
        # ...and match a brute-force top-k over the shard's own rows.
        ref_local, ref_scores = top_k_bruteforce(
            shard.relation.matrix, W / W.sum(), 5
        )
        np.testing.assert_array_equal(
            answer.global_ids, shard.global_ids[ref_local]
        )
        np.testing.assert_allclose(answer.scores, ref_scores, atol=1e-12)
        assert answer.cost == answer.counter.total > 0


def test_topk_clamps_k_to_shard_size(shards):
    shard = shards[0]
    answer = shard.topk(W, shard.n + 50)
    assert answer.global_ids.shape[0] == shard.n


def test_cursor_emits_global_ids_in_shard_topk_order(shards):
    shard = shards[1]
    answer = shard.topk(W, 8)
    cursor = shard.cursor(W)
    gids, scores = cursor.fetch(8)
    np.testing.assert_array_equal(gids, answer.global_ids)
    assert scores.tobytes() == answer.scores.tobytes()
    assert cursor.cost > 0 and not cursor.exhausted


def test_replica_round_trip_serves_identical_answers(relation):
    part = make_partitioning(relation, 2, "angular")
    [shard, _] = build_shards(part, index_class=DLPlusIndex, replicate=True)
    assert shard.has_replica
    primary = shard.topk(W, 6)
    replica = shard.topk(W, 6, use_replica=True)
    np.testing.assert_array_equal(primary.global_ids, replica.global_ids)
    assert primary.scores.tobytes() == replica.scores.tobytes()
    assert primary.cost == replica.cost


def test_replica_requested_without_one_raises(shards):
    with pytest.raises(ShardFailedError):
        shards[0].topk(W, 3, use_replica=True)


def test_failing_shard_blocks_primary_but_not_replica(relation):
    part = make_partitioning(relation, 2, "round-robin")
    inner = build_shards(part, index_class=DLPlusIndex, replicate=True)[0]
    shard = FailingShard(inner)
    shard.fail()
    assert shard.failed
    with pytest.raises(ShardFailedError):
        shard.topk(W, 3)
    with pytest.raises(ShardFailedError):
        shard.cursor(W)
    with pytest.raises(ShardFailedError):
        shard.insert(relation.n + 1, np.array([0.5, 0.5, 0.5]))
    # The replica models a separate standby node: still serving.
    answer = shard.topk(W, 3, use_replica=True)
    assert answer.global_ids.shape[0] == 3
    shard.restore()
    assert shard.topk(W, 3).global_ids.shape[0] == 3
    # Non-query attributes delegate through the wrapper.
    assert shard.n == inner.n and shard.has_replica


def test_insert_and_delete_rebuild_and_rehydrate(relation):
    part = make_partitioning(relation, 2, "round-robin")
    shard = build_shards(part, index_class=DLPlusIndex, replicate=True)[0]
    n0 = shard.n
    new_gid = relation.n + 2  # any id above the current max
    values = np.array([0.01, 0.02, 0.01])  # near-origin: lands in the top-k
    shard.insert(new_gid, values)
    assert shard.n == n0 + 1
    assert int(shard.global_ids[-1]) == new_gid
    answer = shard.topk(np.ones(3), 1)
    assert int(answer.global_ids[0]) == new_gid
    # The replica was re-hydrated with the new structure.
    replica = shard.topk(np.ones(3), 1, use_replica=True)
    assert int(replica.global_ids[0]) == new_gid

    shard.delete(new_gid)
    assert shard.n == n0
    assert new_gid not in shard.global_ids
    assert int(shard.topk(np.ones(3), 1).global_ids[0]) != new_gid


def test_insert_below_max_id_and_delete_unowned_raise(shards):
    shard = shards[0]
    with pytest.raises(InvalidQueryError):
        shard.insert(int(shard.global_ids[0]), np.array([0.5, 0.5, 0.5]))
    with pytest.raises(InvalidQueryError):
        shard.delete(10**9)


def test_parallel_build_matches_sequential(relation):
    part = make_partitioning(relation, 3, "hash")
    seq = build_shards(part, index_class=DLPlusIndex)
    par = build_shards(part, index_class=DLPlusIndex, build_workers=3)
    for a, b in zip(seq, par):
        ra, rb = a.topk(W, 10), b.topk(W, 10)
        np.testing.assert_array_equal(ra.global_ids, rb.global_ids)
        assert ra.scores.tobytes() == rb.scores.tobytes()


def test_angular_wedge_builds_at_full_depth():
    """Regression: a narrow angular wedge of IND d=4 data used to trip the
    EDS min-violation fallback — HiGHS reported a ~3e-7 least violation on a
    geometrically guaranteed cover, just above the old 1e-7 ceiling, and the
    full-depth DL+ build raised IndexConstructionError.  The build must
    succeed and still answer exactly."""
    relation = generate("IND", 20_000, 4, seed=7)
    part = make_partitioning(relation, 4, "angular")
    wedge = part.relations[1]  # the wedge that reproduced the failure
    index = DLPlusIndex(wedge).build()  # no max_layers: full depth
    w = np.array([0.3, 0.2, 0.25, 0.25])
    result = index.query(w, 10)
    ref_ids, ref_scores = top_k_bruteforce(wedge.matrix, w, 10)
    np.testing.assert_array_equal(result.ids, ref_ids)
    assert result.scores.tobytes() == ref_scores.tobytes()
