"""Partitioners: disjoint cover, ascending id maps, routing consistency."""

import numpy as np
import pytest

from repro.cluster import make_partitioning
from repro.cluster.partition import (
    PARTITIONERS,
    assign_angular,
    assign_hash,
    assign_round_robin,
    first_angle,
)
from repro.data import generate
from repro.exceptions import InvalidQueryError


@pytest.fixture(scope="module")
def relation():
    return generate("ANT", 300, 3, seed=11)


@pytest.mark.parametrize("method", PARTITIONERS)
@pytest.mark.parametrize("shards", [1, 2, 4, 7])
def test_partitioning_is_a_disjoint_ascending_cover(relation, method, shards):
    part = make_partitioning(relation, shards, method)
    assert part.num_shards == shards
    seen = np.concatenate(part.global_ids)
    # Every global id appears in exactly one shard.
    assert np.array_equal(np.sort(seen), np.arange(relation.n))
    for shard, ids in enumerate(part.global_ids):
        # The merge's tie-break correctness rests on ascending ids.
        assert np.all(np.diff(ids) > 0)
        assert part.relations[shard].n == ids.shape[0]
        # The sub-relation's rows are the global rows, in id order.
        np.testing.assert_array_equal(
            part.relations[shard].matrix, relation.matrix[ids]
        )
        # shard_of / local_of invert the per-shard id lists.
        assert np.all(part.shard_of[ids] == shard)
        np.testing.assert_array_equal(
            part.local_of[ids], np.arange(ids.shape[0])
        )


def test_round_robin_assignment():
    assert assign_round_robin(7, 3).tolist() == [0, 1, 2, 0, 1, 2, 0]


def test_hash_assignment_is_stable_and_spread():
    a = assign_hash(1000, 4)
    b = assign_hash(1000, 4)
    np.testing.assert_array_equal(a, b)  # deterministic across calls
    counts = np.bincount(a, minlength=4)
    assert counts.min() > 0
    # splitmix64 spreads ids roughly evenly (loose bound, not flaky).
    assert counts.max() < 2 * counts.min()
    # Prefix stability: an id's shard never depends on how many ids exist.
    np.testing.assert_array_equal(assign_hash(500, 4), a[:500])


def test_angular_assignment_cuts_equal_count_wedges(relation):
    shard_of, edges = assign_angular(relation.matrix, 4)
    counts = np.bincount(shard_of, minlength=4)
    assert counts.max() - counts.min() <= 1  # equal-count split
    assert edges.shape == (3,)
    assert np.all(np.diff(edges) >= 0)
    # Wedges are contiguous in angle: every shard-s angle <= edge[s].
    angles = first_angle(relation.matrix)
    for shard in range(3):
        assert np.all(angles[shard_of == shard] <= edges[shard] + 1e-15)


def test_angular_d1_degenerates_to_single_wedge_angles():
    matrix = np.linspace(0.1, 0.9, 8)[:, None]
    assert np.all(first_angle(matrix) == 0.0)


@pytest.mark.parametrize("method", PARTITIONERS)
def test_route_matches_initial_assignment(relation, method):
    """route() on an existing id/tuple returns the shard that owns it."""
    part = make_partitioning(relation, 4, method)
    for gid in (0, 1, 57, relation.n - 1):
        routed = part.route(gid, relation.matrix[gid])
        assert routed == int(part.shard_of[gid])


def test_invalid_partitionings(relation):
    with pytest.raises(InvalidQueryError):
        make_partitioning(relation, 4, "zorro")
    with pytest.raises(InvalidQueryError):
        make_partitioning(relation, 0, "round-robin")
    with pytest.raises(InvalidQueryError):
        make_partitioning(relation, relation.n + 1, "round-robin")
