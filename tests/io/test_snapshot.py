"""The mmap snapshot format: round-trips, corruption, cross-process sharing."""

import json
import os
import pickle
import shutil
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.core.query import process_top_k, process_top_k_reference
from repro.data import generate, toy_hotels
from repro.exceptions import SerializationError
from repro.io import open_snapshot, save_snapshot, snapshot_nbytes
from repro.io.snapshot import DATA_NAME, MANIFEST_NAME, SnapshotIndex, read_manifest
from repro.stats import AccessCounter


def assert_same_answers(structure_a, structure_b, d, *, queries=8, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(queries):
        w = rng.dirichlet(np.ones(d))
        k = int(rng.integers(1, 21))
        ids_a, scores_a = process_top_k_reference(structure_a, w, k, AccessCounter())
        ids_b, scores_b = process_top_k(structure_b, w, k, AccessCounter())
        ids_p, scores_p = process_top_k(
            structure_b, w, k, AccessCounter(), prune=True
        )
        assert np.array_equal(ids_a, ids_b)
        assert scores_a.tobytes() == scores_b.tobytes()
        assert np.array_equal(ids_a, ids_p)
        assert scores_a.tobytes() == scores_p.tobytes()


@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex], ids=["DL", "DL+"])
def test_snapshot_roundtrip_bitwise(index_class, tmp_path):
    relation = generate("IND", 300, 3, seed=4)
    index = index_class(relation).build()
    snap = open_snapshot(save_snapshot(index, tmp_path / "snap"))
    assert isinstance(snap, SnapshotIndex)
    assert snap.algorithm == index.name
    assert snap.name == f"snapshot[{index.name}]"
    np.testing.assert_array_equal(snap.relation.matrix, relation.matrix)
    assert snap.relation.schema.attributes == relation.schema.attributes
    assert_same_answers(index.structure, snap.structure, 3)


def test_snapshot_roundtrip_2d_weight_range_selector(tmp_path):
    """The 2-D chain selector is rebuilt from its chain arrays."""
    index = DLPlusIndex(toy_hotels()).build()
    snap = open_snapshot(save_snapshot(index, tmp_path / "snap"))
    assert snap.structure.seed_selector is not None
    assert_same_answers(index.structure, snap.structure, 2)
    # the reconstructed selector picks the same seeds
    rng = np.random.default_rng(1)
    for _ in range(6):
        w = rng.dirichlet(np.ones(2))
        np.testing.assert_array_equal(
            index.structure.seed_selector(w), snap.structure.seed_selector(w)
        )


def test_snapshot_arrays_are_readonly_mmap_views(tmp_path):
    index = DLIndex(generate("IND", 120, 2, seed=6)).build()
    snap = open_snapshot(save_snapshot(index, tmp_path / "snap"))
    assert not snap.structure.values.flags.writeable
    assert not snap.relation.matrix.flags.writeable
    with pytest.raises((ValueError, OSError)):
        snap.structure.values[0, 0] = 0.5


def test_snapshot_mmap_false_copies(tmp_path):
    index = DLIndex(generate("ANT", 120, 2, seed=7)).build()
    root = save_snapshot(index, tmp_path / "snap")
    snap = open_snapshot(root, mmap=False)
    assert_same_answers(index.structure, snap.structure, 2)


def test_snapshot_pickles_by_path(tmp_path):
    """Pickling ships the path; unpickling re-opens the snapshot."""
    index = DLPlusIndex(generate("IND", 200, 3, seed=8)).build()
    snap = open_snapshot(save_snapshot(index, tmp_path / "snap"))
    clone = pickle.loads(pickle.dumps(snap))
    assert isinstance(clone, SnapshotIndex)
    assert clone.path == snap.path
    assert_same_answers(index.structure, clone.structure, 3)


def test_save_unbuilt_index_builds_first(tmp_path):
    index = DLIndex(generate("IND", 80, 2, seed=3))
    save_snapshot(index, tmp_path / "snap")
    assert index._built


def test_resnapshot_over_own_directory_is_noop(tmp_path):
    """Re-snapshotting an open snapshot onto itself must not truncate the
    data file its arrays are mapped from."""
    index = DLIndex(generate("IND", 100, 2, seed=5)).build()
    root = save_snapshot(index, tmp_path / "snap")
    snap = open_snapshot(root)
    before = (root / DATA_NAME).stat().st_size
    assert save_snapshot(snap, root) == root
    assert (root / DATA_NAME).stat().st_size == before
    assert_same_answers(index.structure, snap.structure, 2)


def test_snapshot_nbytes_and_manifest(tmp_path):
    index = DLIndex(generate("IND", 100, 2, seed=5)).build()
    root = save_snapshot(index, tmp_path / "snap")
    manifest = read_manifest(root)
    assert manifest["n_real"] == 100
    assert manifest["d"] == 2
    on_disk = (root / MANIFEST_NAME).stat().st_size + (root / DATA_NAME).stat().st_size
    assert snapshot_nbytes(root) == on_disk
    # every array starts 64-byte aligned inside the data file
    for entry in manifest["arrays"].values():
        assert entry["offset"] % 64 == 0


def test_snapshot_rejects_index_without_structure(tmp_path):
    class Fake:
        _built = True
        structure = None

    with pytest.raises(SerializationError):
        save_snapshot(Fake(), tmp_path / "snap")


# --------------------------------------------------------------------- #
# Corruption taxonomy: every broken snapshot raises SerializationError,
# never SIGBUS / silent garbage.
# --------------------------------------------------------------------- #


@pytest.fixture()
def snapshot_dir(tmp_path):
    index = DLPlusIndex(generate("IND", 150, 3, seed=12)).build()
    return save_snapshot(index, tmp_path / "snap")


def _copy(snapshot_dir, tmp_path, name):
    clone = tmp_path / name
    shutil.copytree(snapshot_dir, clone)
    return clone


def _edit_manifest(root, mutate):
    manifest = json.loads((root / MANIFEST_NAME).read_text())
    mutate(manifest)
    (root / MANIFEST_NAME).write_text(json.dumps(manifest))


def test_open_missing_directory(tmp_path):
    with pytest.raises(SerializationError):
        open_snapshot(tmp_path / "nope")


def test_open_missing_manifest(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    (root / MANIFEST_NAME).unlink()
    with pytest.raises(SerializationError):
        open_snapshot(root)


def test_open_corrupt_manifest_json(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    (root / MANIFEST_NAME).write_text("{truncated")
    with pytest.raises(SerializationError):
        open_snapshot(root)


def test_open_wrong_magic(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    _edit_manifest(root, lambda m: m.update(magic="other-format"))
    with pytest.raises(SerializationError):
        open_snapshot(root)


def test_open_future_version(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    _edit_manifest(root, lambda m: m.update(version=999))
    with pytest.raises(SerializationError):
        open_snapshot(root)


def test_open_missing_data_file(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    (root / DATA_NAME).unlink()
    with pytest.raises(SerializationError):
        open_snapshot(root)


def test_open_truncated_data_file(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    payload = (root / DATA_NAME).read_bytes()
    (root / DATA_NAME).write_bytes(payload[: len(payload) // 3])
    with pytest.raises(SerializationError, match="outside"):
        open_snapshot(root)


def test_open_missing_array_entry(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    _edit_manifest(root, lambda m: m["arrays"].pop("forall_indptr"))
    with pytest.raises(SerializationError, match="missing array"):
        open_snapshot(root)


def test_open_inconsistent_dtype_entry(snapshot_dir, tmp_path):
    """A dtype that disagrees with the recorded extent is caught before
    any view exists."""
    root = _copy(snapshot_dir, tmp_path, "c")
    _edit_manifest(root, lambda m: m["arrays"]["values"].update(dtype="<f4"))
    with pytest.raises(SerializationError):
        open_snapshot(root)


def test_open_bogus_dtype_string(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    _edit_manifest(root, lambda m: m["arrays"]["values"].update(dtype="not-a-dtype"))
    with pytest.raises(SerializationError, match="malformed"):
        open_snapshot(root)


def test_open_node_count_mismatch(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    _edit_manifest(root, lambda m: m.update(n_nodes=m["n_nodes"] + 1))
    with pytest.raises(SerializationError, match="nodes"):
        open_snapshot(root)


def test_open_unknown_seed_selector(snapshot_dir, tmp_path):
    root = _copy(snapshot_dir, tmp_path, "c")
    _edit_manifest(root, lambda m: m.update(seed_selector={"type": "quantum"}))
    with pytest.raises(SerializationError, match="seed selector"):
        open_snapshot(root)


def test_partial_snapshot_without_manifest_rejected(snapshot_dir, tmp_path):
    """save_snapshot writes the manifest last; a directory with only a data
    file (a crashed save) must be rejected, not half-opened."""
    root = tmp_path / "partial"
    root.mkdir()
    shutil.copy(snapshot_dir / DATA_NAME, root / DATA_NAME)
    with pytest.raises(SerializationError):
        open_snapshot(root)


# --------------------------------------------------------------------- #
# Cross-process: a second interpreter opens the snapshot and answers the
# query grid byte-identically with the exact platform dtypes.
# --------------------------------------------------------------------- #

_CHILD_SOURCE = """
import json, sys
import numpy as np
from repro.io import open_snapshot
from repro.core.query import process_top_k
from repro.stats import AccessCounter

snap = open_snapshot(sys.argv[1])
d = snap.relation.d
rng = np.random.default_rng(int(sys.argv[2]))
cells = []
for _ in range(int(sys.argv[3])):
    w = rng.dirichlet(np.ones(d))
    k = int(rng.integers(1, 21))
    ids, scores = process_top_k(snap.structure, w, k, AccessCounter(), prune=True)
    cells.append({
        "ids": [int(i) for i in ids],
        "score_hex": scores.tobytes().hex(),
        "ids_dtype": ids.dtype.str,
        "scores_dtype": scores.dtype.str,
    })
print(json.dumps(cells))
"""


def test_second_process_answers_bitwise(tmp_path):
    index = DLPlusIndex(generate("ANT", 250, 3, seed=21)).build()
    root = save_snapshot(index, tmp_path / "snap")

    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SOURCE, str(root), "21", "10"],
        capture_output=True,
        text=True,
        check=True,
        env=env,
    )
    child_cells = json.loads(proc.stdout)

    rng = np.random.default_rng(21)
    for cell in child_cells:
        w = rng.dirichlet(np.ones(3))
        k = int(rng.integers(1, 21))
        ids, scores = process_top_k_reference(
            index.structure, w, k, AccessCounter()
        )
        assert cell["ids"] == [int(i) for i in ids]
        assert cell["score_hex"] == scores.tobytes().hex()
        assert cell["ids_dtype"] == np.dtype(np.intp).str
        assert cell["scores_dtype"] == np.dtype(np.float64).str


def test_manifest_carries_v2_and_sublayer_blobs(snapshot_dir):
    """Fresh snapshots are format v2: versioned manifest plus the
    hierarchical sublayer bound blobs next to the block bound blobs."""
    from repro.io.snapshot import SNAPSHOT_VERSION

    manifest = read_manifest(snapshot_dir)
    assert manifest["version"] == SNAPSHOT_VERSION == 2
    for name in (
        "bound_block_of",
        "bound_block_mins",
        "bound_sublayer_of",
        "bound_sublayer_mins",
    ):
        assert name in manifest["arrays"], name


def test_v2_snapshot_sublayer_table_is_mapped_not_recomputed(snapshot_dir):
    """Opening a v2 snapshot hydrates the sublayer table from the mapped
    blobs — identical to a freeze-time computation on the same arrays."""
    from repro.core.structure import compute_sublayer_bounds

    snap = open_snapshot(snapshot_dir)
    structure = snap.structure
    assert structure._sublayer_bounds is not None
    sub_of, sub_mins = structure.sublayer_bound_table()
    expect_of, expect_mins = compute_sublayer_bounds(
        np.asarray(structure.values),
        np.asarray(structure.coarse_levels),
        np.asarray(structure.fine_levels),
    )
    np.testing.assert_array_equal(np.asarray(sub_of), expect_of)
    assert np.asarray(sub_mins).tobytes() == expect_mins.tobytes()


def test_v1_snapshot_opens_bitwise_identically(snapshot_dir, tmp_path):
    """A v1-era snapshot (no sublayer blobs, version 1 manifest) still
    opens cleanly; answers — pruned and unpruned — stay bitwise identical
    to a v2 open of the same index, with the sublayer table recomputed
    lazily from the mapped arrays."""
    v1_root = _copy(snapshot_dir, tmp_path, "v1")

    def downgrade(manifest):
        manifest["version"] = 1
        for name in ("bound_sublayer_of", "bound_sublayer_mins"):
            del manifest["arrays"][name]

    _edit_manifest(v1_root, downgrade)
    v1 = open_snapshot(v1_root)
    v2 = open_snapshot(snapshot_dir)
    assert v1.structure._sublayer_bounds is None  # lazy for v1
    rng = np.random.default_rng(77)
    for _ in range(10):
        w = rng.dirichlet(np.ones(3))
        k = int(rng.integers(1, 64))
        for prune in (False, True):
            c1, c2 = AccessCounter(), AccessCounter()
            ids_1, scores_1 = process_top_k(
                v1.structure, w, k, c1, prune=prune
            )
            ids_2, scores_2 = process_top_k(
                v2.structure, w, k, c2, prune=prune
            )
            assert np.array_equal(ids_1, ids_2)
            assert scores_1.tobytes() == scores_2.tobytes()
            assert (c1.real, c1.pseudo) == (c2.real, c2.pseudo)
