"""Relation and index persistence."""

import numpy as np
import pytest

from repro.baselines import DGPlusIndex, HLPlusIndex
from repro.core import DLIndex, DLPlusIndex
from repro.data import generate, toy_hotels
from repro.exceptions import SerializationError
from repro.io import load_index, load_relation, save_index, save_relation


def test_relation_roundtrip(tmp_path):
    relation = generate("ANT", 100, 3, seed=1)
    path = tmp_path / "rel.npz"
    save_relation(relation, path)
    loaded = load_relation(path)
    np.testing.assert_array_equal(loaded.matrix, relation.matrix)
    assert loaded.schema.attributes == relation.schema.attributes


def test_relation_bad_file(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"not an npz")
    with pytest.raises(SerializationError):
        load_relation(path)


@pytest.mark.parametrize("cls", [DLIndex, DLPlusIndex, DGPlusIndex, HLPlusIndex])
def test_index_roundtrip_same_answers(cls, tmp_path, rng):
    relation = generate("IND", 150, 3, seed=2)
    index = cls(relation).build()
    path = tmp_path / "index.pkl"
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.name == index.name
    for _ in range(3):
        w = rng.dirichlet(np.ones(3))
        a = index.query(w, 5)
        b = loaded.query(w, 5)
        np.testing.assert_array_equal(a.ids, b.ids)
        assert a.cost == b.cost


def test_index_roundtrip_2d_chain_zero_layer(tmp_path):
    """The 2-D DL+ seed selector must survive pickling."""
    index = DLPlusIndex(toy_hotels()).build()
    path = tmp_path / "chain.pkl"
    save_index(index, path)
    loaded = load_index(path)
    result = loaded.query(np.array([0.5, 0.5]), 1)
    assert result.cost == 1


def test_save_unbuilt_index_builds_first(tmp_path):
    index = DLIndex(generate("IND", 50, 2, seed=3))
    save_index(index, tmp_path / "i.pkl")
    assert index._built


def test_index_bad_file(tmp_path):
    path = tmp_path / "junk.pkl"
    path.write_bytes(b"garbage")
    with pytest.raises(SerializationError):
        load_index(path)


def test_index_wrong_payload(tmp_path):
    import pickle

    path = tmp_path / "wrong.pkl"
    path.write_bytes(pickle.dumps({"magic": "other"}))
    with pytest.raises(SerializationError, match="not a repro index"):
        load_index(path)
