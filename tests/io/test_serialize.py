"""Relation and index persistence."""

import numpy as np
import pytest

from repro.baselines import DGPlusIndex, HLPlusIndex
from repro.core import DLIndex, DLPlusIndex
from repro.data import generate, toy_hotels
from repro.exceptions import SerializationError
from repro.io import load_index, load_relation, save_index, save_relation


def test_relation_roundtrip(tmp_path):
    relation = generate("ANT", 100, 3, seed=1)
    path = tmp_path / "rel.npz"
    save_relation(relation, path)
    loaded = load_relation(path)
    np.testing.assert_array_equal(loaded.matrix, relation.matrix)
    assert loaded.schema.attributes == relation.schema.attributes


def test_relation_bad_file(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"not an npz")
    with pytest.raises(SerializationError):
        load_relation(path)


@pytest.mark.parametrize("cls", [DLIndex, DLPlusIndex, DGPlusIndex, HLPlusIndex])
def test_index_roundtrip_same_answers(cls, tmp_path, rng):
    relation = generate("IND", 150, 3, seed=2)
    index = cls(relation).build()
    path = tmp_path / "index.pkl"
    save_index(index, path)
    loaded = load_index(path)
    assert loaded.name == index.name
    for _ in range(3):
        w = rng.dirichlet(np.ones(3))
        a = index.query(w, 5)
        b = loaded.query(w, 5)
        np.testing.assert_array_equal(a.ids, b.ids)
        assert a.cost == b.cost


def test_index_roundtrip_2d_chain_zero_layer(tmp_path):
    """The 2-D DL+ seed selector must survive pickling."""
    index = DLPlusIndex(toy_hotels()).build()
    path = tmp_path / "chain.pkl"
    save_index(index, path)
    loaded = load_index(path)
    result = loaded.query(np.array([0.5, 0.5]), 1)
    assert result.cost == 1


def test_save_unbuilt_index_builds_first(tmp_path):
    index = DLIndex(generate("IND", 50, 2, seed=3))
    save_index(index, tmp_path / "i.pkl")
    assert index._built


def test_index_bad_file(tmp_path):
    path = tmp_path / "junk.pkl"
    path.write_bytes(b"garbage")
    with pytest.raises(SerializationError):
        load_index(path)


def test_index_wrong_payload(tmp_path):
    import pickle

    path = tmp_path / "wrong.pkl"
    path.write_bytes(pickle.dumps({"magic": "other"}))
    with pytest.raises(SerializationError, match="not a repro index"):
        load_index(path)


@pytest.mark.parametrize("cls", [DLIndex, DLPlusIndex])
def test_csr_structure_roundtrip_exact(cls, tmp_path, rng):
    """Regression: save/load must preserve every CSR field of the frozen
    structure byte-for-byte, with exact dtypes — the vectorized kernel's
    fancy indexing silently degrades (or breaks on 32-bit indptr math) if a
    round-trip ever widens/narrows them."""
    relation = generate("ANT", 200, 3, seed=8)
    index = cls(relation).build()
    structure = index.structure
    path = tmp_path / "csr.pkl"
    save_index(index, path)
    loaded = load_index(path)
    restored = loaded.structure

    for name in (
        "forall_indptr",
        "forall_indices",
        "exists_indptr",
        "exists_indices",
    ):
        original = getattr(structure, name)
        copy = getattr(restored, name)
        assert copy.dtype == np.intp, f"{name} lost its np.intp dtype"
        assert copy.tobytes() == original.tobytes(), f"{name} changed bytes"
    for name in ("coarse_levels", "fine_levels"):
        original = getattr(structure, name)
        copy = getattr(restored, name)
        assert copy.dtype == original.dtype == np.int64
        np.testing.assert_array_equal(copy, original)
    # The layer-level views over those arrays still agree per node.
    for node in (0, 1, structure.n_real - 1):
        assert restored.coarse_of.get(node) == structure.coarse_of.get(node)
        assert restored.fine_of.get(node) == structure.fine_of.get(node)

    # The fused gate-state template is dropped by __getstate__ and must be
    # rebuilt identically (same dtype, same values) on first use.
    template = structure.gate_state_template()
    rebuilt = restored.gate_state_template()
    assert restored._gate_state is not None  # was rebuilt, not unpickled
    assert rebuilt.dtype == template.dtype
    np.testing.assert_array_equal(rebuilt, template)

    # And the loaded index answers bitwise-identically.
    for _ in range(3):
        w = rng.dirichlet(np.ones(3))
        a = index.query(w, 12)
        b = loaded.query(w, 12)
        np.testing.assert_array_equal(a.ids, b.ids)
        assert a.scores.tobytes() == b.scores.tobytes()
        assert (a.counter.real, a.counter.pseudo) == (b.counter.real, b.counter.pseudo)


def test_index_bytes_roundtrip_matches_file_roundtrip(rng):
    """index_to_bytes/index_from_bytes (the replica-hydration path) are the
    same payload save_index/load_index write to disk."""
    from repro.io import index_from_bytes, index_to_bytes

    relation = generate("IND", 120, 3, seed=6)
    index = DLPlusIndex(relation).build()
    clone = index_from_bytes(index_to_bytes(index))
    w = rng.dirichlet(np.ones(3))
    a, b = index.query(w, 7), clone.query(w, 7)
    np.testing.assert_array_equal(a.ids, b.ids)
    assert a.scores.tobytes() == b.scores.tobytes()
    with pytest.raises(SerializationError):
        index_from_bytes(b"garbage")


def test_relation_roundtrip_without_suffix(tmp_path):
    """Regression: np.savez_compressed silently appends ``.npz``, so a
    suffix-less path used to save to ``rel.npz`` but load from ``rel`` and
    raise.  Both sides now normalize to the same on-disk name."""
    relation = generate("COR", 80, 3, seed=4)
    path = tmp_path / "rel"  # no .npz suffix
    save_relation(relation, path)
    assert not path.exists()
    assert path.with_name("rel.npz").exists()
    loaded = load_relation(path)
    np.testing.assert_array_equal(loaded.matrix, relation.matrix)
    assert loaded.schema.attributes == relation.schema.attributes


def test_relation_roundtrip_foreign_suffix(tmp_path):
    """A non-.npz suffix gets the same normalization (save and load agree)."""
    relation = generate("IND", 60, 2, seed=5)
    path = tmp_path / "rel.dat"
    save_relation(relation, path)
    loaded = load_relation(path)
    np.testing.assert_array_equal(loaded.matrix, relation.matrix)


@pytest.mark.parametrize(
    "corrupt",
    [
        b"",  # empty file
        b"\x80",  # lone pickle protocol opcode, then EOF
        b"not a pickle at all",
        b"\x80\x04\x95\xff\xff\xff\xff",  # frame header promising 4GiB
    ],
    ids=["empty", "truncated-opcode", "garbage", "bogus-frame"],
)
def test_index_from_bytes_corrupt_payloads(corrupt):
    """Every flavor of corruption maps to SerializationError — the except
    clause must cover EOFError/ValueError/MemoryError etc., not just
    UnpicklingError."""
    from repro.io import index_from_bytes

    with pytest.raises(SerializationError):
        index_from_bytes(corrupt)


def test_index_from_bytes_truncated_valid_payload():
    """A prefix of a real payload (a cut-short download) must also raise."""
    from repro.io import index_from_bytes, index_to_bytes

    payload = index_to_bytes(DLIndex(generate("IND", 60, 2, seed=7)).build())
    for cut in (1, len(payload) // 2, len(payload) - 1):
        with pytest.raises(SerializationError):
            index_from_bytes(payload[:cut])


def test_index_from_bytes_non_dict_payload():
    import pickle

    from repro.io import index_from_bytes

    with pytest.raises(SerializationError, match="not a repro index"):
        index_from_bytes(pickle.dumps([1, 2, 3]))


def test_index_from_bytes_magic_without_index():
    import pickle

    from repro.io import index_from_bytes

    payload = pickle.dumps({"magic": "repro-index-v1", "index": 42})
    with pytest.raises(SerializationError, match="TopKIndex"):
        index_from_bytes(payload)
