"""Block storage, buffer pool, and I/O cost replay."""

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.data import generate
from repro.exceptions import ReproError
from repro.storage import (
    BlockStore,
    BufferPool,
    IOCostModel,
    layer_clustered_placement,
    row_order_placement,
)


def test_row_order_placement():
    np.testing.assert_array_equal(row_order_placement(4), [0, 1, 2, 3])


def test_layer_clustered_placement_roundtrip():
    order = layer_clustered_placement([[2, 0], [3, 1]], 4)
    np.testing.assert_array_equal(order, [2, 0, 3, 1])


def test_layer_clustered_placement_validation():
    with pytest.raises(ReproError):
        layer_clustered_placement([[0, 1]], 3)  # missing tuple 2
    with pytest.raises(ReproError):
        layer_clustered_placement([[0, 1], [1, 2]], 3)  # duplicate


def test_block_store_pages():
    store = BlockStore(np.array([3, 1, 0, 2]), page_capacity=2)
    assert store.num_pages == 2
    assert store.page_of(3) == 0 and store.page_of(1) == 0
    assert store.page_of(0) == 1 and store.page_of(2) == 1
    np.testing.assert_array_equal(store.pages_of([3, 0, 3]), [0, 1, 0])


def test_block_store_validation():
    with pytest.raises(ReproError):
        BlockStore(np.array([0]), page_capacity=0)


def test_buffer_pool_lru():
    pool = BufferPool(2)
    assert not pool.access(1)  # miss
    assert not pool.access(2)  # miss
    assert pool.access(1)      # hit
    assert not pool.access(3)  # miss, evicts 2 (LRU)
    assert not pool.access(2)  # miss again
    assert pool.hits == 1
    assert pool.misses == 4
    assert pool.evictions == 2
    assert pool.resident == 2


def test_buffer_pool_reset_and_clear():
    pool = BufferPool(4)
    pool.access(1)
    pool.reset_counters()
    assert pool.misses == 0 and pool.resident == 1
    pool.clear()
    assert pool.resident == 0


def test_buffer_pool_validation():
    with pytest.raises(ReproError):
        BufferPool(0)


@pytest.fixture(scope="module")
def indexed_relation():
    relation = generate("ANT", 600, 3, seed=17)
    index = DLIndex(relation).build()
    return relation, index


def test_layer_clustering_beats_row_order(indexed_relation):
    """The paper's §VI-A remark: layer-clustered pages fault less."""
    relation, index = indexed_relation
    sublayer_sequence = [
        sublayer
        for sublayers in index.blueprint.fine_layers
        for sublayer in sublayers
    ]
    clustered = BlockStore(
        layer_clustered_placement(sublayer_sequence, relation.n), page_capacity=32
    )
    heap_file = BlockStore(row_order_placement(relation.n), page_capacity=32)

    rng = np.random.default_rng(5)
    faults_clustered = faults_heap = 0
    for _ in range(10):
        raw = rng.dirichlet(np.ones(3))
        w = np.clip(raw, 1e-6, None)
        faults_clustered += IOCostModel(index, clustered).run_query(w, 10).page_faults
        faults_heap += IOCostModel(index, heap_file).run_query(w, 10).page_faults
    assert faults_clustered < faults_heap


def test_io_report_fields(indexed_relation):
    relation, index = indexed_relation
    store = BlockStore(row_order_placement(relation.n), page_capacity=16)
    report = IOCostModel(index, store).run_query(np.ones(3) / 3, 5)
    assert report.tuples_accessed >= 5
    assert 1 <= report.pages_touched <= report.tuples_accessed
    assert report.page_faults >= report.pages_touched - 16
    assert 0 < report.fault_rate <= 1.0


def test_warm_buffer_reduces_faults(indexed_relation):
    relation, index = indexed_relation
    store = BlockStore(row_order_placement(relation.n), page_capacity=16)
    model = IOCostModel(index, store, buffer_capacity=64)
    w = np.ones(3) / 3
    cold = model.run_query(w, 10, cold=True)
    warm = model.run_query(w, 10, cold=False)
    assert warm.page_faults <= cold.page_faults
    assert warm.buffer_hits >= cold.buffer_hits


def test_trace_matches_cost(indexed_relation):
    """The recorded trace length equals the reported real-access count."""
    relation, index = indexed_relation
    store = BlockStore(row_order_placement(relation.n), page_capacity=16)
    model = IOCostModel(index, store)
    w = np.ones(3) / 3
    report = model.run_query(w, 10)
    assert report.tuples_accessed == index.query(w, 10).counter.real


def test_trace_excludes_pseudo_tuples():
    """Zero-layer pseudo accesses never enter the I/O trace (not on disk)."""
    relation = generate("ANT", 400, 3, seed=19)
    index = DLPlusIndex(relation, zero_layer="clusters").build()
    store = BlockStore(row_order_placement(relation.n), page_capacity=16)
    model = IOCostModel(index, store)
    trace = model._trace(np.ones(3) / 3, 10)
    assert all(0 <= t < relation.n for t in trace)
    result = index.query(np.ones(3) / 3, 10)
    assert len(trace) == result.counter.real


def test_fallback_trace_for_bulk_indexes():
    from repro.baselines import OnionIndex

    relation = generate("IND", 200, 2, seed=3)
    index = OnionIndex(relation).build()
    store = BlockStore(row_order_placement(relation.n), page_capacity=16)
    report = IOCostModel(index, store).run_query(np.array([0.5, 0.5]), 5)
    assert report.tuples_accessed == 5  # falls back to result ids
