"""Slotted pages, the file-backed heap, and disk-resident execution."""

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.data import generate
from repro.exceptions import ReproError
from repro.relation import top_k_bruteforce
from repro.storage import (
    DiskResidentIndex,
    HeapFile,
    SlottedPage,
    layer_clustered_placement,
)
from repro.storage.pages import DEFAULT_PAGE_SIZE


# --------------------------------------------------------------------- #
# SlottedPage
# --------------------------------------------------------------------- #

def test_page_roundtrip(rng):
    page = SlottedPage(d=3)
    rows = rng.random((10, 3))
    for i, row in enumerate(rows):
        page.append(100 + i, row)
    restored = SlottedPage.from_bytes(page.to_bytes())
    assert restored.count == 10
    assert restored.tuple_ids == page.tuple_ids
    np.testing.assert_allclose(np.vstack(restored.values), rows)


def test_page_capacity_and_full():
    page = SlottedPage(d=2, page_size=256)
    capacity = page.capacity
    assert capacity == (256 - 8) // (8 + 16)
    for i in range(capacity):
        page.append(i, np.array([0.1, 0.2]))
    assert page.full
    with pytest.raises(ReproError, match="full"):
        page.append(99, np.array([0.1, 0.2]))


def test_page_lookup():
    page = SlottedPage(d=2)
    page.append(7, np.array([0.3, 0.4]))
    np.testing.assert_allclose(page.lookup(7), [0.3, 0.4])
    assert page.lookup(8) is None


def test_page_serialized_size_is_exact():
    page = SlottedPage(d=4)
    assert len(page.to_bytes()) == DEFAULT_PAGE_SIZE


def test_page_validation():
    with pytest.raises(ReproError):
        SlottedPage(d=0)
    with pytest.raises(ReproError):
        SlottedPage(d=100, page_size=64)
    page = SlottedPage(d=2)
    with pytest.raises(ReproError):
        page.append(0, np.array([0.1, 0.2, 0.3]))
    with pytest.raises(ReproError, match="bad magic"):
        SlottedPage.from_bytes(b"\x00" * DEFAULT_PAGE_SIZE)
    with pytest.raises(ReproError, match="bytes"):
        SlottedPage.from_bytes(b"\x00" * 10)


# --------------------------------------------------------------------- #
# HeapFile
# --------------------------------------------------------------------- #

@pytest.fixture()
def heap_setup(tmp_path, rng):
    relation = generate("IND", 300, 3, seed=7)
    heap = HeapFile.write(
        relation, tmp_path / "rel.heap", page_size=512, buffer_capacity=4
    )
    return relation, heap


def test_heapfile_reads_back_every_tuple(heap_setup):
    relation, heap = heap_setup
    for tuple_id in range(0, relation.n, 17):
        np.testing.assert_allclose(
            heap.read_tuple(tuple_id), relation.tuple(tuple_id)
        )


def test_heapfile_counts_real_reads(heap_setup):
    relation, heap = heap_setup
    heap.reset_io_counters()
    heap.read_tuple(0)
    assert heap.file_reads == 1
    heap.read_tuple(0)  # same page: buffer hit
    assert heap.file_reads == 1
    assert heap.buffer.hits == 1


def test_heapfile_file_exists_with_expected_size(heap_setup, tmp_path):
    relation, heap = heap_setup
    assert heap.path.stat().st_size == heap.num_pages * 512


def test_heapfile_unknown_tuple(heap_setup):
    _, heap = heap_setup
    with pytest.raises(ReproError, match="not in this heap"):
        heap.read_tuple(10_000)


def test_heapfile_bad_storage_order(tmp_path):
    relation = generate("IND", 10, 2, seed=1)
    with pytest.raises(ReproError, match="storage order"):
        HeapFile.write(relation, tmp_path / "x.heap", np.array([0, 1]))


# --------------------------------------------------------------------- #
# Disk-resident execution
# --------------------------------------------------------------------- #

def test_disk_resident_query_matches_memory(tmp_path, rng):
    relation = generate("ANT", 400, 3, seed=9)
    index = DLIndex(relation).build()
    heap = HeapFile.write(relation, tmp_path / "r.heap", buffer_capacity=8)
    disk = DiskResidentIndex(index, heap)
    for trial in range(5):
        w = np.clip(rng.dirichlet(np.ones(3)), 1e-6, None)
        result = disk.query(w, 10)
        _, ref = top_k_bruteforce(relation.matrix, w / w.sum(), 10)
        np.testing.assert_allclose(result.scores, ref, atol=1e-12)
        # Every scored tuple came through the buffer: reads + hits add up.
        assert result.file_reads + result.buffer_hits >= result.tuples_evaluated
        if trial == 0:
            assert result.file_reads >= 1  # cold buffer must touch the file
        assert result.tuples_evaluated >= 10


def test_clustered_heap_needs_fewer_reads(tmp_path, rng):
    relation = generate("ANT", 800, 3, seed=10)
    index = DLIndex(relation).build()
    sequence = [
        sublayer
        for sublayers in index.blueprint.fine_layers
        for sublayer in sublayers
    ]
    heap_row = HeapFile.write(
        relation, tmp_path / "row.heap", page_size=512, buffer_capacity=4
    )
    heap_clustered = HeapFile.write(
        relation,
        tmp_path / "clu.heap",
        layer_clustered_placement(sequence, relation.n),
        page_size=512,
        buffer_capacity=4,
    )
    reads_row = reads_clustered = 0
    for _ in range(8):
        w = np.clip(rng.dirichlet(np.ones(3)), 1e-6, None)
        reads_row += DiskResidentIndex(index, heap_row).query(w, 10).file_reads
        reads_clustered += (
            DiskResidentIndex(index, heap_clustered).query(w, 10).file_reads
        )
    assert reads_clustered < reads_row


def test_disk_resident_rejects_mismatches(tmp_path):
    relation = generate("IND", 50, 2, seed=2)
    other = generate("IND", 50, 3, seed=2)
    index = DLIndex(relation).build()
    heap3 = HeapFile.write(other, tmp_path / "o.heap")
    with pytest.raises(ReproError, match="dimensionality"):
        DiskResidentIndex(index, heap3)
    from repro.baselines import ScanIndex

    scan = ScanIndex(relation).build()
    heap2 = HeapFile.write(relation, tmp_path / "r.heap")
    with pytest.raises(ReproError, match="gated layer"):
        DiskResidentIndex(scan, heap2)


def test_disk_resident_with_zero_layer(tmp_path):
    relation = generate("IND", 300, 3, seed=11)
    index = DLPlusIndex(relation).build()
    heap = HeapFile.write(relation, tmp_path / "z.heap")
    result = DiskResidentIndex(index, heap).query(np.ones(3) / 3, 5)
    _, ref = top_k_bruteforce(relation.matrix, np.ones(3) / 3, 5)
    np.testing.assert_allclose(result.scores, ref, atol=1e-12)
