"""Weight validation, scoring, and the brute-force top-k reference."""

import numpy as np
import pytest

from repro.exceptions import InvalidQueryError, InvalidWeightError
from repro.relation import (
    LinearScore,
    normalize_weights,
    random_weight_vector,
    top_k_bruteforce,
)


def test_normalize_weights_sums_to_one():
    w = normalize_weights([2.0, 2.0])
    np.testing.assert_allclose(w, [0.5, 0.5])


def test_normalize_weights_rejects_nonpositive():
    with pytest.raises(InvalidWeightError):
        normalize_weights([0.5, 0.0])
    with pytest.raises(InvalidWeightError):
        normalize_weights([0.5, -0.1])


def test_normalize_weights_rejects_bad_shapes():
    with pytest.raises(InvalidWeightError):
        normalize_weights([[0.5, 0.5]])
    with pytest.raises(InvalidWeightError):
        normalize_weights([0.5, 0.5], d=3)
    with pytest.raises(InvalidWeightError):
        normalize_weights([])
    with pytest.raises(InvalidWeightError):
        normalize_weights([np.nan, 0.5])


def test_random_weight_vector_on_simplex(rng):
    for d in (2, 3, 5):
        w = random_weight_vector(d, rng)
        assert w.shape == (d,)
        assert np.all(w > 0)
        assert w.sum() == pytest.approx(1.0)


def test_linear_score_single_and_batch():
    score = LinearScore([0.5, 0.5])
    assert score(np.array([0.2, 0.4])) == pytest.approx(0.3)
    np.testing.assert_allclose(
        score(np.array([[0.2, 0.4], [1.0, 0.0]])), [0.3, 0.5]
    )
    assert score.d == 2


def test_bruteforce_matches_manual():
    matrix = np.array([[0.9, 0.9], [0.1, 0.1], [0.5, 0.5]])
    ids, scores = top_k_bruteforce(matrix, np.array([0.5, 0.5]), 2)
    np.testing.assert_array_equal(ids, [1, 2])
    np.testing.assert_allclose(scores, [0.1, 0.5])


def test_bruteforce_tie_break_by_id():
    matrix = np.array([[0.5, 0.5], [0.5, 0.5], [0.4, 0.6]])
    ids, _ = top_k_bruteforce(matrix, np.array([0.5, 0.5]), 3)
    np.testing.assert_array_equal(ids, [0, 1, 2])


def test_bruteforce_k_larger_than_n():
    matrix = np.array([[0.1, 0.2]])
    ids, scores = top_k_bruteforce(matrix, np.array([0.5, 0.5]), 10)
    assert ids.shape == (1,)


def test_bruteforce_empty_matrix():
    ids, scores = top_k_bruteforce(np.empty((0, 2)), np.array([0.5, 0.5]), 3)
    assert ids.shape == (0,)


def test_bruteforce_rejects_bad_k():
    with pytest.raises(InvalidQueryError):
        top_k_bruteforce(np.ones((2, 2)), np.array([0.5, 0.5]), 0)
