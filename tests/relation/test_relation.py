"""Relation construction, accessors, normalization, CSV round-trips."""

import numpy as np
import pytest

from repro.exceptions import EmptyRelationError, SchemaError
from repro.relation import Relation, Schema


def test_basic_accessors():
    rel = Relation([[0.1, 0.2], [0.3, 0.4]])
    assert rel.n == 2
    assert rel.d == 2
    assert len(rel) == 2
    np.testing.assert_array_equal(rel.ids, [0, 1])
    np.testing.assert_allclose(rel.tuple(1), [0.3, 0.4])
    np.testing.assert_allclose(rel.take([1, 0]), [[0.3, 0.4], [0.1, 0.2]])


def test_matrix_is_readonly():
    rel = Relation([[0.1, 0.2]])
    with pytest.raises(ValueError):
        rel.matrix[0, 0] = 0.5


def test_column_by_name():
    rel = Relation([[0.1, 0.9]], Schema(("price", "distance")))
    np.testing.assert_allclose(rel.column("distance"), [0.9])


def test_domain_check_rejects_out_of_range():
    with pytest.raises(SchemaError, match="normalize"):
        Relation([[1.5, 0.2]])
    with pytest.raises(SchemaError, match="normalize"):
        Relation([[-0.1, 0.2]])


def test_non_finite_rejected():
    with pytest.raises(SchemaError, match="finite"):
        Relation([[np.nan, 0.2]])
    with pytest.raises(SchemaError, match="finite"):
        Relation.from_raw([[np.inf, 0.2]])


def test_wrong_shape_rejected():
    with pytest.raises(SchemaError):
        Relation(np.zeros(3))
    with pytest.raises(SchemaError):
        Relation(np.zeros((2, 0)))


def test_schema_mismatch_rejected():
    with pytest.raises(SchemaError, match="schema"):
        Relation([[0.1, 0.2]], Schema(("only_one",)))


def test_from_raw_minmax_normalizes():
    rel = Relation.from_raw([[10.0, 5.0], [20.0, 5.0], [30.0, 7.0]])
    np.testing.assert_allclose(rel.matrix[:, 0], [0.0, 0.5, 1.0])
    # Constant column maps to zero.
    np.testing.assert_allclose(rel.matrix[:2, 1], [0.0, 0.0])


def test_from_raw_empty():
    rel = Relation.from_raw(np.empty((0, 2)))
    assert rel.n == 0


def test_csv_roundtrip(tmp_path):
    rel = Relation([[0.1, 0.2], [0.3, 0.4]], Schema(("price", "distance")))
    path = tmp_path / "rel.csv"
    rel.to_csv(path)
    loaded = Relation.from_csv(path)
    np.testing.assert_allclose(loaded.matrix, rel.matrix)
    assert loaded.schema.attributes == ("price", "distance")


def test_csv_normalize_flag(tmp_path):
    path = tmp_path / "raw.csv"
    path.write_text("x,y\n10,1\n20,3\n")
    loaded = Relation.from_csv(path, normalize=True)
    assert loaded.matrix.max() <= 1.0
    assert loaded.matrix.min() >= 0.0


def test_csv_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        Relation.from_csv(path)


def test_subset_rebases_ids():
    rel = Relation([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
    sub = rel.subset([2, 0])
    assert sub.n == 2
    np.testing.assert_allclose(sub.tuple(0), [0.5, 0.6])


def test_require_nonempty():
    rel = Relation(np.empty((0, 2)))
    with pytest.raises(EmptyRelationError):
        rel.require_nonempty("test op")
    Relation([[0.0, 0.0]]).require_nonempty()  # no raise
