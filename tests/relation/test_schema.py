"""Schema construction and validation."""

import pytest

from repro.exceptions import SchemaError
from repro.relation import Schema


def test_anonymous_names():
    schema = Schema.anonymous(3)
    assert schema.attributes == ("a0", "a1", "a2")
    assert schema.d == 3
    assert len(schema) == 3
    assert list(schema) == ["a0", "a1", "a2"]


def test_index_of():
    schema = Schema(("price", "distance"))
    assert schema.index_of("price") == 0
    assert schema.index_of("distance") == 1


def test_index_of_unknown_raises():
    schema = Schema(("price",))
    with pytest.raises(SchemaError, match="unknown attribute"):
        schema.index_of("rating")


def test_empty_schema_rejected():
    with pytest.raises(SchemaError):
        Schema(())


def test_duplicate_names_rejected():
    with pytest.raises(SchemaError, match="duplicate"):
        Schema(("a", "a"))


def test_bad_name_rejected():
    with pytest.raises(SchemaError):
        Schema(("a", ""))


def test_anonymous_zero_dim_rejected():
    with pytest.raises(SchemaError):
        Schema.anonymous(0)
