"""Analytics bench suite: report schema, oracle discipline, regression gate."""

import copy

import pytest

from repro.bench.analyticsbench import (
    run_analytics_bench,
    validate_analytics_report,
)
from repro.bench.regression import (
    ANALYTICS_FULL_SCALE_N,
    ANALYTICS_RESOLVED_FLOOR_PCT,
    check_analytics_regression,
    check_regression,
)


@pytest.fixture(scope="module")
def report():
    return run_analytics_bench(
        distributions=("IND", "ANT"),
        d=3,
        n=1500,
        k=8,
        queries=16,
        seed=7,
    )


def test_report_is_schema_valid(report):
    validate_analytics_report(report)
    assert report["suite"] == "analytics"
    assert report["crosscheck"] == "bitwise"
    assert all(cell["bitwise_equal"] for cell in report["cells"])
    bands = {cell["band"] for cell in report["cells"]}
    assert "shallow" in bands and "deep" in bands


def test_self_gate_passes(report):
    """A fresh small-scale report gates cleanly against itself (the
    walk-free floor only applies at n >= 10k)."""
    assert check_analytics_regression(report, report) == []
    assert check_regression(report, report) == []


def test_validator_rejects_drift(report):
    broken = copy.deepcopy(report)
    del broken["summary"]
    with pytest.raises(ValueError, match="summary"):
        validate_analytics_report(broken)

    unverified = copy.deepcopy(report)
    unverified["cells"][0]["bitwise_equal"] = False
    with pytest.raises(ValueError, match="bitwise"):
        validate_analytics_report(unverified)

    out_of_range = copy.deepcopy(report)
    out_of_range["cells"][0]["bichromatic"]["resolved_without_walk_pct"] = 120.0
    with pytest.raises(ValueError, match="outside"):
        validate_analytics_report(out_of_range)

    inflated = copy.deepcopy(report)
    inflated["summary"]["best_resolved_without_walk_pct"] = 100.0
    if inflated["summary"]["best_resolved_without_walk_pct"] != max(
        c["bichromatic"]["resolved_without_walk_pct"] for c in inflated["cells"]
    ):
        with pytest.raises(ValueError, match="disagrees"):
            validate_analytics_report(inflated)

    bad_volume = copy.deepcopy(report)
    for cell in bad_volume["cells"]:
        if cell["reverse"]["kind"] == "certified":
            cell["reverse"]["volume_lower"] = (
                cell["reverse"]["volume_upper"] + 1.0
            )
            with pytest.raises(ValueError, match="volume"):
                validate_analytics_report(bad_volume)
            break


def test_gate_enforces_walk_free_floor_at_full_scale(report):
    """A full-scale report where every vector walked must fail the gate —
    on the fresh side and on the baseline side alike."""
    stale = copy.deepcopy(report)
    stale["n"] = ANALYTICS_FULL_SCALE_N
    for cell in stale["cells"]:
        cell["bichromatic"]["resolved_without_walk_pct"] = (
            ANALYTICS_RESOLVED_FLOOR_PCT - 10.0
        )
    stale["summary"]["best_resolved_without_walk_pct"] = (
        ANALYTICS_RESOLVED_FLOOR_PCT - 10.0
    )
    failures = check_analytics_regression(stale, stale)
    assert any("not pruning" in failure for failure in failures)
    assert any(failure.startswith("fresh") for failure in failures)
    assert any(failure.startswith("baseline") for failure in failures)


def test_gate_flags_resolution_regression(report):
    regressed = copy.deepcopy(report)
    best = report["summary"]["best_resolved_without_walk_pct"]
    if best == 0.0:
        pytest.skip("workload resolved nothing walk-free at smoke scale")
    for cell in regressed["cells"]:
        cell["bichromatic"]["resolved_without_walk_pct"] = round(best / 4.0, 2)
    regressed["summary"]["best_resolved_without_walk_pct"] = round(best / 4.0, 2)
    failures = check_analytics_regression(regressed, report)
    assert any("walk-free resolution" in failure for failure in failures)


def test_gate_rejects_missing_crosscheck(report):
    unchecked = copy.deepcopy(report)
    del unchecked["crosscheck"]
    failures = check_analytics_regression(unchecked, report)
    assert any("crosscheck" in failure for failure in failures)


def test_suite_mismatch_reported(report):
    other = {"suite": "snapshot"}
    failures = check_regression(report, other)
    assert failures and "suite mismatch" in failures[0]
