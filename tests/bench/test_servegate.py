"""Serve-gateway load generator: tiny end-to-end run + schema validator."""

import copy

import pytest

from repro.bench.servegate import (
    run_serve_gateway_bench,
    validate_serve_report,
)


@pytest.fixture(scope="module")
def tiny_report():
    return run_serve_gateway_bench(
        distribution="IND",
        n=400,
        d=3,
        k=5,
        queries=48,
        distinct=8,
        arrival_rates=[400.0],
        closed_clients=4,
        max_batch=8,
        flush_window_ms=2.0,
        slo_target_ms=50.0,
        seed=3,
    )


def test_tiny_run_produces_valid_report(tiny_report):
    validate_serve_report(tiny_report)
    assert tiny_report["suite"] == "serve"
    assert tiny_report["crosscheck"] == "bitwise"
    assert tiny_report["closed_loop"]["qps"] > 0
    assert len(tiny_report["open_loop"]) == 1
    entry = tiny_report["open_loop"][0]
    assert entry["arrival_rate"] == 400.0
    assert entry["completed"] + entry["rejected"] == 48
    # The load generator cross-checks every answer bitwise against
    # engine.query internally; reaching here means none diverged.


def test_closed_loop_coalesces(tiny_report):
    # 4 back-to-back clients against one serial engine lane: flushes must
    # carry more than one query on average.
    assert tiny_report["closed_loop"]["batch_occupancy"] > 1.0


def test_auto_rates_derive_from_closed_loop_capacity():
    report = run_serve_gateway_bench(
        distribution="IND",
        n=300,
        d=3,
        k=4,
        queries=24,
        distinct=4,
        arrival_rates=None,
        rate_multipliers=(0.5, 2.0),
        closed_clients=4,
        max_batch=8,
        seed=5,
    )
    validate_serve_report(report)
    rates = [entry["arrival_rate"] for entry in report["open_loop"]]
    assert len(rates) == 2 and rates[0] < rates[1]
    capacity = report["closed_loop"]["qps"]
    assert rates[0] == pytest.approx(max(1.0, capacity * 0.5), rel=0.01)
    assert rates[1] == pytest.approx(max(1.0, capacity * 2.0), rel=0.01)


def test_validator_rejects_drift(tiny_report):
    for mutate in (
        lambda r: r.pop("gateway"),
        lambda r: r.update(suite="wallclock"),
        lambda r: r["closed_loop"].update(qps=0.0),
        lambda r: r.update(open_loop=[]),
        lambda r: r["open_loop"][0].update(completed=0, rejected=0),
        lambda r: r["open_loop"][0].update(p50_ms=99.0, p95_ms=1.0),
        lambda r: r["gateway"].pop("max_batch"),
    ):
        broken = copy.deepcopy(tiny_report)
        mutate(broken)
        with pytest.raises(ValueError):
            validate_serve_report(broken)
