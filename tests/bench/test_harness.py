"""Benchmark harness: workloads, cells, sweeps, reporting."""

import numpy as np
import pytest

from repro.baselines import DGIndex, ScanIndex
from repro.bench import (
    BenchConfig,
    Workload,
    build_index,
    format_build_table,
    format_series_table,
    measure_cost,
    query_weights,
    run_sweep,
)
from repro.core import DLIndex


@pytest.fixture(scope="module")
def workload():
    return Workload.make("IND", 150, 3, queries=4, seed=1)


def test_workload_construction(workload):
    assert workload.relation.n == 150
    assert len(workload.weights) == 4
    for w in workload.weights:
        assert w.shape == (3,)
        assert w.sum() == pytest.approx(1.0)


def test_query_weights_deterministic():
    a = query_weights(3, 5, seed=9)
    b = query_weights(3, 5, seed=9)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


def test_bench_config_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_N", "1234")
    monkeypatch.setenv("REPRO_BENCH_QUERIES", "7")
    config = BenchConfig()
    assert config.n == 1234
    assert config.queries == 7
    assert config.scaled_n(4) == 1234
    assert config.scaled_n(5) == 617


def test_measure_cost_scan_exact(workload):
    index = ScanIndex(workload.relation).build()
    cell = measure_cost(index, workload, 5)
    assert cell.mean_cost == 150.0
    assert cell.min_cost == cell.max_cost == 150
    assert cell.algorithm == "SCAN"
    assert cell.k == 5


def test_build_index_respects_max_k(workload):
    index = build_index(DLIndex, workload, max_k=3)
    assert index.max_layers == 3
    scan = build_index(ScanIndex, workload, max_k=3)  # no max_layers kwarg
    assert scan.name == "SCAN"


def test_run_sweep_shares_indexes(workload):
    sweep = run_sweep(
        "k",
        [1, 3, 5],
        {"DL": DLIndex, "DG": DGIndex},
        workload_for=lambda value: workload,
        k_for=lambda value: value,
    )
    assert sweep.values == [1, 3, 5]
    assert set(sweep.series) == {"DL", "DG"}
    dl_costs = sweep.mean_series("DL")
    assert dl_costs == sorted(dl_costs), "cost grows with k"


def test_format_series_table(workload):
    sweep = run_sweep(
        "k",
        [1, 2],
        {"DL": DLIndex, "DG": DGIndex},
        workload_for=lambda value: workload,
        k_for=lambda value: value,
    )
    text = format_series_table("demo", sweep, ratio=("DG", "DL"))
    assert "DG/DL" in text
    assert "demo" in text
    assert len(text.splitlines()) >= 6


def test_format_build_table(workload):
    index = DLIndex(workload.relation).build()
    text = format_build_table("builds", [index.build_stats])
    assert "DL" in text
    assert "seconds" in text
