"""Benchmark harness: workloads, cells, sweeps, reporting."""

import numpy as np
import pytest

from repro.baselines import DGIndex, ScanIndex
from repro.bench import (
    BenchConfig,
    Workload,
    build_index,
    format_build_table,
    format_series_table,
    measure_cost,
    query_weights,
    run_sweep,
)
from repro.core import DLIndex


@pytest.fixture(scope="module")
def workload():
    return Workload.make("IND", 150, 3, queries=4, seed=1)


def test_workload_construction(workload):
    assert workload.relation.n == 150
    assert len(workload.weights) == 4
    for w in workload.weights:
        assert w.shape == (3,)
        assert w.sum() == pytest.approx(1.0)


def test_query_weights_deterministic():
    a = query_weights(3, 5, seed=9)
    b = query_weights(3, 5, seed=9)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)


def test_bench_config_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_N", "1234")
    monkeypatch.setenv("REPRO_BENCH_QUERIES", "7")
    config = BenchConfig()
    assert config.n == 1234
    assert config.queries == 7
    assert config.scaled_n(4) == 1234
    assert config.scaled_n(5) == 617


def test_measure_cost_scan_exact(workload):
    index = ScanIndex(workload.relation).build()
    cell = measure_cost(index, workload, 5)
    assert cell.mean_cost == 150.0
    assert cell.min_cost == cell.max_cost == 150
    assert cell.algorithm == "SCAN"
    assert cell.k == 5


def test_build_index_respects_max_k(workload):
    index = build_index(DLIndex, workload, max_k=3)
    assert index.max_layers == 3
    scan = build_index(ScanIndex, workload, max_k=3)  # no max_layers kwarg
    assert scan.name == "SCAN"


def test_run_sweep_shares_indexes(workload):
    sweep = run_sweep(
        "k",
        [1, 3, 5],
        {"DL": DLIndex, "DG": DGIndex},
        workload_for=lambda value: workload,
        k_for=lambda value: value,
    )
    assert sweep.values == [1, 3, 5]
    assert set(sweep.series) == {"DL", "DG"}
    dl_costs = sweep.mean_series("DL")
    assert dl_costs == sorted(dl_costs), "cost grows with k"


def test_format_series_table(workload):
    sweep = run_sweep(
        "k",
        [1, 2],
        {"DL": DLIndex, "DG": DGIndex},
        workload_for=lambda value: workload,
        k_for=lambda value: value,
    )
    text = format_series_table("demo", sweep, ratio=("DG", "DL"))
    assert "DG/DL" in text
    assert "demo" in text
    assert len(text.splitlines()) >= 6


def test_format_build_table(workload):
    index = DLIndex(workload.relation).build()
    text = format_build_table("builds", [index.build_stats])
    assert "DL" in text
    assert "seconds" in text


def test_run_sweep_holds_workload_references():
    """Regression: the index cache was keyed by ``id(workload)`` without a
    strong reference, so a garbage-collected workload's id could be reused
    by a fresh one and a sweep cell silently measured an index built on
    different data.  The fix stores the workload in the cache entry; every
    workload built for must therefore stay alive for the whole sweep."""
    import gc
    import weakref

    refs: list[weakref.ref] = []

    def workload_for(value):
        gc.collect()
        # Every previously returned workload must still be strongly
        # referenced by the sweep's cache (the old code dropped them,
        # letting CPython reuse their ids).
        assert all(ref() is not None for ref in refs), (
            "run_sweep dropped a cached workload reference"
        )
        fresh = Workload.make("IND", 80, 3, queries=2, seed=int(value))
        refs.append(weakref.ref(fresh))
        return fresh

    run_sweep(
        "n",
        [1, 2, 3, 4],
        {"SCAN": ScanIndex},
        workload_for=workload_for,
        k_for=lambda value: 3,
    )
    assert len(refs) == 4


def test_run_sweep_fresh_workloads_get_their_own_indexes():
    """With fresh-per-call workloads each sweep cell must be measured on an
    index built from *its own* data (distinct n per value makes a stale
    index observable: SCAN's cost is exactly n)."""
    sizes = {1: 60, 2: 90, 3: 120}

    def workload_for(value):
        return Workload.make("IND", sizes[value], 3, queries=2, seed=7)

    sweep = run_sweep(
        "n",
        [1, 2, 3],
        {"SCAN": ScanIndex},
        workload_for=workload_for,
        k_for=lambda value: 5,
    )
    for value, cell in zip([1, 2, 3], sweep.series["SCAN"]):
        assert cell.n == sizes[value]
        assert cell.mean_cost == float(sizes[value])


def test_measure_cost_records_latency(workload):
    """Cells carry wall-clock stats from the same stream as the cost."""
    index = build_index(ScanIndex, workload)
    cell = measure_cost(index, workload, 3)
    assert cell.mean_ms > 0.0
    assert cell.p95_ms > 0.0
    assert cell.p95_ms >= cell.mean_ms * 0.5  # sane relationship, no units slip


def test_cell_result_latency_defaults():
    """Cells built without latency kwargs (pickled sweeps from before the
    fields existed, figure scripts) default to zero."""
    from repro.bench.harness import CellResult

    cell = CellResult(
        algorithm="scan",
        distribution="IND",
        n=10,
        d=2,
        k=1,
        mean_cost=10.0,
        min_cost=10,
        max_cost=10,
        mean_real=10.0,
        mean_pseudo=0.0,
    )
    assert cell.mean_ms == 0.0 and cell.p95_ms == 0.0
