"""Snapshot bench suite: report schema, oracle discipline, regression gate."""

import copy

import pytest

from repro.bench.regression import (
    check_regression,
    check_snapshot_regression,
)
from repro.bench.snapshotbench import (
    run_snapshot_bench,
    validate_snapshot_report,
)


@pytest.fixture(scope="module")
def report():
    return run_snapshot_bench(
        distribution="IND",
        d=3,
        n=2000,
        ks=(1, 5, 10),
        queries=8,
        workers=(1, 2),
    )


def test_report_is_schema_valid(report):
    validate_snapshot_report(report)
    assert report["suite"] == "snapshot"
    assert report["crosscheck"] == "bitwise"
    assert [cell["k"] for cell in report["pruning"]] == [1, 5, 10]
    assert [cell["workers"] for cell in report["serving"]] == [1, 2]
    assert report["open"]["speedup"] > 0


def test_self_gate_passes(report):
    """A fresh small-scale report gates cleanly against itself (the
    full-scale speedup floor only applies at n >= 100k)."""
    assert check_snapshot_regression(report, report) == []
    assert check_regression(report, report) == []


def test_validator_rejects_drift(report):
    broken = copy.deepcopy(report)
    del broken["open"]["speedup"]
    with pytest.raises(ValueError, match="speedup"):
        validate_snapshot_report(broken)

    unverified = copy.deepcopy(report)
    unverified["pruning"][0]["bitwise_equal"] = False
    with pytest.raises(ValueError, match="bitwise"):
        validate_snapshot_report(unverified)

    costlier = copy.deepcopy(report)
    costlier["pruning"][0]["pruned_cost"] = (
        costlier["pruning"][0]["unpruned_cost"] + 1
    )
    with pytest.raises(ValueError, match="exceeds"):
        validate_snapshot_report(costlier)


def test_gate_requires_crosscheck_marker(report):
    stale = copy.deepcopy(report)
    stale.pop("crosscheck")
    failures = check_snapshot_regression(report, stale)
    assert any("crosscheck" in failure for failure in failures)


def test_gate_holds_speedup_floor_at_full_scale(report):
    """An n >= 100k report with a sub-10x cold open fails — on the baseline
    side too, which keeps a hand-edited committed report from passing."""
    slow = copy.deepcopy(report)
    slow["n"] = 100_000
    slow["open"]["speedup"] = 5.0
    failures = check_snapshot_regression(slow, slow)
    assert any("cold-open speedup" in failure for failure in failures)
    assert any(failure.startswith("baseline") for failure in failures)


def test_gate_flags_dead_pruning(report):
    dead = copy.deepcopy(report)
    for cell in dead["pruning"]:
        cell["pruned_cost"] = cell["unpruned_cost"]
    failures = check_snapshot_regression(dead, report)
    assert any("not pruning" in failure for failure in failures)


def test_gate_flags_speedup_regression(report):
    regressed = copy.deepcopy(report)
    regressed["open"]["speedup"] = report["open"]["speedup"] / 10.0
    failures = check_snapshot_regression(regressed, report)
    assert any("baseline" in failure and "x" in failure for failure in failures)
