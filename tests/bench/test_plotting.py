"""ASCII chart rendering."""


from repro.bench.harness import CellResult, SweepResult
from repro.bench.plotting import ascii_series_chart


def make_sweep():
    sweep = SweepResult(parameter="k", values=[10, 20])
    for name, costs in (("DG", [100.0, 200.0]), ("DL", [30.0, 60.0])):
        sweep.series[name] = [
            CellResult(
                algorithm=name,
                distribution="IND",
                n=100,
                d=2,
                k=k,
                mean_cost=cost,
                min_cost=int(cost),
                max_cost=int(cost),
                mean_real=cost,
                mean_pseudo=0.0,
            )
            for k, cost in zip([10, 20], costs)
        ]
    return sweep


def test_chart_contains_all_groups_and_bars():
    text = ascii_series_chart("demo", make_sweep())
    assert "demo" in text
    assert text.count("k = ") == 2
    assert text.count("DG |") == 2
    assert text.count("DL |") == 2
    assert "100.0" in text and "60.0" in text


def test_log_bars_ordered_by_cost():
    text = ascii_series_chart("demo", make_sweep(), log=True)
    lines = [line for line in text.splitlines() if "|" in line]
    dg_bar = lines[0].split("|")[1].split()[0]
    dl_bar = lines[1].split("|")[1].split()[0]
    assert len(dg_bar) > len(dl_bar)


def test_linear_scale():
    text = ascii_series_chart("demo", make_sweep(), log=False)
    assert "linear scale" in text


def test_zero_costs_handled():
    sweep = make_sweep()
    for cells in sweep.series.values():
        for cell in cells:
            cell.mean_cost = 0.0
    text = ascii_series_chart("demo", sweep)
    assert "0.0" in text
