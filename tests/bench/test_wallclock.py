"""Wall-clock benchmark suite: smoke coverage at miniature scale."""

import json

import pytest

from repro.bench.wallclock import (
    KERNELS,
    WallclockCell,
    KernelTiming,
    run_wallclock,
    validate_query_report,
    write_report,
)


def test_run_wallclock_smoke(tmp_path):
    report = run_wallclock(
        distributions=("IND",),
        dims=(2,),
        sizes=(500,),
        k=5,
        queries=4,
        repeats=1,
        seed=7,
        batch_sizes=(1, 8),
    )
    assert report["suite"] == "wallclock"
    assert report["crosscheck"] == "bitwise"
    assert len(report["cells"]) == 1
    cell = report["cells"][0]
    assert cell["distribution"] == "IND" and cell["n"] == 500
    # The native column appears only when the compiled kernel is
    # loadable on this host; every other kernel is unconditional.
    from repro.core.native import native_ready

    expected = set(KERNELS) if native_ready() else set(KERNELS) - {"native"}
    assert set(cell["kernels"]) == expected
    for timing in cell["kernels"].values():
        assert timing["p50_ms"] > 0
        assert timing["p95_ms"] >= timing["p50_ms"]
    assert cell["speedup_p50"] > 0
    if "native" in cell["kernels"]:
        assert cell["speedup_native_p50"] > 0
    assert cell["mean_cost"] >= 5  # at least k tuples are evaluated
    # The batch sweep ran and was cross-checked before timing.
    assert [t["B"] for t in cell["batch"]] == [1, 8]
    for timing in cell["batch"]:
        assert timing["qps"] > 0
        assert timing["ms_per_query"] > 0
        assert timing["speedup_vs_csr"] > 0

    validate_query_report(report)  # round-trips through the schema check
    out = tmp_path / "BENCH_query.json"
    write_report(report, str(out))
    assert json.loads(out.read_text()) == report
    validate_query_report(json.loads(out.read_text()))


def test_batch_sweep_disabled():
    report = run_wallclock(
        distributions=("IND",),
        dims=(2,),
        sizes=(300,),
        k=3,
        queries=2,
        repeats=1,
        seed=9,
        batch_sizes=(),
    )
    assert report["cells"][0]["batch"] == []


def test_validate_query_report_rejects_malformed():
    report = run_wallclock(
        distributions=("IND",),
        dims=(2,),
        sizes=(300,),
        k=3,
        queries=2,
        repeats=1,
        seed=9,
        batch_sizes=(1,),
    )
    validate_query_report(report)
    for mutate in (
        lambda r: r.pop("cells"),
        lambda r: r["cells"].clear(),
        lambda r: r["cells"][0]["kernels"].pop("csr"),
        lambda r: r["cells"][0]["kernels"]["csr"].__setitem__("p50_ms", 0.0),
        lambda r: r["cells"][0]["batch"][0].__setitem__("B", 0),
        lambda r: r["cells"][0]["batch"][0].pop("qps"),
        lambda r: r.__setitem__("suite", "nonsense"),
    ):
        broken = json.loads(json.dumps(report))
        mutate(broken)
        with pytest.raises((ValueError, KeyError)):
            validate_query_report(broken)


def test_committed_baseline_is_schema_valid():
    from pathlib import Path

    baseline = Path(__file__).resolve().parents[2] / "BENCH_query.json"
    report = json.loads(baseline.read_text())
    validate_query_report(report)
    assert report["crosscheck"] == "bitwise"


def test_wallclock_grid_covers_all_cells(tmp_path):
    report = run_wallclock(
        distributions=("IND", "ANT"),
        dims=(2, 3),
        sizes=(200,),
        k=3,
        queries=2,
        repeats=1,
        seed=11,
    )
    combos = {(c["distribution"], c["d"], c["n"]) for c in report["cells"]}
    assert combos == {("IND", 2, 200), ("IND", 3, 200), ("ANT", 2, 200), ("ANT", 3, 200)}


def test_speedup_property():
    cell = WallclockCell(
        distribution="IND", d=2, n=10, k=1, build_seconds=0.0, mean_cost=1.0
    )
    cell.kernels["reference"] = KernelTiming(p50_ms=2.0, p95_ms=3.0, mean_ms=2.0)
    cell.kernels["csr"] = KernelTiming(p50_ms=0.5, p95_ms=1.0, mean_ms=0.6)
    assert cell.speedup_p50 == 4.0
