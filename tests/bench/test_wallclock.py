"""Wall-clock benchmark suite: smoke coverage at miniature scale."""

import json

from repro.bench.wallclock import (
    KERNELS,
    WallclockCell,
    KernelTiming,
    run_wallclock,
    write_report,
)


def test_run_wallclock_smoke(tmp_path):
    report = run_wallclock(
        distributions=("IND",),
        dims=(2,),
        sizes=(500,),
        k=5,
        queries=4,
        repeats=1,
        seed=7,
    )
    assert report["suite"] == "wallclock"
    assert len(report["cells"]) == 1
    cell = report["cells"][0]
    assert cell["distribution"] == "IND" and cell["n"] == 500
    assert set(cell["kernels"]) == set(KERNELS)
    for timing in cell["kernels"].values():
        assert timing["p50_ms"] > 0
        assert timing["p95_ms"] >= timing["p50_ms"]
    assert cell["speedup_p50"] > 0
    assert cell["mean_cost"] >= 5  # at least k tuples are evaluated

    out = tmp_path / "BENCH_query.json"
    write_report(report, str(out))
    assert json.loads(out.read_text()) == report


def test_wallclock_grid_covers_all_cells(tmp_path):
    report = run_wallclock(
        distributions=("IND", "ANT"),
        dims=(2, 3),
        sizes=(200,),
        k=3,
        queries=2,
        repeats=1,
        seed=11,
    )
    combos = {(c["distribution"], c["d"], c["n"]) for c in report["cells"]}
    assert combos == {("IND", 2, 200), ("IND", 3, 200), ("ANT", 2, 200), ("ANT", 3, 200)}


def test_speedup_property():
    cell = WallclockCell(
        distribution="IND", d=2, n=10, k=1, build_seconds=0.0, mean_cost=1.0
    )
    cell.kernels["reference"] = KernelTiming(p50_ms=2.0, p95_ms=3.0, mean_ms=2.0)
    cell.kernels["csr"] = KernelTiming(p50_ms=0.5, p95_ms=1.0, mean_ms=0.6)
    assert cell.speedup_p50 == 4.0
