"""Cluster benchmark suite: smoke coverage, validator, CLI, committed report."""

import json

import pytest

from repro.bench.clusterbench import (
    run_cluster_bench,
    validate_cluster_report,
    write_report,
)


@pytest.fixture(scope="module")
def smoke_report():
    return run_cluster_bench(
        distributions=("IND",),
        shard_counts=(2,),
        d=3,
        n=400,
        k=5,
        queries=4,
        partitioner="round-robin",
        seed=7,
    )


def test_run_cluster_bench_smoke(smoke_report, tmp_path):
    report = smoke_report
    assert report["suite"] == "cluster"
    assert len(report["cells"]) == 1
    cell = report["cells"][0]
    assert cell["distribution"] == "IND" and cell["n"] == 400
    assert cell["single_node"]["mean_cost"] >= 5  # at least k tuples
    [entry] = cell["clusters"]
    assert entry["shards"] == 2
    assert entry["bitwise_equal"] is True
    assert entry["threshold_le_naive"] is True
    assert (
        entry["merges"]["threshold"]["mean_cost"]
        <= entry["merges"]["naive"]["mean_cost"]
    )
    for merge in ("naive", "threshold"):
        assert entry["merges"][merge]["p95_ms"] >= entry["merges"][merge]["p50_ms"]

    validate_cluster_report(report)
    out = tmp_path / "BENCH_cluster.json"
    write_report(report, str(out))
    assert json.loads(out.read_text()) == report


def test_validator_rejects_drift(smoke_report):
    import copy

    broken = copy.deepcopy(smoke_report)
    broken["suite"] = "wallclock"
    with pytest.raises(ValueError, match="unexpected suite"):
        validate_cluster_report(broken)

    broken = copy.deepcopy(smoke_report)
    broken["cells"][0]["clusters"][0]["bitwise_equal"] = False
    with pytest.raises(ValueError, match="bitwise"):
        validate_cluster_report(broken)

    broken = copy.deepcopy(smoke_report)
    broken["cells"][0]["clusters"][0]["merges"].pop("threshold")
    with pytest.raises(ValueError, match="missing merge"):
        validate_cluster_report(broken)

    broken = copy.deepcopy(smoke_report)
    broken["cells"][0]["clusters"][0]["merges"]["threshold"]["mean_cost"] = 10**9
    with pytest.raises(ValueError, match="exceeds naive"):
        validate_cluster_report(broken)

    with pytest.raises(ValueError, match="missing key"):
        validate_cluster_report({})


def test_cli_cluster_bench_smoke(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.json"
    code = main(
        [
            "cluster-bench",
            "--distributions", "IND",
            "--shards", "2",
            "--d", "3",
            "--n", "300",
            "--k", "4",
            "--queries", "3",
            "--partitioner", "angular",
            "--out", str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    validate_cluster_report(report)
    assert "wrote 1 cells" in capsys.readouterr().out


def test_committed_report_passes_validator():
    """The repository's BENCH_cluster.json must stay schema-valid."""
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_cluster.json"
    validate_cluster_report(json.loads(path.read_text()))
