"""Experiment grid declarations."""

from repro.bench import EXPERIMENTS
from repro.bench.experiments import ALGORITHM_CLASSES


def test_every_paper_table_and_figure_present():
    expected = {
        "table4",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
    }
    assert set(EXPERIMENTS) == expected


def test_specs_reference_known_algorithms():
    known = set(ALGORITHM_CLASSES) | {"HL"}
    for spec in EXPERIMENTS.values():
        for name in spec.algorithms:
            assert name in known, f"{spec.experiment_id} references {name}"


def test_sweep_specs_have_values_and_ratio():
    for spec in EXPERIMENTS.values():
        if spec.parameter == "build":
            continue
        assert spec.values, spec.experiment_id
        assert spec.ratio is not None
        assert spec.ratio[0] in spec.algorithms
        assert spec.ratio[1] in spec.algorithms


def test_expected_shapes_documented():
    for spec in EXPERIMENTS.values():
        assert len(spec.expected_shape) > 20
        assert spec.distributions == ("IND", "ANT")
