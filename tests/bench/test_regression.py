"""Bench-regression gate: matched-cell comparison, invariant fallback,
cross-check enforcement, and the bench-check CLI surface."""

import copy
import json

import pytest

from repro.bench.regression import (
    NOISE_FLOOR_MS,
    check_query_regression,
    load_report,
)


def make_report(*, n=10_000, auto_p50=0.10, csr_p50=0.10, qps=5000.0):
    timing = lambda p50: {"p50_ms": p50, "p95_ms": p50 * 2, "mean_ms": p50}  # noqa: E731
    return {
        "suite": "wallclock",
        "algorithm": "DL+",
        "k": 10,
        "queries": 8,
        "repeats": 1,
        "seed": 7,
        "crosscheck": "bitwise",
        "cells": [
            {
                "distribution": "IND",
                "d": 3,
                "n": n,
                "k": 10,
                "build_seconds": 0.1,
                "mean_cost": 40.0,
                "speedup_p50": 1.5,
                "kernels": {
                    "reference": timing(0.30),
                    "csr": timing(csr_p50),
                    "auto": timing(auto_p50),
                },
                "batch": [
                    {"B": 8, "qps": qps, "ms_per_query": 1000.0 / qps, "speedup_vs_csr": 2.0}
                ],
            }
        ],
    }


def test_identical_reports_pass():
    report = make_report()
    assert check_query_regression(report, report) == []


def test_matched_cell_p50_regression_fails():
    baseline = make_report(csr_p50=1.0)
    fresh = make_report(csr_p50=1.0 * 1.26 + NOISE_FLOOR_MS + 0.01)
    failures = check_query_regression(fresh, baseline)
    assert any("kernel csr" in f for f in failures)
    # Within tolerance + noise floor: passes.
    ok = make_report(csr_p50=1.0 * 1.24)
    assert check_query_regression(ok, baseline) == []


def test_noise_floor_absorbs_sub_ms_jitter():
    """A 50% relative blip on a 0.05ms cell is scheduler noise, not a
    regression — the absolute floor must absorb it."""
    baseline = make_report(csr_p50=0.05, auto_p50=0.05)
    fresh = make_report(csr_p50=0.075, auto_p50=0.075)  # +50% but tiny
    assert check_query_regression(fresh, baseline) == []


def test_matched_cell_qps_regression_fails():
    baseline = make_report(qps=5000.0)
    fresh = make_report(qps=5000.0 / 1.3)
    failures = check_query_regression(fresh, baseline)
    assert any("batch B=8" in f for f in failures)
    assert check_query_regression(make_report(qps=4200.0), baseline) == []


def test_no_overlap_falls_back_to_invariants():
    baseline = make_report(n=100_000)
    smoke_ok = make_report(n=2000)
    assert check_query_regression(smoke_ok, baseline) == []
    # Auto far slower than best single kernel: the scale-free invariant
    # trips even without any comparable baseline cell.
    smoke_bad = make_report(n=2000, auto_p50=0.50, csr_p50=0.10)
    failures = check_query_regression(smoke_bad, baseline)
    assert any("auto p50" in f for f in failures)
    # Missing batch sweep also trips the invariant path.
    smoke_nobatch = make_report(n=2000)
    smoke_nobatch["cells"][0]["batch"] = []
    failures = check_query_regression(smoke_nobatch, baseline)
    assert any("batch sweep missing" in f for f in failures)


def test_missing_crosscheck_marker_rejected():
    baseline = make_report()
    unchecked = copy.deepcopy(baseline)
    del unchecked["crosscheck"]
    failures = check_query_regression(unchecked, baseline)
    assert any("crosscheck" in f for f in failures)


def test_malformed_reports_rejected_outright():
    report = make_report()
    broken = copy.deepcopy(report)
    broken["cells"][0]["kernels"].pop("reference")
    with pytest.raises((ValueError, KeyError)):
        check_query_regression(broken, report)
    with pytest.raises((ValueError, KeyError)):
        check_query_regression(report, broken)


def test_load_report_validates(tmp_path):
    path = tmp_path / "report.json"
    path.write_text(json.dumps(make_report()))
    assert load_report(str(path))["suite"] == "wallclock"
    path.write_text(json.dumps({"suite": "wallclock"}))
    with pytest.raises((ValueError, KeyError)):
        load_report(str(path))


def test_bench_check_cli_exit_codes(tmp_path, capsys):
    from repro.cli import main

    fresh = tmp_path / "fresh.json"
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(make_report(csr_p50=1.0)))
    fresh.write_text(json.dumps(make_report(csr_p50=1.0)))
    assert (
        main(["bench-check", "--fresh", str(fresh), "--baseline", str(baseline)]) == 0
    )
    assert "bench-check OK" in capsys.readouterr().out

    fresh.write_text(json.dumps(make_report(csr_p50=2.0)))
    assert (
        main(["bench-check", "--fresh", str(fresh), "--baseline", str(baseline)]) == 1
    )
    out = capsys.readouterr().out
    assert "kernel csr" in out
