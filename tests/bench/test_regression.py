"""Bench-regression gate: matched-cell comparison, invariant fallback,
cross-check enforcement, and the bench-check CLI surface."""

import copy
import json

import pytest

from repro.bench.regression import (
    NOISE_FLOOR_MS,
    check_query_regression,
    check_regression,
    check_serve_regression,
    load_report,
)


def make_report(*, n=10_000, auto_p50=0.10, csr_p50=0.10, qps=5000.0):
    timing = lambda p50: {"p50_ms": p50, "p95_ms": p50 * 2, "mean_ms": p50}  # noqa: E731
    return {
        "suite": "wallclock",
        "algorithm": "DL+",
        "k": 10,
        "queries": 8,
        "repeats": 1,
        "seed": 7,
        "crosscheck": "bitwise",
        "cells": [
            {
                "distribution": "IND",
                "d": 3,
                "n": n,
                "k": 10,
                "build_seconds": 0.1,
                "mean_cost": 40.0,
                "speedup_p50": 1.5,
                "kernels": {
                    "reference": timing(0.30),
                    "csr": timing(csr_p50),
                    "auto": timing(auto_p50),
                },
                "batch": [
                    {"B": 8, "qps": qps, "ms_per_query": 1000.0 / qps, "speedup_vs_csr": 2.0}
                ],
            }
        ],
    }


def test_identical_reports_pass():
    report = make_report()
    assert check_query_regression(report, report) == []


def test_matched_cell_p50_regression_fails():
    baseline = make_report(csr_p50=1.0)
    fresh = make_report(csr_p50=1.0 * 1.26 + NOISE_FLOOR_MS + 0.01)
    failures = check_query_regression(fresh, baseline)
    assert any("kernel csr" in f for f in failures)
    # Within tolerance + noise floor: passes.
    ok = make_report(csr_p50=1.0 * 1.24)
    assert check_query_regression(ok, baseline) == []


def test_noise_floor_absorbs_sub_ms_jitter():
    """A 50% relative blip on a 0.05ms cell is scheduler noise, not a
    regression — the absolute floor must absorb it."""
    baseline = make_report(csr_p50=0.05, auto_p50=0.05)
    fresh = make_report(csr_p50=0.075, auto_p50=0.075)  # +50% but tiny
    assert check_query_regression(fresh, baseline) == []


def test_matched_cell_qps_regression_fails():
    # Batch lanes gate on amortized ms/query with the same noise floor
    # as the kernel p50s: at 1 qps-in-thousands scale (1.0ms/query) the
    # limit is 1.0 * 1.25 + 0.05 = 1.30ms — i.e. qps below 1000/1.3.
    baseline = make_report(qps=1000.0)
    fresh = make_report(qps=1000.0 / 1.5)
    failures = check_query_regression(fresh, baseline)
    assert any("batch B=8" in f for f in failures)
    assert check_query_regression(make_report(qps=1000.0 / 1.29), baseline) == []
    # At smoke scale (sub-0.1ms lanes) the absolute floor absorbs
    # scheduler jitter that a pure qps ratio would flag.
    tiny_base = make_report(qps=20000.0)  # 0.05ms/query
    tiny_fresh = make_report(qps=10000.0)  # 0.10ms — within 0.05*1.25+0.05
    assert check_query_regression(tiny_fresh, tiny_base) == []


def test_no_overlap_falls_back_to_invariants():
    baseline = make_report(n=100_000)
    smoke_ok = make_report(n=2000)
    assert check_query_regression(smoke_ok, baseline) == []
    # Auto far slower than best single kernel: the scale-free invariant
    # trips even without any comparable baseline cell.
    smoke_bad = make_report(n=2000, auto_p50=0.50, csr_p50=0.10)
    failures = check_query_regression(smoke_bad, baseline)
    assert any("auto p50" in f for f in failures)
    # Missing batch sweep also trips the invariant path.
    smoke_nobatch = make_report(n=2000)
    smoke_nobatch["cells"][0]["batch"] = []
    failures = check_query_regression(smoke_nobatch, baseline)
    assert any("batch sweep missing" in f for f in failures)


def test_missing_crosscheck_marker_rejected():
    baseline = make_report()
    unchecked = copy.deepcopy(baseline)
    del unchecked["crosscheck"]
    failures = check_query_regression(unchecked, baseline)
    assert any("crosscheck" in f for f in failures)


def test_malformed_reports_rejected_outright():
    report = make_report()
    broken = copy.deepcopy(report)
    broken["cells"][0]["kernels"].pop("reference")
    with pytest.raises((ValueError, KeyError)):
        check_query_regression(broken, report)
    with pytest.raises((ValueError, KeyError)):
        check_query_regression(report, broken)


def test_load_report_validates(tmp_path):
    path = tmp_path / "report.json"
    path.write_text(json.dumps(make_report()))
    assert load_report(str(path))["suite"] == "wallclock"
    path.write_text(json.dumps({"suite": "wallclock"}))
    with pytest.raises((ValueError, KeyError)):
        load_report(str(path))


def make_serve_report(*, n=20_000, closed_qps=1500.0, top_occupancy=12.0):
    def entry(rate, occupancy):
        return {
            "arrival_rate": rate,
            "offered_qps": rate,
            "queries": 512,
            "completed": 512,
            "rejected": 0,
            "qps": min(rate, closed_qps),
            "p50_ms": 3.0,
            "p95_ms": 8.0,
            "p99_ms": 20.0,
            "batch_occupancy": occupancy,
            "batches": 100,
            "slo_violations": 5,
        }

    return {
        "suite": "serve",
        "algorithm": "DL+",
        "distribution": "IND",
        "n": n,
        "d": 4,
        "k": 10,
        "queries": 512,
        "distinct": 32,
        "seed": 7,
        "build_seconds": 1.0,
        "crosscheck": "bitwise",
        "gateway": {
            "max_batch": 32,
            "flush_window_ms": 2.0,
            "slo_target_ms": 10.0,
            "max_pending": 4096,
        },
        "closed_loop": {
            "clients": 16,
            "queries": 512,
            "qps": closed_qps,
            "p50_ms": 5.0,
            "p95_ms": 12.0,
            "p99_ms": 25.0,
            "batch_occupancy": 16.0,
        },
        "open_loop": [
            entry(closed_qps * 0.5, 3.0),
            entry(closed_qps * 2.0, top_occupancy),
        ],
    }


def test_serve_identical_reports_pass():
    report = make_serve_report()
    assert check_serve_regression(report, report) == []


def test_serve_matched_workload_capacity_drop_fails():
    baseline = make_serve_report(closed_qps=1500.0)
    fresh = make_serve_report(closed_qps=1500.0 / 1.3)
    failures = check_serve_regression(fresh, baseline)
    assert any("closed-loop capacity" in f for f in failures)
    within = make_serve_report(closed_qps=1500.0 / 1.2)
    assert check_serve_regression(within, baseline) == []


def test_serve_no_overlap_skips_capacity_comparison():
    """A smoke report at a different n must not gate on absolute q/s —
    only the scale-free occupancy invariant applies."""
    baseline = make_serve_report(n=20_000, closed_qps=1500.0)
    smoke = make_serve_report(n=1500, closed_qps=100.0)
    assert check_serve_regression(smoke, baseline) == []


def test_serve_occupancy_invariant_trips():
    baseline = make_serve_report()
    degenerate = make_serve_report(top_occupancy=1.0)
    failures = check_serve_regression(degenerate, baseline)
    assert any("occupancy" in f for f in failures)


def test_serve_missing_crosscheck_marker_rejected():
    baseline = make_serve_report()
    unchecked = copy.deepcopy(baseline)
    del unchecked["crosscheck"]
    failures = check_serve_regression(unchecked, baseline)
    assert any("crosscheck" in f for f in failures)


def test_check_regression_dispatches_by_suite():
    query = make_report()
    serve = make_serve_report()
    assert check_regression(query, query) == []
    assert check_regression(serve, serve) == []
    failures = check_regression(serve, query)
    assert any("suite mismatch" in f for f in failures)


def test_load_report_dispatches_serve_validator(tmp_path):
    path = tmp_path / "serve.json"
    path.write_text(json.dumps(make_serve_report()))
    assert load_report(str(path))["suite"] == "serve"
    broken = make_serve_report()
    broken["open_loop"][0]["completed"] = 1  # completed+rejected != queries
    path.write_text(json.dumps(broken))
    with pytest.raises(ValueError):
        load_report(str(path))


def test_bench_check_cli_routes_serve_reports(tmp_path, capsys):
    from repro.cli import main

    fresh = tmp_path / "fresh_serve.json"
    baseline = tmp_path / "baseline_serve.json"
    fresh.write_text(json.dumps(make_serve_report()))
    baseline.write_text(json.dumps(make_serve_report()))
    assert (
        main(
            ["bench-check", "--fresh", str(fresh), "--baseline", str(baseline)]
        )
        == 0
    )
    assert "bench-check OK" in capsys.readouterr().out

    fresh.write_text(json.dumps(make_serve_report(top_occupancy=0.9)))
    assert (
        main(
            ["bench-check", "--fresh", str(fresh), "--baseline", str(baseline)]
        )
        == 1
    )
    assert "occupancy" in capsys.readouterr().out


def test_bench_check_cli_exit_codes(tmp_path, capsys):
    from repro.cli import main

    fresh = tmp_path / "fresh.json"
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(make_report(csr_p50=1.0)))
    fresh.write_text(json.dumps(make_report(csr_p50=1.0)))
    assert (
        main(["bench-check", "--fresh", str(fresh), "--baseline", str(baseline)]) == 0
    )
    assert "bench-check OK" in capsys.readouterr().out

    fresh.write_text(json.dumps(make_report(csr_p50=2.0)))
    assert (
        main(["bench-check", "--fresh", str(fresh), "--baseline", str(baseline)]) == 1
    )
    out = capsys.readouterr().out
    assert "kernel csr" in out
