"""Lower-facet enumeration: structure, normals, degeneracy fallbacks."""

import numpy as np
import pytest

from repro.geometry import lower_facets
from repro.geometry.facets import Facet, lower_facet_vertices


def test_2d_facets_are_chain_segments(rng):
    points = rng.random((60, 2))
    facets = lower_facets(points)
    for facet in facets:
        assert facet.members.shape[0] == 2
        assert facet.pure
        assert facet.normal is not None
        # Normals point down-left (outward from conv(S) + R+^d).
        assert np.all(facet.normal <= 1e-12)
        np.testing.assert_allclose(np.linalg.norm(facet.normal), 1.0)
        # Both members lie on the hyperplane.
        for member in facet.members:
            assert facet.normal @ points[member] + facet.offset == pytest.approx(
                0.0, abs=1e-9
            )


@pytest.mark.parametrize("d", [3, 4])
def test_highd_lower_facets_have_nonpositive_normals(d, rng):
    points = rng.random((80, d))
    facets = lower_facets(points)
    assert facets
    for facet in facets:
        if facet.normal is not None:
            assert np.all(facet.normal <= 1e-3)
        assert 1 <= facet.members.shape[0] <= d


def test_pure_facets_span_hyperplane(rng):
    points = rng.random((80, 3))
    pure = [f for f in lower_facets(points) if f.pure]
    assert pure, "random 3-D data must produce pure lower facets"
    for facet in pure:
        assert facet.members.shape[0] == 3
        residuals = points[facet.members] @ facet.normal + facet.offset
        np.testing.assert_allclose(residuals, 0.0, atol=1e-8)


def test_single_point():
    facets = lower_facets(np.array([[0.5, 0.5, 0.5]]))
    assert len(facets) == 1
    np.testing.assert_array_equal(facets[0].members, [0])


def test_1d_min_point():
    facets = lower_facets(np.array([[0.9], [0.1], [0.5]]))
    assert len(facets) == 1
    np.testing.assert_array_equal(facets[0].members, [1])


def test_identical_points_degenerate():
    points = np.tile([0.3, 0.3, 0.3], (5, 1))
    facets = lower_facets(points)
    assert len(facets) == 1
    assert facets[0].members.shape[0] >= 1


def test_coplanar_points_fallback():
    """Points on a hyperplane: qhull fails flat input, fallback must cover."""
    rng = np.random.default_rng(3)
    xy = rng.random((20, 2))
    z = 1.0 - 0.5 * xy[:, 0] - 0.5 * xy[:, 1]
    points = np.column_stack([xy, z])
    facets = lower_facets(points)
    assert facets
    covered = lower_facet_vertices(points)
    assert covered.shape[0] >= 1


def test_too_few_points_for_hull():
    points = np.array([[0.1, 0.9, 0.5], [0.9, 0.1, 0.5]])
    facets = lower_facets(points)
    assert facets
    covered = set(np.concatenate([f.members for f in facets]).tolist())
    assert covered == {0, 1}


def test_empty():
    assert lower_facets(np.empty((0, 3))) == []
    assert lower_facet_vertices(np.empty((0, 3))).shape == (0,)


def test_facet_dataclass_defaults():
    facet = Facet(members=np.array([0, 1], dtype=np.intp))
    assert facet.normal is None
    assert not facet.pure
