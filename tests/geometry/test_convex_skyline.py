"""Convex-skyline extraction against the LP definition (Definition 4)."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.geometry import convex_skyline
from repro.geometry.convex_skyline import convex_skyline_with_facets


def lp_argmin_members(points: np.ndarray) -> set[int]:
    """Reference: indices minimizing some strictly positive weight vector."""
    n, d = points.shape
    members = set()
    for i in range(n):
        diff = points[i][None, :] - np.delete(points, i, axis=0)
        result = linprog(
            np.zeros(d),
            A_ub=diff,
            b_ub=np.zeros(diff.shape[0]),
            A_eq=np.ones((1, d)),
            b_eq=[1.0],
            bounds=[(1e-7, 1.0)] * d,
            method="highs",
        )
        if result.status == 0:
            members.add(i)
    return members


@pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
def test_contains_every_strict_argmin(d, rng):
    points = rng.random((35, d))
    mine = set(convex_skyline(points).tolist())
    assert lp_argmin_members(points) <= mine


@pytest.mark.parametrize("d", [2, 3, 4])
def test_directional_argmin_always_inside(d, rng):
    points = rng.random((200, d))
    csky = set(convex_skyline(points).tolist())
    for _ in range(30):
        w = rng.dirichlet(np.ones(d))
        scores = points @ w
        argmins = set(np.nonzero(scores == scores.min())[0].tolist())
        assert csky & argmins


def test_min_sum_always_member(rng):
    for d in (2, 3, 4):
        points = rng.random((60, d))
        csky = convex_skyline(points)
        assert int(np.argmin(points.sum(axis=1))) in csky


def test_cone_apex_found():
    """Regression: a point set in a narrow cone — every conv(S) facet at the
    apex has mixed-sign normals, so naive lower-facet filtering misses it."""
    apex = np.array([[0.0, 0.0, 0.0]])
    rng = np.random.default_rng(0)
    # Points spread inside the cone around the diagonal direction.
    base = rng.dirichlet(np.ones(3), size=40) * 0.2 + 0.4
    points = np.vstack([apex, base])
    assert 0 in convex_skyline(points)


def test_empty_and_tiny():
    assert convex_skyline(np.empty((0, 3))).shape == (0,)
    np.testing.assert_array_equal(convex_skyline(np.array([[0.1, 0.2, 0.3]])), [0])
    two = np.array([[0.1, 0.9, 0.5], [0.9, 0.1, 0.5]])
    assert set(convex_skyline(two).tolist()) == {0, 1}


def test_dominated_pair_only_min():
    points = np.array([[0.1, 0.1, 0.1], [0.2, 0.2, 0.2]])
    np.testing.assert_array_equal(convex_skyline(points), [0])


def test_facets_cover_vertices(rng):
    for d in (2, 3, 4):
        points = rng.random((50, d))
        vertices, facets = convex_skyline_with_facets(points)
        covered = np.unique(np.concatenate([f.members for f in facets]))
        assert set(vertices.tolist()) == set(covered.tolist())


def test_with_facets_empty():
    vertices, facets = convex_skyline_with_facets(np.empty((0, 2)))
    assert vertices.shape == (0,)
    assert facets == []


def test_matches_2d_chain(rng):
    from repro.geometry import lower_left_chain

    points = rng.random((80, 2))
    csky = set(convex_skyline(points).tolist())
    chain = set(lower_left_chain(points).tolist())
    assert chain <= csky
