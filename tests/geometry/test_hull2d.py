"""2-D skyline sweep and lower-left convex chain."""

import numpy as np
import pytest

from repro.geometry import lower_left_chain, skyline_2d
from repro.skyline import skyline_bnl


def test_skyline_2d_matches_bnl(rng):
    points = rng.random((300, 2))
    np.testing.assert_array_equal(skyline_2d(points), skyline_bnl(points))


def test_skyline_2d_duplicates_survive():
    points = np.array([[0.2, 0.8], [0.2, 0.8], [0.5, 0.5]])
    np.testing.assert_array_equal(skyline_2d(points), [0, 1, 2])


def test_skyline_2d_rejects_wrong_dim():
    with pytest.raises(ValueError):
        skyline_2d(np.zeros((3, 3)))


def test_chain_order_x_ascending(rng):
    points = rng.random((200, 2))
    chain = lower_left_chain(points)
    xs = points[chain][:, 0]
    ys = points[chain][:, 1]
    assert np.all(np.diff(xs) > 0)
    assert np.all(np.diff(ys) < 0)


def test_chain_is_convex(rng):
    points = rng.random((200, 2))
    chain = points[lower_left_chain(points)]
    slopes = np.diff(chain[:, 1]) / np.diff(chain[:, 0])
    assert np.all(np.diff(slopes) > 0), "slopes must strictly increase"


def test_chain_endpoints_are_axis_minima(rng):
    points = rng.random((100, 2))
    chain = lower_left_chain(points)
    assert points[chain[0], 0] == points[:, 0].min()
    assert points[chain[-1], 1] == points[:, 1].min()


def test_chain_contains_every_directional_argmin(rng):
    points = rng.random((100, 2))
    chain = set(lower_left_chain(points).tolist())
    for _ in range(25):
        w = rng.dirichlet([1, 1])
        scores = points @ w
        argmins = np.nonzero(scores == scores.min())[0]
        assert chain & set(argmins.tolist())


def test_chain_single_point():
    np.testing.assert_array_equal(lower_left_chain(np.array([[0.3, 0.4]])), [0])


def test_chain_identical_points():
    points = np.tile([0.3, 0.4], (4, 1))
    chain = lower_left_chain(points)
    assert chain.shape == (1,)


def test_chain_collinear_points_keep_endpoints():
    points = np.array([[0.1, 0.5], [0.2, 0.4], [0.3, 0.3]])
    chain = lower_left_chain(points)
    np.testing.assert_array_equal(chain, [0, 2])


def test_chain_vertical_stack_single_vertex():
    points = np.array([[0.5, 0.1], [0.5, 0.5], [0.5, 0.9]])
    np.testing.assert_array_equal(lower_left_chain(points), [0])


def test_chain_dominated_point_excluded():
    points = np.array([[0.1, 0.9], [0.9, 0.1], [0.45, 0.5], [0.6, 0.6]])
    chain = lower_left_chain(points)
    assert 3 not in chain
    assert set(chain.tolist()) == {0, 1, 2}


def test_chain_empty():
    assert lower_left_chain(np.empty((0, 2))).shape == (0,)
