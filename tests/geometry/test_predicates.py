"""Filtered-exact orientation predicates."""

import numpy as np

from repro.geometry.predicates import (
    _orientation_exact,
    collinear,
    orientation,
    point_below_segment,
    turns_left,
)


def test_basic_orientations():
    a, b = (0.0, 0.0), (1.0, 0.0)
    assert orientation(a, b, (0.5, 1.0)) == 1   # left
    assert orientation(a, b, (0.5, -1.0)) == -1  # right
    assert orientation(a, b, (2.0, 0.0)) == 0   # collinear


def test_chain_convention():
    # Lower-left chain a(0,3) -> b(1,1) -> c(2,0): convex, keep the middle.
    assert turns_left((0.0, 3.0), (1.0, 1.0), (2.0, 0.0))
    # Concave middle: pop.
    assert not turns_left((0.0, 3.0), (1.0, 2.9), (2.0, 0.0))
    # Collinear middle: pop.
    assert not turns_left((0.0, 2.0), (1.0, 1.0), (2.0, 0.0))


def test_exact_fallback_near_collinear():
    """Points collinear up to one ulp: the filter must go exact."""
    a = (0.0, 0.0)
    b = (1.0, 1.0)
    eps = np.nextafter(2.0, 3.0) - 2.0
    exactly = (2.0, 2.0)
    above = (2.0, 2.0 + eps)
    below = (2.0, 2.0 - eps / 2)
    assert orientation(a, b, exactly) == 0
    assert orientation(a, b, above) == 1
    assert orientation(a, b, below) == -1


def test_exact_matches_float_on_clear_cases(rng):
    for _ in range(300):
        pts = rng.random((3, 2))
        det = float(
            (pts[1, 0] - pts[0, 0]) * (pts[2, 1] - pts[0, 1])
            - (pts[1, 1] - pts[0, 1]) * (pts[2, 0] - pts[0, 0])
        )
        if abs(det) < 1e-9:
            continue
        expected = 1 if det > 0 else -1
        assert orientation(pts[0], pts[1], pts[2]) == expected
        assert _orientation_exact(*pts[0], *pts[1], *pts[2]) == expected


def test_tiny_coordinates_decided_exactly():
    """Sub-normal-ish magnitudes that float cross products squash to 0."""
    a = (0.0, 0.0)
    b = (1e-200, 1e-200)
    c = (2e-200, 3e-200)
    assert orientation(a, b, c) == 1
    assert orientation(a, b, (2e-200, 1.5e-200)) == -1


def test_collinear_and_below_segment():
    p, q = (0.0, 1.0), (1.0, 0.0)
    assert collinear(p, q, (0.5, 0.5))
    assert point_below_segment(p, q, (0.25, 0.25))
    assert not point_below_segment(p, q, (0.75, 0.75))


def test_chain_still_correct_after_predicate_swap(rng):
    from repro.geometry import lower_left_chain

    points = rng.random((150, 2))
    chain = points[lower_left_chain(points)]
    slopes = np.diff(chain[:, 1]) / np.diff(chain[:, 0])
    assert np.all(np.diff(slopes) > 0)
