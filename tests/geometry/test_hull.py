"""Hardened convex-hull wrapper."""

import numpy as np

from repro.geometry import convex_hull


def test_simplex_hull():
    points = np.array(
        [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
    )
    result = convex_hull(points)
    assert result.ok
    assert set(result.vertices.tolist()) == {0, 1, 2, 3}
    assert result.equations.shape[1] == 4
    assert result.simplices.shape[1] == 3


def test_interior_point_not_vertex():
    points = np.array(
        [
            [0.0, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],
            [0.5, 0.5],
        ]
    )
    result = convex_hull(points)
    assert result.ok
    assert 4 not in result.vertices


def test_too_few_points_not_ok():
    assert not convex_hull(np.array([[0.0, 0.0], [1.0, 1.0]])).ok
    assert not convex_hull(np.empty((0, 2))).ok


def test_degenerate_collinear_joggled_or_failed():
    points = np.array([[0.0, 0.0], [0.5, 0.5], [1.0, 1.0], [0.25, 0.25]])
    result = convex_hull(points)  # must not raise either way
    assert result.ok in (True, False)


def test_outward_normal_orientation(rng):
    points = rng.random((30, 3))
    result = convex_hull(points)
    assert result.ok
    interior = points.mean(axis=0)
    residual = result.equations[:, :-1] @ interior + result.equations[:, -1]
    assert np.all(residual < 0), "interior point must satisfy all inequalities"
