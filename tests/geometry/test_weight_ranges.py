"""§V-A weight-range partition of the 2-D simplex."""

import numpy as np
import pytest

from repro.exceptions import GeometryError, InvalidWeightError
from repro.geometry import WeightRangePartition, lower_left_chain


def make_partition(points):
    chain = lower_left_chain(points)
    return WeightRangePartition(points[chain], chain), chain


def test_top1_matches_bruteforce(rng):
    points = rng.random((60, 2))
    partition, _ = make_partition(points)
    for _ in range(50):
        w1 = float(rng.uniform(0.01, 0.99))
        w = np.array([w1, 1 - w1])
        expected = int(np.argmin(points @ w))
        got = partition.top1_id(w1)
        assert points[got] @ w == pytest.approx(points[expected] @ w)


def test_ranges_are_disjoint_cover(rng):
    points = rng.random((40, 2))
    partition, chain = make_partition(points)
    ranges = partition.ranges()
    assert ranges[0][0] == 0.0
    assert ranges[-1][1] == 1.0
    for (lo1, hi1, _), (lo2, hi2, _) in zip(ranges, ranges[1:]):
        assert hi1 == lo2
    assert len(ranges) == chain.shape[0]


def test_extreme_weights_pick_axis_minima(rng):
    points = rng.random((40, 2))
    partition, _ = make_partition(points)
    # w1 -> 1: price dominates -> min-x point; w1 -> 0: min-y point.
    assert points[partition.top1_id(0.999), 0] == points[:, 0].min()
    assert points[partition.top1_id(0.001), 1] == points[:, 1].min()


def test_invalid_w1_rejected(rng):
    points = rng.random((10, 2))
    partition, _ = make_partition(points)
    for bad in (0.0, 1.0, -0.5, 1.5):
        with pytest.raises(InvalidWeightError):
            partition.top1_id(bad)


def test_single_tuple_chain():
    partition = WeightRangePartition(
        np.array([[0.2, 0.3]]), np.array([7], dtype=np.intp)
    )
    assert partition.top1_id(0.5) == 7
    assert partition.ranges() == [(0.0, 1.0, 7)]


def test_misaligned_inputs_rejected():
    with pytest.raises(GeometryError):
        WeightRangePartition(np.ones((2, 2)), np.array([0]))


def test_empty_chain_rejected():
    with pytest.raises(GeometryError):
        WeightRangePartition(np.empty((0, 2)), np.empty(0, dtype=np.intp))


def test_non_2d_rejected():
    with pytest.raises(GeometryError):
        WeightRangePartition(np.ones((2, 3)), np.array([0, 1]))


def test_near_collinear_chain_tolerated():
    """Float-perturbed collinear vertices tie breakpoints; still answers."""
    points = np.array([[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]])
    partition = WeightRangePartition(points, np.array([0, 1, 2], dtype=np.intp))
    for w1 in (0.2, 0.5, 0.8):
        top = partition.top1_id(w1)
        w = np.array([w1, 1 - w1])
        scores = points @ w
        assert scores[top] == pytest.approx(scores.min())


def test_non_chain_input_rejected():
    # x ascending but y ascending too: not a valid lower-left chain.
    with pytest.raises(GeometryError):
        WeightRangePartition(
            np.array([[0.1, 0.1], [0.2, 0.2]]), np.array([0, 1])
        )
