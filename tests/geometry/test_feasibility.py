"""Convex-combination dominance (the ∃-dominance witness test)."""

import numpy as np

from repro.geometry import convex_combination_dominates
from repro.geometry.feasibility import dominating_combination


def test_single_point_facet():
    assert convex_combination_dominates(np.array([[0.1, 0.1]]), np.array([0.2, 0.2]))
    assert not convex_combination_dominates(
        np.array([[0.3, 0.1]]), np.array([0.2, 0.2])
    )


def test_paper_example2_segment():
    """{a, b} covers f via the segment even though neither endpoint does."""
    a, b, f = np.array([0.10, 0.60]), np.array([0.30, 0.44]), np.array([0.25, 0.50])
    assert not convex_combination_dominates(a[None, :], f)
    assert not convex_combination_dominates(b[None, :], f)
    assert convex_combination_dominates(np.vstack([a, b]), f)


def test_segment_above_target_fails():
    segment = np.array([[0.0, 1.0], [1.0, 0.5]])
    assert not convex_combination_dominates(segment, np.array([0.5, 0.2]))


def test_segment_sideways_target():
    """Feasible only at an extreme λ: target far along one axis."""
    segment = np.array([[0.0, 1.0], [1.0, 0.0]])
    assert convex_combination_dominates(segment, np.array([10.0, 0.05]))
    assert not convex_combination_dominates(segment, np.array([10.0, -0.05]))


def test_weak_contact_counts():
    """Boundary contact (equality) is accepted — duplicate tolerance."""
    segment = np.array([[0.0, 1.0], [1.0, 0.0]])
    assert convex_combination_dominates(segment, np.array([0.5, 0.5]))


def test_triangle_facet_lp_path(rng):
    triangle = np.array([[0.0, 0.0, 1.0], [0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
    # Centroid of the triangle is (1/3, 1/3, 1/3); anything above it works.
    assert convex_combination_dominates(triangle, np.array([0.4, 0.4, 0.4]))
    assert not convex_combination_dominates(triangle, np.array([0.2, 0.2, 0.2]))


def test_empty_facet():
    assert not convex_combination_dominates(np.empty((0, 2)), np.array([0.5, 0.5]))


def test_witness_is_valid(rng):
    """dominating_combination returns an actual witness below the target."""
    for m, d in ((2, 2), (3, 3), (4, 3)):
        for _ in range(20):
            facet = rng.random((m, d))
            target = rng.random(d)
            witness = dominating_combination(facet, target)
            feasible = convex_combination_dominates(facet, target)
            assert (witness is not None) == feasible
            if witness is not None:
                assert np.all(witness <= target + 1e-6)
                # Witness must be (near) a convex combination: inside bbox.
                assert np.all(witness >= facet.min(axis=0) - 1e-9)
                assert np.all(witness <= facet.max(axis=0) + 1e-9)


def test_witness_empty_and_single():
    assert dominating_combination(np.empty((0, 2)), np.array([0.5, 0.5])) is None
    w = dominating_combination(np.array([[0.1, 0.1]]), np.array([0.5, 0.5]))
    np.testing.assert_allclose(w, [0.1, 0.1])
    assert dominating_combination(np.array([[0.9, 0.9]]), np.array([0.5, 0.5])) is None


def test_lemma2_inequality(rng):
    """If the facet covers t', then for every positive w some member scores
    weakly below t' — the Lemma 2 guarantee the gating relies on."""
    for _ in range(30):
        facet = rng.random((3, 3))
        target = rng.random(3) + 0.2
        if not convex_combination_dominates(facet, target, tol=0.0):
            continue
        for _ in range(10):
            w = rng.dirichlet(np.ones(3))
            assert (facet @ w).min() <= target @ w + 1e-9
