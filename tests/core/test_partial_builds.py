"""Bounded (max_layers) builds interacting with zero layers and queries."""

import numpy as np
import pytest

from repro.baselines import DGPlusIndex
from repro.core import DLIndex, DLPlusIndex
from repro.data import generate
from repro.exceptions import IndexCapacityError
from repro.relation import top_k_bruteforce


@pytest.fixture(scope="module")
def relation():
    return generate("ANT", 500, 3, seed=61)


@pytest.mark.parametrize("cls", [DLPlusIndex, DGPlusIndex])
def test_partial_build_with_zero_layer_correct(cls, relation, rng):
    index = cls(relation, max_layers=5).build()
    assert not index.structure.complete
    for _ in range(5):
        w = np.clip(rng.dirichlet(np.ones(3)), 1e-6, None)
        result = index.query(w, 5)
        _, ref = top_k_bruteforce(relation.matrix, w / w.sum(), 5)
        np.testing.assert_allclose(np.sort(result.scores), np.sort(ref), atol=1e-9)


def test_partial_build_capacity_respects_coarse_layers(relation):
    index = DLPlusIndex(relation, max_layers=4).build()
    index.query(np.ones(3) / 3, 4)
    with pytest.raises(IndexCapacityError):
        index.query(np.ones(3) / 3, 5)


def test_partial_2d_chain_zero_layer():
    relation = generate("IND", 400, 2, seed=62)
    index = DLPlusIndex(relation, max_layers=3).build()
    result = index.query(np.array([0.3, 0.7]), 1)
    assert result.cost == 1
    _, ref = top_k_bruteforce(relation.matrix, np.array([0.3, 0.7]), 1)
    np.testing.assert_allclose(result.scores, ref, atol=1e-12)


def test_partial_vs_full_same_answers(relation, rng):
    partial = DLIndex(relation, max_layers=6).build()
    full = DLIndex(relation).build()
    for _ in range(5):
        w = np.clip(rng.dirichlet(np.ones(3)), 1e-6, None)
        a = partial.query(w, 6)
        b = full.query(w, 6)
        np.testing.assert_array_equal(a.ids, b.ids)
        # Partial and full structures gate identically within shared layers.
        assert a.cost == b.cost


def test_leftover_accounting(relation):
    index = DLIndex(relation, max_layers=2).build()
    blueprint = index.blueprint
    materialized = sum(layer.shape[0] for layer in blueprint.coarse_layers)
    assert materialized + blueprint.leftover.shape[0] == relation.n
