"""∃-dominance-set assignment: coverage, witnesses, fallbacks."""

import numpy as np
import pytest

from repro.core.eds import assign_covering_facets
from repro.exceptions import IndexConstructionError
from repro.geometry import convex_combination_dominates
from repro.geometry.convex_skyline import convex_skyline_with_facets


def peel_once(points):
    """(sublayer points, facets, residual points) of one convex peel."""
    vertices, facets = convex_skyline_with_facets(points)
    mask = np.ones(points.shape[0], dtype=bool)
    mask[vertices] = False
    return points[vertices], _relocalize(facets, vertices), points[mask]


def _relocalize(facets, vertices):
    from dataclasses import replace

    position = {int(v): i for i, v in enumerate(vertices)}
    return [
        replace(
            f,
            members=np.asarray([position[int(m)] for m in f.members], dtype=np.intp),
        )
        for f in facets
    ]


@pytest.mark.parametrize("d", [2, 3, 4])
def test_every_assignment_is_a_true_eds(d, rng):
    """Each assigned parent set admits a convex combination below its target."""
    from repro.skyline import skyline

    points = rng.random((300, d))
    layer = points[skyline(points)]
    sub_points, facets, residual = peel_once(layer)
    if residual.shape[0] == 0:
        pytest.skip("layer had a single sublayer")
    assignments = assign_covering_facets(sub_points, facets, residual)
    assert len(assignments) == residual.shape[0]
    for parents, target in zip(assignments, residual):
        assert parents.shape[0] >= 1
        assert convex_combination_dominates(sub_points[parents], target, tol=1e-6)


@pytest.mark.parametrize("d", [2, 3, 4])
def test_lemma2_score_guarantee(d, rng):
    """Some parent scores weakly below the gated tuple for every w > 0."""
    from repro.skyline import skyline

    points = rng.random((200, d))
    layer = points[skyline(points)]
    sub_points, facets, residual = peel_once(layer)
    if residual.shape[0] == 0:
        pytest.skip("layer had a single sublayer")
    assignments = assign_covering_facets(sub_points, facets, residual)
    for _ in range(10):
        w = rng.dirichlet(np.ones(d))
        residual_scores = residual @ w
        for parents, target_score in zip(assignments, residual_scores):
            assert (sub_points[parents] @ w).min() <= target_score + 1e-7


def test_single_point_dominator_fast_path():
    prev = np.array([[0.1, 0.1]])
    facets = _relocalize(*_single_facet(prev))
    assignments = assign_covering_facets(prev, facets, np.array([[0.5, 0.5]]))
    np.testing.assert_array_equal(assignments[0], [0])


def _single_facet(prev):
    vertices, facets = convex_skyline_with_facets(prev)
    return facets, vertices


def test_uncoverable_target_raises():
    prev = np.array([[0.5, 0.5], [0.6, 0.4]])
    vertices, facets = convex_skyline_with_facets(prev)
    with pytest.raises(IndexConstructionError, match="coverage violated"):
        assign_covering_facets(prev, facets, np.array([[0.0, 0.0]]))


def test_empty_targets():
    prev = np.array([[0.1, 0.1]])
    vertices, facets = convex_skyline_with_facets(prev)
    assert assign_covering_facets(prev, facets, np.empty((0, 2))) == []


def test_empty_sublayer_rejected():
    with pytest.raises(IndexConstructionError, match="empty sublayer"):
        assign_covering_facets(np.empty((0, 2)), [], np.array([[0.5, 0.5]]))


def test_duplicate_target_covered_by_weak_dominance():
    """A tuple equal to a sublayer vertex is covered via weak contact."""
    prev = np.array([[0.2, 0.8], [0.8, 0.2]])
    vertices, facets = convex_skyline_with_facets(prev)
    assignments = assign_covering_facets(prev, facets, np.array([[0.2, 0.8]]))
    assert assignments[0].shape[0] >= 1


def test_min_violation_lp_accepts_noise_rejects_real_gaps():
    """The last-resort LP accepts covers violated only at numerical-noise
    scale (boundary-degenerate targets) and still rejects genuine gaps."""
    from repro.core.eds import _lp_min_violation_support

    simplex = np.array([[0.0, 1.0], [1.0, 0.0]])
    # Barely outside the hull: needs a 1e-8 violation — accepted.
    support = _lp_min_violation_support(
        simplex, np.array([0.5, 0.5 - 1e-8]), max_violation=1e-7
    )
    assert support is not None
    assert set(support.tolist()) <= {0, 1}
    # Far outside: needs ~0.2 of violation — still a coverage error.
    assert (
        _lp_min_violation_support(
            simplex, np.array([0.2, 0.2]), max_violation=1e-7
        )
        is None
    )


def test_uncoverable_target_still_raises_after_relaxation():
    """max_violation keeps genuinely uncoverable targets an error."""
    prev = np.array([[0.5, 0.5], [0.6, 0.4]])
    _, facets = convex_skyline_with_facets(prev)
    with pytest.raises(IndexConstructionError):
        assign_covering_facets(prev, facets, np.array([[0.1, 0.1]]))
