"""Algorithm 2: the gated traversal engine."""

import numpy as np
import pytest

from repro.core.build import build_dual_layer
from repro.core.query import process_top_k
from repro.data import generate
from repro.exceptions import IndexCapacityError
from repro.relation import top_k_bruteforce
from repro.stats import AccessCounter


def test_results_sorted_and_correct(rng):
    relation = generate("IND", 200, 3, seed=2)
    structure = build_dual_layer(relation.matrix).structure
    for _ in range(5):
        w = rng.dirichlet(np.ones(3))
        counter = AccessCounter()
        ids, scores = process_top_k(structure, w, 10, counter)
        assert np.all(np.diff(scores) >= 0)
        _, ref_scores = top_k_bruteforce(relation.matrix, w, 10)
        np.testing.assert_allclose(scores, ref_scores, atol=1e-12)


def test_cost_counts_each_access_once(rng):
    relation = generate("IND", 150, 2, seed=3)
    structure = build_dual_layer(relation.matrix).structure
    counter = AccessCounter()
    process_top_k(structure, np.array([0.5, 0.5]), 5, counter)
    # Cost is bounded by the number of nodes and at least k.
    assert 5 <= counter.total <= structure.n_nodes


def test_cost_at_most_n_even_for_full_k(rng):
    relation = generate("ANT", 120, 3, seed=4)
    structure = build_dual_layer(relation.matrix).structure
    counter = AccessCounter()
    ids, _ = process_top_k(structure, np.ones(3) / 3, 120, counter)
    assert ids.shape[0] == 120
    assert np.unique(ids).shape[0] == 120
    assert counter.total == 120


def test_capacity_error_on_partial_structure():
    relation = generate("IND", 200, 2, seed=5)
    structure = build_dual_layer(relation.matrix, max_layers=3).structure
    counter = AccessCounter()
    # k within the materialized layers: fine.
    process_top_k(structure, np.array([0.5, 0.5]), 3, counter)
    with pytest.raises(IndexCapacityError):
        process_top_k(structure, np.array([0.5, 0.5]), 4, AccessCounter())


def test_partial_structure_answers_match_bruteforce(rng):
    relation = generate("ANT", 300, 3, seed=6)
    structure = build_dual_layer(relation.matrix, max_layers=5).structure
    for _ in range(5):
        w = rng.dirichlet(np.ones(3))
        ids, scores = process_top_k(structure, w, 5, AccessCounter())
        _, ref = top_k_bruteforce(relation.matrix, w, 5)
        np.testing.assert_allclose(scores, ref, atol=1e-12)


def test_pseudo_nodes_counted_separately():
    from repro.core.index import DLPlusIndex

    relation = generate("IND", 200, 3, seed=7)
    index = DLPlusIndex(relation).build()
    result = index.query(np.ones(3) / 3, 5)
    assert result.counter.pseudo > 0
    assert result.counter.real >= 5
    # Pseudo nodes are never emitted.
    assert np.all(result.ids < relation.n)


def test_empty_structure():
    structure = build_dual_layer(np.empty((0, 2))).structure
    ids, scores = process_top_k(structure, np.array([0.5, 0.5]), 0, AccessCounter())
    assert ids.shape == (0,)


class _TracingCounter(AccessCounter):
    """A counter with a pure trace hook that records but never counts."""

    __slots__ = ("trace",)

    def __init__(self) -> None:
        super().__init__()
        self.trace: list[int] = []

    def count_real_tuple(self, tuple_id: int) -> None:
        self.trace.append(int(tuple_id))


def test_trace_hook_is_additive(rng):
    """A count_real_tuple hook observes accesses; it must not replace the
    Definition 9 accounting (regression: the hook used to be called
    *instead of* count_real, under-reporting cost)."""
    relation = generate("ANT", 180, 3, seed=11)
    structure = build_dual_layer(relation.matrix).structure
    for _ in range(5):
        w = rng.dirichlet(np.ones(3))
        plain = AccessCounter()
        ids_plain, scores_plain = process_top_k(structure, w, 10, plain)
        traced = _TracingCounter()
        ids_traced, scores_traced = process_top_k(structure, w, 10, traced)
        assert traced.real == plain.real
        assert traced.pseudo == plain.pseudo
        assert traced.total == plain.total
        np.testing.assert_array_equal(ids_traced, ids_plain)
        np.testing.assert_array_equal(scores_traced, scores_plain)
        # The trace saw exactly one event per counted real access.
        assert len(traced.trace) == traced.real


def test_trace_recorder_does_not_double_count(rng):
    """The storage replay's recorder traces *and* relies on the engine's
    counting — its cost must equal a plain counter's, not double it."""
    from repro.storage.iocost import _TraceRecorder

    relation = generate("IND", 150, 2, seed=12)
    structure = build_dual_layer(relation.matrix).structure
    w = np.array([0.4, 0.6])
    plain = AccessCounter()
    process_top_k(structure, w, 8, plain)
    recorder = _TraceRecorder()
    process_top_k(structure, w, 8, recorder)
    assert recorder.real == plain.real == len(recorder.trace)
    assert recorder.total == plain.total
