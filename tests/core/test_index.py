"""Public DLIndex / DLPlusIndex behaviour."""

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.data import generate
from repro.exceptions import IndexCapacityError, InvalidQueryError, InvalidWeightError
from repro.relation import top_k_bruteforce


@pytest.fixture(scope="module")
def relation():
    return generate("ANT", 300, 3, seed=11)


def test_query_builds_lazily(relation):
    index = DLIndex(relation)
    result = index.query(np.ones(3) / 3, 5)
    assert len(result) == 5
    assert index._built


def test_build_returns_self(relation):
    index = DLIndex(relation)
    assert index.build() is index
    assert index.build_stats.seconds >= 0
    assert index.build_stats.num_layers >= 1
    assert index.build_stats.layer_sizes


def test_weights_are_normalized(relation):
    index = DLIndex(relation).build()
    a = index.query(np.array([1.0, 1.0, 2.0]), 5)
    b = index.query(np.array([0.25, 0.25, 0.5]), 5)
    np.testing.assert_array_equal(a.ids, b.ids)


def test_invalid_inputs_rejected(relation):
    index = DLIndex(relation).build()
    with pytest.raises(InvalidQueryError):
        index.query(np.ones(3) / 3, 0)
    with pytest.raises(InvalidWeightError):
        index.query(np.array([0.5, 0.5, 0.0]), 3)
    with pytest.raises(InvalidWeightError):
        index.query(np.array([0.5, 0.5]), 3)


def test_k_clamped_to_n():
    relation = generate("IND", 20, 2, seed=0)
    index = DLIndex(relation).build()
    result = index.query(np.array([0.5, 0.5]), 100)
    assert len(result) == 20


def test_max_layers_capacity(relation):
    index = DLIndex(relation, max_layers=3).build()
    index.query(np.ones(3) / 3, 3)
    with pytest.raises(IndexCapacityError):
        index.query(np.ones(3) / 3, 10)


def test_dlplus_zero_layer_modes(relation):
    auto = DLPlusIndex(relation).build()
    forced = DLPlusIndex(relation, zero_layer="clusters").build()
    assert auto.structure.n_pseudo > 0  # d=3 -> clustered
    assert forced.structure.n_pseudo > 0
    with pytest.raises(ValueError, match="unknown zero_layer"):
        DLPlusIndex(relation, zero_layer="magic")
    with pytest.raises(ValueError, match="2-D"):
        DLPlusIndex(relation, zero_layer="chain")


def test_dlplus_chain_mode_2d():
    relation = generate("IND", 150, 2, seed=1)
    index = DLPlusIndex(relation, zero_layer="chain").build()
    assert index.weight_partition is not None
    assert index.structure.n_pseudo == 0
    result = index.query(np.array([0.4, 0.6]), 1)
    assert result.cost == 1


def test_results_match_bruteforce_many_weights(relation, rng):
    dl = DLIndex(relation).build()
    dlp = DLPlusIndex(relation).build()
    for _ in range(10):
        w = rng.dirichlet(np.ones(3))
        ref_ids, ref_scores = top_k_bruteforce(relation.matrix, w, 8)
        for index in (dl, dlp):
            result = index.query(w, 8)
            np.testing.assert_allclose(
                np.sort(result.scores), np.sort(ref_scores), atol=1e-12
            )


def test_build_stats_extra_fields(relation):
    index = DLIndex(relation).build()
    extra = index.build_stats.extra
    assert extra["exists_edges"] > 0
    assert extra["forall_edges"] > 0
    assert extra["fine_sublayers"] >= index.build_stats.num_layers


def test_skyline_algorithm_choice(relation):
    a = DLIndex(relation, skyline_algorithm="sfs").build()
    b = DLIndex(relation, skyline_algorithm="bskytree").build()
    assert a.build_stats.layer_sizes == b.build_stats.layer_sizes
