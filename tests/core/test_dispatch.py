"""Auto-kernel dispatch: pin the decision on both sides of each threshold."""

import pytest

from repro.core import DLIndex
from repro.core.dispatch import (
    AUTO_BATCH_MIN_LANES,
    AUTO_SMALL_STRUCTURE_DIM,
    AUTO_SMALL_STRUCTURE_NODES,
    VALID_KERNELS,
    select_kernel,
)
from repro.data import generate


def test_small_structure_dispatches_reference_both_sides():
    """At d=2 the reference kernel wins below the node threshold and the
    CSR kernel wins above it — pin the decision one node either side."""
    at = select_kernel(n_nodes=AUTO_SMALL_STRUCTURE_NODES, d=2)
    above = select_kernel(n_nodes=AUTO_SMALL_STRUCTURE_NODES + 1, d=2)
    assert at == "reference"
    assert above == "csr"


def test_dimension_threshold_both_sides():
    """The small-structure exception only applies at d<=2: a 10k-node d=3
    structure already pays off the vectorized einsum."""
    small_n = AUTO_SMALL_STRUCTURE_NODES // 2
    assert select_kernel(n_nodes=small_n, d=AUTO_SMALL_STRUCTURE_DIM) == "reference"
    assert select_kernel(n_nodes=small_n, d=AUTO_SMALL_STRUCTURE_DIM + 1) == "csr"


def test_batch_width_threshold_both_sides():
    """batch_width >= AUTO_BATCH_MIN_LANES dispatches the lane-parallel
    kernel regardless of structure size; one lane fewer falls back to the
    single-query decision."""
    kw = dict(n_nodes=1000, d=2)
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES, **kw) == "batch"
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES - 1, **kw) == "reference"
    kw = dict(n_nodes=10**6, d=4)
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES, **kw) == "batch"
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES - 1, **kw) == "csr"


def test_structure_argument_supplies_shape():
    relation = generate("IND", 200, 3, seed=3)
    structure = DLIndex(relation).build().structure
    assert select_kernel(structure) == "csr"  # d=3 > small-structure dim
    assert select_kernel(structure, batch_width=AUTO_BATCH_MIN_LANES) == "batch"
    assert select_kernel(structure) == select_kernel(
        n_nodes=structure.n_nodes, d=structure.values.shape[1]
    )


def test_missing_shape_rejected():
    with pytest.raises(ValueError):
        select_kernel()
    with pytest.raises(ValueError):
        select_kernel(n_nodes=100)
    with pytest.raises(ValueError):
        select_kernel(d=2)


def test_valid_kernels_registry():
    assert set(VALID_KERNELS) == {"auto", "reference", "csr", "batch", "jit"}
    # select_kernel only ever returns concrete runnable kernels — never
    # "auto", and never "jit" (registration-only; may be unavailable).
    for n in (100, AUTO_SMALL_STRUCTURE_NODES + 1):
        for d in (2, 4):
            for width in (1, AUTO_BATCH_MIN_LANES):
                for prune in (False, True):
                    for has_bounds in (False, True):
                        picked = select_kernel(
                            n_nodes=n,
                            d=d,
                            batch_width=width,
                            prune=prune,
                            has_bounds=has_bounds,
                        )
                        assert picked in {"reference", "csr", "batch"}


def test_prune_steers_small_structures_to_csr_only_with_bounds():
    """prune=True flips the small/low-d cell to csr — but only when the
    structure actually carries a bound table; without bounds the caller
    runs unpruned and the reference kernel keeps its win."""
    kw = dict(n_nodes=AUTO_SMALL_STRUCTURE_NODES, d=2)
    assert select_kernel(**kw) == "reference"
    assert select_kernel(prune=True, has_bounds=True, **kw) == "csr"
    assert select_kernel(prune=True, has_bounds=False, **kw) == "reference"
    assert select_kernel(prune=False, has_bounds=True, **kw) == "reference"


def test_structure_supplies_has_bounds():
    """A built structure's own has_layer_bounds feeds the prune decision;
    an explicit has_bounds= overrides it."""
    relation = generate("IND", 200, 2, seed=4)
    structure = DLIndex(relation).build().structure
    assert structure.has_layer_bounds
    assert select_kernel(structure) == "reference"
    assert select_kernel(structure, prune=True) == "csr"
    assert select_kernel(structure, prune=True, has_bounds=False) == "reference"


def test_jit_slot_guarded():
    """kernel='jit' is scaffolding: unavailable by default with a clear
    error, usable once something registers, and never auto-selected."""
    from repro.core.dispatch import get_jit_kernel, register_jit_kernel
    from repro.exceptions import KernelUnavailableError

    with pytest.raises(KernelUnavailableError, match="jit"):
        get_jit_kernel()
    sentinel = object()
    fake = lambda *a, **kw: sentinel  # noqa: E731
    register_jit_kernel(fake)
    try:
        assert get_jit_kernel() is fake
        # auto still never picks jit even while one is registered
        for width in (1, AUTO_BATCH_MIN_LANES):
            assert select_kernel(n_nodes=10**6, d=4, batch_width=width) != "jit"
    finally:
        register_jit_kernel(None)
    with pytest.raises(KernelUnavailableError):
        get_jit_kernel()
