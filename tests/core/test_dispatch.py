"""Auto-kernel dispatch: pin the decision on both sides of each threshold.

The native compiled kernel, when loadable, wins every solo cell it
supports, so ``select_kernel`` consults availability first.  The python
crossover tests below therefore run under the ``no_native`` fixture,
which simulates a host without a C toolchain — that is exactly the
environment whose dispatch decisions they pin.
"""

import pytest

from repro.core import DLIndex
from repro.core import dispatch
from repro.core.dispatch import (
    AUTO_BATCH_MIN_LANES,
    AUTO_SMALL_STRUCTURE_DIM,
    AUTO_SMALL_STRUCTURE_NODES,
    NATIVE_DISPATCH_MAX_DIM,
    NATIVE_DISPATCH_MAX_NODES,
    VALID_KERNELS,
    select_kernel,
)
from repro.data import generate


@pytest.fixture
def no_native(monkeypatch):
    """Dispatch as on a host where the native kernel cannot load."""
    monkeypatch.setattr(dispatch, "native_kernel_usable", lambda n, d: False)


@pytest.fixture
def native_available(monkeypatch):
    """Dispatch as on a host where the native kernel is loadable for
    every shape inside its contract, without actually building it."""
    monkeypatch.setattr(
        dispatch,
        "native_kernel_usable",
        lambda n, d: d <= NATIVE_DISPATCH_MAX_DIM
        and n <= NATIVE_DISPATCH_MAX_NODES,
    )


def test_small_structure_dispatches_reference_both_sides(no_native):
    """At d=2 the reference kernel wins below the node threshold and the
    CSR kernel wins above it — pin the decision one node either side."""
    at = select_kernel(n_nodes=AUTO_SMALL_STRUCTURE_NODES, d=2)
    above = select_kernel(n_nodes=AUTO_SMALL_STRUCTURE_NODES + 1, d=2)
    assert at == "reference"
    assert above == "csr"


def test_dimension_threshold_both_sides(no_native):
    """The small-structure exception only applies at d<=2: a 10k-node d=3
    structure already pays off the vectorized einsum."""
    small_n = AUTO_SMALL_STRUCTURE_NODES // 2
    assert select_kernel(n_nodes=small_n, d=AUTO_SMALL_STRUCTURE_DIM) == "reference"
    assert select_kernel(n_nodes=small_n, d=AUTO_SMALL_STRUCTURE_DIM + 1) == "csr"


def test_batch_width_threshold_both_sides(no_native):
    """batch_width >= AUTO_BATCH_MIN_LANES dispatches the lane-parallel
    kernel regardless of structure size; one lane fewer falls back to the
    single-query decision."""
    kw = dict(n_nodes=1000, d=2)
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES, **kw) == "batch"
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES - 1, **kw) == "reference"
    kw = dict(n_nodes=10**6, d=4)
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES, **kw) == "batch"
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES - 1, **kw) == "csr"


def test_structure_argument_supplies_shape(no_native):
    relation = generate("IND", 200, 3, seed=3)
    structure = DLIndex(relation).build().structure
    assert select_kernel(structure) == "csr"  # d=3 > small-structure dim
    assert select_kernel(structure, batch_width=AUTO_BATCH_MIN_LANES) == "batch"
    assert select_kernel(structure) == select_kernel(
        n_nodes=structure.n_nodes, d=structure.values.shape[1]
    )


def test_missing_shape_rejected():
    with pytest.raises(ValueError):
        select_kernel()
    with pytest.raises(ValueError):
        select_kernel(n_nodes=100)
    with pytest.raises(ValueError):
        select_kernel(d=2)


def test_valid_kernels_registry(no_native):
    assert set(VALID_KERNELS) == {"auto", "reference", "csr", "batch", "native", "jit"}
    # select_kernel only ever returns concrete runnable kernels — never
    # "auto", and never the "jit" alias (it resolves to "native").
    for n in (100, AUTO_SMALL_STRUCTURE_NODES + 1):
        for d in (2, 4):
            for width in (1, AUTO_BATCH_MIN_LANES):
                for prune in (False, True):
                    for has_bounds in (False, True):
                        picked = select_kernel(
                            n_nodes=n,
                            d=d,
                            batch_width=width,
                            prune=prune,
                            has_bounds=has_bounds,
                        )
                        assert picked in {"reference", "csr", "batch"}


def test_prune_steers_small_structures_to_csr_only_with_bounds(no_native):
    """prune=True flips the small/low-d cell to csr — but only when the
    structure actually carries a bound table; without bounds the caller
    runs unpruned and the reference kernel keeps its win."""
    kw = dict(n_nodes=AUTO_SMALL_STRUCTURE_NODES, d=2)
    assert select_kernel(**kw) == "reference"
    assert select_kernel(prune=True, has_bounds=True, **kw) == "csr"
    assert select_kernel(prune=True, has_bounds=False, **kw) == "reference"
    assert select_kernel(prune=False, has_bounds=True, **kw) == "reference"


def test_structure_supplies_has_bounds(no_native):
    """A built structure's own has_layer_bounds feeds the prune decision;
    an explicit has_bounds= overrides it."""
    relation = generate("IND", 200, 2, seed=4)
    structure = DLIndex(relation).build().structure
    assert structure.has_layer_bounds
    assert select_kernel(structure) == "reference"
    assert select_kernel(structure, prune=True) == "csr"
    assert select_kernel(structure, prune=True, has_bounds=False) == "reference"


def test_native_wins_every_solo_cell_when_available(native_available):
    """With the compiled walker loadable, availability is the only solo
    crossover: every in-contract shape dispatches native, regardless of
    the python reference/csr thresholds."""
    for n in (100, AUTO_SMALL_STRUCTURE_NODES, 10**6):
        for d in (2, 4, NATIVE_DISPATCH_MAX_DIM):
            for prune in (False, True):
                assert select_kernel(n_nodes=n, d=d, prune=prune,
                                     has_bounds=True) == "native"


def test_batch_width_beats_native(native_available):
    """The lane-parallel batch kernel still owns wide batches — native
    is a solo/low-batch kernel only."""
    kw = dict(n_nodes=10**6, d=4)
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES, **kw) == "batch"
    assert select_kernel(batch_width=AUTO_BATCH_MIN_LANES - 1, **kw) == "native"


def test_native_shape_gates(native_available):
    """Shapes outside the bitwise contract fall back to the python
    crossovers even when the library is loadable."""
    assert select_kernel(n_nodes=10**5, d=NATIVE_DISPATCH_MAX_DIM) == "native"
    assert select_kernel(n_nodes=10**5, d=NATIVE_DISPATCH_MAX_DIM + 1) == "csr"
    assert select_kernel(n_nodes=NATIVE_DISPATCH_MAX_NODES, d=4) == "native"
    assert select_kernel(n_nodes=NATIVE_DISPATCH_MAX_NODES + 1, d=4) == "csr"


def test_dispatch_dim_ceiling_mirrors_native_contract():
    """NATIVE_DISPATCH_MAX_DIM is a mirror of the kernel's own ceiling —
    pin them equal so neither can drift alone."""
    from repro.core.native import NATIVE_MAX_DIM

    assert NATIVE_DISPATCH_MAX_DIM == NATIVE_MAX_DIM


def test_native_kernel_usable_gates_shape_before_probe(monkeypatch):
    """The shape gates reject out-of-contract shapes without ever
    probing the build; in-contract shapes consult native_ready."""
    probes = []

    def fake_ready(warn=False):
        probes.append(warn)
        return False

    import repro.core.native as native_mod

    monkeypatch.setattr(native_mod, "native_ready", fake_ready)
    assert not dispatch.native_kernel_usable(1000, NATIVE_DISPATCH_MAX_DIM + 1)
    assert not dispatch.native_kernel_usable(NATIVE_DISPATCH_MAX_NODES + 1, 4)
    assert probes == []  # shape gates never reached the probe
    monkeypatch.setattr(dispatch, "_JIT_KERNEL", None)
    assert not dispatch.native_kernel_usable(1000, 4)
    assert probes == [True]  # auto path probes with warn=True
    # A registered kernel short-circuits the probe entirely.
    monkeypatch.setattr(dispatch, "_JIT_KERNEL", lambda *a, **kw: None)
    assert dispatch.native_kernel_usable(1000, 4)
    assert probes == [True]


def test_jit_slot_guarded(monkeypatch):
    """kernel='jit'/'native' raises a clear error when the compiled
    walker cannot load and nothing is registered; a registered walker is
    returned; auto never returns the 'jit' alias."""
    from repro.core.dispatch import get_jit_kernel
    from repro.exceptions import KernelUnavailableError

    # Simulate a host where the native build already failed: slot empty,
    # one-shot autoload spent.
    monkeypatch.setattr(dispatch, "_JIT_KERNEL", None)
    monkeypatch.setattr(dispatch, "_AUTOLOAD_ATTEMPTED", True)
    with pytest.raises(KernelUnavailableError, match="no compiled walk kernel"):
        get_jit_kernel()
    sentinel = object()
    fake = lambda *a, **kw: sentinel  # noqa: E731
    monkeypatch.setattr(dispatch, "_JIT_KERNEL", fake)
    assert get_jit_kernel() is fake
    # select_kernel resolves to "native", never the "jit" alias
    for width in (1, AUTO_BATCH_MIN_LANES):
        assert select_kernel(n_nodes=10**6, d=4, batch_width=width) != "jit"
    monkeypatch.setattr(dispatch, "_JIT_KERNEL", None)
    with pytest.raises(KernelUnavailableError):
        get_jit_kernel()


def test_register_none_rearms_autoload():
    """Clearing the slot re-arms the one-shot native autoload probe, so
    a later get_jit_kernel() may self-register the bundled walker."""
    from repro.core.dispatch import register_jit_kernel

    prev_kernel = dispatch._JIT_KERNEL
    prev_flag = dispatch._AUTOLOAD_ATTEMPTED
    try:
        register_jit_kernel(None)
        assert dispatch._AUTOLOAD_ATTEMPTED is False
    finally:
        dispatch._JIT_KERNEL = prev_kernel
        dispatch._AUTOLOAD_ATTEMPTED = prev_flag
