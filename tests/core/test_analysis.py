"""Index introspection: profiles, cost bounds, networkx export."""

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.core.analysis import cost_bounds, profile_structure, to_networkx
from repro.data import generate


@pytest.fixture(scope="module")
def built():
    relation = generate("ANT", 300, 3, seed=23)
    return relation, DLIndex(relation).build()


def test_profile_counts_match_build_stats(built):
    relation, index = built
    report = profile_structure(index.structure)
    assert report.n_real == relation.n
    assert report.num_coarse_layers == index.build_stats.num_layers
    assert [layer.size for layer in report.layers] == index.build_stats.layer_sizes
    assert report.forall_edges == index.build_stats.extra["forall_edges"]
    assert report.exists_edges == index.build_stats.extra["exists_edges"]
    assert sum(layer.size for layer in report.layers) == relation.n


def test_profile_sublayer_sizes_sum(built):
    _, index = built
    report = profile_structure(index.structure)
    for layer in report.layers:
        assert sum(layer.sublayer_sizes) == layer.size
        assert len(layer.sublayer_sizes) == layer.fine_sublayers


def test_describe_mentions_every_layer(built):
    _, index = built
    report = profile_structure(index.structure)
    text = report.describe()
    assert f"L{report.num_coarse_layers}" in text
    assert "forall" in text


def test_cost_bounds_hold_for_actual_queries(built):
    relation, index = built
    rng = np.random.default_rng(3)
    for k in (1, 5, 20):
        lower, upper = cost_bounds(index.structure, k)
        assert lower <= upper
        for _ in range(5):
            w = rng.dirichlet(np.ones(3))
            cost = index.query(np.clip(w, 1e-6, None), k).cost
            assert lower <= cost <= upper


def test_cost_bounds_with_zero_layer():
    relation = generate("IND", 200, 3, seed=9)
    index = DLPlusIndex(relation).build()
    lower, upper = cost_bounds(index.structure, 5)
    cost = index.query(np.ones(3) / 3, 5).cost
    assert lower <= cost <= upper


def test_networkx_export(built):
    relation, index = built
    graph = to_networkx(index.structure)
    assert graph.number_of_nodes() == index.structure.n_nodes
    counts = index.structure.edge_counts()
    assert graph.number_of_edges() == counts["forall_edges"] + counts["exists_edges"]
    gates = {data["gate"] for _, _, data in graph.edges(data=True)}
    assert gates == {"forall", "exists"}
    # The gated graph is a DAG (required for traversal termination).
    import networkx as nx

    assert nx.is_directed_acyclic_graph(graph)


def test_networkx_node_attributes(built):
    _, index = built
    graph = to_networkx(index.structure)
    node0 = graph.nodes[0]
    assert node0["kind"] == "real"
    assert node0["coarse"] >= 0
