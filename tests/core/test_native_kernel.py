"""Native compiled solo-walk kernel: bitwise equivalence + fallback ladder.

Three concerns, matching the kernel's contract:

* **Bitwise identity** — across correlation families, dimensionalities,
  DL/DL+ structures, and prune on/off, the C walk must return the same
  answer *bytes* and the same Definition-9 real/pseudo counts as the
  python kernels (which are themselves pinned to the per-node reference
  oracle).
* **Fallback ladder** — on a host without a compiler (or with a broken
  build), ``kernel="auto"`` must silently serve via the python kernels
  with exactly one logged warning, while an explicit ``kernel="native"``
  raises :class:`~repro.exceptions.KernelUnavailableError`.
* **Cache lifecycle** — the ``.so`` cache key is version+source keyed:
  a version bump must land in a fresh directory and trigger a rebuild.
"""

import threading

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex, dispatch
from repro.core.query import process_top_k, process_top_k_reference
from repro.data import generate
from repro.exceptions import KernelUnavailableError, NativeBuildError
from repro.relation import normalize_weights
from repro.serving import QueryEngine
from repro.stats import AccessCounter

native = pytest.importorskip("repro.core.native")
from repro.core.native import (  # noqa: E402
    NATIVE_MAX_DIM,
    NativeWorkspace,
    build_info,
    native_process_top_k,
    native_ready,
    native_supported,
)
from repro.core.native import build as native_build  # noqa: E402
from repro.core.native import kernel as native_kernel_mod  # noqa: E402

requires_native = pytest.mark.skipif(
    not native_ready(), reason="native kernel not buildable on this host"
)


def _weights(d: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return normalize_weights(rng.dirichlet(np.ones(d)), d)


@requires_native
@pytest.mark.parametrize("family", ["IND", "ANT", "COR"])
@pytest.mark.parametrize("d", [2, 3, 4])
@pytest.mark.parametrize("index_cls", [DLIndex, DLPlusIndex])
@pytest.mark.parametrize("prune", [False, True])
def test_bitwise_identity_grid(family, d, index_cls, prune):
    """ids bytes, score bytes, and real/pseudo counts match the python
    CSR kernel exactly — and the unpruned cells also match the per-node
    reference oracle — across the full family x d x index x prune grid."""
    relation = generate(family, 500, d, seed=7 + d)
    structure = index_cls(relation).build().structure
    ws = NativeWorkspace()
    for qi, k in enumerate((1, 5, 23)):
        w = _weights(d, 100 * d + qi)
        py_counter = AccessCounter()
        py_ids, py_scores = process_top_k(
            structure, w, k, py_counter, prune=prune
        )
        nat_counter = AccessCounter()
        nat_ids, nat_scores = native_process_top_k(
            structure, w, k, nat_counter, prune=prune, workspace=ws
        )
        assert nat_ids.tobytes() == py_ids.tobytes()
        assert nat_scores.tobytes() == py_scores.tobytes()
        assert nat_counter.real == py_counter.real
        assert nat_counter.pseudo == py_counter.pseudo
        if not prune:
            ref_counter = AccessCounter()
            ref_ids, ref_scores = process_top_k_reference(
                structure, w, k, ref_counter
            )
            assert nat_ids.tobytes() == ref_ids.tobytes()
            assert nat_scores.tobytes() == ref_scores.tobytes()
            assert nat_counter.real == ref_counter.real
            assert nat_counter.pseudo == ref_counter.pseudo


@requires_native
def test_full_k_and_overask_match():
    """k == n_real and k > n_real are served bitwise like the python
    kernel (answer capped at the real population)."""
    relation = generate("IND", 200, 3, seed=11)
    structure = DLPlusIndex(relation).build().structure
    w = _weights(3, 42)
    for k in (200, 500):
        c_py, c_nat = AccessCounter(), AccessCounter()
        py = process_top_k(structure, w, k, c_py)
        nat = native_process_top_k(structure, w, k, c_nat)
        assert nat[0].tobytes() == py[0].tobytes()
        assert nat[1].tobytes() == py[1].tobytes()
        assert (c_nat.real, c_nat.pseudo) == (c_py.real, c_py.pseudo)


@requires_native
def test_workspace_checkout_reuse_and_rebuild_invalidation():
    """Sequential queries share one prepared buffer set; a rebuilt
    structure (new gate-state template identity) transparently re-primes,
    and results stay bitwise right after the swap."""
    relation = generate("COR", 300, 3, seed=5)
    index = DLPlusIndex(relation).build()
    ws = NativeWorkspace()
    w = _weights(3, 9)
    for _ in range(4):
        native_process_top_k(index.structure, w, 10, AccessCounter(), workspace=ws)
    assert ws.checkouts == 4
    assert ws.fallbacks == 0
    prepared_before = ws._prepared
    index = DLPlusIndex(generate("COR", 300, 3, seed=6)).build()
    c_nat, c_py = AccessCounter(), AccessCounter()
    nat = native_process_top_k(index.structure, w, 10, c_nat, workspace=ws)
    py = process_top_k(index.structure, w, 10, c_py)
    assert ws._prepared is not prepared_before
    assert nat[0].tobytes() == py[0].tobytes()
    assert nat[1].tobytes() == py[1].tobytes()


@requires_native
def test_workspace_contention_falls_back_to_private_buffers():
    """A busy workspace is never waited on: the query allocates private
    buffers, counts a fallback, and still answers bitwise."""
    relation = generate("IND", 300, 3, seed=8)
    structure = DLPlusIndex(relation).build().structure
    ws = NativeWorkspace()
    w = _weights(3, 13)
    expected = process_top_k(structure, w, 5, AccessCounter())
    assert ws._lock.acquire(blocking=False)
    try:
        got = native_process_top_k(structure, w, 5, AccessCounter(), workspace=ws)
    finally:
        ws._lock.release()
    assert ws.fallbacks == 1
    assert ws.checkouts == 0
    assert got[0].tobytes() == expected[0].tobytes()
    assert got[1].tobytes() == expected[1].tobytes()


@requires_native
def test_concurrent_native_queries_bitwise():
    """Hammer one workspace from several threads: every answer must be
    bitwise identical to the solo python kernel."""
    relation = generate("ANT", 400, 3, seed=15)
    structure = DLPlusIndex(relation).build().structure
    ws = NativeWorkspace()
    queries = [_weights(3, 200 + i) for i in range(12)]
    expected = [
        process_top_k(structure, w, 8, AccessCounter()) for w in queries
    ]
    results: list = [None] * len(queries)

    def worker(i: int) -> None:
        results[i] = native_process_top_k(
            structure, queries[i], 8, AccessCounter(), workspace=ws
        )

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(queries))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for got, exp in zip(results, expected):
        assert got[0].tobytes() == exp[0].tobytes()
        assert got[1].tobytes() == exp[1].tobytes()
    assert ws.checkouts + ws.fallbacks == len(queries)


def test_high_dimension_delegates_to_python():
    """d > NATIVE_MAX_DIM is outside the bitwise contract (einsum changes
    its reduction tree at d=8): the wrapper must delegate, not guess."""
    d = NATIVE_MAX_DIM + 1
    relation = generate("IND", 150, d, seed=21)
    structure = DLIndex(relation).build().structure
    assert not native_supported(structure)
    w = _weights(d, 3)
    c_py, c_nat = AccessCounter(), AccessCounter()
    py = process_top_k(structure, w, 5, c_py)
    nat = native_process_top_k(structure, w, 5, c_nat)
    assert nat[0].tobytes() == py[0].tobytes()
    assert nat[1].tobytes() == py[1].tobytes()
    assert (c_nat.real, c_nat.pseudo) == (c_py.real, c_py.pseudo)


@requires_native
def test_trace_hook_delegates_to_python():
    """A counter with a per-access trace hook needs the python walk's
    access order — the native wrapper must hand the query over."""
    relation = generate("IND", 200, 3, seed=23)
    structure = DLPlusIndex(relation).build().structure

    class TracingCounter(AccessCounter):
        __slots__ = ("trace",)

        def __init__(self):
            super().__init__()
            self.trace = []

        def count_real_tuple(self, node_id):
            # The kernel counts via count_real separately; the hook only
            # observes per-access order (see test_trace_hook_is_additive).
            self.trace.append(int(node_id))

    w = _weights(3, 31)
    traced = TracingCounter()
    nat = native_process_top_k(structure, w, 5, traced)
    plain = AccessCounter()
    py = process_top_k(structure, w, 5, plain)
    assert nat[0].tobytes() == py[0].tobytes()
    assert len(traced.trace) == traced.real == plain.real


@pytest.fixture
def isolated_native_state(monkeypatch):
    """Snapshot + clear every module-global the load path mutates, so a
    test can simulate a fresh process; restores the real state after."""
    nk = native_kernel_mod
    snapshot = (nk._ffi, nk._lib, nk._status, nk._detail, nk._warned)
    monkeypatch.setattr(dispatch, "_JIT_KERNEL", None)
    monkeypatch.setattr(dispatch, "_AUTOLOAD_ATTEMPTED", False)
    nk._reset_for_tests()
    yield nk
    nk._ffi, nk._lib, nk._status, nk._detail, nk._warned = snapshot


def test_no_compiler_fallback_matrix(
    isolated_native_state, monkeypatch, tmp_path, caplog
):
    """Compiler-less host: auto never selects native, serves correct
    answers via the python kernels with exactly one warning; explicit
    native raises KernelUnavailableError naming the remedy."""
    monkeypatch.setenv("REPRO_NATIVE_CC", "none")
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
    with caplog.at_level("WARNING", logger="repro.core.native.kernel"):
        assert native_kernel_mod.native_ready(warn=True) is False
        assert native_kernel_mod.native_ready(warn=True) is False
    warnings = [r for r in caplog.records if "native walk kernel" in r.message]
    assert len(warnings) == 1  # warned once, then silent
    info = native_kernel_mod.build_info()
    assert info["status"] == "failed"
    assert "no C compiler" in info["detail"]
    # auto dispatch: never native, python crossovers intact
    assert dispatch.select_kernel(n_nodes=10**6, d=4) == "csr"
    assert dispatch.select_kernel(n_nodes=1000, d=2) == "reference"
    # explicit native: actionable error
    with pytest.raises(KernelUnavailableError, match="no compiled walk kernel"):
        dispatch.get_jit_kernel()
    # end-to-end: an auto engine still answers correctly
    relation = generate("IND", 300, 3, seed=40)
    index = DLPlusIndex(relation).build()
    engine = QueryEngine(index, cache_size=0)
    w = np.array([0.2, 0.5, 0.3])
    result = engine.query(w, 5)
    expected = process_top_k(
        index.structure, normalize_weights(w, 3), 5, AccessCounter()
    )
    assert result.ids.tobytes() == expected[0].tobytes()
    assert result.scores.tobytes() == expected[1].tobytes()
    stats = engine.stats()
    assert stats["native_fallback"] == 1.0
    assert stats["native_built"] == 0.0 and stats["native_cached"] == 0.0
    assert stats.get("kernel_native", 0.0) == 0.0
    # an explicit-native engine surfaces the same error at query time
    strict = QueryEngine(index, cache_size=0, kernel="native")
    with pytest.raises(KernelUnavailableError):
        strict.query(w, 5)


def test_build_failure_fallback(isolated_native_state, monkeypatch):
    """A compile that *fails* (not just a missing compiler) walks the
    same ladder: auto falls back, explicit raises, status is failed."""

    def broken_build(force=False):
        raise NativeBuildError("simulated compile explosion")

    monkeypatch.setattr(native_kernel_mod, "build_library", broken_build)
    assert native_kernel_mod.native_ready() is False
    assert not dispatch.native_kernel_usable(1000, 4)
    assert dispatch.select_kernel(n_nodes=10**6, d=4) == "csr"
    with pytest.raises(KernelUnavailableError):
        dispatch.get_jit_kernel()
    assert native_kernel_mod.build_info()["status"] == "failed"
    assert "simulated compile explosion" in native_kernel_mod.build_info()["detail"]


@requires_native
def test_version_bump_invalidates_cached_library(monkeypatch, tmp_path):
    """The cache key embeds NATIVE_KERNEL_VERSION: bumping it must land
    in a fresh directory and recompile rather than reuse the stale .so."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
    path1, cached1 = native_build.build_library()
    assert cached1 is False  # fresh cache dir -> compiled
    path1_again, cached2 = native_build.build_library()
    assert path1_again == path1
    assert cached2 is True  # second call reuses the artifact
    monkeypatch.setattr(
        native_build,
        "NATIVE_KERNEL_VERSION",
        native_build.NATIVE_KERNEL_VERSION + 1,
    )
    path2, cached3 = native_build.build_library()
    assert cached3 is False  # version bump -> new key -> rebuild
    assert path2 != path1
    assert path1.exists() and path2.exists()
    assert f"v{native_build.NATIVE_KERNEL_VERSION}-" in path2.parent.name


@requires_native
def test_engine_native_end_to_end_and_kernel_counters():
    """kernel='native' engines answer bitwise like a reference engine,
    and the dispatch counters attribute each query to its kernel."""
    relation = generate("COR", 400, 3, seed=17)
    index = DLPlusIndex(relation).build()
    native_engine = QueryEngine(index, cache_size=0, kernel="native")
    ref_engine = QueryEngine(index, cache_size=0, kernel="reference")
    csr_engine = QueryEngine(index, cache_size=0, kernel="csr")
    for i in range(3):
        w = np.asarray(_weights(3, 300 + i))
        got = native_engine.query(w, 7)
        ref = ref_engine.query(w, 7)
        assert got.ids.tobytes() == ref.ids.tobytes()
        assert got.scores.tobytes() == ref.scores.tobytes()
        csr_engine.query(w, 7)
    stats = native_engine.stats()
    assert stats["kernel_native"] == 3.0
    assert stats["native_built"] + stats["native_cached"] == 1.0
    assert stats["native_fallback"] == 0.0
    assert stats["native_workspace_checkouts"] == 3.0
    assert ref_engine.stats()["kernel_reference"] == 3.0
    assert csr_engine.stats()["kernel_csr"] == 3.0
    # the auto batch path counts all lanes of a fused group in one record
    auto_engine = QueryEngine(index, cache_size=0)
    ws = np.stack([np.asarray(_weights(3, 400 + i)) for i in range(8)])
    auto_engine.query_batch(ws, 5)
    assert auto_engine.stats()["kernel_batch"] == 8.0
    # a pinned-csr engine attributes batch rows to csr, one per row
    csr_engine.query_batch(ws, 5)
    assert csr_engine.stats()["kernel_csr"] == 3.0 + 8.0
    # aggregate rolls the per-kernel counters up across registries
    merged = type(native_engine.metrics).aggregate(
        [native_engine.metrics, csr_engine.metrics, auto_engine.metrics]
    )
    assert merged["kernel_native"] == 3.0
    assert merged["kernel_csr"] == 11.0
    assert merged["kernel_batch"] == 8.0


@requires_native
def test_cluster_engine_accepts_native_kernel():
    """The cluster passes kernel= through to every shard engine; a
    native cluster answers bitwise like an auto (python-pinned) one."""
    from repro.cluster import ClusterEngine

    relation = generate("IND", 600, 3, seed=25)
    native_cluster = ClusterEngine(relation, shards=2, kernel="native")
    csr_cluster = ClusterEngine(relation, shards=2, kernel="csr")
    for i in range(3):
        w = np.asarray(_weights(3, 500 + i))
        got = native_cluster.query(w, 7)
        exp = csr_cluster.query(w, 7)
        np.testing.assert_array_equal(got.ids, exp.ids)
        assert got.scores.tobytes() == exp.scores.tobytes()


@requires_native
def test_auto_engine_prefers_native_and_build_info_is_sane():
    """With a toolchain present, an auto engine's solo queries land on
    the native kernel and build_info reports a loadable artifact."""
    relation = generate("IND", 300, 3, seed=19)
    index = DLPlusIndex(relation).build()
    engine = QueryEngine(index, cache_size=0)
    engine.query(np.array([0.3, 0.4, 0.3]), 5)
    assert engine.stats().get("kernel_native", 0.0) == 1.0
    info = build_info()
    assert info["status"] in ("built", "cached")
    assert info["path"].endswith((".so", ".dll"))
