"""§V zero layers: weight-range chain (2-D) and clustered pseudo-tuples."""

import numpy as np

from repro.core.build import build_dual_layer
from repro.core.structure import StructureBuilder
from repro.core.zero_layer import (
    attach_chain_zero_layer,
    attach_clustered_zero_layer,
    default_cluster_count,
)
from repro.data import generate


def test_default_cluster_count_scaling():
    assert default_cluster_count(1) == 2
    assert default_cluster_count(4) == 2
    assert default_cluster_count(100) == 10
    assert default_cluster_count(10000) == 100


def build_with_chain(points):
    builder = StructureBuilder(points)
    blueprint = build_dual_layer(points, builder=builder, freeze=False)
    partition = attach_chain_zero_layer(
        builder, points, blueprint.fine_layers[0][0]
    )
    return builder.freeze(), partition


def test_chain_zero_layer_single_seed(rng):
    points = generate("IND", 200, 2, seed=1).matrix
    structure, partition = build_with_chain(points)
    for _ in range(10):
        w1 = float(rng.uniform(0.05, 0.95))
        seeds = structure.seeds(np.array([w1, 1 - w1]))
        assert seeds.shape == (1,)
        assert int(seeds[0]) == partition.top1_id(w1)


def test_chain_zero_layer_adds_no_pseudo(rng):
    points = generate("ANT", 150, 2, seed=2).matrix
    structure, _ = build_with_chain(points)
    assert structure.n_pseudo == 0


def build_with_clusters(points, **kwargs):
    builder = StructureBuilder(points)
    blueprint = build_dual_layer(points, builder=builder, freeze=False)
    minima = attach_clustered_zero_layer(
        builder, points, blueprint.coarse_layers[0], **kwargs
    )
    return builder.freeze(), minima, blueprint


def test_cluster_minima_dominate_members(rng):
    points = generate("ANT", 300, 3, seed=3).matrix
    structure, minima, blueprint = build_with_clusters(points, seed=1)
    first_layer = blueprint.coarse_layers[0]
    # Every L1 member must have at least one pseudo ∀-parent.
    for node in first_layer:
        assert structure.forall_parent_count[int(node)] >= 1
    # Each pseudo value is the componentwise min of some subset: below at
    # least one layer member in every coordinate.
    layer_pts = points[first_layer]
    for row in minima:
        assert np.all(row <= layer_pts.max(axis=0))
        assert np.any(np.all(row[None, :] <= layer_pts, axis=1))


def test_flat_zero_layer_seeds_all_pseudo(rng):
    points = generate("IND", 300, 3, seed=4).matrix
    structure, minima, _ = build_with_clusters(
        points, fine_sublayers=False, seed=0
    )
    assert structure.n_pseudo == minima.shape[0]
    seeds = structure.seeds(np.ones(3) / 3)
    assert set(seeds.tolist()) == set(
        range(structure.n_real, structure.n_nodes)
    )


def test_fine_zero_layer_seeds_subset_of_pseudo(rng):
    points = generate("ANT", 400, 3, seed=5).matrix
    structure, minima, _ = build_with_clusters(
        points, fine_sublayers=True, clusters=25, seed=0
    )
    seeds = structure.seeds(np.ones(3) / 3)
    assert all(int(s) >= structure.n_real for s in seeds)
    if minima.shape[0] > 3:
        assert seeds.shape[0] <= minima.shape[0]


def test_explicit_cluster_count(rng):
    points = generate("IND", 300, 3, seed=6).matrix
    structure, minima, _ = build_with_clusters(points, clusters=4, seed=0)
    assert minima.shape[0] <= 4
