"""QueryWorkspace: reuse, steady-state allocation, contention, invalidation.

The solo CSR kernel checks its fused gate-state vector out of a
per-structure :class:`~repro.core.query.QueryWorkspace` and restores it
through an undo log instead of copying the O(n_nodes) template per query.
These tests pin the contract: warm-workspace answers are bitwise the
fresh-allocation answers, the second query on a warm workspace allocates
no O(n) scratch, contended checkouts fall back to fresh allocation (and
are counted), and a kernel that dies mid-walk poisons the cached state
rather than corrupting the next query.
"""

import threading
import tracemalloc

import numpy as np
import pytest

from repro.core import DLPlusIndex
from repro.core.query import (
    QueryWorkspace,
    process_top_k,
    process_top_k_reference,
)
from repro.data import generate
from repro.stats import AccessCounter


@pytest.fixture(scope="module")
def structure():
    relation = generate("IND", 20_000, 4, seed=81)
    return DLPlusIndex(relation).build().structure


def _weights(d, count, seed):
    rng = np.random.default_rng(seed)
    return [rng.dirichlet(np.ones(d)) for _ in range(count)]


def test_warm_workspace_bitwise_and_counted(structure):
    """Repeated queries through one workspace match the reference oracle
    bitwise (ids, score bytes, Definition 9 counts) and count checkouts."""
    workspace = QueryWorkspace()
    for i, w in enumerate(_weights(4, 8, 5)):
        k = 5 + i
        c_ref, c_ws = AccessCounter(), AccessCounter()
        ids_ref, scores_ref = process_top_k_reference(structure, w, k, c_ref)
        ids_ws, scores_ws = process_top_k(
            structure, w, k, c_ws, workspace=workspace
        )
        assert np.array_equal(ids_ref, ids_ws)
        assert scores_ref.tobytes() == scores_ws.tobytes()
        assert (c_ref.real, c_ref.pseudo) == (c_ws.real, c_ws.pseudo)
    assert workspace.checkouts == 8
    assert workspace.fallbacks == 0


def test_steady_state_allocates_no_on_scratch(structure):
    """The second query on a warm workspace must not allocate O(n_nodes)
    scratch: no template copy, no fresh visited masks.  A cold run copies
    the 8-byte-per-node gate-state template, so its traced peak is an
    O(n) floor the warm run must sit far below."""
    w = np.array([0.3, 0.3, 0.2, 0.2])
    n_bytes = structure.n_nodes * 8

    tracemalloc.start()
    process_top_k(structure, w, 10, AccessCounter())  # fresh alloc per query
    cold_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    workspace = QueryWorkspace()
    process_top_k(structure, w, 10, AccessCounter(), workspace=workspace)
    tracemalloc.start()
    process_top_k(structure, w, 10, AccessCounter(), workspace=workspace)
    warm_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    # Steady state allocates only per-round scratch (heap entries, opened
    # slices, undo-log ids) — far below one O(n) template copy.  The cold
    # path pays that copy every query; the warm path must undercut it.
    assert warm_peak < n_bytes / 4
    assert warm_peak < cold_peak


def test_contended_checkout_falls_back_and_counts(structure):
    """A held workspace lock must not block or corrupt a query: the loser
    falls back to fresh allocation, the answer stays bitwise, and the
    fallback is counted."""
    workspace = QueryWorkspace()
    w = np.array([0.4, 0.1, 0.25, 0.25])
    ids_ref, scores_ref = process_top_k_reference(
        structure, w, 7, AccessCounter()
    )
    assert workspace._lock.acquire(blocking=False)
    try:
        ids, scores = process_top_k(
            structure, w, 7, AccessCounter(), workspace=workspace
        )
    finally:
        workspace._lock.release()
    assert np.array_equal(ids_ref, ids)
    assert scores_ref.tobytes() == scores.tobytes()
    assert workspace.fallbacks == 1
    assert workspace.checkouts == 0


def test_concurrent_queries_on_shared_workspace_bitwise(structure):
    """Threads hammering one workspace (winners reuse, losers fall back)
    produce exactly the sequential answers."""
    weights = _weights(4, 16, 11)
    expected = [
        process_top_k_reference(structure, w, 9, AccessCounter())
        for w in weights
    ]
    workspace = QueryWorkspace()
    results = [None] * len(weights)
    barrier = threading.Barrier(4)

    def worker(lane):
        barrier.wait()
        for i in range(lane, len(weights), 4):
            results[i] = process_top_k(
                structure, weights[i], 9, AccessCounter(), workspace=workspace
            )

    threads = [threading.Thread(target=worker, args=(lane,)) for lane in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for (ids_ref, scores_ref), (ids, scores) in zip(expected, results):
        assert np.array_equal(ids_ref, ids)
        assert scores_ref.tobytes() == scores.tobytes()
    assert workspace.checkouts + workspace.fallbacks == len(weights)


def test_failed_query_invalidates_workspace(structure):
    """A query that raises mid-walk must not leave a half-mutated state
    for the next checkout: the workspace re-copies the template and later
    queries stay bitwise-correct."""
    class BoomCounter(AccessCounter):
        """Per-tuple trace hook that dies after a few accesses — the hook
        runs mid-walk (classic path), so the checked-out state is already
        half-mutated when the exception escapes."""

        calls = 0

        def count_real_tuple(self, node):
            self.calls += 1
            if self.calls > 3:
                raise RuntimeError("boom")

    workspace = QueryWorkspace()
    w = np.array([0.25, 0.25, 0.25, 0.25])
    process_top_k(structure, w, 5, AccessCounter(), workspace=workspace)
    with pytest.raises(RuntimeError, match="boom"):
        process_top_k(
            structure, w, 20, BoomCounter(), workspace=workspace
        )
    c_ref, c_ws = AccessCounter(), AccessCounter()
    ids_ref, scores_ref = process_top_k_reference(structure, w, 6, c_ref)
    ids, scores = process_top_k(structure, w, 6, c_ws, workspace=workspace)
    assert np.array_equal(ids_ref, ids)
    assert scores_ref.tobytes() == scores.tobytes()
    assert (c_ref.real, c_ref.pseudo) == (c_ws.real, c_ws.pseudo)
