"""Algorithm 1: dual-layer construction invariants."""

import numpy as np
import pytest

from repro.core.build import build_dual_layer
from repro.data import generate
from repro.skyline import skyline_layers


@pytest.fixture(scope="module", params=["IND", "ANT"])
def relation(request):
    return generate(request.param, 250, 3, seed=5)


def test_coarse_layers_match_skyline_peel(relation):
    blueprint = build_dual_layer(relation.matrix)
    layers, _ = skyline_layers(relation.matrix)
    assert len(blueprint.coarse_layers) == len(layers)
    for mine, reference in zip(blueprint.coarse_layers, layers):
        np.testing.assert_array_equal(mine, reference)


def test_fine_layers_partition_each_coarse_layer(relation):
    blueprint = build_dual_layer(relation.matrix)
    for coarse, sublayers in zip(blueprint.coarse_layers, blueprint.fine_layers):
        union = np.sort(np.concatenate(sublayers))
        np.testing.assert_array_equal(union, np.sort(coarse))
        assert len(sublayers) >= 1


def test_seeds_are_first_fine_sublayer(relation):
    blueprint = build_dual_layer(relation.matrix)
    np.testing.assert_array_equal(
        np.sort(blueprint.structure.static_seeds),
        np.sort(blueprint.fine_layers[0][0]),
    )


def test_exists_gates_only_inside_coarse_layers(relation):
    blueprint = build_dual_layer(relation.matrix)
    structure = blueprint.structure
    for node in range(structure.n_real):
        for child in structure.exists_children[node]:
            assert structure.coarse_of[int(child)] == structure.coarse_of[node]
            assert structure.fine_of[int(child)] == structure.fine_of[node] + 1


def test_forall_gates_cross_adjacent_coarse_layers(relation):
    blueprint = build_dual_layer(relation.matrix)
    structure = blueprint.structure
    for node in range(structure.n_real):
        for child in structure.forall_children[node]:
            assert (
                structure.coarse_of[int(child)] == structure.coarse_of[node] + 1
            )


def test_forall_parents_are_dominators(relation):
    blueprint = build_dual_layer(relation.matrix)
    structure = blueprint.structure
    points = relation.matrix
    for node in range(structure.n_real):
        for child in structure.forall_children[node]:
            child = int(child)
            assert np.all(points[node] <= points[child])
            assert np.any(points[node] < points[child])


def test_dg_mode_has_no_fine_structure(relation):
    blueprint = build_dual_layer(relation.matrix, fine_sublayers=False)
    assert all(len(sublayers) == 1 for sublayers in blueprint.fine_layers)
    assert blueprint.structure.edge_counts()["exists_edges"] == 0
    np.testing.assert_array_equal(
        np.sort(blueprint.structure.static_seeds),
        np.sort(blueprint.coarse_layers[0]),
    )


def test_max_layers_partial_build(relation):
    blueprint = build_dual_layer(relation.matrix, max_layers=2)
    assert len(blueprint.coarse_layers) == 2
    assert not blueprint.structure.complete
    assert blueprint.leftover.shape[0] == relation.n - sum(
        layer.shape[0] for layer in blueprint.coarse_layers
    )


def test_dl_has_at_least_as_many_sublayers_as_coarse(relation):
    blueprint = build_dual_layer(relation.matrix)
    total_subs = sum(len(s) for s in blueprint.fine_layers)
    assert total_subs >= len(blueprint.coarse_layers)


def test_empty_input():
    blueprint = build_dual_layer(np.empty((0, 2)))
    assert blueprint.coarse_layers == []
    assert blueprint.structure.n_nodes == 0


def test_duplicates_all_placed():
    points = np.tile([0.4, 0.6], (6, 1))
    blueprint = build_dual_layer(points)
    assert sum(layer.shape[0] for layer in blueprint.coarse_layers) == 6
