"""The staged build pipeline vs the per-node reference oracle.

Array-equality here means :func:`repro.core.structure.layer_structures_equal`
— identical CSR indptr/indices, levels, seeds — not merely isomorphic
structures.  The oracle is :mod:`repro.core.build_reference`, the original
one-node-at-a-time implementation kept verbatim.
"""

import numpy as np
import pytest

from repro.core.build import BUILD_STAGES, build_dual_layer
from repro.core.build_reference import build_dual_layer_reference
from repro.core.index import DLIndex, DLPlusIndex
from repro.core.structure import (
    BuilderFragment,
    StructureBuilder,
    layer_structures_equal,
)
from repro.data import generate
from repro.data.hotels import toy_hotels
from repro.exceptions import IndexCapacityError


@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
@pytest.mark.parametrize("d", [2, 3, 4])
@pytest.mark.parametrize("fine", [True, False])
def test_pipeline_matches_reference(distribution, d, fine):
    pts = generate(distribution, 400, d, seed=17).matrix
    ref = build_dual_layer_reference(pts, fine_sublayers=fine)
    seq = build_dual_layer(pts, fine_sublayers=fine)
    assert layer_structures_equal(ref.structure, seq.structure)
    assert all(
        np.array_equal(a, b)
        for a, b in zip(ref.coarse_layers, seq.coarse_layers)
    )
    assert all(
        np.array_equal(a, b)
        for ref_subs, seq_subs in zip(ref.fine_layers, seq.fine_layers)
        for a, b in zip(ref_subs, seq_subs)
    )


def test_exists_gate_parents_unchanged_by_searchsorted_remap():
    """Regression (satellite): the searchsorted facet remap must reproduce
    the dict-based remap's gate parents exactly — compared through the ∃-CSR
    arrays, which encode every (parent, child) pair."""
    pts = generate("ANT", 600, 3, seed=23).matrix
    ref = build_dual_layer_reference(pts)
    seq = build_dual_layer(pts)
    np.testing.assert_array_equal(
        ref.structure.exists_indptr, seq.structure.exists_indptr
    )
    np.testing.assert_array_equal(
        ref.structure.exists_indices, seq.structure.exists_indices
    )
    np.testing.assert_array_equal(
        ref.structure.exists_gated, seq.structure.exists_gated
    )


def test_parallel_equals_sequential_on_hotels():
    """Tier-1 (satellite): parallel=2 through shared memory == sequential."""
    relation = toy_hotels()
    seq = DLIndex(relation).build()
    par = DLIndex(relation, parallel=2).build()
    assert layer_structures_equal(seq.structure, par.structure)


@pytest.mark.parametrize("cls", [DLIndex, DLPlusIndex])
def test_parallel_partial_build_contract(cls):
    """max_layers + leftover through the parallel path (satellite)."""
    relation = generate("ANT", 500, 3, seed=61)
    seq = cls(relation, max_layers=4).build()
    par = cls(relation, max_layers=4, parallel=2).build()
    assert layer_structures_equal(seq.structure, par.structure)
    assert not par.structure.complete
    np.testing.assert_array_equal(seq.blueprint.leftover, par.blueprint.leftover)
    assert par.blueprint.leftover.shape[0] > 0
    # k <= max_layers stays answerable; k beyond the bound must refuse.
    par.query(np.ones(3) / 3, 4)
    with pytest.raises(IndexCapacityError):
        par.query(np.ones(3) / 3, 5)


def test_fragment_merge_order_is_irrelevant():
    """freeze() canonicalizes, so fragment ingestion order cannot leak through."""
    pts = generate("IND", 300, 3, seed=5).matrix
    blueprint = build_dual_layer(pts)

    worker = StructureBuilder(pts)
    build_dual_layer(pts, builder=worker, freeze=False)
    fragment = worker.extract_fragment()

    rng = np.random.default_rng(11)
    shuffled = BuilderFragment(
        placements=tuple(
            arr[perm]
            for perm in [rng.permutation(fragment.placements[0].shape[0])]
            for arr in fragment.placements
        ),
        forall_edges=tuple(
            arr[perm]
            for perm in [rng.permutation(fragment.forall_edges[0].shape[0])]
            for arr in fragment.forall_edges
        ),
        exists_edges=tuple(
            arr[perm]
            for perm in [rng.permutation(fragment.exists_edges[0].shape[0])]
            for arr in fragment.exists_edges
        ),
    )
    target = StructureBuilder(pts)
    target.merge_fragment(shuffled)
    target.num_coarse_layers = worker.num_coarse_layers
    target.complete = worker.complete
    target.static_seeds = list(worker.static_seeds)
    assert layer_structures_equal(blueprint.structure, target.freeze())


def test_build_profile_records_all_stages():
    pts = generate("IND", 500, 3, seed=9).matrix
    blueprint = build_dual_layer(pts)
    profile = blueprint.profile
    assert set(profile.stage_seconds) == set(BUILD_STAGES)
    assert all(seconds >= 0.0 for seconds in profile.stage_seconds.values())
    assert profile.stage_seconds["coarse_peel"] > 0.0
    assert profile.wall_seconds >= profile.stage_seconds["freeze"]


def test_index_build_stats_carry_stage_seconds():
    relation = generate("IND", 400, 3, seed=3)
    index = DLIndex(relation).build()
    assert set(index.build_stats.stage_seconds) == set(BUILD_STAGES)
