"""Dynamic maintenance: layer cascades under insert/delete."""

import numpy as np
import pytest

from repro.core.maintenance import DynamicDualLayerIndex
from repro.exceptions import EmptyRelationError, InvalidQueryError
from repro.relation import top_k_bruteforce
from repro.skyline import skyline_layers


def reference_layers(points: np.ndarray) -> list[list[int]]:
    layers, _ = skyline_layers(points)
    return [sorted(layer.tolist()) for layer in layers]


def live_matrix(index: DynamicDualLayerIndex) -> tuple[np.ndarray, list[int]]:
    ids = sorted(
        i for layer in index.layers() for i in layer
    )
    return np.vstack([index.values_of(i) for i in ids]), ids


def partition_of(index: DynamicDualLayerIndex, ids: list[int]) -> list[list[int]]:
    position = {pid: pos for pos, pid in enumerate(ids)}
    return [sorted(position[i] for i in layer) for layer in index.layers()]


def test_inserts_match_batch_peel(rng):
    index = DynamicDualLayerIndex(d=3)
    points = rng.random((60, 3))
    for row in points:
        index.insert(row)
    matrix, ids = live_matrix(index)
    assert partition_of(index, ids) == reference_layers(matrix)


def test_interleaved_inserts_and_deletes_match_batch_peel(rng):
    index = DynamicDualLayerIndex(d=2)
    ids = []
    for row in rng.random((40, 2)):
        ids.append(index.insert(row))
    deleted = set()
    for step, victim in enumerate(rng.permutation(ids)[:15]):
        index.delete(int(victim))
        deleted.add(int(victim))
        if step % 5 == 0:
            matrix, live_ids = live_matrix(index)
            assert partition_of(index, live_ids) == reference_layers(matrix)
    for row in rng.random((10, 2)):
        index.insert(row)
    matrix, live_ids = live_matrix(index)
    assert partition_of(index, live_ids) == reference_layers(matrix)
    assert index.n == 40 - 15 + 10


def test_queries_correct_after_mutations(rng):
    index = DynamicDualLayerIndex(d=3)
    ids = [index.insert(row) for row in rng.random((80, 3))]
    for victim in ids[::7]:
        index.delete(victim)
    matrix, live_ids = live_matrix(index)
    for _ in range(5):
        w = np.clip(rng.dirichlet(np.ones(3)), 1e-6, None)
        got_ids, got_scores = index.query(w, 10)
        _, ref_scores = top_k_bruteforce(matrix, w / w.sum(), 10)
        np.testing.assert_allclose(got_scores, ref_scores, atol=1e-12)
        # Returned ids are original insertion ids, all live.
        assert all(int(i) in set(live_ids) for i in got_ids)


def test_structure_rebuilt_lazily(rng):
    index = DynamicDualLayerIndex(d=2)
    for row in rng.random((20, 2)):
        index.insert(row)
    index.query(np.array([0.5, 0.5]), 3)
    assert index._structure is not None
    index.insert(np.array([0.01, 0.01]))
    assert index._structure is None  # invalidated
    index.query(np.array([0.5, 0.5]), 3)
    assert index._structure is not None


def test_dominant_insert_cascades_everything():
    index = DynamicDualLayerIndex(d=2)
    index.insert(np.array([0.5, 0.5]))
    index.insert(np.array([0.6, 0.6]))
    index.insert(np.array([0.7, 0.7]))
    assert [len(layer) for layer in index.layers()] == [1, 1, 1]
    # A new global minimum demotes the whole chain by one layer.
    index.insert(np.array([0.1, 0.1]))
    assert [len(layer) for layer in index.layers()] == [1, 1, 1, 1]
    assert index.layers()[0] == [3]


def test_delete_promotes_chain():
    index = DynamicDualLayerIndex(d=2)
    a = index.insert(np.array([0.1, 0.1]))
    b = index.insert(np.array([0.2, 0.2]))
    c = index.insert(np.array([0.3, 0.3]))
    index.delete(a)
    assert [sorted(layer) for layer in index.layers()] == [[b], [c]]


def test_invalid_operations(rng):
    index = DynamicDualLayerIndex(d=2)
    with pytest.raises(EmptyRelationError):
        index.query(np.array([0.5, 0.5]), 1)
    with pytest.raises(InvalidQueryError):
        index.insert(np.array([0.1, 0.2, 0.3]))
    pid = index.insert(np.array([0.5, 0.5]))
    index.delete(pid)
    with pytest.raises(InvalidQueryError):
        index.delete(pid)
    with pytest.raises(InvalidQueryError):
        index.values_of(pid)
    with pytest.raises(InvalidQueryError):
        DynamicDualLayerIndex(d=0)


def test_duplicates_share_layer():
    index = DynamicDualLayerIndex(d=2)
    index.insert(np.array([0.4, 0.4]))
    index.insert(np.array([0.4, 0.4]))
    assert [len(layer) for layer in index.layers()] == [2]


def test_version_bumped_by_every_mutation(rng):
    """The structure version is the serving cache's staleness guard: every
    insert and delete must advance it, queries must not."""
    index = DynamicDualLayerIndex(d=2)
    assert index.version == 0
    ids = [index.insert(row) for row in rng.random((5, 2))]
    assert index.version == 5
    index.query(np.array([0.5, 0.5]), 2)
    assert index.version == 5
    index.delete(ids[0])
    assert index.version == 6


def test_query_accepts_external_counter(rng):
    index = DynamicDualLayerIndex(d=2)
    for row in rng.random((30, 2)):
        index.insert(row)
    from repro.stats import AccessCounter

    counter = AccessCounter()
    got_ids, _ = index.query(np.array([0.5, 0.5]), 5, counter=counter)
    assert counter.total >= got_ids.shape[0]


def test_dynamic_index_pickles(rng):
    """The rebuild lock must not leak into pickles (it is not picklable)."""
    import pickle

    index = DynamicDualLayerIndex(d=2)
    for row in rng.random((20, 2)):
        index.insert(row)
    index.query(np.array([0.5, 0.5]), 3)
    clone = pickle.loads(pickle.dumps(index))
    assert clone.version == index.version
    got, _ = clone.query(np.array([0.5, 0.5]), 3)
    ref, _ = index.query(np.array([0.5, 0.5]), 3)
    np.testing.assert_array_equal(got, ref)
    clone.insert(np.array([0.01, 0.01]))  # lock restored, mutations work
    assert clone.version == index.version + 1


def test_dg_mode_dynamic(rng):
    index = DynamicDualLayerIndex(d=2, fine_sublayers=False)
    for row in rng.random((30, 2)):
        index.insert(row)
    matrix, _ = live_matrix(index)
    w = np.array([0.5, 0.5])
    _, scores = index.query(w, 5)
    _, ref = top_k_bruteforce(matrix, w, 5)
    np.testing.assert_allclose(scores, ref, atol=1e-12)


STRUCTURE_ARRAYS = [
    "values",
    "forall_parent_count",
    "forall_indptr",
    "forall_indices",
    "exists_gated",
    "exists_indptr",
    "exists_indices",
    "static_seeds",
    "coarse_levels",
    "fine_levels",
]


def force_rebuild(index: DynamicDualLayerIndex):
    """Drop the cached structure and rebuild it from the partition."""
    index._structure = None
    with index._rebuild_lock:
        index._rebuild_structure()
    return index._structure


def test_csr_splice_matches_rebuild(rng):
    """Demotion-free DG-mode inserts patch the CSR arrays in place, and the
    patched structure is array-for-array identical to a from-scratch
    rebuild of the updated partition."""
    index = DynamicDualLayerIndex(d=3, fine_sublayers=False)
    for row in rng.random((120, 3)):
        index.insert(row)
    index.query(np.full(3, 1 / 3), 5)  # materialize the structure
    verified = 0
    for row in rng.random((120, 3)):
        before = index.patched_inserts
        index.insert(row)
        if index.patched_inserts == before:
            index.query(np.full(3, 1 / 3), 5)  # demoted: rebuild and go on
            continue
        spliced, id_map = index._structure, index._id_map.copy()
        rebuilt = force_rebuild(index)
        for name in STRUCTURE_ARRAYS:
            np.testing.assert_array_equal(
                getattr(spliced, name), getattr(rebuilt, name), err_msg=name
            )
        assert spliced.n_real == rebuilt.n_real
        assert spliced.num_coarse_layers == rebuilt.num_coarse_layers
        np.testing.assert_array_equal(id_map, index._id_map)
        verified += 1
    assert verified > 0  # random uniform inserts must hit the fast path


def test_csr_splice_queries_stay_correct(rng):
    """Queries through a spliced structure match brute force exactly."""
    index = DynamicDualLayerIndex(d=2, fine_sublayers=False)
    for row in rng.random((60, 2)):
        index.insert(row)
    index.query(np.array([0.5, 0.5]), 5)
    for row in rng.random((40, 2)):
        index.insert(row)
        matrix, _ = live_matrix(index)
        w = rng.dirichlet(np.ones(2))
        _, scores = index.query(w, 8)
        _, ref = top_k_bruteforce(matrix, w, 8)
        np.testing.assert_allclose(scores, ref, atol=1e-12)
    assert index.patched_inserts > 0


def test_splice_skipped_with_fine_sublayers(rng):
    """Full dual-resolution mode always takes the lazy-rebuild path (the
    fine sublayers of the target layer would need re-peeling)."""
    index = DynamicDualLayerIndex(d=3, fine_sublayers=True)
    for row in rng.random((80, 3)):
        index.insert(row)
    index.query(np.full(3, 1 / 3), 5)
    for row in rng.random((20, 3)):
        index.insert(row)
    assert index.patched_inserts == 0
