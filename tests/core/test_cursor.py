"""Resumable top-k cursor."""

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.core.build import build_dual_layer
from repro.core.cursor import TopKCursor
from repro.data import generate
from repro.exceptions import IndexCapacityError, InvalidQueryError
from repro.relation import top_k_bruteforce


@pytest.fixture(scope="module")
def relation():
    return generate("ANT", 250, 3, seed=29)


def test_paged_fetch_equals_single_query(relation):
    index = DLIndex(relation).build()
    w = np.array([0.2, 0.5, 0.3])
    cursor = TopKCursor(index.structure, w)
    pages = [cursor.fetch(7) for _ in range(3)]
    ids = np.concatenate([p[0] for p in pages])
    scores = np.concatenate([p[1] for p in pages])
    ref_ids, ref_scores = top_k_bruteforce(relation.matrix, w / w.sum(), 21)
    np.testing.assert_allclose(scores, ref_scores, atol=1e-12)
    assert np.all(np.diff(scores) >= 0)
    assert cursor.emitted == 21


def test_incremental_cost_no_worse_than_flat(relation):
    """Paging 3x7 costs no more than a fresh top-21 query."""
    index = DLIndex(relation).build()
    w = np.ones(3) / 3
    cursor = TopKCursor(index.structure, w)
    for _ in range(3):
        cursor.fetch(7)
    flat = index.query(w, 21)
    assert cursor.counter.total <= flat.cost


def test_marginal_page_cost_is_small(relation):
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    cursor.fetch(10)
    cost_before = cursor.counter.total
    cursor.fetch(10)
    marginal = cursor.counter.total - cost_before
    fresh = index.query(np.ones(3) / 3, 20).cost
    assert marginal < fresh


def test_exhaustion(relation):
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    ids, _ = cursor.fetch(relation.n + 50)
    assert ids.shape[0] == relation.n
    assert cursor.exhausted
    more, _ = cursor.fetch(5)
    assert more.shape[0] == 0


def test_iteration_protocol(relation):
    index = DLIndex(relation).build()
    w = np.ones(3) / 3
    pairs = list(TopKCursor(index.structure, w))
    assert len(pairs) == relation.n
    scores = [s for _, s in pairs]
    assert scores == sorted(scores)
    ref_ids, ref_scores = top_k_bruteforce(relation.matrix, w, relation.n)
    np.testing.assert_allclose(scores, ref_scores, atol=1e-12)


def test_cursor_with_zero_layer(relation):
    index = DLPlusIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    ids, scores = cursor.fetch(10)
    ref_ids, ref_scores = top_k_bruteforce(relation.matrix, np.ones(3) / 3, 10)
    np.testing.assert_allclose(scores, ref_scores, atol=1e-12)
    assert np.all(ids < relation.n)  # pseudo nodes never emitted


def test_capacity_error_on_partial(relation):
    structure = build_dual_layer(relation.matrix, max_layers=4).structure
    cursor = TopKCursor(structure, np.ones(3) / 3)
    cursor.fetch(4)
    with pytest.raises(IndexCapacityError):
        cursor.fetch(1)


def test_invalid_fetch_size(relation):
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    with pytest.raises(InvalidQueryError):
        cursor.fetch(0)
