"""Resumable top-k cursor."""

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.core.build import build_dual_layer
from repro.core.cursor import TopKCursor
from repro.data import generate
from repro.exceptions import IndexCapacityError, InvalidQueryError
from repro.relation import top_k_bruteforce


@pytest.fixture(scope="module")
def relation():
    return generate("ANT", 250, 3, seed=29)


def test_paged_fetch_equals_single_query(relation):
    index = DLIndex(relation).build()
    w = np.array([0.2, 0.5, 0.3])
    cursor = TopKCursor(index.structure, w)
    pages = [cursor.fetch(7) for _ in range(3)]
    ids = np.concatenate([p[0] for p in pages])
    scores = np.concatenate([p[1] for p in pages])
    ref_ids, ref_scores = top_k_bruteforce(relation.matrix, w / w.sum(), 21)
    np.testing.assert_allclose(scores, ref_scores, atol=1e-12)
    assert np.all(np.diff(scores) >= 0)
    assert cursor.emitted == 21


def test_incremental_cost_no_worse_than_flat(relation):
    """Paging 3x7 costs no more than a fresh top-21 query."""
    index = DLIndex(relation).build()
    w = np.ones(3) / 3
    cursor = TopKCursor(index.structure, w)
    for _ in range(3):
        cursor.fetch(7)
    flat = index.query(w, 21)
    assert cursor.counter.total <= flat.cost


def test_marginal_page_cost_is_small(relation):
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    cursor.fetch(10)
    cost_before = cursor.counter.total
    cursor.fetch(10)
    marginal = cursor.counter.total - cost_before
    fresh = index.query(np.ones(3) / 3, 20).cost
    assert marginal < fresh


def test_exhaustion(relation):
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    ids, _ = cursor.fetch(relation.n + 50)
    assert ids.shape[0] == relation.n
    assert cursor.exhausted
    more, _ = cursor.fetch(5)
    assert more.shape[0] == 0


def test_iteration_protocol(relation):
    index = DLIndex(relation).build()
    w = np.ones(3) / 3
    pairs = list(TopKCursor(index.structure, w))
    assert len(pairs) == relation.n
    scores = [s for _, s in pairs]
    assert scores == sorted(scores)
    ref_ids, ref_scores = top_k_bruteforce(relation.matrix, w, relation.n)
    np.testing.assert_allclose(scores, ref_scores, atol=1e-12)


def test_cursor_with_zero_layer(relation):
    index = DLPlusIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    ids, scores = cursor.fetch(10)
    ref_ids, ref_scores = top_k_bruteforce(relation.matrix, np.ones(3) / 3, 10)
    np.testing.assert_allclose(scores, ref_scores, atol=1e-12)
    assert np.all(ids < relation.n)  # pseudo nodes never emitted


def test_capacity_error_on_partial(relation):
    structure = build_dual_layer(relation.matrix, max_layers=4).structure
    cursor = TopKCursor(structure, np.ones(3) / 3)
    cursor.fetch(4)
    with pytest.raises(IndexCapacityError):
        cursor.fetch(1)


def test_invalid_fetch_size(relation):
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    with pytest.raises(InvalidQueryError):
        cursor.fetch(-1)


def test_fetch_zero_is_a_noop(relation):
    """fetch(0) returns empty typed arrays, costs nothing, changes nothing."""
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    ids, scores = cursor.fetch(0)
    assert ids.shape == (0,) and ids.dtype == np.intp
    assert scores.shape == (0,) and scores.dtype == np.float64
    assert cursor.emitted == 0
    cost_before = cursor.counter.total
    # A later real fetch is unaffected by the no-op.
    ids, _ = cursor.fetch(5)
    assert ids.shape[0] == 5
    # And fetch(0) works on a bounded structure even past its capacity math.
    bounded = TopKCursor(build_dual_layer(relation.matrix, max_layers=2).structure,
                         np.ones(3) / 3)
    bounded.fetch(2)
    empty, _ = bounded.fetch(0)
    assert empty.shape[0] == 0
    assert cost_before == 0 or cost_before > 0  # counter untouched by no-ops


def test_overfetch_past_exhaustion_on_pseudo_node_structure(relation):
    """Over-fetching a DL+ structure (zero layer adds pseudo nodes) drains
    exactly the n real tuples and never emits a pseudo id, even when the
    request far exceeds the relation."""
    index = DLPlusIndex(relation).build()
    structure = index.structure
    assert structure.n_nodes > structure.n_real  # pseudo nodes exist
    cursor = TopKCursor(structure, np.array([0.25, 0.4, 0.35]))
    ids, scores = cursor.fetch(relation.n + 1000)
    assert ids.shape[0] == relation.n
    assert np.all(ids < relation.n)
    assert np.all(np.diff(scores) >= 0)
    assert cursor.exhausted
    again, _ = cursor.fetch(10)
    assert again.shape[0] == 0 and cursor.exhausted


@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex])
@pytest.mark.parametrize("prefix", [1, 7, 25])
def test_cursor_access_counts_match_process_top_k_prefix(relation, index_class, prefix):
    """Fetching a k-prefix costs exactly what process_top_k(k) pays: the
    cursor is the same traversal with the k-th relaxation deferred."""
    from repro.core.query import process_top_k
    from repro.stats import AccessCounter

    index = index_class(relation).build()
    w = np.array([0.3, 0.45, 0.25])
    w = w / w.sum()
    counter = AccessCounter()
    ref_ids, ref_scores = process_top_k(index.structure, w, prefix, counter)
    cursor = TopKCursor(index.structure, w)
    got_ids, got_scores = cursor.fetch(prefix)
    np.testing.assert_array_equal(got_ids, ref_ids)
    assert got_scores.tobytes() == ref_scores.tobytes()
    assert (cursor.counter.real, cursor.counter.pseudo) == (
        counter.real,
        counter.pseudo,
    )


def test_fetch_stop_score_pushes_back_unconsumed(relation):
    """The threshold hook stops before the first emission above stop_score,
    re-emits that tuple on the next fetch, and never double-counts cost."""
    index = DLIndex(relation).build()
    w = np.ones(3) / 3
    reference = TopKCursor(index.structure, w)
    all_ids, all_scores = reference.fetch(20)

    cursor = TopKCursor(index.structure, w)
    cutoff = float(all_scores[9])  # the 10th score
    ids, scores = cursor.fetch(20, stop_score=cutoff)
    # Everything scoring <= cutoff was emitted (ties included), nothing above.
    expected = int(np.sum(all_scores <= cutoff))
    assert ids.shape[0] == expected
    assert np.all(scores <= cutoff)
    np.testing.assert_array_equal(ids, all_ids[:expected])
    cost_after_stop = cursor.counter.total
    # The pushed-back tuple is re-emitted by the next unbounded fetch.
    more_ids, more_scores = cursor.fetch(20 - expected)
    np.testing.assert_array_equal(more_ids, all_ids[expected:20])
    assert more_scores.tobytes() == all_scores[expected:20].tobytes()
    # Total cost matches the unbounded 20-fetch: push-back was free.
    assert cursor.counter.total == reference.counter.total
    assert cost_after_stop <= reference.counter.total


def test_fetch_stop_score_below_minimum_emits_nothing(relation):
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    ids, scores = cursor.fetch(5, stop_score=-1.0)
    assert ids.shape[0] == 0
    assert cursor.emitted == 0
    # The cursor is still live: removing the bound resumes normally.
    ids, _ = cursor.fetch(5)
    assert ids.shape[0] == 5


def test_fetch_exactly_to_bounded_capacity_does_not_raise(relation):
    """Paging up to emitted + m == num_coarse_layers is within the bounded
    index's guarantee and must not raise; one past it must."""
    structure = build_dual_layer(relation.matrix, max_layers=4).structure
    w = np.ones(3) / 3
    cursor = TopKCursor(structure, w)
    first, _ = cursor.fetch(2)
    second, _ = cursor.fetch(2)  # lands exactly on the capacity boundary
    assert first.shape[0] == 2 and second.shape[0] == 2
    assert cursor.emitted == structure.num_coarse_layers
    with pytest.raises(IndexCapacityError):
        cursor.fetch(1)
    # One shot straight to the boundary works too.
    flat = TopKCursor(structure, w)
    ids, _ = flat.fetch(structure.num_coarse_layers)
    assert ids.shape[0] == structure.num_coarse_layers


@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex])
def test_interleaved_fetch_one_matches_flat_query(relation, index_class):
    """k calls of fetch(1) emit exactly the sequence of one top-k query."""
    from repro.core.query import process_top_k
    from repro.stats import AccessCounter

    index = index_class(relation).build()
    w = np.array([0.3, 0.45, 0.25])
    w = w / w.sum()
    k = 25
    ref_ids, ref_scores = process_top_k(index.structure, w, k, AccessCounter())
    cursor = TopKCursor(index.structure, w)
    got_ids, got_scores = [], []
    for _ in range(k):
        ids, scores = cursor.fetch(1)
        assert ids.shape[0] == 1
        got_ids.append(int(ids[0]))
        got_scores.append(float(scores[0]))
    np.testing.assert_array_equal(np.asarray(got_ids, dtype=np.intp), ref_ids)
    np.testing.assert_array_equal(np.asarray(got_scores), ref_scores)


def test_exhausted_with_deferred_relax_pending():
    """Draining the heap with the last emission's relax deferred must still
    report exhaustion correctly (regression: `exhausted` used to stay False
    forever once the heap emptied with a pending deferred relax)."""
    points = np.array([[0.1, 0.9], [0.9, 0.1], [0.5, 0.5], [0.8, 0.8]])
    structure = build_dual_layer(points).structure
    cursor = TopKCursor(structure, np.array([0.5, 0.5]))
    ids, _ = cursor.fetch(points.shape[0])  # exact fetch defers the last relax
    assert ids.shape[0] == points.shape[0]
    assert cursor.exhausted
    more, _ = cursor.fetch(3)
    assert more.shape[0] == 0


def test_exhausted_stays_false_while_deferred_relax_can_open_nodes(relation):
    """exhausted must account for nodes a deferred relaxation still opens."""
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, np.ones(3) / 3)
    emitted = 0
    while not cursor.exhausted:
        ids, _ = cursor.fetch(1)
        assert ids.shape[0] == 1, "exhausted said more was available"
        emitted += 1
    assert emitted == relation.n
