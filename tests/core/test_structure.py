"""StructureBuilder / LayerStructure invariants."""

import numpy as np
import pytest

from repro.core.structure import StructureBuilder
from repro.exceptions import IndexConstructionError


def minimal_points(n=4):
    return np.linspace(0.1, 0.9, n * 2).reshape(n, 2)


def test_gates_and_children_wiring():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.static_seeds.extend([0, 1])
    builder.add_forall_parents(2, [0, 1])
    builder.add_exists_parents(3, [0])
    structure = builder.freeze()
    assert structure.forall_parent_count[2] == 2
    assert structure.exists_gated[3]
    assert not structure.exists_gated[2]
    assert 2 in structure.forall_children[0]
    assert 2 in structure.forall_children[1]
    assert 3 in structure.exists_children[0]
    assert structure.edge_counts() == {"forall_edges": 2, "exists_edges": 1}


def test_duplicate_parents_deduped():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.static_seeds.extend([0, 1, 3])
    builder.add_forall_parents(2, [0, 0, 1, 1])
    structure = builder.freeze()
    assert structure.forall_parent_count[2] == 2


def test_pseudo_nodes():
    builder = StructureBuilder(minimal_points())
    pseudo = builder.add_pseudo_node(np.array([0.05, 0.05]))
    assert pseudo == 4
    builder.place(pseudo, 0, 0)
    builder.static_seeds.append(pseudo)
    for node in range(4):
        builder.place(node, 1, 0)
        builder.add_forall_parents(node, [pseudo])
    structure = builder.freeze()
    assert structure.n_real == 4
    assert structure.n_pseudo == 1
    assert structure.is_pseudo(4)
    assert not structure.is_pseudo(3)
    np.testing.assert_allclose(structure.values[4], [0.05, 0.05])


def test_unreachable_node_rejected():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.static_seeds.append(0)  # nodes 1..3 gateless and unseeded
    with pytest.raises(IndexConstructionError, match="unreachable"):
        builder.freeze()


def test_incomplete_placement_rejected():
    builder = StructureBuilder(minimal_points())
    builder.place(0, 0, 0)
    builder.static_seeds.append(0)
    with pytest.raises(IndexConstructionError, match="place every node"):
        builder.freeze()


def test_partial_build_allowed_when_incomplete():
    builder = StructureBuilder(minimal_points())
    builder.complete = False
    builder.place(0, 0, 0)
    builder.static_seeds.append(0)
    structure = builder.freeze()
    assert not structure.complete


def test_seed_selector_passthrough():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.seed_selector = lambda weights: np.array([2], dtype=np.intp)
    structure = builder.freeze()
    np.testing.assert_array_equal(structure.seeds(np.array([0.5, 0.5])), [2])
