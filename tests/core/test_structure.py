"""StructureBuilder / LayerStructure invariants."""

import numpy as np
import pytest

from repro.core.structure import StructureBuilder
from repro.exceptions import IndexConstructionError


def minimal_points(n=4):
    return np.linspace(0.1, 0.9, n * 2).reshape(n, 2)


def test_gates_and_children_wiring():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.static_seeds.extend([0, 1])
    builder.add_forall_parents(2, [0, 1])
    builder.add_exists_parents(3, [0])
    structure = builder.freeze()
    assert structure.forall_parent_count[2] == 2
    assert structure.exists_gated[3]
    assert not structure.exists_gated[2]
    assert 2 in structure.forall_children[0]
    assert 2 in structure.forall_children[1]
    assert 3 in structure.exists_children[0]
    assert structure.edge_counts() == {"forall_edges": 2, "exists_edges": 1}


def test_duplicate_parents_deduped():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.static_seeds.extend([0, 1, 3])
    builder.add_forall_parents(2, [0, 0, 1, 1])
    structure = builder.freeze()
    assert structure.forall_parent_count[2] == 2


def test_pseudo_nodes():
    builder = StructureBuilder(minimal_points())
    pseudo = builder.add_pseudo_node(np.array([0.05, 0.05]))
    assert pseudo == 4
    builder.place(pseudo, 0, 0)
    builder.static_seeds.append(pseudo)
    for node in range(4):
        builder.place(node, 1, 0)
        builder.add_forall_parents(node, [pseudo])
    structure = builder.freeze()
    assert structure.n_real == 4
    assert structure.n_pseudo == 1
    assert structure.is_pseudo(4)
    assert not structure.is_pseudo(3)
    np.testing.assert_allclose(structure.values[4], [0.05, 0.05])


def test_unreachable_node_rejected():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.static_seeds.append(0)  # nodes 1..3 gateless and unseeded
    with pytest.raises(IndexConstructionError, match="unreachable"):
        builder.freeze()


def test_incomplete_placement_rejected():
    builder = StructureBuilder(minimal_points())
    builder.place(0, 0, 0)
    builder.static_seeds.append(0)
    with pytest.raises(IndexConstructionError, match="place every node"):
        builder.freeze()


def test_partial_build_allowed_when_incomplete():
    builder = StructureBuilder(minimal_points())
    builder.complete = False
    builder.place(0, 0, 0)
    builder.static_seeds.append(0)
    structure = builder.freeze()
    assert not structure.complete


def test_seed_selector_passthrough():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.seed_selector = lambda weights: np.array([2], dtype=np.intp)
    structure = builder.freeze()
    np.testing.assert_array_equal(structure.seeds(np.array([0.5, 0.5])), [2])


def gated_structure():
    """4 real + 1 pseudo node with both gate kinds and uneven fan-out."""
    builder = StructureBuilder(minimal_points())
    pseudo = builder.add_pseudo_node(np.array([0.05, 0.05]))
    for node in range(4):
        builder.place(node, 0, 0)
    builder.place(pseudo, 0, 0)
    builder.static_seeds.extend([0, pseudo])
    builder.add_forall_parents(2, [0, 1])
    builder.add_forall_parents(3, [0])
    builder.add_exists_parents(3, [0, 1])
    builder.add_exists_parents(1, [pseudo])
    return builder.freeze()


def test_csr_layout_matches_adjacency_view():
    structure = gated_structure()
    for indptr, indices, view in (
        (structure.forall_indptr, structure.forall_indices, structure.forall_children),
        (structure.exists_indptr, structure.exists_indices, structure.exists_children),
    ):
        assert indptr.dtype == np.intp and indices.dtype == np.intp
        assert indptr.shape == (structure.n_nodes + 1,)
        assert indptr[0] == 0 and indptr[-1] == indices.shape[0]
        assert np.all(np.diff(indptr) >= 0)
        for node in range(structure.n_nodes):
            np.testing.assert_array_equal(
                view[node], indices[indptr[node] : indptr[node + 1]]
            )
    with pytest.raises(IndexError):
        structure.forall_children[-1]


def test_edge_counts_match_csr_totals():
    structure = gated_structure()
    counts = structure.edge_counts()
    assert counts["forall_edges"] == sum(
        len(structure.forall_children[v]) for v in range(structure.n_nodes)
    )
    assert counts["exists_edges"] == sum(
        len(structure.exists_children[v]) for v in range(structure.n_nodes)
    )
    assert counts == {"forall_edges": 3, "exists_edges": 3}


def test_layer_level_map_dict_compatibility():
    structure = gated_structure()
    coarse = structure.coarse_of
    assert coarse[0] == 0 and coarse.get(0) == 0 and 0 in coarse
    missing = structure.n_nodes + 5
    with pytest.raises(KeyError):
        coarse[missing]
    assert coarse.get(missing) is None and coarse.get(missing, 7) == 7
    assert missing not in coarse
    assert len(coarse) == structure.n_nodes
    assert sorted(coarse) == list(range(structure.n_nodes))
    assert dict(coarse.items())[3] == 0


def test_gate_state_template_encoding_and_cache():
    structure = gated_structure()
    state = structure.gate_state_template()
    assert state.dtype == np.int32
    offset = structure.n_nodes + 1
    expected = structure.forall_parent_count.astype(np.int64).copy()
    expected[structure.exists_gated] += offset
    np.testing.assert_array_equal(state.astype(np.int64), expected)
    # Cached: same object on repeat calls; survives pickling via rebuild.
    assert structure.gate_state_template() is state
    import pickle

    clone = pickle.loads(pickle.dumps(structure))
    np.testing.assert_array_equal(clone.gate_state_template(), state)
