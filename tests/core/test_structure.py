"""StructureBuilder / LayerStructure invariants."""

import numpy as np
import pytest

from repro.core.structure import StructureBuilder
from repro.exceptions import IndexConstructionError


def minimal_points(n=4):
    return np.linspace(0.1, 0.9, n * 2).reshape(n, 2)


def test_gates_and_children_wiring():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.static_seeds.extend([0, 1])
    builder.add_forall_parents(2, [0, 1])
    builder.add_exists_parents(3, [0])
    structure = builder.freeze()
    assert structure.forall_parent_count[2] == 2
    assert structure.exists_gated[3]
    assert not structure.exists_gated[2]
    assert 2 in structure.forall_children[0]
    assert 2 in structure.forall_children[1]
    assert 3 in structure.exists_children[0]
    assert structure.edge_counts() == {"forall_edges": 2, "exists_edges": 1}


def test_duplicate_parents_deduped():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.static_seeds.extend([0, 1, 3])
    builder.add_forall_parents(2, [0, 0, 1, 1])
    structure = builder.freeze()
    assert structure.forall_parent_count[2] == 2


def test_pseudo_nodes():
    builder = StructureBuilder(minimal_points())
    pseudo = builder.add_pseudo_node(np.array([0.05, 0.05]))
    assert pseudo == 4
    builder.place(pseudo, 0, 0)
    builder.static_seeds.append(pseudo)
    for node in range(4):
        builder.place(node, 1, 0)
        builder.add_forall_parents(node, [pseudo])
    structure = builder.freeze()
    assert structure.n_real == 4
    assert structure.n_pseudo == 1
    assert structure.is_pseudo(4)
    assert not structure.is_pseudo(3)
    np.testing.assert_allclose(structure.values[4], [0.05, 0.05])


def test_unreachable_node_rejected():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.static_seeds.append(0)  # nodes 1..3 gateless and unseeded
    with pytest.raises(IndexConstructionError, match="unreachable"):
        builder.freeze()


def test_incomplete_placement_rejected():
    builder = StructureBuilder(minimal_points())
    builder.place(0, 0, 0)
    builder.static_seeds.append(0)
    with pytest.raises(IndexConstructionError, match="place every node"):
        builder.freeze()


def test_partial_build_allowed_when_incomplete():
    builder = StructureBuilder(minimal_points())
    builder.complete = False
    builder.place(0, 0, 0)
    builder.static_seeds.append(0)
    structure = builder.freeze()
    assert not structure.complete


def test_seed_selector_passthrough():
    builder = StructureBuilder(minimal_points())
    for node in range(4):
        builder.place(node, 0, 0)
    builder.seed_selector = lambda weights: np.array([2], dtype=np.intp)
    structure = builder.freeze()
    np.testing.assert_array_equal(structure.seeds(np.array([0.5, 0.5])), [2])


def gated_structure():
    """4 real + 1 pseudo node with both gate kinds and uneven fan-out."""
    builder = StructureBuilder(minimal_points())
    pseudo = builder.add_pseudo_node(np.array([0.05, 0.05]))
    for node in range(4):
        builder.place(node, 0, 0)
    builder.place(pseudo, 0, 0)
    builder.static_seeds.extend([0, pseudo])
    builder.add_forall_parents(2, [0, 1])
    builder.add_forall_parents(3, [0])
    builder.add_exists_parents(3, [0, 1])
    builder.add_exists_parents(1, [pseudo])
    return builder.freeze()


def test_csr_layout_matches_adjacency_view():
    structure = gated_structure()
    for indptr, indices, view in (
        (structure.forall_indptr, structure.forall_indices, structure.forall_children),
        (structure.exists_indptr, structure.exists_indices, structure.exists_children),
    ):
        assert indptr.dtype == np.intp and indices.dtype == np.intp
        assert indptr.shape == (structure.n_nodes + 1,)
        assert indptr[0] == 0 and indptr[-1] == indices.shape[0]
        assert np.all(np.diff(indptr) >= 0)
        for node in range(structure.n_nodes):
            np.testing.assert_array_equal(
                view[node], indices[indptr[node] : indptr[node + 1]]
            )
    with pytest.raises(IndexError):
        structure.forall_children[-1]


def test_edge_counts_match_csr_totals():
    structure = gated_structure()
    counts = structure.edge_counts()
    assert counts["forall_edges"] == sum(
        len(structure.forall_children[v]) for v in range(structure.n_nodes)
    )
    assert counts["exists_edges"] == sum(
        len(structure.exists_children[v]) for v in range(structure.n_nodes)
    )
    assert counts == {"forall_edges": 3, "exists_edges": 3}


def test_layer_level_map_dict_compatibility():
    structure = gated_structure()
    coarse = structure.coarse_of
    assert coarse[0] == 0 and coarse.get(0) == 0 and 0 in coarse
    missing = structure.n_nodes + 5
    with pytest.raises(KeyError):
        coarse[missing]
    assert coarse.get(missing) is None and coarse.get(missing, 7) == 7
    assert missing not in coarse
    assert len(coarse) == structure.n_nodes
    assert sorted(coarse) == list(range(structure.n_nodes))
    assert dict(coarse.items())[3] == 0


def test_gate_state_template_encoding_and_cache():
    structure = gated_structure()
    state = structure.gate_state_template()
    assert state.dtype == np.int32
    offset = structure.n_nodes + 1
    expected = structure.forall_parent_count.astype(np.int64).copy()
    expected[structure.exists_gated] += offset
    np.testing.assert_array_equal(state.astype(np.int64), expected)
    # Cached: same object on repeat calls; survives pickling via rebuild.
    assert structure.gate_state_template() is state
    import pickle

    clone = pickle.loads(pickle.dumps(structure))
    np.testing.assert_array_equal(clone.gate_state_template(), state)


def test_sublayer_bound_table_properties():
    """Hierarchical bound soundness: every node's sublayer minima are <=
    its own values AND <= its block minima per attribute (the sublayer is
    the coarse side of the two-level check); unplaced nodes carry the -1
    id mapping to the -inf sentinel row, so they can never be skipped."""
    from repro.core import DLPlusIndex
    from repro.data import generate

    relation = generate("ANT", 500, 3, seed=41)
    structure = DLPlusIndex(relation).build().structure
    values = np.asarray(structure.values)
    block_of, block_mins = structure.layer_bound_table()
    sub_of, sub_mins = structure.sublayer_bound_table()

    assert sub_mins.shape[1] == values.shape[1]
    np.testing.assert_array_equal(sub_mins[-1], -np.inf)  # sentinel row

    placed = np.asarray(structure.coarse_levels) >= 0
    assert np.all(np.asarray(sub_of)[placed] >= 0)
    assert np.all(np.asarray(sub_of)[~placed] == -1)
    # Far coarser than the block table: that is the whole point.
    assert sub_mins.shape[0] < block_mins.shape[0]

    nodes = np.nonzero(placed)[0]
    assert np.all(sub_mins[np.asarray(sub_of)[nodes]] <= values[nodes])
    # Coarse <= fine: a sublayer bound can only be weaker than the block
    # bound it summarizes, which is what makes the cached sublayer verdict
    # imply every inner block's verdict.
    assert np.all(
        sub_mins[np.asarray(sub_of)[nodes]] <= block_mins[np.asarray(block_of)[nodes]]
    )


def test_sublayer_table_lazy_matches_freeze_time():
    """A structure stripped of its frozen sublayer table (v1 pickle /
    snapshot shape) recomputes it lazily with byte-identical bounds."""
    from repro.core import DLIndex
    from repro.core.structure import compute_sublayer_bounds
    from repro.data import generate

    relation = generate("COR", 400, 4, seed=43)
    structure = DLIndex(relation).build().structure
    frozen_of, frozen_mins = structure.sublayer_bound_table()
    recomputed_of, recomputed_mins = compute_sublayer_bounds(
        np.asarray(structure.values),
        np.asarray(structure.coarse_levels),
        np.asarray(structure.fine_levels),
    )
    np.testing.assert_array_equal(np.asarray(frozen_of), recomputed_of)
    assert np.asarray(frozen_mins).tobytes() == recomputed_mins.tobytes()
    # And via the lazy path itself:
    structure._sublayer_bounds = None
    lazy_of, lazy_mins = structure.sublayer_bound_table()
    np.testing.assert_array_equal(np.asarray(lazy_of), recomputed_of)
    assert np.asarray(lazy_mins).tobytes() == recomputed_mins.tobytes()


def test_has_layer_bounds_flag():
    """Structures frozen by the builder carry bounds; stripping them (old
    pickles) flips the flag the dispatcher keys on."""
    from repro.core import DLPlusIndex
    from repro.data import generate

    structure = DLPlusIndex(generate("IND", 200, 2, seed=45)).build().structure
    assert structure.has_layer_bounds
    structure._layer_bounds = None
    assert not structure.has_layer_bounds
