"""k-means from scratch."""

import numpy as np
import pytest

from repro.clustering import kmeans
from repro.exceptions import ReproError


def test_separated_blobs_recovered(rng):
    blob_a = rng.normal([0.2, 0.2], 0.02, size=(40, 2))
    blob_b = rng.normal([0.8, 0.8], 0.02, size=(40, 2))
    points = np.vstack([blob_a, blob_b])
    result = kmeans(points, 2, seed=0)
    assert result.k == 2
    # All of blob A in one cluster, all of blob B in the other.
    assert len(set(result.labels[:40].tolist())) == 1
    assert len(set(result.labels[40:].tolist())) == 1
    assert result.labels[0] != result.labels[40]


def test_labels_shape_and_range(rng):
    points = rng.random((100, 3))
    result = kmeans(points, 5, seed=1)
    assert result.labels.shape == (100,)
    assert result.labels.min() >= 0
    assert result.labels.max() < result.k
    assert result.centroids.shape == (result.k, 3)


def test_every_cluster_nonempty(rng):
    points = rng.random((50, 2))
    result = kmeans(points, 10, seed=2)
    for c in range(result.k):
        assert np.any(result.labels == c)


def test_k_clamped_to_distinct_points():
    points = np.tile([0.5, 0.5], (8, 1))
    result = kmeans(points, 4, seed=0)
    assert result.k == 1
    assert np.all(result.labels == 0)


def test_deterministic_given_seed(rng):
    points = rng.random((60, 2))
    a = kmeans(points, 4, seed=9)
    b = kmeans(points, 4, seed=9)
    np.testing.assert_array_equal(a.labels, b.labels)


def test_inertia_decreases_with_more_clusters(rng):
    points = rng.random((200, 2))
    few = kmeans(points, 2, seed=3)
    many = kmeans(points, 12, seed=3)
    assert many.inertia < few.inertia


def test_invalid_inputs():
    with pytest.raises(ReproError):
        kmeans(np.empty((0, 2)), 2)
    with pytest.raises(ReproError):
        kmeans(np.ones((5, 2)), 0)


def test_single_point():
    result = kmeans(np.array([[0.3, 0.7]]), 3)
    assert result.k == 1
    assert result.inertia == pytest.approx(0.0)
