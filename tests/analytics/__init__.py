"""Dual-direction analytics tests."""
