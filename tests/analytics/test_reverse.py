"""Reverse top-k property suite: exact 2-D regions, certified d>2 bounds,
and bichromatic screens — all against the brute-force oracle, across the
distribution x dimensionality x index-variant grid."""

import numpy as np
import pytest

from repro.analytics import AnalyticsEngine
from repro.analytics.oracle import oracle_membership, oracle_top_k
from repro.analytics.reverse import split_competitors
from repro.core import DLIndex, DLPlusIndex
from repro.data import generate
from repro.relation import normalize_weights
from repro.serving import QueryEngine


def make_engine(distribution, n, d, index_class, seed=29):
    relation = generate(distribution, n, d, seed=seed)
    return QueryEngine(index_class(relation).build(), cache_size=0)


def sample_weights(rng, d, count, concentration=1.0):
    raw = rng.dirichlet(np.ones(d) * concentration, size=count)
    return [normalize_weights(np.clip(row, 1e-9, None), d) for row in raw]


# ---------------------------------------------------------------------- #
# Monochromatic: exact in d=2
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex])
def test_exact_2d_region_agrees_with_oracle(distribution, index_class, rng):
    """Acceptance: the d=2 interval region agrees with the oracle at
    uniformly sampled weights AND at boundary-adjacent weights (each
    interval endpoint nudged by +-1e-6), where every off-by-one in the
    sweep would show."""
    engine = make_engine(distribution, 250, 2, index_class)
    analytics = AnalyticsEngine(engine)
    matrix = engine.index.relation.matrix
    k = 6
    for target in [0, 7, 42, 249]:
        region = analytics.reverse_topk(target, k)
        probes = [w[0] for w in sample_weights(rng, 2, 60)]
        for lo, hi in region.intervals:
            probes.extend(
                [lo - 1e-6, lo + 1e-6, hi - 1e-6, hi + 1e-6]
            )
        for w1 in probes:
            if not 0.0 < w1 < 1.0:
                continue
            w = normalize_weights(np.asarray([w1, 1.0 - w1]), 2)
            assert region.contains(w) is oracle_membership(
                matrix, w, k, target
            ), f"target {target} diverged at w1={w1}"


def test_exact_2d_region_duplicate_tiebreak():
    """Duplicate rows resolve by id: the earlier duplicate's region is
    the full interval for k=1, the later one's is empty."""
    matrix = np.asarray([[0.5, 0.5], [0.5, 0.5], [2.0, 2.0]])
    rows = np.arange(3, dtype=np.intp)
    from repro.analytics.reverse import monochromatic_region_2d

    early = monochromatic_region_2d(matrix, rows, matrix[0], 0, 1)
    late = monochromatic_region_2d(matrix, rows, matrix[1], 1, 1)
    assert early.measure == pytest.approx(1.0)
    assert late.is_empty
    # With k=2 both duplicates fit.
    late2 = monochromatic_region_2d(matrix, rows, matrix[1], 1, 2)
    assert late2.measure == pytest.approx(1.0)


def test_split_competitors_buckets():
    target = np.asarray([1.0, 1.0])
    matrix = np.asarray(
        [
            [0.5, 0.5],  # dominator -> always
            [1.0, 1.0],  # duplicate, id 1 < 2 -> always
            [2.0, 2.0],  # dominated -> never
            [0.1, 9.0],  # mixed sign -> variable
            [1.0, 1.0],  # duplicate, id 4 > 2 -> never
        ]
    )
    always, variable = split_competitors(
        matrix, np.arange(5, dtype=np.intp), target, 2
    )
    assert always == 2
    assert variable.tolist() == [3]


# ---------------------------------------------------------------------- #
# Certified regions: d > 2
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
@pytest.mark.parametrize("d", [3, 4])
def test_certified_region_never_contradicts_oracle(distribution, d, rng):
    """Acceptance: IN cells contain only members, OUT cells only
    non-members; volume bounds are ordered; uncertain mass shrinks with
    depth."""
    engine = make_engine(distribution, 150, d, DLPlusIndex)
    analytics = AnalyticsEngine(engine)
    matrix = engine.index.relation.matrix
    k = 5
    for target in [0, 11, 149]:
        shallow = analytics.reverse_topk(target, k, max_depth=4, max_cells=256)
        deep = analytics.reverse_topk(target, k, max_depth=9, max_cells=2048)
        for region in (shallow, deep):
            assert region.volume_lower <= region.volume_upper + 1e-12
        assert (deep.volume_upper - deep.volume_lower) <= (
            shallow.volume_upper - shallow.volume_lower
        ) + 1e-12
        for w in sample_weights(rng, d, 40, concentration=0.5):
            verdict = deep.classify(w)
            truth = oracle_membership(matrix, w, k, target)
            if verdict == "in":
                assert truth
            elif verdict == "out":
                assert not truth


# ---------------------------------------------------------------------- #
# Bichromatic: screens + batched walks, bitwise vs the serving kernels
# ---------------------------------------------------------------------- #


@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
@pytest.mark.parametrize("d", [2, 3, 4])
@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex])
def test_bichromatic_bitwise_vs_serving(distribution, d, index_class, rng):
    """Acceptance: every membership bit equals what engine.query (i.e.
    process_top_k) answers for the same raw weights — screens and walks
    agree with the kernel on every vector."""
    engine = make_engine(distribution, 200, d, index_class)
    analytics = AnalyticsEngine(engine)
    raw = np.clip(rng.dirichlet(np.ones(d), size=40), 1e-9, None)
    k = 7
    for target in [3, 60, 199]:
        result = analytics.bichromatic(raw, k, target)
        for i in range(raw.shape[0]):
            served = bool(np.isin(target, engine.query(raw[i], k).ids))
            assert bool(result.members[i]) is served, (
                f"target {target} row {i} resolution={result.resolution[i]}"
            )
        assert result.walked == result.resolution.count("walk")
        assert 0.0 <= result.resolved_without_walk <= 1.0


def test_bichromatic_hypothetical_target(rng):
    """A tuple not in the relation competes with id=n (loses ties) and
    resolves without any walk — the kernel can't walk a phantom."""
    engine = make_engine("IND", 180, 3, DLPlusIndex)
    analytics = AnalyticsEngine(engine)
    matrix = engine.index.relation.matrix
    raw = np.clip(rng.dirichlet(np.ones(3), size=32), 1e-9, None)
    values = np.quantile(matrix, 0.08, axis=0)
    result = analytics.bichromatic(raw, 5, values=values)
    assert "walk" not in result.resolution
    for i in range(raw.shape[0]):
        w = normalize_weights(raw[i], 3)
        assert bool(result.members[i]) is oracle_membership(
            matrix, w, 5, matrix.shape[0], values=values
        )


def test_bichromatic_static_fast_paths(rng):
    """k >= pool resolves everything IN statically; a target deeper than
    layer k-1 resolves everything OUT statically."""
    engine = make_engine("IND", 60, 3, DLPlusIndex)
    analytics = AnalyticsEngine(engine)
    raw = np.clip(rng.dirichlet(np.ones(3), size=8), 1e-9, None)
    all_in = analytics.bichromatic(raw, 60, 5)
    assert all_in.members.all() and set(all_in.resolution) == {"static"}
    levels = engine.index.structure.coarse_levels
    deep = int(np.argmax(levels[: engine.n]))
    if levels[deep] >= 3:
        all_out = analytics.bichromatic(raw, 3, deep)
        assert not all_out.members.any()
        assert set(all_out.resolution) == {"static"}


def test_mono_region_on_toy_hotels(toy, toy_ids):
    """The paper's toy data: a skyline hotel owns a nonempty k=1 region;
    a dominated one does not."""
    engine = QueryEngine(DLPlusIndex(toy).build(), cache_size=0)
    analytics = AnalyticsEngine(engine)
    matrix = toy.matrix
    best_region = None
    for tid in range(toy.n):
        region = analytics.reverse_topk(tid, 1)
        truth_any = any(
            oracle_membership(matrix, normalize_weights(np.asarray([x, 1 - x]), 2), 1, tid)
            for x in np.linspace(0.01, 0.99, 99)
        )
        assert (not region.is_empty) == truth_any
        if not region.is_empty:
            best_region = region
    assert best_region is not None


def test_region_measure_matches_interval_sum():
    engine = make_engine("ANT", 120, 2, DLPlusIndex)
    analytics = AnalyticsEngine(engine)
    region = analytics.reverse_topk(4, 5)
    assert region.measure == pytest.approx(
        sum(hi - lo for lo, hi in region.intervals)
    )


def test_reverse_topk_oracle_topk_consistency(rng):
    """oracle_top_k and membership agree: the k winners' regions contain
    the query weight."""
    engine = make_engine("IND", 90, 2, DLPlusIndex)
    analytics = AnalyticsEngine(engine)
    matrix = engine.index.relation.matrix
    w = normalize_weights(np.asarray([0.35, 0.65]), 2)
    ids, _ = oracle_top_k(matrix, w, 4)
    for tid in ids:
        region = analytics.reverse_topk(int(tid), 4)
        assert region.contains(w)
