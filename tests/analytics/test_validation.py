"""Boundary-validation contract: every analytics entry point rejects
malformed k, weights, and targets with the shared serving exceptions —
scalar and batch forms alike (the satellite acceptance)."""

import numpy as np
import pytest

from repro.analytics import AnalyticsEngine
from repro.cluster import ClusterEngine
from repro.core import DLPlusIndex
from repro.data import generate
from repro.exceptions import InvalidQueryError, InvalidWeightError
from repro.serving import QueryEngine


@pytest.fixture(scope="module")
def analytics():
    relation = generate("IND", 60, 3, seed=41)
    return AnalyticsEngine(QueryEngine(DLPlusIndex(relation).build(), cache_size=0))


BAD_KS = ["3", 2.5, 0, -1, True, None]
BAD_WEIGHTS = [
    np.asarray([0.5, 0.5]),          # wrong d
    np.asarray([0.2, -0.3, 1.1]),    # negative component
    np.asarray([0.0, 0.0, 0.0]),     # zero sum
    np.asarray([0.2, np.nan, 0.6]),  # non-finite
]
GOOD_W = np.asarray([0.2, 0.3, 0.5])


@pytest.mark.parametrize("bad_k", BAD_KS)
def test_bad_k_rejected_everywhere(analytics, bad_k):
    with pytest.raises(InvalidQueryError):
        analytics.reverse_topk(0, bad_k)
    with pytest.raises(InvalidQueryError):
        analytics.bichromatic(GOOD_W[None, :], bad_k, 0)
    with pytest.raises(InvalidQueryError):
        analytics.why_not(GOOD_W, 0, bad_k)
    with pytest.raises(InvalidQueryError):
        analytics.what_if(GOOD_W, bad_k, new_weights=GOOD_W)


@pytest.mark.parametrize("bad_w", BAD_WEIGHTS)
def test_bad_weights_rejected_everywhere(analytics, bad_w):
    with pytest.raises(InvalidWeightError):
        analytics.why_not(bad_w, 0, 5)
    with pytest.raises(InvalidWeightError):
        analytics.what_if(bad_w, 5, new_weights=GOOD_W)
    with pytest.raises(InvalidWeightError):
        analytics.what_if(GOOD_W, 5, new_weights=bad_w)
    # Batch form: one malformed row poisons the whole workload up front.
    workload = np.vstack([GOOD_W, bad_w]) if bad_w.shape == (3,) else bad_w
    with pytest.raises(InvalidWeightError):
        analytics.bichromatic(workload, 5, 0)


def test_empty_and_misshapen_workloads(analytics):
    with pytest.raises(InvalidWeightError):
        analytics.bichromatic(np.zeros((0, 3)), 5, 0)
    with pytest.raises(InvalidWeightError):
        analytics.bichromatic(np.zeros((2, 2, 3)), 5, 0)


@pytest.mark.parametrize("bad_id", ["3", 2.5, -1, 60, 10_000, True, None])
def test_bad_target_ids_rejected(analytics, bad_id):
    with pytest.raises(InvalidQueryError):
        analytics.reverse_topk(bad_id, 5)
    with pytest.raises(InvalidQueryError):
        analytics.bichromatic(GOOD_W[None, :], 5, bad_id)
    with pytest.raises(InvalidQueryError):
        analytics.why_not(GOOD_W, bad_id, 5)


def test_target_id_and_values_mutually_exclusive(analytics):
    with pytest.raises(InvalidQueryError):
        analytics.reverse_topk(0, 5, values=np.asarray([0.1, 0.2, 0.3]))
    with pytest.raises(InvalidQueryError):
        analytics.bichromatic(
            GOOD_W[None, :], 5, 0, values=np.asarray([0.1, 0.2, 0.3])
        )


def test_hypothetical_values_validated(analytics):
    with pytest.raises(InvalidQueryError):
        analytics.reverse_topk(values=np.asarray([0.1, 0.2]), k=5)  # wrong d
    with pytest.raises(InvalidQueryError):
        analytics.reverse_topk(values=np.asarray([0.1, np.inf, 0.2]), k=5)


def test_integral_float_ids_accepted(analytics):
    """np.int64 / float 7.0 are fine — only non-integral values raise."""
    report = analytics.why_not(GOOD_W, np.int64(7), 5)
    assert report.target_id == 7
    region = analytics.reverse_topk(7.0, 5)
    assert region is not None


def test_cluster_boundary_contract():
    """The same contract holds through a ClusterEngine facade."""
    relation = generate("IND", 60, 3, seed=42)
    analytics = AnalyticsEngine(ClusterEngine(relation, shards=2, cache_size=0))
    with pytest.raises(InvalidQueryError):
        analytics.why_not(GOOD_W, 0, 0)
    with pytest.raises(InvalidWeightError):
        analytics.why_not(np.asarray([0.5, 0.5]), 0, 5)
    with pytest.raises(InvalidQueryError):
        analytics.bichromatic(GOOD_W[None, :], 5, 999)
