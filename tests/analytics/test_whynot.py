"""Why-not: ranks bitwise-consistent with serving, verified promotions,
dominance certificates, and exact cluster scatter-gather composition."""

import numpy as np
import pytest

from repro.analytics import AnalyticsEngine
from repro.analytics.oracle import oracle_membership, oracle_rank
from repro.cluster import ClusterEngine
from repro.core import DLPlusIndex
from repro.data import generate
from repro.exceptions import InvalidQueryError
from repro.relation import normalize_weights
from repro.serving import QueryEngine


def make_engine(distribution, n, d, seed=61):
    relation = generate(distribution, n, d, seed=seed)
    return QueryEngine(DLPlusIndex(relation).build(), cache_size=0)


@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
@pytest.mark.parametrize("d", [2, 3, 4])
def test_rank_and_gap_match_oracle(distribution, d, rng):
    engine = make_engine(distribution, 150, d)
    analytics = AnalyticsEngine(engine)
    matrix = engine.index.relation.matrix
    raw = np.clip(rng.dirichlet(np.ones(d)), 1e-9, None)
    w = normalize_weights(raw, d)
    k = 6
    answer = engine.query(raw, k)
    for target in [0, 29, 149]:
        report = analytics.why_not(raw, target, k)
        assert report.rank == oracle_rank(matrix, w, target)
        assert report.in_top_k is bool(np.isin(target, answer.ids))
        # The k-th score is the engine's own answer byte for byte.
        assert report.kth_score == float(answer.scores[-1])
        assert report.gap == report.score - report.kth_score
        if report.in_top_k:
            assert report.certificate == "already-in-top-k"
            assert report.rank <= k


@pytest.mark.parametrize("norm", ["l1", "linf"])
def test_promotions_are_verified(norm, rng):
    """Acceptance: every Δ the report calls feasible survives an oracle
    re-rank; reports never claim an unverified promotion."""
    promoted = 0
    for seed in range(4):
        engine = make_engine("IND", 130, 3, seed=seed + 5)
        analytics = AnalyticsEngine(engine)
        matrix = engine.index.relation.matrix
        raw = np.clip(rng.dirichlet(np.ones(3)), 1e-9, None)
        answer = engine.query(raw, 20)
        # Near-miss targets (ranks just past k) are the promotable band.
        for target in answer.ids[6:12]:
            report = analytics.why_not(raw, int(target), 5, norm=norm)
            if report.certificate != "promoted":
                continue
            promoted += 1
            assert report.feasible
            assert report.perturbation_norm > 0
            assert np.isclose(report.perturbation.sum(), 0.0, atol=1e-8)
            w2 = normalize_weights(
                report.weights + report.perturbation, 3
            )
            assert oracle_membership(matrix, w2, 5, int(target))
            assert report.achieved_rank <= 5
    assert promoted > 0, "no promotion exercised — test lost its teeth"


def test_dominated_out_certificate():
    """k dominators => no weight vector helps; the report proves it."""
    matrix = np.vstack(
        [
            np.full((5, 2), 0.1),
            np.asarray([[0.5, 0.5]]),
            np.random.default_rng(0).uniform(0.6, 0.9, size=(40, 2)),
        ]
    )
    from repro.relation import Relation

    engine = QueryEngine(
        DLPlusIndex(Relation(matrix.copy())).build(), cache_size=0
    )
    analytics = AnalyticsEngine(engine)
    report = analytics.why_not(np.asarray([0.5, 0.5]), 5, 3)
    assert report.certificate == "dominated-out"
    assert not report.feasible
    assert report.perturbation is None
    assert "dominate" in report.describe()


def test_exact_2d_refinement_finds_thin_regions(rng):
    """In d=2 the promotion comes from the exact interval region, so any
    target with a nonempty region must be promotable."""
    engine = make_engine("ANT", 200, 2, seed=3)
    analytics = AnalyticsEngine(engine)
    k = 5
    w = np.asarray([0.9, 0.1])
    checked = 0
    for target in range(0, 200, 7):
        region = analytics.reverse_topk(target, k)
        report = analytics.why_not(w, target, k)
        if report.in_top_k:
            continue
        if not region.is_empty:
            assert report.certificate == "promoted", f"target {target}"
            checked += 1
        else:
            assert report.certificate in ("dominated-out", "lp-infeasible")
    assert checked > 0


def test_cluster_rank_composes_exactly(rng):
    """Acceptance (satellite): per-shard beater counts sum to the global
    rank bitwise — same report through one node and through a cluster."""
    relation = generate("IND", 170, 3, seed=13)
    single = QueryEngine(DLPlusIndex(relation).build(), cache_size=0)
    cluster = ClusterEngine(relation, shards=4, cache_size=0)
    a_single = AnalyticsEngine(single)
    a_cluster = AnalyticsEngine(cluster)
    raw = np.clip(rng.dirichlet(np.ones(3)), 1e-9, None)
    for target in [0, 8, 81, 169]:
        r1 = a_single.why_not(raw, target, 6)
        r2 = a_cluster.why_not(raw, target, 6)
        assert r1.rank == r2.rank
        assert r1.score == r2.score
        assert r1.kth_score == r2.kth_score
        assert r1.in_top_k is r2.in_top_k
        assert sum(r2.shard_beaters.values()) == r2.rank - 1
        assert len(r2.shard_beaters) == 4


def test_invalid_norm_rejected():
    engine = make_engine("IND", 50, 2)
    analytics = AnalyticsEngine(engine)
    with pytest.raises(InvalidQueryError):
        analytics.why_not(np.asarray([0.5, 0.5]), 3, 5, norm="l2")
