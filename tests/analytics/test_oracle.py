"""The brute-force oracle itself: tie-breaks, hypothetical targets, and
bitwise agreement with the walk kernels."""

import numpy as np
import pytest

from repro.analytics.oracle import (
    oracle_beats,
    oracle_membership,
    oracle_rank,
    oracle_top_k,
)
from repro.core import DLPlusIndex
from repro.core.query import process_top_k
from repro.data import generate
from repro.relation import normalize_weights
from repro.stats import AccessCounter


def test_oracle_matches_walk_kernel_bitwise(rng):
    relation = generate("ANT", 200, 3, seed=8)
    index = DLPlusIndex(relation).build()
    for _ in range(10):
        w = normalize_weights(np.clip(rng.dirichlet(np.ones(3)), 1e-9, None), 3)
        ids, scores = process_top_k(index.structure, w, 7, AccessCounter())
        oids, oscores = oracle_top_k(relation.matrix, w, 7)
        assert np.array_equal(ids, oids)
        assert scores.tobytes() == oscores.tobytes()


def test_tie_break_by_id():
    matrix = np.asarray([[1.0, 1.0], [1.0, 1.0], [0.5, 1.5]])
    w = np.asarray([0.5, 0.5])
    ids, _ = oracle_top_k(matrix, w, 3)
    assert ids.tolist() == [0, 1, 2]
    assert oracle_rank(matrix, w, 0) == 1
    assert oracle_rank(matrix, w, 1) == 2
    assert oracle_beats(matrix, w, 1.0, 1) == 1  # only id 0 wins the tie


def test_membership_hypothetical_target():
    matrix = np.asarray([[1.0, 1.0], [2.0, 2.0]])
    w = np.asarray([0.5, 0.5])
    # A duplicate of row 0 arriving as id 2 loses the tie: out at k=1.
    assert not oracle_membership(matrix, w, 1, 2, values=np.asarray([1.0, 1.0]))
    assert oracle_membership(matrix, w, 2, 2, values=np.asarray([1.0, 1.0]))
    # A strictly better hypothetical wins at k=1.
    assert oracle_membership(matrix, w, 1, 2, values=np.asarray([0.5, 0.5]))


def test_membership_k_covers_pool():
    matrix = np.asarray([[1.0, 2.0], [2.0, 1.0]])
    w = np.asarray([0.5, 0.5])
    assert oracle_membership(matrix, w, 5, 0)
    assert oracle_membership(matrix, w, 5, 1)


def test_rank_is_one_plus_beats():
    from repro.core.query import score_rows

    relation = generate("IND", 50, 2, seed=2)
    w = normalize_weights(np.asarray([0.3, 0.7]), 2)
    scores = score_rows(relation.matrix, np.arange(50, dtype=np.intp), w)
    for tid in range(0, 50, 11):
        rank = oracle_rank(relation.matrix, w, tid)
        assert rank == 1 + oracle_beats(
            relation.matrix, w, float(scores[tid]), tid
        )
