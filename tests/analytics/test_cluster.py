"""Cluster analytics: bitwise equivalence with a single node, the
normalize-once invariant, and survival across routed maintenance."""

import numpy as np
import pytest

from repro.analytics import AnalyticsEngine
from repro.analytics.oracle import oracle_membership
from repro.cluster import ClusterEngine
from repro.core import DLPlusIndex
from repro.data import generate
from repro.relation import normalize_weights
from repro.serving import QueryEngine


def pair(distribution, n, d, shards, seed=23):
    relation = generate(distribution, n, d, seed=seed)
    single = QueryEngine(DLPlusIndex(relation).build(), cache_size=0)
    cluster = ClusterEngine(relation, shards=shards, cache_size=0)
    return relation, AnalyticsEngine(single), AnalyticsEngine(cluster)


@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
@pytest.mark.parametrize("shards", [1, 3])
def test_bichromatic_cluster_equals_single_node(distribution, shards, rng):
    """Acceptance (satellite): raw weights forwarded, normalized exactly
    once — the membership vector is identical through either engine."""
    relation, a_single, a_cluster = pair(distribution, 160, 3, shards)
    raw = np.clip(rng.dirichlet(np.ones(3), size=32), 1e-9, None)
    for target in [1, 44, 159]:
        b1 = a_single.bichromatic(raw, 6, target)
        b2 = a_cluster.bichromatic(raw, 6, target)
        assert np.array_equal(b1.members, b2.members), f"target {target}"
        # And both equal the oracle at the normalized weights.
        for i in range(raw.shape[0]):
            w = normalize_weights(raw[i], 3)
            assert bool(b1.members[i]) is oracle_membership(
                relation.matrix, w, 6, target
            )


def test_unnormalized_workload_rows_resolve_identically(rng):
    """Scaling a workload row by 100x must not change any answer — the
    facade normalizes its own screens and forwards RAW rows to engines,
    which normalize exactly once."""
    relation, a_single, a_cluster = pair("IND", 120, 3, 2)
    base = np.clip(rng.dirichlet(np.ones(3), size=16), 1e-9, None)
    scaled = base * 100.0
    for analytics in (a_single, a_cluster):
        r1 = analytics.bichromatic(base, 5, 7)
        r2 = analytics.bichromatic(scaled, 5, 7)
        assert np.array_equal(r1.members, r2.members)


def test_reverse_regions_identical_across_engines(rng):
    """The snapshot (matrix + layer placements) is engine-independent, so
    regions come out identical."""
    relation, a_single, a_cluster = pair("ANT", 100, 2, 4)
    for target in [0, 50, 99]:
        r1 = a_single.reverse_topk(target, 4)
        r2 = a_cluster.reverse_topk(target, 4)
        assert r1.intervals == r2.intervals


def test_cluster_analytics_survives_maintenance(rng):
    """Insert + delete through the cluster: the facade re-snapshots on
    version bump and keeps matching the oracle on the live population."""
    relation, _, a_cluster = pair("IND", 90, 3, 3)
    cluster = a_cluster.engine
    w = np.asarray([0.3, 0.4, 0.3])
    victim = int(cluster.query(w, 1).ids[0])
    cluster.delete(victim)
    new_values = relation.matrix.min(axis=0) - 0.5
    new_id = cluster.insert(new_values)
    report = a_cluster.why_not(w, new_id, 3)
    assert report.in_top_k, "a dominating insert must be in the top-k"
    assert report.rank == 1
    # The deleted tuple is gone: targeting it raises at the boundary.
    from repro.exceptions import InvalidQueryError

    with pytest.raises(InvalidQueryError):
        a_cluster.why_not(w, victim, 3)
