"""What-if: hypothetical edits and weight changes vs rebuilt-index oracle."""

import numpy as np
import pytest

from repro.analytics import AnalyticsEngine, TupleEdit
from repro.analytics.oracle import oracle_top_k
from repro.analytics.whatif import merge_edit
from repro.core import DLPlusIndex
from repro.data import generate
from repro.exceptions import InvalidQueryError
from repro.relation import normalize_weights
from repro.serving import QueryEngine


def make_engine(distribution, n, d, seed=77):
    relation = generate(distribution, n, d, seed=seed)
    return QueryEngine(DLPlusIndex(relation).build(), cache_size=0)


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
@pytest.mark.parametrize("d", [2, 3])
def test_edits_match_edited_matrix_oracle(distribution, d, rng):
    """Acceptance: the merged what-if answer equals the brute-force top-k
    of the actually-edited matrix, ids and score bytes."""
    engine = make_engine(distribution, 140, d)
    analytics = AnalyticsEngine(engine)
    matrix = engine.index.relation.matrix
    raw = np.clip(rng.dirichlet(np.ones(d)), 1e-9, None)
    w = normalize_weights(raw, d)
    k = 5
    answer = engine.query(raw, k)

    # Delete the current winner.
    victim = int(answer.ids[0])
    report = analytics.what_if(raw, k, edit=TupleEdit("delete", tuple_id=victim))
    edited = matrix.copy()
    edited[victim] = np.inf  # deletion: the row can never score
    ids, scores = oracle_top_k(edited, w, k)
    assert np.array_equal(report.after_ids, ids)
    assert report.after_scores.tobytes() == scores.tobytes()
    assert victim in report.exited

    # Update the winner to the worst corner.
    worst = matrix[np.isfinite(matrix).all(axis=1)].max(axis=0) + 1.0
    report = analytics.what_if(
        raw, k, edit=TupleEdit("update", tuple_id=victim, values=worst)
    )
    edited = matrix.copy()
    edited[victim] = worst
    ids, scores = oracle_top_k(edited, w, k)
    assert np.array_equal(report.after_ids, ids)
    assert report.after_scores.tobytes() == scores.tobytes()

    # Insert a new global winner: it must enter with id n.
    best = matrix.min(axis=0) - 1.0
    report = analytics.what_if(raw, k, edit=TupleEdit("insert", values=best))
    ids, scores = oracle_top_k(np.vstack([matrix, best]), w, k)
    assert np.array_equal(report.after_ids, ids)
    assert report.after_scores.tobytes() == scores.tobytes()
    assert matrix.shape[0] in report.entered


def test_insert_loses_score_ties(rng):
    """An inserted duplicate of the current k-th answer must NOT displace
    it — the new tuple has the largest id and loses the tie."""
    engine = make_engine("IND", 80, 2)
    analytics = AnalyticsEngine(engine)
    raw = np.asarray([0.4, 0.6])
    k = 4
    answer = engine.query(raw, k)
    kth_values = engine.index.relation.matrix[int(answer.ids[-1])]
    report = analytics.what_if(
        raw, k, edit=TupleEdit("insert", values=kth_values.copy())
    )
    assert np.array_equal(report.after_ids, report.before_ids)
    assert report.entered.size == 0


def test_weight_change_diff(rng):
    engine = make_engine("ANT", 120, 3)
    analytics = AnalyticsEngine(engine)
    w_before = np.asarray([0.6, 0.2, 0.2])
    w_after = np.asarray([0.1, 0.1, 0.8])
    report = analytics.what_if(w_before, 5, new_weights=w_after)
    assert report.change == "weights"
    expected_before = engine.query(w_before, 5)
    expected_after = engine.query(w_after, 5)
    assert np.array_equal(report.before_ids, expected_before.ids)
    assert np.array_equal(report.after_ids, expected_after.ids)
    assert set(report.entered) == set(report.after_ids) - set(report.before_ids)


def test_merge_edit_is_pure():
    """merge_edit never mutates its inputs and handles the k+1 window."""
    ids = np.asarray([4, 1, 9], dtype=np.intp)
    scores = np.asarray([0.1, 0.2, 0.3])
    edit = TupleEdit("delete", tuple_id=1)
    out_ids, out_scores = merge_edit(ids, scores, edit, np.asarray([0.5, 0.5]), 2, 10)
    assert out_ids.tolist() == [4, 9]
    assert ids.tolist() == [4, 1, 9]
    assert out_scores.tolist() == [0.1, 0.3]


def test_edit_validation():
    with pytest.raises(InvalidQueryError):
        TupleEdit("replace", tuple_id=1)
    with pytest.raises(InvalidQueryError):
        TupleEdit("update", tuple_id=1)  # no values
    with pytest.raises(InvalidQueryError):
        TupleEdit("insert")  # no values
    with pytest.raises(InvalidQueryError):
        TupleEdit("delete")  # no tuple_id
    engine = make_engine("IND", 40, 2)
    analytics = AnalyticsEngine(engine)
    w = np.asarray([0.5, 0.5])
    with pytest.raises(InvalidQueryError):
        analytics.what_if(w, 3)  # neither edit nor new_weights
    with pytest.raises(InvalidQueryError):
        analytics.what_if(
            w,
            3,
            edit=TupleEdit("delete", tuple_id=0),
            new_weights=np.asarray([0.4, 0.6]),
        )
    with pytest.raises(InvalidQueryError):
        analytics.what_if(w, 3, edit=TupleEdit("delete", tuple_id=400))
    with pytest.raises(InvalidQueryError):
        analytics.what_if(
            w, 3, edit=TupleEdit("insert", values=np.asarray([1.0, np.nan]))
        )


def test_index_never_mutated(rng):
    engine = make_engine("IND", 90, 2)
    analytics = AnalyticsEngine(engine)
    raw = np.asarray([0.3, 0.7])
    before_matrix = engine.index.relation.matrix.copy()
    version = engine.version
    analytics.what_if(raw, 4, edit=TupleEdit("delete", tuple_id=0))
    analytics.what_if(raw, 4, edit=TupleEdit("insert", values=np.asarray([0.0, 0.0])))
    assert np.array_equal(engine.index.relation.matrix, before_matrix)
    assert engine.version == version
