"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate
from repro.data.hotels import HOTEL_NAMES, toy_hotels


@pytest.fixture(scope="session")
def toy():
    """The paper's Fig. 1 toy hotel relation."""
    return toy_hotels()


@pytest.fixture(scope="session")
def toy_ids():
    """Name → tuple id mapping for the toy hotels."""
    return {name: i for i, name in enumerate(HOTEL_NAMES)}


@pytest.fixture()
def rng():
    """A deterministic random generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session", params=["IND", "ANT"])
def small_relation(request):
    """A small relation of each benchmark distribution (d=3)."""
    return generate(request.param, 250, 3, seed=9)


def names_of(ids) -> set[str]:
    """Toy-hotel names for a collection of ids (test helper)."""
    return {HOTEL_NAMES[int(i)] for i in ids}
