"""Property-based tests: ∃-dominance assignments (Definition 5 / Lemma 2)."""

import numpy as np
from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.eds import assign_covering_facets
from repro.geometry import convex_combination_dominates
from repro.geometry.convex_skyline import convex_skyline_with_facets
from repro.skyline import skyline_sfs


@st.composite
def skyline_layers_with_two_sublayers(draw):
    d = draw(st.integers(2, 4))
    n = draw(st.integers(8, 60))
    points = draw(
        arrays(
            np.float64,
            (n, d),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
        )
    )
    layer = points[skyline_sfs(points)]
    return layer


def _localized(facets, vertices):
    position = {int(v): i for i, v in enumerate(vertices)}
    return [
        replace(
            f,
            members=np.asarray(
                [position[int(m)] for m in f.members], dtype=np.intp
            ),
        )
        for f in facets
    ]


@settings(max_examples=50, deadline=None)
@given(layer=skyline_layers_with_two_sublayers(), data=st.data())
def test_assignments_are_witnessed_and_satisfy_lemma2(layer, data):
    vertices, facets = convex_skyline_with_facets(layer)
    mask = np.ones(layer.shape[0], dtype=bool)
    mask[vertices] = False
    residual = layer[mask]
    if residual.shape[0] == 0:
        return
    sub_points = layer[vertices]
    assignments = assign_covering_facets(
        sub_points, _localized(facets, vertices), residual
    )
    d = layer.shape[1]
    raw = [data.draw(st.floats(0.05, 1.0, allow_nan=False)) for _ in range(d)]
    w = np.asarray(raw) / np.sum(raw)
    for parents, target in zip(assignments, residual):
        # Definition 5 witness: a convex combination below the target.
        assert convex_combination_dominates(sub_points[parents], target, tol=1e-6)
        # Lemma 2: some parent scores weakly below the target for any w > 0.
        assert (sub_points[parents] @ w).min() <= target @ w + 1e-7
