"""Property-based tests: cursor paging equals one-shot queries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import DLIndex, TopKCursor
from repro.relation import Relation, top_k_bruteforce


@st.composite
def paged_workloads(draw):
    d = draw(st.integers(2, 3))
    n = draw(st.integers(2, 50))
    points = draw(
        arrays(
            np.float64,
            (n, d),
            elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
        )
    )
    raw = [draw(st.floats(0.05, 1.0, allow_nan=False)) for _ in range(d)]
    pages = draw(st.lists(st.integers(1, 10), min_size=1, max_size=5))
    return points, np.asarray(raw), pages


@settings(max_examples=40, deadline=None)
@given(workload=paged_workloads())
def test_any_paging_schedule_matches_bruteforce(workload):
    points, weights, pages = workload
    relation = Relation(points, check_domain=False)
    index = DLIndex(relation).build()
    cursor = TopKCursor(index.structure, weights)
    collected_scores: list[float] = []
    for page in pages:
        _, scores = cursor.fetch(page)
        collected_scores.extend(float(s) for s in scores)
        if cursor.exhausted:
            break
    total = len(collected_scores)
    _, ref_scores = top_k_bruteforce(points, weights / weights.sum(), max(total, 1))
    np.testing.assert_allclose(
        collected_scores, ref_scores[:total], atol=1e-9
    )
    assert collected_scores == sorted(collected_scores)
