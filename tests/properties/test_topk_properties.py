"""Property-based tests: every index returns the true top-k.

The central reproduction invariant (Theorem 4 and each baseline's own
correctness argument): for random data, dimensionalities, weights and k, the
score sequence returned by every index equals the brute-force scan's —
including tie-heavy quantized data where ids may legitimately differ.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import ALGORITHMS
from repro.relation import Relation, top_k_bruteforce

# PREFER/FA/NRA are exercised in their unit tests; the property matrix runs
# the paper's six algorithms plus the geometric baselines.
NAMES = ["DL", "DL+", "DG", "DG+", "HL", "HL+", "ONION", "AppRI", "TA", "PL"]


@st.composite
def workloads(draw):
    d = draw(st.integers(2, 4))
    n = draw(st.integers(1, 50))
    grid = draw(st.sampled_from([None, 4, 8]))
    if grid:
        cells = draw(arrays(np.int64, (n, d), elements=st.integers(0, grid)))
        points = cells.astype(np.float64) / grid
    else:
        points = draw(
            arrays(
                np.float64,
                (n, d),
                elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
            )
        )
    raw = [draw(st.floats(0.05, 1.0, allow_nan=False)) for _ in range(d)]
    weights = np.asarray(raw)
    k = draw(st.integers(1, max(1, n)))
    return points, weights / weights.sum(), k


@pytest.mark.parametrize("name", NAMES)
@settings(max_examples=25, deadline=None)
@given(workload=workloads())
def test_index_matches_bruteforce(name, workload):
    points, weights, k = workload
    relation = Relation(points, check_domain=False)
    index = ALGORITHMS[name](relation).build()
    result = index.query(weights, k)
    ref_ids, ref_scores = top_k_bruteforce(points, weights, k)
    assert len(result) == len(ref_ids)
    np.testing.assert_allclose(
        np.sort(result.scores), np.sort(ref_scores), atol=1e-9
    )
    # Returned ids must actually produce the returned scores.
    np.testing.assert_allclose(points[result.ids] @ weights, result.scores, atol=1e-9)
