"""Property-based tests: dynamic maintenance equals batch construction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.maintenance import DynamicDualLayerIndex
from repro.skyline import skyline_layers


@st.composite
def operation_sequences(draw):
    """A random interleaving of inserts and deletes in a small grid space."""
    d = draw(st.integers(2, 3))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.lists(
                    st.integers(0, 8), min_size=d, max_size=d
                ),
            ),
            min_size=1,
            max_size=40,
        )
    )
    return d, ops


@settings(max_examples=40, deadline=None)
@given(seq=operation_sequences())
def test_partition_matches_batch_peel_after_any_op_sequence(seq):
    d, ops = seq
    index = DynamicDualLayerIndex(d=d)
    live: list[int] = []
    for op, cells in ops:
        if op == "insert" or not live:
            point = np.asarray(cells, dtype=np.float64) / 8.0
            live.append(index.insert(point))
        else:
            victim = live.pop(len(live) // 2)
            index.delete(victim)

    if not live:
        return
    # Reference: batch skyline peel over the live points.
    ids = sorted(live)
    matrix = np.vstack([index.values_of(i) for i in ids])
    reference, _ = skyline_layers(matrix)
    position = {pid: pos for pos, pid in enumerate(ids)}
    maintained = [
        sorted(position[i] for i in layer) for layer in index.layers()
    ]
    assert maintained == [sorted(layer.tolist()) for layer in reference]


@settings(max_examples=25, deadline=None)
@given(seq=operation_sequences(), data=st.data())
def test_queries_correct_after_any_op_sequence(seq, data):
    d, ops = seq
    index = DynamicDualLayerIndex(d=d)
    live: list[int] = []
    for op, cells in ops:
        if op == "insert" or not live:
            live.append(index.insert(np.asarray(cells, dtype=np.float64) / 8.0))
        else:
            index.delete(live.pop(0))
    if not live:
        return
    raw = [data.draw(st.floats(0.05, 1.0, allow_nan=False)) for _ in range(d)]
    w = np.asarray(raw)
    ids = sorted(live)
    matrix = np.vstack([index.values_of(i) for i in ids])
    got_ids, got_scores = index.query(w, min(5, len(live)))
    from repro.relation import top_k_bruteforce

    _, ref_scores = top_k_bruteforce(matrix, w / w.sum(), min(5, len(live)))
    np.testing.assert_allclose(got_scores, ref_scores, atol=1e-9)
