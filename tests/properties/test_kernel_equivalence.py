"""Bitwise equivalence of the two Algorithm 2 kernels.

The vectorized CSR kernel (:func:`~repro.core.query.process_top_k`) and the
per-node reference traversal
(:func:`~repro.core.query.process_top_k_reference`) must be
indistinguishable: same ids, byte-identical score arrays, and the same
Definition 9 real/pseudo access counts — across data distributions,
dimensionalities, with and without zero-layer pseudo nodes, and under a
``fetch_real`` storage override.  Any divergence means the vectorization
changed the algorithm, not just its speed.
"""

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.core.query import process_top_k, process_top_k_reference
from repro.data import generate
from repro.stats import AccessCounter


def assert_kernels_agree(structure, weights, k, fetch_real=None):
    """Run both kernels; assert bitwise-identical output and cost."""
    c_csr, c_ref = AccessCounter(), AccessCounter()
    ids_csr, scores_csr = process_top_k(
        structure, weights, k, c_csr, fetch_real=fetch_real
    )
    ids_ref, scores_ref = process_top_k_reference(
        structure, weights, k, c_ref, fetch_real=fetch_real
    )
    assert np.array_equal(ids_csr, ids_ref)
    assert scores_csr.tobytes() == scores_ref.tobytes()
    assert (c_csr.real, c_csr.pseudo) == (c_ref.real, c_ref.pseudo)
    return ids_csr, scores_csr


def _seed_for(distribution: str, d: int) -> int:
    return sum(map(ord, distribution)) * 10 + d  # deterministic across runs


@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex], ids=["DL", "DL+"])
@pytest.mark.parametrize("d", [2, 3, 4])
@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
def test_kernels_agree_bitwise(distribution, d, index_class):
    seed = _seed_for(distribution, d)
    relation = generate(distribution, 400, d, seed=seed)
    structure = index_class(relation).build().structure
    rng = np.random.default_rng(seed + 1)
    for _ in range(12):
        weights = rng.dirichlet(np.ones(d))
        k = int(rng.integers(1, 41))
        ids, scores = assert_kernels_agree(structure, weights, k)
        assert ids.shape[0] == min(k, relation.n)
        assert np.all(np.diff(scores) >= 0)


def test_sweep_covers_pseudo_nodes():
    """DL+ at d >= 3 builds a zero layer, so the matrix above genuinely
    exercises pseudo-tuple counting — guard against a silent regression in
    the fixture (e.g. the zero layer being disabled by default)."""
    relation = generate("ANT", 400, 4, seed=_seed_for("ANT", 4))
    structure = DLPlusIndex(relation).build().structure
    assert structure.n_pseudo > 0
    assert structure.edge_counts()["exists_edges"] > 0


@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex], ids=["DL", "DL+"])
def test_kernels_agree_with_fetch_real(index_class):
    """Storage-backed execution: real tuples come from ``fetch_real``, pseudo
    tuples from the in-memory structure — both kernels must still agree."""
    relation = generate("IND", 300, 3, seed=9)
    structure = index_class(relation).build().structure
    heap_file = relation.matrix.copy()  # stands in for the on-disk heap
    fetches: list[int] = []

    def fetch_real(node: int) -> np.ndarray:
        fetches.append(node)
        return heap_file[node]

    rng = np.random.default_rng(10)
    for _ in range(8):
        weights = rng.dirichlet(np.ones(3))
        k = int(rng.integers(1, 25))
        assert_kernels_agree(structure, weights, k, fetch_real=fetch_real)
    assert fetches  # the override was actually exercised
