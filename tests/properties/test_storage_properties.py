"""Property-based tests: storage substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.storage import BlockStore, BufferPool, SlottedPage


@settings(max_examples=50, deadline=None)
@given(
    data=st.data(),
    d=st.integers(1, 6),
    count=st.integers(0, 20),
)
def test_page_roundtrip_any_contents(data, d, count):
    page = SlottedPage(d=d)
    count = min(count, page.capacity)
    rows = data.draw(
        arrays(
            np.float64,
            (count, d),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=32),
        )
    )
    ids = data.draw(
        st.lists(
            st.integers(0, 2**50), min_size=count, max_size=count, unique=True
        )
    )
    for tuple_id, row in zip(ids, rows):
        page.append(tuple_id, row)
    restored = SlottedPage.from_bytes(page.to_bytes())
    assert restored.tuple_ids == page.tuple_ids
    for tuple_id, row in zip(ids, rows):
        np.testing.assert_array_equal(restored.lookup(tuple_id), row)


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(1, 8),
    accesses=st.lists(st.integers(0, 12), min_size=1, max_size=60),
)
def test_buffer_pool_invariants(capacity, accesses):
    pool = BufferPool(capacity)
    reference: list[int] = []  # LRU order, most recent last
    for page in accesses:
        hit = pool.access(page)
        assert hit == (page in reference)
        if page in reference:
            reference.remove(page)
        elif len(reference) >= capacity:
            reference.pop(0)
        reference.append(page)
        assert pool.resident == len(reference) <= capacity
    assert pool.hits + pool.misses == len(accesses)


@settings(max_examples=50, deadline=None)
@given(
    data=st.data(),
    n=st.integers(1, 60),
    page_capacity=st.integers(1, 9),
)
def test_block_store_partitions_tuples(data, n, page_capacity):
    order = data.draw(st.permutations(list(range(n))))
    store = BlockStore(np.asarray(order), page_capacity)
    # Every tuple maps to exactly one page; pages fill in storage order.
    pages = [store.page_of(t) for t in range(n)]
    assert min(pages) == 0
    assert max(pages) == store.num_pages - 1
    counts = np.bincount(pages)
    assert np.all(counts <= page_capacity)
    assert counts.sum() == n
