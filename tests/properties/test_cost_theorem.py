"""Property-based tests: the paper's cost guarantees.

Theorem 5: DL never evaluates more tuples than DG on the same data/query.
We additionally check the analogous relation between the optimized variants
(same zero-layer clustering), and that DG/DL never exceed the scan floor.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import DGIndex, DGPlusIndex
from repro.core import DLIndex, DLPlusIndex
from repro.relation import Relation


@st.composite
def workloads(draw):
    d = draw(st.integers(2, 4))
    n = draw(st.integers(2, 60))
    grid = draw(st.sampled_from([None, 6]))
    if grid:
        cells = draw(arrays(np.int64, (n, d), elements=st.integers(0, grid)))
        points = cells.astype(np.float64) / grid
    else:
        points = draw(
            arrays(
                np.float64,
                (n, d),
                elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
            )
        )
    raw = [draw(st.floats(0.05, 1.0, allow_nan=False)) for _ in range(d)]
    weights = np.asarray(raw)
    k = draw(st.integers(1, max(1, n // 2)))
    return points, weights / weights.sum(), k


@settings(max_examples=30, deadline=None)
@given(workload=workloads())
def test_theorem5_dl_cost_at_most_dg(workload):
    points, weights, k = workload
    relation = Relation(points, check_domain=False)
    dl_cost = DLIndex(relation).build().query(weights, k).cost
    dg_cost = DGIndex(relation).build().query(weights, k).cost
    assert dl_cost <= dg_cost


@settings(max_examples=25, deadline=None)
@given(workload=workloads())
def test_optimized_variants_beat_scan(workload):
    points, weights, k = workload
    relation = Relation(points, check_domain=False)
    n = points.shape[0]
    for cls in (DLPlusIndex, DGPlusIndex):
        cost = cls(relation, seed=0).build().query(weights, k).counter.real
        assert cost <= n


@settings(max_examples=25, deadline=None)
@given(workload=workloads())
def test_dlplus_real_accesses_at_most_dl(workload):
    """The zero layer can only reduce *real* tuple evaluations.

    Holds per distinct tuple: exact duplicate rows perturb the heap's
    (score, id) pop order between the two structures, which can shift one
    extra same-score real access onto DL+, so the comparison runs on the
    deduplicated point set.
    """
    points, weights, k = workload
    points = np.unique(points, axis=0)
    k = min(k, points.shape[0])
    relation = Relation(points, check_domain=False)
    dl_real = DLIndex(relation).build().query(weights, k).counter.real
    dlp_real = DLPlusIndex(relation, seed=0).build().query(weights, k).counter.real
    assert dlp_real <= dl_real
