"""Bitwise equivalence of the lane-parallel batch kernel.

:func:`~repro.core.query.process_top_k_batch` fuses B traversals into one
lane-parallel walk of the gate graph; every lane must be indistinguishable
from a per-query :func:`~repro.core.query.process_top_k` call — same ids,
byte-identical scores, ascending order, and the same Definition 9
real/pseudo counts per lane — across the full equivalence grid, with
duplicate-tuple tie-breaks, with lanes finishing at wildly different times
(k=1 next to k=50), under a ``fetch_real`` storage override, and with a
reused :class:`~repro.core.query.BatchWorkspace`.
"""

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.core.query import BatchWorkspace, process_top_k, process_top_k_batch
from repro.data import generate
from repro.relation import Relation
from repro.stats import AccessCounter


def _seed_for(distribution: str, d: int) -> int:
    return sum(map(ord, distribution)) * 10 + d  # deterministic across runs


def assert_batch_agrees(structure, weights_matrix, ks, *, fetch_real=None, workspace=None):
    """Run the batch kernel; assert every lane matches per-query csr bitwise."""
    weights_matrix = np.asarray(weights_matrix, dtype=np.float64)
    n_lanes = weights_matrix.shape[0]
    batch_counters = [AccessCounter() for _ in range(n_lanes)]
    outputs = process_top_k_batch(
        structure,
        weights_matrix,
        ks,
        batch_counters,
        fetch_real=fetch_real,
        workspace=workspace,
    )
    ks_arr = np.broadcast_to(np.asarray(ks, dtype=np.int64), (n_lanes,))
    for lane in range(n_lanes):
        counter = AccessCounter()
        ids, scores = process_top_k(
            structure,
            weights_matrix[lane],
            int(ks_arr[lane]),
            counter,
            fetch_real=fetch_real,
        )
        batch_ids, batch_scores = outputs[lane]
        assert np.array_equal(ids, batch_ids), f"lane {lane} ids diverge"
        assert scores.tobytes() == batch_scores.tobytes(), f"lane {lane} scores"
        assert batch_ids.dtype == ids.dtype and batch_scores.dtype == scores.dtype
        assert (counter.real, counter.pseudo) == (
            batch_counters[lane].real,
            batch_counters[lane].pseudo,
        ), f"lane {lane} Definition 9 counts diverge"
        assert np.all(np.diff(batch_scores) >= 0)
    return outputs


@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex], ids=["DL", "DL+"])
@pytest.mark.parametrize("d", [2, 3, 4])
@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
def test_batch_kernel_agrees_bitwise(distribution, d, index_class):
    seed = _seed_for(distribution, d)
    relation = generate(distribution, 400, d, seed=seed)
    structure = index_class(relation).build().structure
    rng = np.random.default_rng(seed + 2)
    workspace = BatchWorkspace()
    for batch_width in (1, 5, 16):
        weights = rng.dirichlet(np.ones(d), size=batch_width)
        k = int(rng.integers(1, 41))
        assert_batch_agrees(structure, weights, k, workspace=workspace)


def test_batch_mixed_k_lanes_finish_independently():
    """A k=1 lane next to a k=50 lane: the early finisher must neither wait
    nor perturb the expensive lane's traversal or counts."""
    relation = generate("ANT", 400, 3, seed=_seed_for("ANT", 3))
    structure = DLPlusIndex(relation).build().structure
    rng = np.random.default_rng(33)
    weights = rng.dirichlet(np.ones(3), size=8)
    ks = [1, 50, 1, 50, 1, 50, 1, 50]
    assert_batch_agrees(structure, weights, ks)


def test_batch_duplicate_tuple_tie_breaks():
    """Exact duplicate rows score identically; the (score, id) heap order
    must resolve ties the same way in every lane as per-query execution."""
    rng = np.random.default_rng(7)
    base = rng.random((60, 3))
    points = np.vstack([base, base[:20], base[:10]])  # 30 exact duplicates
    relation = Relation(points, check_domain=False)
    for index_class in (DLIndex, DLPlusIndex):
        structure = index_class(relation).build().structure
        weights = rng.dirichlet(np.ones(3), size=6)
        # Duplicate weight lanes too: identical lanes must emit identical
        # answers without interfering with each other's gate state.
        weights[3] = weights[0]
        assert_batch_agrees(structure, weights, 25)


def test_batch_with_fetch_real():
    """Storage-backed lanes: real tuples come from ``fetch_real``, pseudo
    tuples from the structure — per-lane parity must survive."""
    relation = generate("IND", 300, 3, seed=9)
    structure = DLPlusIndex(relation).build().structure
    heap_file = relation.matrix.copy()
    fetches: list[int] = []

    def fetch_real(node: int) -> np.ndarray:
        fetches.append(node)
        return heap_file[node]

    rng = np.random.default_rng(10)
    weights = rng.dirichlet(np.ones(3), size=7)
    assert_batch_agrees(structure, weights, 12, fetch_real=fetch_real)
    assert fetches  # the override was actually exercised


def test_batch_workspace_reuse_and_growth():
    """A workspace checked out at one width must serve narrower and wider
    batches (and a different structure) without contaminating state."""
    rng = np.random.default_rng(21)
    workspace = BatchWorkspace()
    rel_a = generate("IND", 250, 3, seed=1)
    rel_b = generate("ANT", 250, 3, seed=2)
    struct_a = DLPlusIndex(rel_a).build().structure
    struct_b = DLPlusIndex(rel_b).build().structure
    for structure in (struct_a, struct_b, struct_a):
        for width in (12, 3, 20):
            weights = rng.dirichlet(np.ones(3), size=width)
            assert_batch_agrees(structure, weights, 10, workspace=workspace)


def test_batch_validates_inputs():
    relation = generate("IND", 100, 2, seed=4)
    structure = DLIndex(relation).build().structure
    weights = np.full((3, 2), 0.5)
    with pytest.raises(Exception):
        process_top_k_batch(structure, weights, 5, [AccessCounter()])  # 1 != 3
    with pytest.raises(Exception):
        process_top_k_batch(
            structure, np.ones(2) / 2, 5, [AccessCounter()]
        )  # 1-D matrix
