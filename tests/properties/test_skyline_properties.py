"""Property-based tests: skyline and layer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.skyline import (
    is_dominated,
    skyline_bnl,
    skyline_bskytree,
    skyline_layers,
    skyline_sfs,
)


def point_sets(max_n=60, d_range=(1, 4), grid=None):
    """Random point sets; ``grid`` quantizes values to provoke ties."""

    def build(draw):
        d = draw(st.integers(*d_range))
        n = draw(st.integers(1, max_n))
        if grid:
            cells = draw(
                arrays(np.int64, (n, d), elements=st.integers(0, grid))
            )
            return cells.astype(np.float64) / grid
        return draw(
            arrays(
                np.float64,
                (n, d),
                elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
            )
        )

    return st.composite(lambda draw: build(draw))()


@settings(max_examples=60, deadline=None)
@given(points=point_sets())
def test_skyline_is_exactly_nondominated_set(points):
    sky = set(skyline_sfs(points).tolist())
    for i in range(points.shape[0]):
        others = np.delete(points, i, axis=0)
        assert (i in sky) == (not is_dominated(points[i], others))


@settings(max_examples=60, deadline=None)
@given(points=point_sets(grid=6))
def test_skyline_algorithms_agree_on_tie_heavy_data(points):
    a = skyline_bnl(points)
    b = skyline_sfs(points)
    c = skyline_bskytree(points)
    np.testing.assert_array_equal(a, b)
    np.testing.assert_array_equal(b, c)


@settings(max_examples=40, deadline=None)
@given(points=point_sets(grid=5))
def test_layers_partition_and_order(points):
    layers, leftover = skyline_layers(points)
    assert leftover.shape[0] == 0
    ids = np.concatenate(layers)
    assert np.unique(ids).shape[0] == points.shape[0]
    # Peeling order: every tuple in layer i+1 is dominated by some tuple in
    # layer i; and within a layer no tuple dominates another.
    for prev, layer in zip(layers, layers[1:]):
        for t in layer:
            assert is_dominated(points[t], points[prev])
    for layer in layers:
        block = points[layer]
        for i in range(block.shape[0]):
            assert not is_dominated(block[i], np.delete(block, i, axis=0))
