"""Property-based tests: SQL parser round-trips for generated statements."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import parse_topk_query

_ATTRS = ["price", "distance", "rating", "size"]

attribute = st.sampled_from(_ATTRS)
coefficient = st.floats(0.1, 9.9, allow_nan=False).map(lambda x: round(x, 2))


@st.composite
def statements(draw):
    """A random valid statement plus its expected parse."""
    table = draw(st.sampled_from(["hotel", "r", "items"]))
    k = draw(st.integers(1, 500))
    explain = draw(st.booleans())

    order_attrs = draw(
        st.lists(attribute, min_size=1, max_size=len(_ATTRS), unique=True)
    )
    terms = []
    weights = {}
    for attr in order_attrs:
        style = draw(st.integers(0, 2))
        if style == 0:
            coeff = draw(coefficient)
            terms.append(f"{coeff}*{attr}")
            weights[attr] = coeff
        elif style == 1:
            coeff = draw(coefficient)
            terms.append(f"{attr} * {coeff}")
            weights[attr] = coeff
        else:
            terms.append(attr)
            weights[attr] = 1.0

    select_attrs = draw(
        st.one_of(
            st.none(),
            st.lists(attribute, min_size=1, max_size=3, unique=True),
        )
    )
    select = "*" if select_attrs is None else ", ".join(select_attrs)

    conditions = []
    equals = {}
    numeric = []
    for attr in draw(st.lists(attribute, max_size=2, unique=True)):
        if draw(st.booleans()):
            value = draw(st.sampled_from(["NY", "DC", "x y", ""]))
            conditions.append(f"{attr} = '{value}'")
            equals[attr] = value
        else:
            op = draw(st.sampled_from(["<=", ">=", "<", ">"]))
            bound = round(draw(st.floats(-5, 5, allow_nan=False)), 3)
            conditions.append(f"{attr} {op} {bound}")
            numeric.append((attr, op, bound))

    where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
    prefix = "EXPLAIN " if explain else ""
    text = (
        f"{prefix}SELECT {select} FROM {table}{where} "
        f"ORDER BY {' + '.join(terms)} STOP AFTER {k}"
    )
    return text, table, weights, k, equals, numeric, select_attrs, explain


@settings(max_examples=120, deadline=None)
@given(case=statements())
def test_parse_roundtrip(case):
    text, table, weights, k, equals, numeric, select_attrs, explain = case
    parsed = parse_topk_query(text)
    assert parsed.table == table
    assert parsed.k == k
    assert parsed.explain == explain
    assert parsed.weights == weights
    assert parsed.equals == equals
    assert [
        (p.attribute, p.op, p.value) for p in parsed.numeric
    ] == [(a, op, float(v)) for a, op, v in numeric]
    if select_attrs is None:
        assert parsed.projection is None
    else:
        assert parsed.projection == select_attrs
