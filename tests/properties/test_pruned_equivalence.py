"""Bitwise equivalence of layer-bound pruning (``prune=True``).

Pruning may only change *which nodes get scored*, never the answer: a
pruned :func:`~repro.core.query.process_top_k` run and a pruned batch lane
must return the same ids and byte-identical scores as the per-node
reference traversal, while their Definition 9 access counts never exceed
the unpruned run's — across the same distribution/dimension grid the
unpruned kernel-equivalence suite sweeps.  The bound table must also
actually prune: across the grid at small k some query must touch strictly
fewer tuples, otherwise the fast path is dead code.
"""

import numpy as np
import pytest

from repro.core import DLIndex, DLPlusIndex
from repro.core.query import (
    process_top_k,
    process_top_k_batch,
    process_top_k_reference,
)
from repro.data import generate
from repro.stats import AccessCounter


def _seed_for(distribution: str, d: int) -> int:
    return sum(map(ord, distribution)) * 10 + d  # deterministic across runs


def assert_pruned_agrees(structure, weights, k):
    """Pruned CSR vs reference: bitwise answer, no-worse cost.

    Returns ``(pruned_total, unpruned_total)`` Definition 9 counts.
    """
    c_ref, c_plain, c_prune = AccessCounter(), AccessCounter(), AccessCounter()
    ids_ref, scores_ref = process_top_k_reference(structure, weights, k, c_ref)
    process_top_k(structure, weights, k, c_plain)
    ids_p, scores_p = process_top_k(structure, weights, k, c_prune, prune=True)
    assert np.array_equal(ids_ref, ids_p)
    assert scores_ref.tobytes() == scores_p.tobytes()
    assert c_prune.total <= c_plain.total
    return c_prune.total, c_plain.total


@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex], ids=["DL", "DL+"])
@pytest.mark.parametrize("d", [2, 3, 4])
@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
def test_pruned_kernel_agrees_bitwise(distribution, d, index_class):
    seed = _seed_for(distribution, d)
    relation = generate(distribution, 400, d, seed=seed)
    structure = index_class(relation).build().structure
    rng = np.random.default_rng(seed + 1)
    for _ in range(12):
        weights = rng.dirichlet(np.ones(d))
        k = int(rng.integers(1, 41))
        assert_pruned_agrees(structure, weights, k)


@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex], ids=["DL", "DL+"])
@pytest.mark.parametrize("d", [2, 3, 4])
@pytest.mark.parametrize("distribution", ["IND", "ANT", "COR"])
def test_pruned_batch_matches_pruned_solo(distribution, d, index_class):
    """Each pruned batch lane is bitwise the solo pruned run — including
    the access counts, so lanes skip exactly the same nodes."""
    seed = _seed_for(distribution, d)
    relation = generate(distribution, 400, d, seed=seed)
    structure = index_class(relation).build().structure
    rng = np.random.default_rng(seed + 2)
    weights_matrix = rng.dirichlet(np.ones(d), size=6)
    ks = rng.integers(1, 41, size=6)
    counters = [AccessCounter() for _ in range(6)]
    outputs = process_top_k_batch(
        structure, weights_matrix, ks, counters, prune=True
    )
    for lane, (ids_b, scores_b) in enumerate(outputs):
        c_solo = AccessCounter()
        ids_s, scores_s = process_top_k(
            structure, weights_matrix[lane], int(ks[lane]), c_solo, prune=True
        )
        assert np.array_equal(ids_b, ids_s)
        assert scores_b.tobytes() == scores_s.tobytes()
        assert (counters[lane].real, counters[lane].pseudo) == (
            c_solo.real,
            c_solo.pseudo,
        )


def test_pruning_saves_somewhere_at_small_k():
    """The bound table must skip work for some small-k query, or the prune
    fast path silently degenerated into a no-op."""
    saved = False
    for distribution in ("IND", "ANT", "COR"):
        relation = generate(distribution, 400, 4, seed=_seed_for(distribution, 4))
        structure = DLPlusIndex(relation).build().structure
        rng = np.random.default_rng(99)
        for _ in range(12):
            weights = rng.dirichlet(np.ones(4))
            k = int(rng.integers(1, 11))
            pruned, unpruned = assert_pruned_agrees(structure, weights, k)
            saved = saved or pruned < unpruned
    assert saved


def test_prune_ignored_under_fetch_real():
    """Storage-backed runs bypass the bound table (bounds come from the
    in-memory values the override replaces); prune=True must not change
    answers or crash there."""
    relation = generate("IND", 300, 3, seed=9)
    structure = DLPlusIndex(relation).build().structure
    heap_file = relation.matrix.copy()
    c_a, c_b = AccessCounter(), AccessCounter()
    w = np.array([0.2, 0.3, 0.5])
    ids_a, scores_a = process_top_k(
        structure, w, 10, c_a, fetch_real=lambda node: heap_file[node]
    )
    ids_b, scores_b = process_top_k(
        structure, w, 10, c_b, fetch_real=lambda node: heap_file[node], prune=True
    )
    assert np.array_equal(ids_a, ids_b)
    assert scores_a.tobytes() == scores_b.tobytes()
    assert (c_a.real, c_a.pseudo) == (c_b.real, c_b.pseudo)
