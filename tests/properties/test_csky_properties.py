"""Property-based tests: convex skyline and facet invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry import convex_skyline, lower_left_chain
from repro.geometry.convex_skyline import convex_skyline_with_facets


def point_sets(max_n=40, d_range=(2, 4), grid=None):
    def build(draw):
        d = draw(st.integers(*d_range))
        n = draw(st.integers(1, max_n))
        if grid:
            cells = draw(arrays(np.int64, (n, d), elements=st.integers(0, grid)))
            return cells.astype(np.float64) / grid
        return draw(
            arrays(
                np.float64,
                (n, d),
                elements=st.floats(0.0, 1.0, allow_nan=False, width=32),
            )
        )

    return st.composite(lambda draw: build(draw))()


@settings(max_examples=50, deadline=None)
@given(points=point_sets(), data=st.data())
def test_csky_contains_directional_argmin(points, data):
    csky = set(convex_skyline(points).tolist())
    assert csky, "non-empty input must give non-empty CSKY"
    d = points.shape[1]
    raw = [
        data.draw(st.floats(0.01, 1.0, allow_nan=False)) for _ in range(d)
    ]
    w = np.asarray(raw) / np.sum(raw)
    scores = points @ w
    argmins = set(np.nonzero(scores <= scores.min() + 1e-12)[0].tolist())
    assert csky & argmins


@settings(max_examples=50, deadline=None)
@given(points=point_sets(grid=5))
def test_csky_nonempty_and_within_bounds(points):
    csky = convex_skyline(points)
    assert 1 <= csky.shape[0] <= points.shape[0]
    assert np.unique(csky).shape[0] == csky.shape[0]


@settings(max_examples=50, deadline=None)
@given(points=point_sets())
def test_facets_cover_all_vertices(points):
    vertices, facets = convex_skyline_with_facets(points)
    assert facets
    union = np.unique(np.concatenate([f.members for f in facets]))
    assert set(union.tolist()) == set(vertices.tolist())


@settings(max_examples=50, deadline=None)
@given(points=point_sets(d_range=(2, 2)))
def test_chain_subset_of_skyline_and_convex(points):
    from repro.skyline import skyline_sfs

    chain = lower_left_chain(points)
    sky = set(skyline_sfs(points).tolist())
    assert set(chain.tolist()) <= sky
    if chain.shape[0] >= 3:
        pts = points[chain]
        slopes = np.diff(pts[:, 1]) / np.diff(pts[:, 0])
        assert np.all(np.diff(slopes) > 0)
