"""AsyncGateway: deterministic fake-clock coalescing tests.

Every test in this module drives the gateway with an injected fake clock
and steps the event loop by hand — flush-on-size, flush-on-deadline,
cancellation, fairness, admission control, and the bitwise-identity
acceptance property all run without a single real timed sleep (the
``forbid_real_sleeps`` fixture makes ``time.sleep``/``asyncio.sleep``
raise if anything tries).
"""

import asyncio
import heapq

import numpy as np
import pytest

from repro.cluster import ClusterEngine
from repro.core import DLPlusIndex
from repro.data import generate
from repro.exceptions import (
    GatewayClosedError,
    GatewayOverloadError,
    InvalidQueryError,
    InvalidWeightError,
)
from repro.serving import AsyncGateway, QueryEngine


class FakeClock:
    """Deterministic clock + async sleep pair for gateway injection.

    ``advance(dt)`` moves time forward and resolves every sleeper whose
    deadline has passed; nothing else ever resolves a sleep, so tests
    fully control when the gateway's flush window expires.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []
        self._seq = 0

    def __call__(self) -> float:
        return self.now

    async def sleep(self, seconds: float) -> None:
        future = asyncio.get_running_loop().create_future()
        self._seq += 1
        heapq.heappush(self._sleepers, (self.now + seconds, self._seq, future))
        await future

    def advance(self, dt: float) -> None:
        self.now += dt
        while self._sleepers and self._sleepers[0][0] <= self.now + 1e-12:
            _, _, future = heapq.heappop(self._sleepers)
            if not future.done():
                future.set_result(None)


def step(loop: asyncio.AbstractEventLoop, rounds: int = 50) -> None:
    """Run the loop's ready queue ``rounds`` times without any timers."""
    for _ in range(rounds):
        future = loop.create_future()
        loop.call_soon(future.set_result, None)
        loop.run_until_complete(future)


@pytest.fixture
def loop():
    loop = asyncio.new_event_loop()
    yield loop
    loop.close()


@pytest.fixture
def forbid_real_sleeps(monkeypatch):
    """Acceptance: fake-clock tests must never hit a real sleep."""

    def no_time_sleep(*args, **kwargs):
        raise AssertionError("real time.sleep called in a fake-clock test")

    async def no_asyncio_sleep(*args, **kwargs):
        raise AssertionError("real asyncio.sleep called in a fake-clock test")

    monkeypatch.setattr("time.sleep", no_time_sleep)
    monkeypatch.setattr("asyncio.sleep", no_asyncio_sleep)


@pytest.fixture(scope="module")
def index():
    return DLPlusIndex(generate("IND", 400, 3, seed=71)).build()


def make_gateway(index, clock, **kwargs):
    kwargs.setdefault("cache_size", 0)
    engine = QueryEngine(index, cache_size=kwargs.pop("cache_size"))
    return AsyncGateway(
        engine, clock=clock, sleep=clock.sleep, **kwargs
    )


def submit(loop, gateway, weights, k, **kwargs):
    return loop.create_task(gateway.query(weights, k, **kwargs))


def close(loop, gateway, clock) -> None:
    task = loop.create_task(gateway.aclose())
    step(loop)
    clock.advance(1.0)
    step(loop)
    loop.run_until_complete(task)


def test_flush_on_size_without_clock_advance(loop, forbid_real_sleeps, index):
    """max_batch pending requests dispatch immediately — the clock never
    moves, so only the size trigger can have flushed them."""
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(index, clock, max_batch=4, flush_window_ms=1000.0)
    oracle = QueryEngine(index, cache_size=0)
    rng = np.random.default_rng(1)
    weights = [rng.dirichlet(np.ones(3)) for _ in range(4)]
    tasks = [submit(loop, gateway, w, 5) for w in weights]
    step(loop)
    assert all(task.done() for task in tasks)
    for w, task in zip(weights, tasks):
        expected = oracle.query(w, 5)
        assert task.result().ids.tobytes() == expected.ids.tobytes()
        assert task.result().scores.tobytes() == expected.scores.tobytes()
    stats = gateway.stats()
    assert stats["batches"] == 1.0
    assert stats["batch_occupancy"] == 4.0
    close(loop, gateway, clock)


def test_flush_on_deadline(loop, forbid_real_sleeps, index):
    """A lone request waits out the full flush window, then dispatches the
    moment the fake clock crosses the deadline."""
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(index, clock, max_batch=32, flush_window_ms=2.0)
    task = submit(loop, gateway, np.array([0.2, 0.3, 0.5]), 7)
    step(loop)
    assert not task.done()  # window open, batch not full
    clock.advance(0.001)
    step(loop)
    assert not task.done()  # 1ms < 2ms window
    clock.advance(0.0011)
    step(loop)
    assert task.done()
    expected = QueryEngine(index, cache_size=0).query(
        np.array([0.2, 0.3, 0.5]), 7
    )
    assert task.result().ids.tobytes() == expected.ids.tobytes()
    assert gateway.stats()["batch_occupancy"] == 1.0
    close(loop, gateway, clock)


def test_cancelled_request_never_occupies_a_lane(
    loop, forbid_real_sleeps, index
):
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(index, clock, max_batch=32, flush_window_ms=2.0)
    keep = submit(loop, gateway, np.array([0.5, 0.25, 0.25]), 5)
    drop = submit(loop, gateway, np.array([0.1, 0.1, 0.8]), 5)
    step(loop)
    drop.cancel()
    step(loop)
    clock.advance(0.003)
    step(loop)
    assert keep.done() and not keep.cancelled()
    assert drop.cancelled()
    expected = QueryEngine(index, cache_size=0).query(
        np.array([0.5, 0.25, 0.25]), 5
    )
    assert keep.result().ids.tobytes() == expected.ids.tobytes()
    stats = gateway.stats()
    assert stats["batch_rows"] == 1.0  # the cancelled row took no lane
    assert stats["inflight"] == 0.0
    close(loop, gateway, clock)


def test_fair_share_round_robin_across_tenants(
    loop, forbid_real_sleeps, index
):
    """A flooding tenant cannot starve a light tenant: the drain takes one
    request per tenant in rotation, so the light tenant's request makes
    the first batch while the flooder's tail waits."""
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(index, clock, max_batch=3, flush_window_ms=2.0)
    rng = np.random.default_rng(3)
    flood = [
        submit(loop, gateway, rng.dirichlet(np.ones(3)), 5, tenant="flood")
        for _ in range(3)
    ]
    light = submit(
        loop, gateway, rng.dirichlet(np.ones(3)), 5, tenant="light"
    )
    step(loop)
    # First flush (size-triggered at 3): flood[0], light, flood[1].
    assert light.done()
    assert flood[0].done() and flood[1].done()
    assert not flood[2].done()  # FIFO would have flushed flood[0..2]
    clock.advance(0.003)
    step(loop)
    assert flood[2].done()
    per_tenant = gateway.stats()["per_tenant"]
    assert per_tenant["flood"]["queries"] == 3.0
    assert per_tenant["light"]["queries"] == 1.0
    close(loop, gateway, clock)


def test_admission_fast_rejects_when_queue_full(
    loop, forbid_real_sleeps, index
):
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(
        index, clock, max_batch=32, flush_window_ms=5.0, max_pending=2
    )
    rng = np.random.default_rng(5)
    admitted = [
        submit(loop, gateway, rng.dirichlet(np.ones(3)), 5) for _ in range(2)
    ]
    step(loop)
    shed = submit(loop, gateway, rng.dirichlet(np.ones(3)), 5)
    step(loop)
    assert shed.done()
    with pytest.raises(GatewayOverloadError):
        shed.result()
    assert gateway.rejected_queue_full == 1
    clock.advance(0.006)
    step(loop)
    assert all(task.done() and not task.exception() for task in admitted)
    assert gateway.stats()["accepted"] == 2.0
    close(loop, gateway, clock)


def test_admission_fast_rejects_at_inflight_cap(
    loop, forbid_real_sleeps, index
):
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(
        index,
        clock,
        max_batch=32,
        flush_window_ms=5.0,
        max_pending=32,
        max_inflight=2,
    )
    rng = np.random.default_rng(7)
    admitted = [
        submit(loop, gateway, rng.dirichlet(np.ones(3)), 5) for _ in range(2)
    ]
    step(loop)
    shed = submit(loop, gateway, rng.dirichlet(np.ones(3)), 5)
    step(loop)
    assert shed.done()
    with pytest.raises(GatewayOverloadError):
        shed.result()
    assert gateway.rejected_inflight == 1
    clock.advance(0.006)
    step(loop)
    assert all(not task.exception() for task in admitted)
    close(loop, gateway, clock)


def test_slo_violations_tracked_on_gateway_clock(
    loop, forbid_real_sleeps, index
):
    """A request that waits out a 2ms window against a 1ms SLO counts as
    a violation; a size-flushed request at zero elapsed time does not."""
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(
        index, clock, max_batch=32, flush_window_ms=2.0, slo_target_ms=1.0
    )
    slow = submit(loop, gateway, np.array([0.4, 0.3, 0.3]), 5)
    step(loop)
    clock.advance(0.003)
    step(loop)
    assert slow.done()
    assert gateway.stats()["rollup"]["slo_violations"] == 1.0

    fast_gateway = make_gateway(
        index, clock, max_batch=1, flush_window_ms=2.0, slo_target_ms=1.0
    )
    fast = submit(loop, fast_gateway, np.array([0.4, 0.3, 0.3]), 5)
    step(loop)
    assert fast.done()
    rollup = fast_gateway.stats()["rollup"]
    assert rollup["slo_violations"] == 0.0
    assert rollup["queries"] == 1.0
    close(loop, gateway, clock)
    close(loop, fast_gateway, clock)


def test_validation_precedes_admission(loop, forbid_real_sleeps, index):
    """Malformed requests raise before anything is queued — they never
    count against admission or wake the flush worker."""
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(index, clock)
    bad_weights = submit(loop, gateway, np.array([0.5, -0.5, 1.0]), 5)
    bad_k = submit(loop, gateway, np.array([0.2, 0.3, 0.5]), 2.5)
    step(loop)
    with pytest.raises(InvalidWeightError):
        bad_weights.result()
    with pytest.raises(InvalidQueryError):
        bad_k.result()
    assert gateway.accepted == 0
    assert gateway.stats()["pending"] == 0.0
    close(loop, gateway, clock)


def test_closed_gateway_rejects_new_but_drains_admitted(
    loop, forbid_real_sleeps, index
):
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(index, clock, max_batch=32, flush_window_ms=50.0)
    admitted = submit(loop, gateway, np.array([0.2, 0.3, 0.5]), 5)
    step(loop)
    closing = loop.create_task(gateway.aclose())
    step(loop)
    # aclose skips the flush window: the admitted request is answered
    # without any clock advance.
    assert admitted.done() and not admitted.exception()
    loop.run_until_complete(closing)
    late = submit(loop, gateway, np.array([0.2, 0.3, 0.5]), 5)
    step(loop)
    with pytest.raises(GatewayClosedError):
        late.result()


def test_gateway_invalid_parameters(index):
    engine = QueryEngine(index, cache_size=0)
    with pytest.raises(InvalidQueryError):
        AsyncGateway(engine, max_batch=0)
    with pytest.raises(InvalidQueryError):
        AsyncGateway(engine, flush_window_ms=-1.0)
    with pytest.raises(InvalidQueryError):
        AsyncGateway(engine, max_pending=0)
    with pytest.raises(InvalidQueryError):
        AsyncGateway(engine, max_inflight=0)


def test_coalesced_answers_bitwise_identical_property(
    loop, forbid_real_sleeps, index
):
    """Acceptance: over mixed k lanes, cache hits, and cancelled
    requests, every answer the coalescer returns is bitwise identical to
    ``engine.query(w, k)`` — with zero real sleeps end to end."""
    asyncio.set_event_loop(loop)
    clock = FakeClock()
    gateway = make_gateway(
        index,
        clock,
        cache_size=64,  # exercise the engine's cache-hit path
        max_batch=8,
        flush_window_ms=2.0,
        slo_target_ms=5.0,
    )
    oracle = QueryEngine(index, cache_size=0)
    rng = np.random.default_rng(11)
    distinct = [rng.dirichlet(np.ones(3)) for _ in range(10)]
    plan = [
        (distinct[int(i)], int(k))
        for i, k in zip(
            rng.integers(0, 10, size=50), rng.integers(1, 13, size=50)
        )
    ]
    # Exact repeats guarantee cache hits inside and across flushes.
    plan[20] = plan[0]
    plan[33] = plan[5]
    # First wave stays below max_batch, so it parks on the flush window
    # and the cancellations land while those requests are still queued.
    cancelled = {1, 3}
    tasks = [submit(loop, gateway, w, k) for w, k in plan[:5]]
    step(loop)
    assert gateway.stats()["batches"] == 0.0  # wave parked, none flushed
    for i in cancelled:
        tasks[i].cancel()
    step(loop)
    tasks.extend(submit(loop, gateway, w, k) for w, k in plan[5:])
    for _ in range(64):
        if all(task.done() for task in tasks):
            break
        step(loop)
        clock.advance(0.002)
        step(loop)
    assert all(task.done() for task in tasks)
    hits = 0
    for i, (task, (w, k)) in enumerate(zip(tasks, plan)):
        if i in cancelled:
            assert task.cancelled()
            continue
        result = task.result()
        expected = oracle.query(w, k)
        assert result.ids.tobytes() == expected.ids.tobytes()
        assert result.scores.tobytes() == expected.scores.tobytes()
        assert result.ids.dtype == expected.ids.dtype
        assert result.scores.dtype == expected.scores.dtype
        hits += result.cost == 0
    assert hits > 0  # the cache-hit path really ran
    stats = gateway.stats()
    assert stats["rollup"]["queries"] == float(len(plan) - len(cancelled))
    assert stats["rollup"]["cache_hits"] == float(hits)
    assert stats["batch_occupancy"] > 1.0  # coalescing actually engaged
    close(loop, gateway, clock)


def test_gateway_fronts_cluster_engine(loop, forbid_real_sleeps):
    """The gateway accepts a ClusterEngine and preserves its bitwise
    scatter-gather answers."""
    asyncio.set_event_loop(loop)
    relation = generate("ANT", 300, 3, seed=73)
    cluster = ClusterEngine(
        relation, shards=3, index_class=DLPlusIndex, cache_size=0
    )
    clock = FakeClock()
    gateway = AsyncGateway(
        cluster, max_batch=4, flush_window_ms=2.0,
        clock=clock, sleep=clock.sleep,
    )
    rng = np.random.default_rng(13)
    weights = [rng.dirichlet(np.ones(3)) for _ in range(4)]
    tasks = [submit(loop, gateway, w, 6) for w in weights]
    step(loop)
    assert all(task.done() for task in tasks)
    for w, task in zip(weights, tasks):
        expected = cluster.query(w, 6)
        assert task.result().ids.tobytes() == expected.ids.tobytes()
        assert task.result().scores.tobytes() == expected.scores.tobytes()
    close(loop, gateway, clock)


def test_gateway_with_executor_still_bitwise():
    """The thread-pool execution path (real event loop, no fake clock)
    returns the same bytes as inline dispatch."""
    from concurrent.futures import ThreadPoolExecutor

    index = DLPlusIndex(generate("IND", 300, 3, seed=79)).build()
    oracle = QueryEngine(index, cache_size=0)
    rng = np.random.default_rng(17)
    weights = [rng.dirichlet(np.ones(3)) for _ in range(12)]

    async def run():
        with ThreadPoolExecutor(max_workers=1) as executor:
            gateway = AsyncGateway(
                QueryEngine(index, cache_size=0),
                max_batch=4,
                flush_window_ms=1.0,
                executor=executor,
            )
            async with gateway:
                return await asyncio.gather(
                    *(gateway.query(w, 5) for w in weights)
                )

    results = asyncio.run(run())
    for w, result in zip(weights, results):
        expected = oracle.query(w, 5)
        assert result.ids.tobytes() == expected.ids.tobytes()
        assert result.scores.tobytes() == expected.scores.tobytes()
