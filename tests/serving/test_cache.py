"""Result cache: LRU behavior, quantized keys, version pruning."""

import numpy as np
import pytest

from repro.serving import ResultCache


def entry(n: int):
    return np.arange(n, dtype=np.intp), np.linspace(0.0, 1.0, n)


def test_hit_returns_copies():
    cache = ResultCache(4)
    key = cache.make_key(np.array([0.5, 0.5]), 3, 0)
    ids, scores = entry(3)
    cache.put(key, ids, scores)
    got_ids, got_scores = cache.get(key)
    np.testing.assert_array_equal(got_ids, ids)
    np.testing.assert_array_equal(got_scores, scores)
    got_ids[0] = 999  # mutating the returned arrays must not poison the cache
    again_ids, _ = cache.get(key)
    assert again_ids[0] == 0
    assert cache.hits == 2 and cache.misses == 0


def test_miss_counts():
    cache = ResultCache(4)
    assert cache.get(cache.make_key(np.array([0.5, 0.5]), 3, 0)) is None
    assert cache.misses == 1


def test_lru_eviction_order():
    cache = ResultCache(2)
    keys = [cache.make_key(np.array([w, 1 - w]), 3, 0) for w in (0.2, 0.4, 0.6)]
    cache.put(keys[0], *entry(3))
    cache.put(keys[1], *entry(3))
    assert cache.get(keys[0]) is not None  # refresh key 0 → key 1 becomes LRU
    cache.put(keys[2], *entry(3))
    assert cache.get(keys[1]) is None
    assert cache.get(keys[0]) is not None
    assert cache.get(keys[2]) is not None
    assert cache.evictions == 1


def test_quantization_merges_nearby_vectors():
    cache = ResultCache(4, decimals=6)
    a = cache.make_key(np.array([0.5, 0.5]), 3, 0)
    b = cache.make_key(np.array([0.5 + 1e-9, 0.5 - 1e-9]), 3, 0)
    c = cache.make_key(np.array([0.5 + 1e-3, 0.5 - 1e-3]), 3, 0)
    assert a == b
    assert a != c


def test_negative_zero_folded():
    cache = ResultCache(4)
    a = cache.make_key(np.array([1e-15, 1.0]), 3, 0)
    b = cache.make_key(np.array([-1e-15, 1.0]), 3, 0)
    assert a == b  # both quantize to (0.0, 1.0); -0.0 must not split the key


def test_keys_distinguish_k_and_version():
    cache = ResultCache(8)
    w = np.array([0.3, 0.7])
    assert cache.make_key(w, 3, 0) != cache.make_key(w, 4, 0)
    assert cache.make_key(w, 3, 0) != cache.make_key(w, 3, 1)


def test_prune_drops_other_versions():
    cache = ResultCache(8)
    w = np.array([0.3, 0.7])
    for version in (0, 0, 1, 2):
        cache.put(cache.make_key(w, 3 + version, version), *entry(3))
    dropped = cache.prune(2)
    assert dropped == 2
    assert len(cache) == 1
    assert cache.get(cache.make_key(w, 5, 2)) is not None


def test_zero_capacity_disables_caching():
    cache = ResultCache(0)
    key = cache.make_key(np.array([0.5, 0.5]), 3, 0)
    cache.put(key, *entry(3))
    assert cache.get(key) is None
    assert len(cache) == 0


def test_disabled_cache_stats_contract():
    """Regression: lookups on a capacity=0 cache used to increment the
    miss counter, so a deliberately disabled cache dashboarded as a 100%-
    missing (thrashing) one.  Contract: disabled means hits == misses ==
    evictions == 0, no matter how much traffic flows through."""
    cache = ResultCache(0)
    key = cache.make_key(np.array([0.5, 0.5]), 3, 0)
    for _ in range(10):
        assert cache.get(key) is None
        cache.put(key, *entry(3))
    stats = cache.stats()
    assert stats == {
        "entries": 0,
        "capacity": 0,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
    }


def test_prune_racing_put_during_version_bump():
    """Concurrency: writer threads keep putting old-version entries while
    the owner prunes to the new version (the engine does exactly this on
    a mutation).  The race must never corrupt the cache: a final prune
    leaves only current-version entries and they read back intact."""
    import threading

    cache = ResultCache(256)
    old, new = 0, 1
    stop = threading.Event()
    errors: list[Exception] = []

    def writer(seed: int) -> None:
        rng = np.random.default_rng(seed)
        try:
            while not stop.is_set():
                w = rng.random(2)
                version = old if rng.random() < 0.5 else new
                cache.put(cache.make_key(w, 3, version), *entry(3))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(s,)) for s in range(3)]
    for thread in threads:
        thread.start()
    for _ in range(200):
        cache.prune(new)
    stop.set()
    for thread in threads:
        thread.join()
    assert errors == []
    cache.prune(new)  # writers stopped: this sweep is final
    remaining = cache.stats()["entries"]
    assert remaining == len(cache)
    with cache._lock:
        assert all(key[2] == new for key in cache._entries)
    known = cache.make_key(np.array([0.25, 0.75]), 3, new)
    cache.put(known, *entry(3))
    got = cache.get(known)
    assert got is not None
    np.testing.assert_array_equal(got[0], entry(3)[0])


def test_invalid_parameters():
    with pytest.raises(ValueError):
        ResultCache(-1)
    with pytest.raises(ValueError):
        ResultCache(4, decimals=0)
