"""SnapshotEngine: a process pool serving one mmap'd snapshot."""

import numpy as np
import pytest

from repro.core import DLPlusIndex
from repro.core.query import process_top_k_reference
from repro.data import generate
from repro.exceptions import SerializationError
from repro.io import save_snapshot
from repro.relation import normalize_weights
from repro.serving import QueryEngine, SnapshotEngine
from repro.stats import AccessCounter


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    relation = generate("IND", 600, 3, seed=14)
    index = DLPlusIndex(relation, max_layers=12).build()
    root = save_snapshot(index, tmp_path_factory.mktemp("pool") / "snap")
    return root, index


def test_pool_answers_match_reference_bitwise(snapshot):
    root, index = snapshot
    rng = np.random.default_rng(3)
    weights = rng.random((6, 3))
    with SnapshotEngine(root, workers=2, prune=True) as engine:
        assert engine.d == 3
        assert engine.n == 600
        results = engine.query_batch(weights, 5)
        single = engine.query(weights[0], 5)
    for w, result in zip(weights, results):
        ids_ref, scores_ref = process_top_k_reference(
            index.structure, normalize_weights(w, 3), 5, AccessCounter()
        )
        np.testing.assert_array_equal(result.ids, ids_ref)
        assert result.scores.tobytes() == scores_ref.tobytes()
        assert result.cost > 0
    np.testing.assert_array_equal(single.ids, results[0].ids)
    assert single.scores.tobytes() == results[0].scores.tobytes()


def test_pool_matches_in_process_engine(snapshot):
    """Pooled answers equal the in-process QueryEngine over the same
    snapshot — process boundaries add no drift."""
    root, index = snapshot
    from repro.io import open_snapshot

    local = QueryEngine(open_snapshot(root), cache_size=0, prune=True)
    rng = np.random.default_rng(4)
    weights = rng.random((4, 3))
    ks = [1, 3, 7, 11]
    with SnapshotEngine(root, workers=2, prune=True) as engine:
        pooled = engine.query_batch(weights, ks)
    for w, k, result in zip(weights, ks, pooled):
        expected = local.query(w, k)
        np.testing.assert_array_equal(result.ids, expected.ids)
        assert result.scores.tobytes() == expected.scores.tobytes()
        assert result.cost == expected.cost


def test_pool_single_row_batch_and_validation(snapshot):
    root, _ = snapshot
    with SnapshotEngine(root, workers=1) as engine:
        results = engine.query_batch(np.array([0.2, 0.3, 0.5]), 4)
        assert len(results) == 1
        assert results[0].ids.shape == (4,)
        with pytest.raises(Exception):
            engine.query(np.array([0.2, 0.3, 0.5]), 0)  # invalid k


def test_pool_worker_rss_probe(snapshot):
    root, _ = snapshot
    with SnapshotEngine(root, workers=2) as engine:
        rss = engine.worker_rss_kib()
    assert len(rss) == 2
    assert all(r > 0 for r in rss)


def test_pool_rejects_non_snapshot_path(tmp_path):
    with pytest.raises(SerializationError):
        SnapshotEngine(tmp_path / "nothing-here")
