"""QueryEngine: batch byte-identity, caching, invalidation, concurrency."""

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.core import DLIndex, DLPlusIndex
from repro.core.maintenance import DynamicDualLayerIndex
from repro.core.query import process_top_k
from repro.data import generate
from repro.exceptions import InvalidQueryError, InvalidWeightError
from repro.relation import normalize_weights, top_k_bruteforce
from repro.serving import QueryEngine
from repro.stats import AccessCounter


def random_weights(rng, d: int, count: int) -> np.ndarray:
    return np.clip(rng.dirichlet(np.ones(d), size=count), 1e-9, None)


@pytest.mark.parametrize("distribution", ["IND", "ANT"])
@pytest.mark.parametrize("d", [2, 4])
@pytest.mark.parametrize("index_class", [DLIndex, DLPlusIndex])
def test_query_batch_byte_identical_to_sequential(distribution, d, index_class):
    """Acceptance: batched answers equal sequential process_top_k answers
    byte for byte — across distributions, dimensionalities, both index
    variants (static seeds and the 2-D weight-range selector), and varying
    k.  (4 dist/d cells x 2 index classes x 80 queries = 640 queries.)"""
    rng = np.random.default_rng(d * 101 + (1 if distribution == "IND" else 2))
    relation = generate(distribution, 300, d, seed=17)
    index = index_class(relation).build()
    engine = QueryEngine(index, cache_size=256)

    count = 80
    weights = random_weights(rng, d, count)
    ks = rng.integers(1, 26, size=count)
    # Inject exact repeats so the batch exercises the cache-hit path too.
    weights[count // 2] = weights[0]
    ks[count // 2] = ks[0]

    for k in np.unique(ks):
        rows = np.nonzero(ks == k)[0]
        results = engine.query_batch(weights[rows], int(k))
        for row, result in zip(rows, results):
            w = normalize_weights(weights[row], d)
            counter = AccessCounter()
            ref_ids, ref_scores = process_top_k(index.structure, w, int(k), counter)
            assert result.ids.tobytes() == ref_ids.tobytes()
            assert result.scores.tobytes() == ref_scores.tobytes()
            assert result.ids.dtype == ref_ids.dtype
            assert result.scores.dtype == ref_scores.dtype


def test_cache_hit_costs_zero_evaluations():
    relation = generate("IND", 250, 3, seed=5)
    engine = QueryEngine(DLPlusIndex(relation).build())
    w = np.array([0.2, 0.3, 0.5])
    first = engine.query(w, 10)
    assert first.counter.total > 0
    second = engine.query(w, 10)
    assert second.counter.total == 0  # acceptance: zero tuple evaluations
    np.testing.assert_array_equal(second.ids, first.ids)
    np.testing.assert_array_equal(second.scores, first.scores)
    assert engine.metrics.cache_hits == 1
    assert engine.metrics.as_dict()["hit_rate"] == 0.5


def test_cache_disabled_always_recomputes():
    relation = generate("IND", 200, 3, seed=6)
    engine = QueryEngine(DLIndex(relation).build(), cache_size=0)
    w = np.ones(3) / 3
    assert engine.query(w, 5).counter.total > 0
    assert engine.query(w, 5).counter.total > 0
    assert engine.metrics.cache_hits == 0


def test_mutation_invalidates_cache_entries():
    """Acceptance: an insert/delete through the maintenance index must
    invalidate affected cached answers (version keying + eager prune)."""
    rng = np.random.default_rng(2)
    dynamic = DynamicDualLayerIndex(d=2)
    for row in rng.random((60, 2)):
        dynamic.insert(row)
    engine = QueryEngine(dynamic, cache_size=64)
    w = np.array([0.5, 0.5])

    before = engine.query(w, 5)
    assert engine.query(w, 5).counter.total == 0  # cached

    dominator = dynamic.insert(np.array([1e-4, 1e-4]))
    after_insert = engine.query(w, 5)
    assert after_insert.counter.total > 0  # stale entry not served
    assert int(after_insert.ids[0]) == dominator
    assert len(engine.cache) == 1  # old-version entries pruned eagerly

    dynamic.delete(dominator)
    after_delete = engine.query(w, 5)
    assert after_delete.counter.total > 0
    np.testing.assert_array_equal(after_delete.ids, before.ids)
    np.testing.assert_array_equal(after_delete.scores, before.scores)


def test_rebuild_invalidates_static_index_cache():
    relation = generate("IND", 150, 2, seed=9)
    index = DLIndex(relation).build()
    engine = QueryEngine(index)
    w = np.array([0.5, 0.5])
    engine.query(w, 5)
    assert engine.query(w, 5).counter.total == 0
    index.build()  # rebuild bumps the version
    assert engine.query(w, 5).counter.total > 0


def test_query_many_matches_sequential_and_tracks_depth():
    rng = np.random.default_rng(11)
    relation = generate("ANT", 250, 3, seed=13)
    index = DLPlusIndex(relation).build()
    sequential = QueryEngine(index, cache_size=0)
    threaded = QueryEngine(index, cache_size=0)
    queries = [(w, int(k)) for w, k in zip(
        random_weights(rng, 3, 40), rng.integers(1, 15, size=40)
    )]
    expected = [sequential.query(w, k) for w, k in queries]
    got = threaded.query_many(queries, max_workers=4)
    for a, b in zip(got, expected):
        assert a.ids.tobytes() == b.ids.tobytes()
        assert a.scores.tobytes() == b.scores.tobytes()
        assert a.counter.total == b.counter.total  # private per-query state
    assert threaded.metrics.queries == 40
    assert threaded.metrics.max_queue_depth >= 1
    assert threaded.query_many([]) == []


def test_engine_fronts_non_gated_indexes():
    relation = generate("IND", 120, 3, seed=21)
    engine = QueryEngine(ScanIndex(relation).build())
    w = np.ones(3) / 3
    result = engine.query(w, 5)
    _, ref_scores = top_k_bruteforce(relation.matrix, w, 5)
    np.testing.assert_allclose(result.scores, ref_scores, atol=1e-12)
    assert result.counter.total == relation.n
    assert engine.query(w, 5).counter.total == 0  # cached


def test_engine_builds_unbuilt_index():
    relation = generate("IND", 100, 2, seed=23)
    index = DLIndex(relation)
    engine = QueryEngine(index)
    assert index._built
    assert engine.version == 1
    result = engine.query(np.array([0.6, 0.4]), 3)
    assert result.ids.shape[0] == 3


def test_k_clamped_and_validated():
    relation = generate("IND", 50, 2, seed=25)
    engine = QueryEngine(DLIndex(relation).build())
    result = engine.query(np.array([0.5, 0.5]), 500)
    assert result.ids.shape[0] == 50
    with pytest.raises(InvalidQueryError):
        engine.query(np.array([0.5, 0.5]), 0)
    with pytest.raises(InvalidWeightError):
        engine.query(np.array([0.5, -0.5]), 3)
    with pytest.raises(InvalidWeightError):
        engine.query_batch(np.ones((2, 2, 2)), 3)


def test_serve_helper_on_index():
    relation = generate("IND", 80, 2, seed=27)
    engine = DLIndex(relation).serve(cache_size=8)
    assert isinstance(engine, QueryEngine)
    assert engine.query(np.array([0.5, 0.5]), 3).ids.shape[0] == 3


def test_stats_snapshot_merges_cache_and_metrics():
    relation = generate("IND", 100, 2, seed=29)
    engine = QueryEngine(DLIndex(relation).build())
    engine.query(np.array([0.5, 0.5]), 3)
    engine.query(np.array([0.5, 0.5]), 3)
    stats = engine.stats()
    assert stats["cache_entries"] == 1.0
    assert stats["cache_hits"] == 1.0
    assert stats["queries"] == 2.0
    assert stats["throughput_qps"] > 0.0


def test_query_batch_per_row_k():
    """query_batch accepts a per-row k vector; each row must match the
    equivalent scalar-k call byte for byte."""
    rng = np.random.default_rng(31)
    relation = generate("ANT", 300, 3, seed=31)
    index = DLPlusIndex(relation).build()
    engine = QueryEngine(index, cache_size=0)
    scalar = QueryEngine(index, cache_size=0)
    weights = random_weights(rng, 3, 12)
    ks = [1, 50, 3, 50, 1, 7, 50, 3, 1, 50, 7, 3]
    results = engine.query_batch(weights, ks)
    assert len(results) == 12
    for w, k, result in zip(weights, ks, results):
        expected = scalar.query(w, k)
        assert result.ids.tobytes() == expected.ids.tobytes()
        assert result.scores.tobytes() == expected.scores.tobytes()
    with pytest.raises(InvalidQueryError):
        engine.query_batch(weights, ks[:-1])  # length mismatch
    with pytest.raises(InvalidQueryError):
        engine.query_batch(weights, [5] * 11 + [0])  # invalid row k


@pytest.mark.parametrize("kernel", ["auto", "batch", "reference"])
def test_query_batch_kernels_byte_identical(kernel):
    """Every kernel choice (incl. the fused batch kernel and auto
    dispatch) serves byte-identical batches to the default engine."""
    rng = np.random.default_rng(37)
    relation = generate("IND", 350, 4, seed=37)
    index = DLPlusIndex(relation).build()
    baseline = QueryEngine(index, cache_size=0, kernel="csr")
    engine = QueryEngine(index, cache_size=0, kernel=kernel)
    weights = random_weights(rng, 4, 16)
    expected = baseline.query_batch(weights, 9)
    got = engine.query_batch(weights, 9)
    for a, b in zip(got, expected):
        assert a.ids.tobytes() == b.ids.tobytes()
        assert a.scores.tobytes() == b.scores.tobytes()
        assert a.cost == b.cost
    # Single queries agree too (auto dispatches per-query kernels there).
    w = rng.dirichlet(np.ones(4))
    a = engine.query(w, 6)
    b = baseline.query(w, 6)
    assert a.ids.tobytes() == b.ids.tobytes()
    assert a.scores.tobytes() == b.scores.tobytes()


def test_query_batch_records_batch_metrics():
    relation = generate("IND", 300, 3, seed=41)
    engine = QueryEngine(DLPlusIndex(relation).build(), cache_size=0)
    rng = np.random.default_rng(41)
    engine.query_batch(random_weights(rng, 3, 16), 5)
    stats = engine.metrics.as_dict()
    assert engine.metrics.batches == 1
    assert engine.metrics.batch_rows == 16
    assert stats["batched_queries"] == 16.0
    assert stats["batch_amortized_ms_p50"] > 0.0


def test_query_many_validates_before_spawning():
    """A malformed query anywhere in the list must fail fast, before any
    thread-pool work runs (no partial metrics, no partial cache fills)."""
    relation = generate("IND", 200, 3, seed=43)
    engine = QueryEngine(DLPlusIndex(relation).build(), cache_size=32)
    rng = np.random.default_rng(43)
    good = [(w, 5) for w in random_weights(rng, 3, 6)]
    bad_weight = good[:3] + [(np.array([0.5, -0.5, 1.0]), 5)] + good[3:]
    with pytest.raises(InvalidWeightError):
        engine.query_many(bad_weight)
    bad_k = good[:3] + [(good[0][0], 0)] + good[3:]
    with pytest.raises(InvalidQueryError):
        engine.query_many(bad_k)
    assert engine.metrics.queries == 0  # nothing executed
    assert len(engine.cache) == 0


def test_non_integral_k_rejected_everywhere():
    """Regression: a non-integral k used to be silently truncated by the
    int64 cast in query_batch (k=2.5 served the k=2 answer).  Every
    serving entry point must reject it instead — scalar, per-row, and
    query_many — while integral floats still pass."""
    relation = generate("IND", 200, 3, seed=47)
    engine = QueryEngine(DLPlusIndex(relation).build(), cache_size=0)
    rng = np.random.default_rng(47)
    weights = random_weights(rng, 3, 4)
    w = weights[0]
    with pytest.raises(InvalidQueryError):
        engine.query(w, 2.5)
    with pytest.raises(InvalidQueryError):
        engine.query_batch(weights, 2.5)  # scalar k
    with pytest.raises(InvalidQueryError):
        engine.query_batch(weights, [5, 5, 2.5, 5])  # per-row k
    with pytest.raises(InvalidQueryError):
        engine.query_batch(weights, np.array([5.0, 5.0, 2.5, 5.0]))
    with pytest.raises(InvalidQueryError):
        engine.query_many([(w, 5), (w, 2.5)])
    with pytest.raises(InvalidQueryError):
        engine.query(w, "5")
    assert engine.metrics.queries == 0  # nothing was served
    # Integral floats are unambiguous and stay accepted.
    a = engine.query(w, 3.0)
    b = engine.query(w, 3)
    assert a.ids.tobytes() == b.ids.tobytes()
    c = engine.query_batch(weights, np.float64(4.0))
    d = engine.query_batch(weights, 4)
    for x, y in zip(c, d):
        assert x.ids.tobytes() == y.ids.tobytes()


def test_query_batch_concurrent_deferred_duplicates():
    """Concurrency: batches full of duplicate rows (the deferred-duplicate
    path that resolves repeats from the cache fill of the first
    occurrence) stay bitwise-correct when many threads share one engine."""
    import threading

    relation = generate("ANT", 300, 3, seed=53)
    index = DLPlusIndex(relation).build()
    engine = QueryEngine(index, cache_size=128)
    oracle = QueryEngine(index, cache_size=0)
    rng = np.random.default_rng(53)
    distinct = random_weights(rng, 3, 6)
    # Each thread's batch repeats every distinct vector several times.
    batch = np.vstack([distinct, distinct, distinct])
    expected = [oracle.query(w, 7) for w in batch]
    failures: list[str] = []
    barrier = threading.Barrier(4)

    def worker() -> None:
        barrier.wait()
        for _ in range(5):
            results = engine.query_batch(batch, 7)
            for got, ref in zip(results, expected):
                if (
                    got.ids.tobytes() != ref.ids.tobytes()
                    or got.scores.tobytes() != ref.scores.tobytes()
                ):
                    failures.append("bitwise mismatch under concurrency")

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert failures == []
    metrics = engine.metrics
    assert metrics.queries == 4 * 5 * len(batch)
    assert metrics.cache_hits + metrics.cache_misses == metrics.queries
    # Duplicates beyond each batch's first occurrence hit the cache.
    assert metrics.cache_hits >= metrics.queries // 2


def test_engine_kernel_selector():
    """The reference-kernel engine serves byte-identical answers to the
    default CSR engine; an unknown kernel name is rejected."""
    relation = generate("IND", 400, 3, seed=21)
    index = DLPlusIndex(relation).build()
    csr = QueryEngine(index, cache_size=0)
    ref = QueryEngine(index, cache_size=0, kernel="reference")
    rng = np.random.default_rng(22)
    for _ in range(5):
        w = rng.dirichlet(np.ones(3))
        a = csr.query(w, 10)
        b = ref.query(w, 10)
        np.testing.assert_array_equal(a.ids, b.ids)
        assert a.scores.tobytes() == b.scores.tobytes()
        assert a.cost == b.cost
    with pytest.raises(InvalidQueryError):
        QueryEngine(index, kernel="simd")


def test_prune_mode_is_bitwise_and_no_costlier():
    """prune=True engines answer byte-identically with cost <= the plain
    engine's, for single queries and batches alike."""
    relation = generate("IND", 800, 3, seed=23)
    index = DLPlusIndex(relation, max_layers=12).build()
    plain = QueryEngine(index, cache_size=0)
    pruned = QueryEngine(index, cache_size=0, prune=True)
    rng = np.random.default_rng(24)
    weights = random_weights(rng, 3, 10)
    for w in weights:
        a = plain.query(w, 8)
        b = pruned.query(w, 8)
        np.testing.assert_array_equal(a.ids, b.ids)
        assert a.scores.tobytes() == b.scores.tobytes()
        assert b.cost <= a.cost
    batch_plain = plain.query_batch(weights, 8)
    batch_pruned = pruned.query_batch(weights, 8)
    total_plain = sum(r.cost for r in batch_plain)
    total_pruned = sum(r.cost for r in batch_pruned)
    assert total_pruned <= total_plain
    for a, b in zip(batch_plain, batch_pruned):
        np.testing.assert_array_equal(a.ids, b.ids)
        assert a.scores.tobytes() == b.scores.tobytes()


def test_prune_promotes_reference_kernel_to_csr():
    """kernel="reference" has no pruning path; a pruned engine promotes to
    the bitwise-identical CSR kernel instead of silently not pruning."""
    relation = generate("ANT", 300, 3, seed=25)
    index = DLPlusIndex(relation).build()
    reference = QueryEngine(index, cache_size=0, kernel="reference")
    promoted = QueryEngine(index, cache_size=0, kernel="reference", prune=True)
    w = np.array([0.5, 0.25, 0.25])
    a = reference.query(w, 9)
    b = promoted.query(w, 9)
    np.testing.assert_array_equal(a.ids, b.ids)
    assert a.scores.tobytes() == b.scores.tobytes()
    assert b.cost <= a.cost


def test_query_many_concurrent_bitwise_and_workspace_counted():
    """Concurrent query_many threads hammering one engine (and its shared
    QueryWorkspace) return exactly the sequential answers; every uncached
    solo query either checked the workspace out or was counted as a
    contention fallback.  (kernel="csr" pins the python solo kernel —
    auto dispatches to the native kernel where available, whose
    workspace has its own counters and test.)"""
    relation = generate("IND", 600, 4, seed=29)
    index = DLPlusIndex(relation).build()
    sequential = QueryEngine(index, cache_size=0, kernel="csr")
    concurrent = QueryEngine(index, cache_size=0, kernel="csr")
    rng = np.random.default_rng(30)
    queries = [(rng.dirichlet(np.ones(4)), int(rng.integers(1, 21))) for _ in range(24)]
    expected = [sequential.query(w, k) for w, k in queries]
    results = concurrent.query_many(queries, max_workers=6)
    for a, b in zip(expected, results):
        np.testing.assert_array_equal(a.ids, b.ids)
        assert a.scores.tobytes() == b.scores.tobytes()
        assert a.cost == b.cost
    stats = concurrent.stats()
    assert stats["workspace_checkouts"] + stats["workspace_fallbacks"] == len(queries)


def test_workspace_contention_fallback_counted_in_stats():
    """A query arriving while the solo workspace is held falls back to a
    fresh allocation — same bits, and the fallback shows in stats().
    (kernel="csr" pins the python solo kernel; the native workspace has
    an equivalent test in tests/core/test_native_kernel.py.)"""
    relation = generate("ANT", 400, 3, seed=31)
    index = DLPlusIndex(relation).build()
    engine = QueryEngine(index, cache_size=0, kernel="csr")
    w = np.array([0.3, 0.4, 0.3])
    baseline = engine.query(w, 7)
    assert engine.stats()["workspace_fallbacks"] == 0.0
    assert engine._solo_workspace._lock.acquire(blocking=False)
    try:
        contended = engine.query(w, 7)
    finally:
        engine._solo_workspace._lock.release()
    np.testing.assert_array_equal(baseline.ids, contended.ids)
    assert baseline.scores.tobytes() == contended.scores.tobytes()
    assert engine.stats()["workspace_fallbacks"] == 1.0


def test_native_kernel_guarded_in_engine(monkeypatch):
    """kernel="jit" (alias of "native") is accepted at construction but
    raises KernelUnavailableError at query time when the compiled walker
    cannot load and nothing is registered; the message names the actual
    remedy (C toolchain / native build), and a registered walker is
    dispatched to with the full kernel kwargs."""
    from repro.core import dispatch
    from repro.exceptions import KernelUnavailableError

    relation = generate("IND", 300, 3, seed=33)
    index = DLPlusIndex(relation).build()
    engine = QueryEngine(index, cache_size=0, kernel="jit")
    w = np.array([0.2, 0.5, 0.3])
    # Simulate an environment where the native build already failed: the
    # slot is empty and the one-shot autoload has been spent.
    monkeypatch.setattr(dispatch, "_JIT_KERNEL", None)
    monkeypatch.setattr(dispatch, "_AUTOLOAD_ATTEMPTED", True)
    with pytest.raises(
        KernelUnavailableError, match="no compiled walk kernel"
    ):
        engine.query(w, 5)

    seen_kwargs = {}

    def fake_jit(structure, weights, k, counter, **kwargs):
        # Delegate to the real kernel: registration is a promise of
        # bitwise identity, which delegation trivially keeps.
        seen_kwargs.update(kwargs)
        return process_top_k(structure, weights, k, counter)

    monkeypatch.setattr(dispatch, "_JIT_KERNEL", fake_jit)
    result = engine.query(w, 5)
    counter = AccessCounter()
    ids, scores = process_top_k(
        index.structure, normalize_weights(w, 3), 5, counter
    )
    np.testing.assert_array_equal(result.ids, ids)
    assert result.scores.tobytes() == scores.tobytes()
    # The engine passes its prune setting and the native workspace.
    assert seen_kwargs["prune"] is False
    assert seen_kwargs["workspace"] is engine._native_workspace
    monkeypatch.setattr(dispatch, "_JIT_KERNEL", None)
    with pytest.raises(KernelUnavailableError):
        engine.query(np.array([0.1, 0.6, 0.3]), 5)
