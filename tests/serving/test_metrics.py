"""Metrics registry: counters, latency summary, queue depth, thread safety."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serving import MetricsRegistry
from repro.stats import LatencyWindow, percentile


def test_track_records_hits_misses_and_cost():
    registry = MetricsRegistry()
    with registry.track() as record:
        record.cost = 40
    with registry.track() as record:
        record.hit = True
        record.cost = 0
    assert registry.queries == 2
    assert registry.cache_hits == 1 and registry.cache_misses == 1
    assert registry.hit_rate == 0.5
    assert registry.total_cost == 40 and registry.max_cost == 40
    assert registry.mean_cost == 20.0


def test_queue_depth_gauge():
    registry = MetricsRegistry()
    with registry.track():
        with registry.track():
            assert registry.queue_depth == 2
    assert registry.queue_depth == 0
    assert registry.max_queue_depth == 2


def test_as_dict_exposes_all_series():
    registry = MetricsRegistry()
    with registry.track() as record:
        record.cost = 10
        record.batched = True
    snapshot = registry.as_dict()
    for key in (
        "queries",
        "batched_queries",
        "cache_hits",
        "cache_misses",
        "hit_rate",
        "mean_cost",
        "latency_ms_mean",
        "latency_ms_p50",
        "latency_ms_p95",
        "latency_ms_p99",
        "queue_depth",
        "max_queue_depth",
    ):
        assert key in snapshot
    assert snapshot["queries"] == 1.0
    assert snapshot["batched_queries"] == 1.0
    assert snapshot["latency_ms_mean"] > 0.0


def test_failed_query_still_tracked():
    registry = MetricsRegistry()
    with pytest.raises(RuntimeError):
        with registry.track():
            raise RuntimeError("query blew up")
    assert registry.queries == 1
    assert registry.queue_depth == 0


def test_reset():
    registry = MetricsRegistry()
    with registry.track() as record:
        record.cost = 5
    registry.reset()
    assert registry.queries == 0
    assert registry.as_dict()["total_cost"] == 0.0


def test_concurrent_track_loses_no_updates():
    """Hammering track() from many threads must account for every query —
    the single-lock contract: counters and the latency window move together
    and no increment is ever torn or dropped."""
    registry = MetricsRegistry()
    per_thread, threads = 200, 8

    def worker(thread_id: int) -> None:
        for i in range(per_thread):
            with registry.track() as record:
                record.cost = 3
                record.hit = (i % 2) == 0
                record.batched = (thread_id % 2) == 0

    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(worker, range(threads)))

    total = per_thread * threads
    assert registry.queries == total
    assert registry.cache_hits == total // 2
    assert registry.cache_misses == total // 2
    assert registry.batched_queries == total // 2
    assert registry.total_cost == 3 * total
    assert registry.queue_depth == 0
    assert registry._latency.count == total


def test_concurrent_query_many_loses_no_metric_updates():
    """End-to-end: a thread-pooled query_many over a live engine must leave
    the registry exactly accounting for every served query."""
    import numpy as np

    from repro.core import DLPlusIndex
    from repro.data import generate
    from repro.serving import QueryEngine

    relation = generate("IND", 200, 3, seed=44)
    engine = QueryEngine(DLPlusIndex(relation), cache_size=0)
    rng = np.random.default_rng(3)
    queries = [(rng.dirichlet(np.ones(3)), 5) for _ in range(64)]
    results = engine.query_many(queries, max_workers=8)
    assert len(results) == 64
    metrics = engine.metrics
    assert metrics.queries == 64
    assert metrics.cache_misses == 64  # cache disabled: every query served
    assert metrics.total_cost == sum(result.cost for result in results)
    assert metrics._latency.count == 64
    assert metrics.queue_depth == 0


def test_record_external_folds_in_one_query():
    registry = MetricsRegistry()
    registry.record_external(cost=17, seconds=0.004)
    registry.record_external(cost=0, hit=True)
    assert registry.queries == 2
    assert registry.cache_hits == 1 and registry.cache_misses == 1
    assert registry.total_cost == 17 and registry.max_cost == 17
    assert registry._latency.count == 1  # hit recorded no latency sample


def test_aggregate_pools_registries():
    a, b = MetricsRegistry(), MetricsRegistry()
    with a.track() as record:
        record.cost = 10
    with b.track() as record:
        record.cost = 30
        record.hit = True
    rollup = MetricsRegistry.aggregate([a, b])
    assert rollup["queries"] == 2.0
    assert rollup["cache_hits"] == 1.0
    assert rollup["total_cost"] == 40.0
    assert rollup["mean_cost"] == 20.0
    assert rollup["max_cost"] == 30.0
    # Percentiles come from the pooled sample population, not an average
    # of per-registry percentiles.
    assert rollup["latency_ms_max"] >= max(
        a.as_dict()["latency_ms_max"], b.as_dict()["latency_ms_max"]
    )
    empty = MetricsRegistry.aggregate([])
    assert empty["queries"] == 0.0 and empty["latency_ms_p50"] == 0.0


def test_slo_violations_counted_and_reset():
    registry = MetricsRegistry()
    registry.record_external(cost=5, seconds=0.002, slo_violated=True)
    registry.record_external(cost=5, seconds=0.001)
    with registry.track() as record:
        record.cost = 3
        record.slo_violated = True
    assert registry.slo_violations == 2
    assert registry.as_dict()["slo_violations"] == 2.0
    registry.reset()
    assert registry.slo_violations == 0
    assert registry.as_dict()["slo_violations"] == 0.0


def test_aggregate_pools_throughput_and_slo():
    """Regression: the roll-up used to omit throughput entirely.  Pooled
    semantics: total queries over the window since the *earliest* registry
    started — summing per-registry rates would double-count the shared
    wall clock."""
    import time

    a, b = MetricsRegistry(), MetricsRegistry()
    now = time.perf_counter()
    a.started_at = now - 2.0  # earliest: defines the pooled window
    b.started_at = now - 1.0
    for _ in range(6):
        a.record_external(cost=1, seconds=0.001)
    for _ in range(4):
        b.record_external(cost=1, seconds=0.001, slo_violated=True)
    rollup = MetricsRegistry.aggregate([a, b])
    assert rollup["queries"] == 10.0
    assert rollup["slo_violations"] == 4.0
    # 10 queries over the ~2s pooled window — not 6/2 + 4/1 = 7 q/s.
    assert rollup["throughput_qps"] == pytest.approx(5.0, rel=0.05)
    assert MetricsRegistry.aggregate([])["throughput_qps"] == 0.0


def test_record_batch_histogram_and_amortized_latency():
    registry = MetricsRegistry()
    registry.record_batch(1, seconds=0.001)
    registry.record_batch(8, seconds=0.004)
    registry.record_batch(12, seconds=0.006)  # buckets with 8 (power of two)
    registry.record_batch(32, seconds=0.008)
    registry.record_batch(0)  # no-op
    assert registry.batches == 4
    assert registry.batch_rows == 1 + 8 + 12 + 32
    assert registry.max_batch_size == 32
    assert registry.batch_size_hist == {1: 1, 8: 2, 32: 1}
    snapshot = registry.as_dict()
    assert snapshot["batches"] == 4.0
    assert snapshot["batch_rows"] == 53.0
    assert snapshot["batch_size_max"] == 32.0
    assert snapshot["batch_size_mean"] == pytest.approx(53 / 4)
    assert snapshot["batch_size_hist_8"] == 2.0
    # Amortized per-query latencies: 1.0ms, 0.5ms, 0.5ms, 0.25ms.
    assert snapshot["batch_amortized_ms_p50"] == pytest.approx(0.5)
    registry.reset()
    assert registry.batches == 0 and registry.batch_size_hist == {}
    assert registry.as_dict()["batch_amortized_ms_p50"] == 0.0


def test_aggregate_rolls_up_batch_series():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.record_batch(8, seconds=0.008)
    b.record_batch(8, seconds=0.004)
    b.record_batch(64, seconds=0.016)
    rollup = MetricsRegistry.aggregate([a, b])
    assert rollup["batches"] == 3.0
    assert rollup["batch_rows"] == 80.0
    assert rollup["batch_size_max"] == 64.0
    assert rollup["batch_size_hist_8"] == 2.0
    assert rollup["batch_size_hist_64"] == 1.0
    # Pooled amortized samples: 1.0ms, 0.5ms, 0.25ms — not a mean of means.
    assert rollup["batch_amortized_ms_p50"] == pytest.approx(0.5)


def test_percentile_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == 2.5
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 95) == 7.0
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_latency_window_bounds_samples():
    window = LatencyWindow(window=4)
    for sample in (1.0, 2.0, 3.0, 4.0, 5.0):
        window.record(sample)
    assert window.count == 5  # lifetime count keeps growing
    summary = window.summary(scale=1.0)
    assert summary["max"] == 5.0
    assert summary["p50"] == 3.5  # windowed: [2, 3, 4, 5]
    assert window.mean == 3.0  # lifetime mean over all 5 samples
    with pytest.raises(ValueError):
        LatencyWindow(window=0)
