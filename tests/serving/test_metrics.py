"""Metrics registry: counters, latency summary, queue depth."""

import pytest

from repro.serving import MetricsRegistry
from repro.stats import LatencyWindow, percentile


def test_track_records_hits_misses_and_cost():
    registry = MetricsRegistry()
    with registry.track() as record:
        record.cost = 40
    with registry.track() as record:
        record.hit = True
        record.cost = 0
    assert registry.queries == 2
    assert registry.cache_hits == 1 and registry.cache_misses == 1
    assert registry.hit_rate == 0.5
    assert registry.total_cost == 40 and registry.max_cost == 40
    assert registry.mean_cost == 20.0


def test_queue_depth_gauge():
    registry = MetricsRegistry()
    with registry.track():
        with registry.track():
            assert registry.queue_depth == 2
    assert registry.queue_depth == 0
    assert registry.max_queue_depth == 2


def test_as_dict_exposes_all_series():
    registry = MetricsRegistry()
    with registry.track() as record:
        record.cost = 10
        record.batched = True
    snapshot = registry.as_dict()
    for key in (
        "queries",
        "batched_queries",
        "cache_hits",
        "cache_misses",
        "hit_rate",
        "mean_cost",
        "latency_ms_mean",
        "latency_ms_p50",
        "latency_ms_p95",
        "latency_ms_p99",
        "queue_depth",
        "max_queue_depth",
    ):
        assert key in snapshot
    assert snapshot["queries"] == 1.0
    assert snapshot["batched_queries"] == 1.0
    assert snapshot["latency_ms_mean"] > 0.0


def test_failed_query_still_tracked():
    registry = MetricsRegistry()
    with pytest.raises(RuntimeError):
        with registry.track():
            raise RuntimeError("query blew up")
    assert registry.queries == 1
    assert registry.queue_depth == 0


def test_reset():
    registry = MetricsRegistry()
    with registry.track() as record:
        record.cost = 5
    registry.reset()
    assert registry.queries == 0
    assert registry.as_dict()["total_cost"] == 0.0


def test_percentile_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == 2.5
    assert percentile([], 50) == 0.0
    assert percentile([7.0], 95) == 7.0
    with pytest.raises(ValueError):
        percentile(values, 101)


def test_latency_window_bounds_samples():
    window = LatencyWindow(window=4)
    for sample in (1.0, 2.0, 3.0, 4.0, 5.0):
        window.record(sample)
    assert window.count == 5  # lifetime count keeps growing
    summary = window.summary(scale=1.0)
    assert summary["max"] == 5.0
    assert summary["p50"] == 3.5  # windowed: [2, 3, 4, 5]
    assert window.mean == 3.0  # lifetime mean over all 5 samples
    with pytest.raises(ValueError):
        LatencyWindow(window=0)
