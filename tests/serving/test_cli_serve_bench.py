"""The serve-bench CLI subcommand (scaled down for test speed)."""

from repro.cli import main


def test_serve_bench_reports_speedup_and_metrics(capsys):
    code = main(
        [
            "serve-bench",
            "--n", "1500",
            "--d", "3",
            "--k", "5",
            "--queries", "64",
            "--distinct", "4",
            "--algorithm", "DL+",
            "--seed", "1",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "throughput (q/s)" in out
    assert "speedup:" in out
    assert "hit_rate" in out
    assert "latency_ms_p95" in out
    assert "max_queue_depth" in out


def test_serve_bench_threaded_path(capsys):
    code = main(
        [
            "serve-bench",
            "--n", "800",
            "--d", "2",
            "--k", "5",
            "--queries", "32",
            "--distinct", "4",
            "--workers", "2",
            "--algorithm", "DL",
            "--seed", "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "speedup:" in out


def test_serve_bench_rejects_bad_arguments(capsys):
    assert main(["serve-bench", "--queries", "0"]) == 1
