"""Database execution of top-k statements."""

import numpy as np
import pytest

from repro.baselines import ScanIndex
from repro.data.hotels import HOTEL_NAMES, synthetic_hotels, toy_hotels
from repro.exceptions import SchemaError, SQLParseError
from repro.relation import top_k_bruteforce
from repro.sql import Database


@pytest.fixture()
def database():
    db = Database()
    db.register("hotel", toy_hotels())
    return db


def test_execute_on_toy(database):
    answer = database.execute(
        "SELECT * FROM hotel ORDER BY 0.5*price + 0.5*distance STOP AFTER 3"
    )
    assert [HOTEL_NAMES[i] for i in answer.ids] == ["a", "b", "f"]
    assert answer.cost >= 3
    assert answer.algorithm == "DL+"


def test_weights_affect_result(database):
    price_heavy = database.execute(
        "SELECT * FROM hotel ORDER BY 0.9*price + 0.1*distance STOP AFTER 1"
    )
    distance_heavy = database.execute(
        "SELECT * FROM hotel ORDER BY 0.1*price + 0.9*distance STOP AFTER 1"
    )
    assert HOTEL_NAMES[price_heavy.ids[0]] == "a"
    assert HOTEL_NAMES[distance_heavy.ids[0]] == "c"


def test_where_predicate_partitions():
    relation, cities = synthetic_hotels(300, seed=5, city_count=2)
    labels = np.where(cities == 0, "NY", "DC")
    db = Database()
    db.register("hotel", relation, labels={"city": labels})
    answer = db.execute(
        "SELECT * FROM hotel WHERE city = 'NY' "
        "ORDER BY 0.5*price + 0.5*distance STOP AFTER 5"
    )
    assert all(labels[i] == "NY" for i in answer.ids)
    # Scores must match brute force over the partition.
    selection = np.nonzero(labels == "NY")[0]
    _, ref = top_k_bruteforce(
        relation.matrix[selection], np.array([0.5, 0.5]), 5
    )
    np.testing.assert_allclose(answer.scores, ref, atol=1e-12)


def test_index_cache_reused(database):
    database.execute("SELECT * FROM hotel ORDER BY price + distance STOP AFTER 2")
    cache_size = len(database._index_cache)
    database.execute("SELECT * FROM hotel ORDER BY 2*price + distance STOP AFTER 4")
    assert len(database._index_cache) == cache_size


def test_unknown_table(database):
    with pytest.raises(SQLParseError, match="unknown table"):
        database.execute("SELECT * FROM nope ORDER BY price + distance STOP AFTER 1")


def test_missing_attribute_weight_rejected_without_subspace():
    db = Database(subspace=False)
    db.register("hotel", toy_hotels())
    with pytest.raises(SQLParseError, match="missing"):
        db.execute("SELECT * FROM hotel ORDER BY price STOP AFTER 1")


def test_partial_order_by_runs_as_subspace_query(database):
    answer = database.execute("SELECT * FROM hotel ORDER BY price STOP AFTER 1")
    # Minimum price in the toy data is hotel a.
    assert HOTEL_NAMES[answer.ids[0]] == "a"


def test_unknown_label_column(database):
    with pytest.raises(SQLParseError, match="unknown label"):
        database.execute(
            "SELECT * FROM hotel WHERE city = 'NY' "
            "ORDER BY price + distance STOP AFTER 1"
        )


def test_empty_selection_rejected():
    relation, _ = synthetic_hotels(50, seed=1)
    db = Database()
    db.register("hotel", relation, labels={"city": np.array(["A"] * 50)})
    with pytest.raises(SQLParseError, match="no tuples"):
        db.execute(
            "SELECT * FROM hotel WHERE city = 'B' "
            "ORDER BY price + distance STOP AFTER 1"
        )


def test_label_validation():
    db = Database()
    with pytest.raises(SchemaError, match="label column"):
        db.register("h", toy_hotels(), labels={"city": np.array(["x"])})
    with pytest.raises(SchemaError, match="clashes"):
        db.register("h", toy_hotels(), labels={"price": np.array(["x"] * 11)})


def test_custom_index_class():
    db = Database(index_class=ScanIndex)
    db.register("hotel", toy_hotels())
    answer = db.execute(
        "SELECT * FROM hotel ORDER BY price + distance STOP AFTER 2"
    )
    assert answer.algorithm == "SCAN"
    assert answer.cost == 11
