"""Subspace top-k embedding."""

import numpy as np
import pytest

from repro.core import DLIndex
from repro.data import generate
from repro.exceptions import InvalidWeightError
from repro.relation import Schema
from repro.sql.subspace import embed_subspace_weights, subspace_scores


@pytest.fixture(scope="module")
def schema():
    return Schema(("a", "b", "c", "d"))


def test_embedding_shape_and_normalization(schema):
    w = embed_subspace_weights(schema, {"a": 1.0, "c": 3.0})
    assert w.shape == (4,)
    assert w.sum() == pytest.approx(1.0)
    assert np.all(w > 0)
    assert w[2] == pytest.approx(3 * w[0], rel=1e-6)
    assert w[1] < 1e-8 and w[3] < 1e-8


def test_embedding_validation(schema):
    with pytest.raises(InvalidWeightError):
        embed_subspace_weights(schema, {})
    with pytest.raises(InvalidWeightError):
        embed_subspace_weights(schema, {"a": 0.0})
    with pytest.raises(InvalidWeightError):
        embed_subspace_weights(schema, {"a": 1.0}, epsilon=0.0)


def test_subspace_query_matches_subspace_bruteforce(schema):
    """Embedded queries rank like the true 2-attribute ranking."""
    relation = generate("IND", 400, 4, seed=3)
    index = DLIndex(relation).build()
    subspace = {"a0": 0.6, "a2": 0.4}
    w = embed_subspace_weights(relation.schema, subspace)
    result = index.query(w, 10)
    true_scores = subspace_scores(relation.matrix, relation.schema, subspace)
    order = np.lexsort((np.arange(relation.n), true_scores))[:10]
    # Real-valued data: no ties, the embedded ranking is exact.
    np.testing.assert_array_equal(np.sort(result.ids), np.sort(order))


def test_epsilon_breaks_ties_toward_better_ignored_attributes():
    from repro.relation import Relation

    matrix = np.array(
        [
            [0.5, 0.9],  # same price, far away
            [0.5, 0.1],  # same price, close by
        ]
    )
    relation = Relation(matrix, Schema(("price", "distance")))
    index = DLIndex(relation).build()
    w = embed_subspace_weights(relation.schema, {"price": 1.0})
    result = index.query(w, 1)
    assert int(result.ids[0]) == 1  # the tie resolves toward low distance


def test_unknown_attribute_rejected(schema):
    from repro.exceptions import SchemaError

    with pytest.raises(SchemaError):
        embed_subspace_weights(schema, {"nope": 1.0})
