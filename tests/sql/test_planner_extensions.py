"""Planner extensions: projections, numeric predicates, EXPLAIN."""

import numpy as np
import pytest

from repro.data.hotels import HOTEL_NAMES, toy_hotels
from repro.data import generate
from repro.exceptions import SchemaError, SQLParseError
from repro.sql import Database


@pytest.fixture()
def database():
    db = Database()
    db.register("hotel", toy_hotels())
    return db


def test_projection_returns_selected_columns(database):
    answer = database.execute(
        "SELECT distance FROM hotel ORDER BY 0.5*price + 0.5*distance "
        "STOP AFTER 3"
    )
    assert answer.columns == ("distance",)
    assert answer.rows.shape == (3, 1)
    relation = toy_hotels()
    np.testing.assert_allclose(
        answer.rows[:, 0], relation.matrix[answer.ids, 1]
    )


def test_star_returns_all_columns(database):
    answer = database.execute(
        "SELECT * FROM hotel ORDER BY price + distance STOP AFTER 2"
    )
    assert answer.columns == ("price", "distance")
    assert answer.rows.shape == (2, 2)


def test_unknown_projection_column(database):
    with pytest.raises(SchemaError):
        database.execute(
            "SELECT stars FROM hotel ORDER BY price + distance STOP AFTER 1"
        )


def test_numeric_predicate_filters(database):
    # Only hotels with price <= 0.3 qualify: a, b, d, e, f, h, i.
    answer = database.execute(
        "SELECT * FROM hotel WHERE price <= 0.3 "
        "ORDER BY 0.5*price + 0.5*distance STOP AFTER 20"
    )
    names = {HOTEL_NAMES[i] for i in answer.ids}
    assert names == {"a", "b", "d", "e", "f", "h", "i"}


def test_numeric_predicates_combine(database):
    answer = database.execute(
        "SELECT * FROM hotel WHERE price <= 0.3 AND distance < 0.6 "
        "ORDER BY price + distance STOP AFTER 20"
    )
    names = {HOTEL_NAMES[i] for i in answer.ids}
    assert names == {"f", "b"}


def test_numeric_and_label_predicates_together():
    relation = generate("IND", 200, 2, seed=1)
    labels = np.array(["x"] * 100 + ["y"] * 100)
    db = Database()
    db.register("r", relation, labels={"group": labels})
    answer = db.execute(
        "SELECT * FROM r WHERE group = 'y' AND a0 <= 0.5 "
        "ORDER BY a0 + a1 STOP AFTER 5"
    )
    assert np.all(answer.ids >= 100)
    assert np.all(relation.matrix[answer.ids, 0] <= 0.5)


def test_numeric_predicate_caches_separately(database):
    database.execute(
        "SELECT * FROM hotel WHERE price <= 0.3 ORDER BY price + distance "
        "STOP AFTER 1"
    )
    database.execute(
        "SELECT * FROM hotel WHERE price <= 0.5 ORDER BY price + distance "
        "STOP AFTER 1"
    )
    assert len(database._index_cache) == 2
    database.execute(
        "SELECT * FROM hotel WHERE price <= 0.3 ORDER BY 2*price + distance "
        "STOP AFTER 2"
    )
    assert len(database._index_cache) == 2  # reused


def test_explain_statement_runs_and_attaches_plan(database):
    answer = database.execute(
        "EXPLAIN SELECT * FROM hotel WHERE price <= 0.5 "
        "ORDER BY price + distance STOP AFTER 3"
    )
    assert "TopK(k=3" in answer.plan
    assert "index: DL+" in answer.plan
    assert "price <= 0.5" in answer.plan
    assert "cost bounds" in answer.plan
    assert len(answer.ids) == 3  # EXPLAIN still executes


def test_explain_method_does_not_require_execution(database):
    plan = database.explain(
        "SELECT price FROM hotel ORDER BY price + distance STOP AFTER 2"
    )
    assert "project: price" in plan
    assert "over 11 of 11 tuples" in plan


def test_empty_numeric_selection_rejected(database):
    with pytest.raises(SQLParseError, match="no tuples"):
        database.execute(
            "SELECT * FROM hotel WHERE price <= 0.0 "
            "ORDER BY price + distance STOP AFTER 1"
        )
