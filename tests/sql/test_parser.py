"""SQL-dialect parser."""

import pytest

from repro.exceptions import SQLParseError
from repro.sql import parse_topk_query


def test_paper_example1():
    query = parse_topk_query(
        "SELECT * FROM Hotel WHERE city = 'Washington DC' "
        "ORDER BY 0.5*price + 0.5*distance STOP AFTER 5"
    )
    assert query.table == "Hotel"
    assert query.weights == {"price": 0.5, "distance": 0.5}
    assert query.k == 5
    assert query.equals == {"city": "Washington DC"}


def test_no_where_clause():
    query = parse_topk_query(
        "SELECT * FROM r ORDER BY 0.75*a + 0.25*b STOP AFTER 10"
    )
    assert query.equals == {}
    assert query.k == 10


def test_attribute_first_coefficient():
    query = parse_topk_query("SELECT * FROM r ORDER BY a*2 + b*1 STOP AFTER 3")
    assert query.weights == {"a": 2.0, "b": 1.0}


def test_bare_attribute_weight_one():
    query = parse_topk_query("SELECT * FROM r ORDER BY a + b STOP AFTER 3")
    assert query.weights == {"a": 1.0, "b": 1.0}


def test_case_insensitive_keywords():
    query = parse_topk_query("select * from r order by a + b stop after 2;")
    assert query.k == 2


def test_multiple_where_conditions():
    query = parse_topk_query(
        "SELECT * FROM r WHERE city = 'NY' AND stars = '5' "
        "ORDER BY a + b STOP AFTER 1"
    )
    assert query.equals == {"city": "NY", "stars": "5"}


def test_projection_list():
    query = parse_topk_query(
        "SELECT name, price FROM r ORDER BY a + b STOP AFTER 3"
    )
    assert query.projection == ["name", "price"]
    star = parse_topk_query("SELECT * FROM r ORDER BY a STOP AFTER 3")
    assert star.projection is None


def test_numeric_predicates():
    query = parse_topk_query(
        "SELECT * FROM r WHERE price <= 0.5 AND stars > 3 AND city = 'NY' "
        "ORDER BY a + b STOP AFTER 2"
    )
    assert query.equals == {"city": "NY"}
    assert [(p.attribute, p.op, p.value) for p in query.numeric] == [
        ("price", "<=", 0.5),
        ("stars", ">", 3.0),
    ]


def test_explain_flag():
    query = parse_topk_query("EXPLAIN SELECT * FROM r ORDER BY a STOP AFTER 1")
    assert query.explain
    plain = parse_topk_query("SELECT * FROM r ORDER BY a STOP AFTER 1")
    assert not plain.explain


def test_duplicate_projection_rejected():
    with pytest.raises(SQLParseError, match="duplicate"):
        parse_topk_query("SELECT a, a FROM r ORDER BY a STOP AFTER 1")


@pytest.mark.parametrize(
    "bad",
    [
        "SELECT * FROM r ORDER BY a",
        "SELECT * FROM r STOP AFTER 3",
        "SELECT * FROM r ORDER BY a STOP AFTER 0",
        "SELECT * FROM r ORDER BY a - b STOP AFTER 1",
        "SELECT * FROM r ORDER BY 0*a + b STOP AFTER 1",
        "SELECT * FROM r ORDER BY a + a STOP AFTER 1",
        "SELECT * FROM r WHERE city = NY ORDER BY a STOP AFTER 1",
        "DROP TABLE r",
    ],
)
def test_malformed_rejected(bad):
    with pytest.raises(SQLParseError):
        parse_topk_query(bad)
