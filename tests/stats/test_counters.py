"""Access counters and build stats."""

from repro.stats import AccessCounter, BuildStats, QueryStats
from repro.stats.counters import Stopwatch


def test_counter_tallies():
    counter = AccessCounter()
    counter.count_real()
    counter.count_real(3)
    counter.count_pseudo(2)
    counter.count_sorted_access(5)
    assert counter.real == 4
    assert counter.pseudo == 2
    assert counter.sorted_accesses == 5
    assert counter.total == 6


def test_counter_merge_and_reset():
    a = AccessCounter()
    a.count_real(2)
    b = AccessCounter()
    b.count_pseudo(3)
    b.count_sorted_access()
    a.merge(b)
    assert (a.real, a.pseudo, a.sorted_accesses) == (2, 3, 1)
    a.reset()
    assert a.total == 0


def test_build_stats_describe():
    stats = BuildStats(algorithm="DL", n=100, d=4, seconds=0.5, num_layers=3)
    text = stats.describe()
    assert "DL" in text and "n=100" in text and "layers=3" in text


def test_query_stats_cost():
    counter = AccessCounter()
    counter.count_real(7)
    counter.count_pseudo(2)
    stats = QueryStats(algorithm="DL+", k=5, counter=counter)
    assert stats.cost == 9


def test_stopwatch_measures():
    with Stopwatch() as timer:
        sum(range(1000))
    assert timer.seconds >= 0.0
