"""AppRI, PREFER views, scan, and list-based index specifics."""

import numpy as np
import pytest

from repro.baselines import (
    AppRIIndex,
    ListTAIndex,
    PreferViewIndex,
    ScanIndex,
)
from repro.baselines.appri import dominance_counts
from repro.baselines.views import watermark_bound
from repro.data import generate
from repro.exceptions import IndexCapacityError, ReproError
from repro.skyline import dominators_of


@pytest.fixture(scope="module")
def relation():
    return generate("IND", 250, 3, seed=41)


def test_dominance_counts_match_naive(rng):
    points = rng.random((120, 3))
    counts = dominance_counts(points)
    for i in range(points.shape[0]):
        assert counts[i] == dominators_of(points[i], points).shape[0]


def test_dominance_counts_cap():
    rng = np.random.default_rng(0)
    points = rng.random((200, 2))
    capped = dominance_counts(points, cap=3)
    assert capped.max() <= 3


def test_appri_bucket_zero_is_skyline(relation):
    from repro.skyline import skyline

    index = AppRIIndex(relation).build()
    np.testing.assert_array_equal(
        np.sort(index.buckets[0]), skyline(relation.matrix)
    )


def test_appri_max_rank_capacity(relation):
    index = AppRIIndex(relation, max_rank=5).build()
    index.query(np.ones(3) / 3, 5)
    with pytest.raises(IndexCapacityError):
        index.query(np.ones(3) / 3, 6)


def test_scan_cost_is_n(relation):
    index = ScanIndex(relation).build()
    assert index.query(np.ones(3) / 3, 5).cost == relation.n


def test_watermark_bound_monotone_in_tau():
    view_w = np.array([0.5, 0.5])
    query_w = np.array([0.7, 0.3])
    bounds = [watermark_bound(view_w, query_w, tau) for tau in (0.1, 0.4, 0.8)]
    assert bounds == sorted(bounds)
    assert bounds[0] >= 0


def test_watermark_bound_is_sound(rng):
    """No tuple with view score >= tau may beat the bound."""
    for _ in range(20):
        view_w = rng.dirichlet([1, 1, 1])
        query_w = rng.dirichlet([1, 1, 1])
        tau = float(rng.uniform(0.1, 0.9))
        bound = watermark_bound(view_w, query_w, tau)
        points = rng.random((200, 3))
        eligible = points[points @ view_w >= tau]
        if eligible.shape[0]:
            assert (eligible @ query_w).min() >= bound - 1e-9


def test_prefer_exact_view_hit_is_cheap(relation):
    w = np.ones(3) / 3
    index = PreferViewIndex(relation, view_weights=w[None, :]).build()
    result = index.query(w, 5)
    # Walking its own ranking, the watermark fires almost immediately.
    assert result.cost <= 20


def test_prefer_needs_a_view(relation):
    with pytest.raises(ReproError):
        PreferViewIndex(relation, views=0)


def test_prefer_custom_views_normalized(relation):
    index = PreferViewIndex(relation, view_weights=np.array([[2.0, 1.0, 1.0]]))
    np.testing.assert_allclose(index.view_weights.sum(axis=1), 1.0)


def test_list_ta_index_cheap_for_top1(relation):
    index = ListTAIndex(relation).build()
    assert index.query(np.ones(3) / 3, 1).cost < relation.n
