"""Partitioned-layer (PL) index specifics."""

import numpy as np
import pytest

from repro.baselines import OnionIndex, PLIndex
from repro.data import generate
from repro.exceptions import IndexCapacityError, ReproError
from repro.relation import top_k_bruteforce


@pytest.fixture(scope="module")
def relation():
    return generate("ANT", 400, 3, seed=51)


def test_matches_bruteforce(relation, rng):
    index = PLIndex(relation, partitions=4).build()
    for _ in range(6):
        w = np.clip(rng.dirichlet(np.ones(3)), 1e-6, None)
        for k in (1, 5, 20):
            result = index.query(w, k)
            _, ref = top_k_bruteforce(relation.matrix, w / w.sum(), k)
            np.testing.assert_allclose(np.sort(result.scores), np.sort(ref), atol=1e-9)


def test_single_partition_equals_onion_cost(relation):
    pl = PLIndex(relation, partitions=1, seed=0).build()
    onion = OnionIndex(relation).build()
    w = np.ones(3) / 3
    assert pl.query(w, 5).cost == onion.query(w, 5).cost


def test_partitions_recorded(relation):
    index = PLIndex(relation, partitions=4).build()
    assert index.build_stats.extra["partitions"] == 4.0
    assert index.build_stats.num_layers >= 1


def test_builds_faster_layers_than_onion():
    """Per-partition peels touch smaller point sets (the PL selling point)."""
    relation = generate("IND", 3000, 3, seed=5)
    pl = PLIndex(relation, partitions=8, max_layers=10).build()
    onion = OnionIndex(relation, max_layers=10).build()
    # Not asserting wall-clock (noisy); assert partition layers are smaller.
    assert max(pl.build_stats.layer_sizes) >= max(onion.build_stats.layer_sizes)


def test_cost_grows_with_partitions(relation):
    w = np.ones(3) / 3
    few = PLIndex(relation, partitions=2, seed=0).build().query(w, 10).cost
    many = PLIndex(relation, partitions=16, seed=0).build().query(w, 10).cost
    assert few <= many


def test_capacity_error(relation):
    index = PLIndex(relation, partitions=4, max_layers=3).build()
    index.query(np.ones(3) / 3, 3)
    with pytest.raises(IndexCapacityError):
        index.query(np.ones(3) / 3, 5)


def test_invalid_partitions(relation):
    with pytest.raises(ReproError):
        PLIndex(relation, partitions=0)


def test_k_exceeds_n():
    relation = generate("IND", 12, 2, seed=1)
    index = PLIndex(relation, partitions=3).build()
    assert len(index.query(np.array([0.5, 0.5]), 50)) == 12
