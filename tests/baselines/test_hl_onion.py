"""HL / HL+ / Onion specifics."""

import numpy as np
import pytest

from repro.baselines import HLIndex, HLPlusIndex, OnionIndex
from repro.data import generate
from repro.exceptions import IndexCapacityError


@pytest.fixture(scope="module")
def relation():
    return generate("ANT", 300, 3, seed=31)


def test_onion_cost_is_full_layers(relation):
    index = OnionIndex(relation).build()
    k = 4
    result = index.query(np.ones(3) / 3, k)
    assert result.cost == sum(index.build_stats.layer_sizes[:k])


def test_hl_layers_match_onion_layers(relation):
    onion = OnionIndex(relation).build()
    hl = HLIndex(relation).build()
    assert onion.build_stats.layer_sizes == hl.build_stats.layer_sizes


def test_hl_selective_within_layers(relation):
    onion = OnionIndex(relation).build()
    hl = HLIndex(relation).build()
    w = np.ones(3) / 3
    assert hl.query(w, 10).cost <= onion.query(w, 10).cost


def test_hlplus_tighter_than_hl(relation, rng):
    hl = HLIndex(relation).build()
    hlp = HLPlusIndex(relation).build()
    total_hl = total_hlp = 0
    for _ in range(6):
        w = rng.dirichlet(np.ones(3))
        total_hl += hl.query(w, 10).cost
        total_hlp += hlp.query(w, 10).cost
    assert total_hlp <= total_hl


def test_hl_capacity_error_on_partial(relation):
    index = HLPlusIndex(relation, max_layers=3).build()
    index.query(np.ones(3) / 3, 3)
    with pytest.raises(IndexCapacityError):
        index.query(np.ones(3) / 3, 5)


def test_onion_capacity_error_on_partial(relation):
    index = OnionIndex(relation, max_layers=3).build()
    index.query(np.ones(3) / 3, 3)
    with pytest.raises(IndexCapacityError):
        index.query(np.ones(3) / 3, 5)


def test_hlplus_counts_sorted_accesses(relation):
    index = HLPlusIndex(relation).build()
    result = index.query(np.ones(3) / 3, 5)
    assert result.counter.sorted_accesses > 0
