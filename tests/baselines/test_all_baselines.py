"""Shared correctness matrix over every baseline index."""

import numpy as np
import pytest

from repro import ALGORITHMS
from repro.data import generate
from repro.relation import top_k_bruteforce

INDEX_NAMES = sorted(ALGORITHMS)


@pytest.fixture(scope="module", params=["IND", "ANT"])
def workload(request):
    relation = generate(request.param, 200, 3, seed=13)
    rng = np.random.default_rng(77)
    weights = [rng.dirichlet(np.ones(3)) for _ in range(4)]
    return relation, weights


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_matches_bruteforce(name, workload):
    relation, weights = workload
    index = ALGORITHMS[name](relation).build()
    for w in weights:
        for k in (1, 5, 25):
            result = index.query(w, k)
            _, ref_scores = top_k_bruteforce(relation.matrix, w, k)
            np.testing.assert_allclose(
                np.sort(result.scores), np.sort(ref_scores), atol=1e-9
            )
            assert len(result) == len(ref_scores)


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_scores_ascending_and_ids_valid(name, workload):
    relation, weights = workload
    index = ALGORITHMS[name](relation).build()
    result = index.query(weights[0], 10)
    assert np.all(np.diff(result.scores) >= -1e-12)
    assert np.all(result.ids >= 0)
    assert np.all(result.ids < relation.n)
    assert np.unique(result.ids).shape[0] == len(result)


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_cost_positive_and_bounded(name, workload):
    relation, weights = workload
    index = ALGORITHMS[name](relation).build()
    result = index.query(weights[0], 5)
    assert result.cost >= 1
    # Real accesses can never exceed the relation size.
    assert result.counter.real <= relation.n


@pytest.mark.parametrize("name", INDEX_NAMES)
def test_k_exceeding_n(name):
    relation = generate("IND", 15, 2, seed=3)
    index = ALGORITHMS[name](relation).build()
    result = index.query(np.array([0.5, 0.5]), 40)
    assert len(result) == 15
