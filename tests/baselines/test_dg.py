"""DG / DG+ specifics."""

import numpy as np
import pytest

from repro.baselines import DGIndex, DGPlusIndex
from repro.data import generate


@pytest.fixture(scope="module")
def relation():
    return generate("ANT", 300, 3, seed=21)


def test_dg_has_no_fine_machinery(relation):
    index = DGIndex(relation).build()
    assert index.build_stats.extra["exists_edges"] == 0
    assert index.build_stats.extra["fine_sublayers"] == index.build_stats.num_layers
    assert index.structure.n_pseudo == 0


def test_dg_complete_access_to_first_layer(relation):
    """DG evaluates every first-layer tuple on any query (its known cost floor)."""
    index = DGIndex(relation).build()
    first_layer_size = index.build_stats.layer_sizes[0]
    result = index.query(np.ones(3) / 3, 1)
    assert result.cost >= first_layer_size


def test_dgplus_selective_first_layer(relation):
    dg = DGIndex(relation).build()
    dgp = DGPlusIndex(relation).build()
    w = np.ones(3) / 3
    assert dgp.query(w, 1).counter.real < dg.query(w, 1).counter.real


def test_dgplus_uses_flat_pseudo_layer(relation):
    index = DGPlusIndex(relation).build()
    assert index.structure.n_pseudo > 0
    # Flat: every pseudo node is a seed.
    seeds = index.structure.seeds(np.ones(3) / 3)
    assert set(seeds.tolist()) == set(
        range(index.structure.n_real, index.structure.n_nodes)
    )


def test_dgplus_uses_clusters_even_in_2d():
    relation = generate("IND", 150, 2, seed=4)
    index = DGPlusIndex(relation).build()
    assert index.structure.n_pseudo > 0
    assert index.structure.seed_selector is None


def test_dgplus_cluster_count_knob(relation):
    few = DGPlusIndex(relation, clusters=2, seed=0).build()
    many = DGPlusIndex(relation, clusters=30, seed=0).build()
    assert few.structure.n_pseudo <= 2
    assert many.structure.n_pseudo <= 30
    assert many.structure.n_pseudo > few.structure.n_pseudo
