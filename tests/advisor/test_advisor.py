"""Estimators and the index advisor."""

import numpy as np
import pytest

from repro.advisor import (
    estimate_layer_count,
    estimate_skyline_size,
    recommend_index,
    sample_correlation,
)
from repro.data import generate
from repro.exceptions import EmptyRelationError, InvalidQueryError
from repro.relation import Relation
from repro.skyline import skyline, skyline_layers


def test_skyline_estimate_exact_on_full_sample():
    relation = generate("IND", 500, 3, seed=1)
    estimate = estimate_skyline_size(relation, sample_size=500)
    assert estimate == skyline(relation.matrix).shape[0]


def test_skyline_estimate_within_factor_on_subsample():
    relation = generate("IND", 8000, 3, seed=2)
    true_size = skyline(relation.matrix).shape[0]
    estimate = estimate_skyline_size(relation, sample_size=1000, seed=0)
    assert true_size / 4 <= estimate <= true_size * 4


def test_skyline_estimate_orders_distributions():
    n = 4000
    ant = estimate_skyline_size(generate("ANT", n, 3, seed=3), 800)
    ind = estimate_skyline_size(generate("IND", n, 3, seed=3), 800)
    cor = estimate_skyline_size(generate("COR", n, 3, seed=3), 800)
    assert cor < ind < ant


def test_layer_count_estimate_reasonable():
    relation = generate("IND", 3000, 3, seed=4)
    true_layers = len(skyline_layers(relation.matrix)[0])
    estimate = estimate_layer_count(relation, sample_size=800)
    assert true_layers / 4 <= estimate <= true_layers * 4


def test_correlation_signs():
    assert sample_correlation(generate("ANT", 2000, 3, seed=5)) < -0.1
    assert abs(sample_correlation(generate("IND", 2000, 3, seed=5))) < 0.15
    assert sample_correlation(generate("COR", 2000, 3, seed=5)) > 0.3


def test_correlation_1d_zero():
    assert sample_correlation(generate("IND", 100, 1, seed=0)) == 0.0


def test_tiny_relation_gets_scan():
    advice = recommend_index(generate("IND", 100, 3, seed=6))
    assert advice.index_name == "SCAN"
    assert "tiny" in advice.rationale


def test_update_heavy_gets_dynamic():
    advice = recommend_index(
        generate("IND", 5000, 3, seed=7), queries_per_update=2.0
    )
    assert advice.index_name == "DynamicDualLayerIndex"


def test_anticorrelated_gets_dlplus():
    advice = recommend_index(generate("ANT", 5000, 4, seed=8))
    assert advice.index_name == "DL+"
    assert advice.correlation < 0


def test_correlated_low_d_gets_dgplus():
    advice = recommend_index(generate("COR", 5000, 2, seed=9), expected_k=2)
    assert advice.index_name in ("DG+", "DL+")


def test_huge_k_gets_lists():
    relation = generate("COR", 2000, 2, seed=10)
    layers = estimate_layer_count(relation)
    advice = recommend_index(relation, expected_k=int(layers * 10))
    assert advice.index_name == "TA"


def test_describe_mentions_everything():
    advice = recommend_index(generate("ANT", 5000, 4, seed=11))
    text = advice.describe()
    assert "DL+" in text
    assert "skyline" in text
    assert "also consider" in text


def test_invalid_inputs():
    relation = generate("IND", 100, 2, seed=0)
    with pytest.raises(InvalidQueryError):
        recommend_index(relation, expected_k=0)
    with pytest.raises(InvalidQueryError):
        recommend_index(relation, queries_per_update=0.0)
    with pytest.raises(EmptyRelationError):
        recommend_index(Relation(np.empty((0, 2))))
