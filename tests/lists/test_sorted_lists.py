"""Per-attribute sorted lists."""

import numpy as np
import pytest

from repro.lists import SortedLists


def test_sorted_access_is_ascending(rng):
    points = rng.random((30, 3))
    lists = SortedLists(points)
    for attribute in range(3):
        values = [
            lists.sorted_entry(attribute, pos)[1] for pos in range(lists.n)
        ]
        assert values == sorted(values)


def test_random_access_and_ids():
    points = np.array([[0.5, 0.1], [0.2, 0.9]])
    lists = SortedLists(points, ids=np.array([10, 20]))
    np.testing.assert_allclose(lists.row_values(1), [0.2, 0.9])
    assert lists.external_id(1) == 20
    assert lists.d == 2 and lists.n == 2


def test_default_ids():
    lists = SortedLists(np.random.default_rng(0).random((5, 2)))
    assert [lists.external_id(r) for r in range(5)] == [0, 1, 2, 3, 4]


def test_tie_break_deterministic():
    points = np.array([[0.5, 0.0], [0.5, 0.0], [0.1, 0.0]])
    lists = SortedLists(points)
    rows = [lists.sorted_entry(0, pos)[0] for pos in range(3)]
    assert rows == [2, 0, 1]


def test_misaligned_ids_rejected():
    with pytest.raises(ValueError):
        SortedLists(np.ones((3, 2)), ids=np.array([1, 2]))
