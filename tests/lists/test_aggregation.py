"""FA, TA, NRA: correctness against full sort, stopping behaviour, costs."""

import numpy as np
import pytest

from repro.lists import (
    SortedLists,
    fagins_algorithm,
    no_random_access,
    threshold_algorithm,
)
from repro.stats import AccessCounter

ALGORITHMS = [fagins_algorithm, threshold_algorithm, no_random_access]


def reference(points, weights, k):
    scores = points @ weights
    order = np.lexsort((np.arange(len(scores)), scores))[:k]
    return [float(scores[i]) for i in order]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("d", [2, 3, 4])
def test_matches_reference(algorithm, d, rng):
    points = rng.random((80, d))
    lists = SortedLists(points)
    for _ in range(5):
        weights = rng.dirichlet(np.ones(d))
        for k in (1, 5, 20):
            result = algorithm(lists, weights, k)
            got = [score for score, _ in result]
            np.testing.assert_allclose(got, reference(points, weights, k), atol=1e-12)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_k_exceeds_n(algorithm, rng):
    points = rng.random((6, 2))
    lists = SortedLists(points)
    result = algorithm(lists, np.array([0.5, 0.5]), 50)
    assert len(result) == 6


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_empty_inputs(algorithm):
    lists = SortedLists(np.empty((0, 2)))
    assert algorithm(lists, np.array([0.5, 0.5]), 3) == []
    lists2 = SortedLists(np.array([[0.5, 0.5]]))
    assert algorithm(lists2, np.array([0.5, 0.5]), 0) == []


def test_ta_stops_before_exhaustion(rng):
    """On easy data, TA must evaluate far fewer than n tuples."""
    points = rng.random((500, 2))
    lists = SortedLists(points)
    counter = AccessCounter()
    threshold_algorithm(lists, np.array([0.5, 0.5]), 1, counter)
    assert counter.real < 250


def test_ta_cost_grows_with_k(rng):
    points = rng.random((400, 3))
    lists = SortedLists(points)
    costs = []
    for k in (1, 10, 50):
        counter = AccessCounter()
        threshold_algorithm(lists, np.array([1 / 3] * 3), k, counter)
        costs.append(counter.real)
    assert costs[0] <= costs[1] <= costs[2]


def test_fa_sees_k_on_all_lists(rng):
    points = rng.random((100, 2))
    lists = SortedLists(points)
    counter = AccessCounter()
    result = fagins_algorithm(lists, np.array([0.5, 0.5]), 5, counter)
    assert len(result) == 5
    assert counter.sorted_accesses >= 10  # at least k steps on both lists


def test_nra_uses_no_more_real_than_sorted(rng):
    points = rng.random((200, 2))
    lists = SortedLists(points)
    counter = AccessCounter()
    no_random_access(lists, np.array([0.5, 0.5]), 5, counter)
    assert counter.real <= counter.sorted_accesses
