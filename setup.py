"""Legacy setup shim.

This environment has no network access and no ``wheel`` package, so PEP 517
editable installs cannot build. ``pip install -e . --no-use-pep517`` (or a
plain ``pip install -e .`` on modern toolchains) goes through this shim;
all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
