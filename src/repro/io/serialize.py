"""Saving and loading relations and built indexes.

Relations round-trip through ``.npz`` (matrix + attribute names).  Built
indexes — layer structures, facet gates, zero layers — round-trip through
pickle: the structures are plain numpy/python containers, and rebuilding a
large index costs far more than deserializing it.

Security note: ``load_index`` uses :mod:`pickle` and must only be fed files
you produced yourself (the standard pickle caveat).
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from repro.core.base import TopKIndex
from repro.exceptions import SerializationError
from repro.relation import Relation, Schema

#: Format marker stored in every index file.
_MAGIC = "repro-index-v1"


def _npz_path(path: str | Path) -> Path:
    """Normalize a relation path to its on-disk ``.npz`` name.

    ``np.savez_compressed("foo")`` silently writes ``foo.npz``; before this
    normalization a suffix-less save/load round-trip through the *same*
    path string raised :class:`SerializationError` because the loader
    looked for ``foo``.  Appending the suffix on both sides keeps the two
    functions pointing at the same file whatever the caller passes.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_relation(relation: Relation, path: str | Path) -> None:
    """Write a relation to ``.npz`` (values + attribute names)."""
    path = _npz_path(path)
    np.savez_compressed(
        path,
        matrix=relation.matrix,
        attributes=np.asarray(relation.schema.attributes, dtype=object),
    )


def load_relation(path: str | Path) -> Relation:
    """Read a relation written by :func:`save_relation`."""
    path = _npz_path(path)
    try:
        with np.load(path, allow_pickle=True) as data:
            matrix = data["matrix"]
            attributes = tuple(str(a) for a in data["attributes"])
    except (OSError, KeyError, ValueError, pickle.UnpicklingError) as exc:
        raise SerializationError(f"cannot load relation from {path}: {exc}") from exc
    return Relation(matrix, Schema(attributes), check_domain=False)


def index_to_bytes(index: TopKIndex) -> bytes:
    """Serialize a *built* index to bytes (builds it first if needed).

    The byte payload is identical to what :func:`save_index` writes to
    disk; the cluster layer uses it to hydrate shard replicas without
    touching the filesystem.
    """
    if not index._built:
        index.build()
    return pickle.dumps({"magic": _MAGIC, "index": index}, protocol=4)


def index_from_bytes(payload_bytes: bytes, *, source: str = "<bytes>") -> TopKIndex:
    """Deserialize an index produced by :func:`index_to_bytes` (trusted only)."""
    try:
        payload = pickle.loads(payload_bytes)
    except (
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ValueError,
        TypeError,
        IndexError,
        ImportError,
        MemoryError,
        UnicodeDecodeError,
    ) as exc:
        # Truncated or garbage payloads surface far more than
        # UnpicklingError: a cut-off varint raises EOFError, a corrupted
        # opcode argument TypeError/IndexError/UnicodeDecodeError, a bogus
        # length MemoryError, a renamed class AttributeError/ImportError.
        # All of them mean "not a valid index payload".
        raise SerializationError(f"cannot load index from {source}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise SerializationError(f"{source} is not a repro index file")
    index = payload["index"]
    if not isinstance(index, TopKIndex):
        raise SerializationError(f"{source} does not contain a TopKIndex")
    return index


def save_index(index: TopKIndex, path: str | Path) -> None:
    """Persist a *built* index (builds it first if needed)."""
    path = Path(path)
    payload = index_to_bytes(index)
    with path.open("wb") as handle:
        handle.write(payload)


def load_index(path: str | Path) -> TopKIndex:
    """Load an index written by :func:`save_index` (trusted files only)."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            payload_bytes = handle.read()
    except OSError as exc:
        raise SerializationError(f"cannot load index from {path}: {exc}") from exc
    return index_from_bytes(payload_bytes, source=str(path))
