"""Saving and loading relations and built indexes.

Relations round-trip through ``.npz`` (matrix + attribute names).  Built
indexes — layer structures, facet gates, zero layers — round-trip through
pickle: the structures are plain numpy/python containers, and rebuilding a
large index costs far more than deserializing it.

Security note: ``load_index`` uses :mod:`pickle` and must only be fed files
you produced yourself (the standard pickle caveat).
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from repro.core.base import TopKIndex
from repro.exceptions import SerializationError
from repro.relation import Relation, Schema

#: Format marker stored in every index file.
_MAGIC = "repro-index-v1"


def save_relation(relation: Relation, path: str | Path) -> None:
    """Write a relation to ``.npz`` (values + attribute names)."""
    path = Path(path)
    np.savez_compressed(
        path,
        matrix=relation.matrix,
        attributes=np.asarray(relation.schema.attributes, dtype=object),
    )


def load_relation(path: str | Path) -> Relation:
    """Read a relation written by :func:`save_relation`."""
    path = Path(path)
    try:
        with np.load(path, allow_pickle=True) as data:
            matrix = data["matrix"]
            attributes = tuple(str(a) for a in data["attributes"])
    except (OSError, KeyError, ValueError, pickle.UnpicklingError) as exc:
        raise SerializationError(f"cannot load relation from {path}: {exc}") from exc
    return Relation(matrix, Schema(attributes), check_domain=False)


def save_index(index: TopKIndex, path: str | Path) -> None:
    """Persist a *built* index (builds it first if needed)."""
    if not index._built:
        index.build()
    path = Path(path)
    with path.open("wb") as handle:
        pickle.dump({"magic": _MAGIC, "index": index}, handle, protocol=4)


def load_index(path: str | Path) -> TopKIndex:
    """Load an index written by :func:`save_index` (trusted files only)."""
    path = Path(path)
    try:
        with path.open("rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError) as exc:
        raise SerializationError(f"cannot load index from {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise SerializationError(f"{path} is not a repro index file")
    index = payload["index"]
    if not isinstance(index, TopKIndex):
        raise SerializationError(f"{path} does not contain a TopKIndex")
    return index
