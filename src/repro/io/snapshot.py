"""Zero-copy mmap snapshots of built indexes (the memory-tiered format).

The CSR freeze reduced every index to a handful of flat numpy arrays; a
*snapshot* persists exactly those arrays back-to-back in one raw data
file, next to a small JSON manifest recording each array's byte offset::

    snapshot/
      MANIFEST.json    magic, version, scalars, {offset, nbytes,
                       dtype, shape} per array
      data.bin         all arrays, each starting 64-byte aligned

:func:`open_snapshot` maps ``data.bin`` **once** with ``mmap`` and carves
the arrays out as views at their manifest offsets: opening costs one file
handle plus one JSON parse regardless of ``n`` — no per-array header
reads, no deserialization — and **N processes serving the same snapshot
share one page-cache copy of the index**.  Per-process RSS stays flat as
workers are added, and restart/failover is an ``open()`` instead of a
rebuild.  Every offset is padded to a 64-byte boundary so mmap'd rows
stay aligned for vector loads (the mapping itself is page-aligned).

Pickling an opened :class:`SnapshotIndex` reduces to its path: worker
pools and shard replicas that would otherwise ship a full pickle of the
structure (``index_to_bytes``) transparently re-open the snapshot in the
receiving process instead — the zero-copy hydration path the cluster and
serving tiers build on.  The obvious caveat applies: the path must be
readable wherever the pickle lands (same machine or shared filesystem).

Seed selectors are *not* pickled into the format.  Static seeds are an
array; the only stateful selector the builders install — the 2-D
weight-range binary search — is reconstructed from its two chain arrays
(breakpoints are recomputed deterministically).  Unknown selector types
are rejected at save time rather than smuggled through pickle.

Like :mod:`repro.io.serialize`, snapshots are a trusted-input format:
the data file holds raw numbers only (no pickled objects anywhere), so a
corrupt or malicious snapshot can fail loudly but cannot execute code.
Every manifest offset/extent is bounds-checked against the mapped file
before a view is created, so a truncated ``data.bin`` raises
:class:`~repro.exceptions.SerializationError` instead of SIGBUS-ing on
first touch.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.base import TopKIndex
from repro.core.structure import LayerStructure
from repro.core.zero_layer import PartitionSeedSelector
from repro.exceptions import SerializationError
from repro.geometry.weight_ranges import WeightRangePartition
from repro.relation import Relation, Schema

#: Format marker stored in every snapshot manifest.
SNAPSHOT_MAGIC = "repro-snapshot"
#: Bumped on any layout change; readers reject newer majors.
#: v1: structure arrays + block bound table.
#: v2: adds the sublayer bound table (coarse level of the hierarchical
#: two-level pruning check) — v1 snapshots still open; the sublayer
#: table is recomputed lazily from the mapped arrays on first pruned
#: query.
SNAPSHOT_VERSION = 2
#: Format versions this reader opens (older versions open with lazy
#: fallbacks for the arrays they lack; newer versions are rejected).
SNAPSHOT_COMPAT_VERSIONS = (1, 2)
#: Manifest filename inside the snapshot directory.
MANIFEST_NAME = "MANIFEST.json"
#: Data filename inside the snapshot directory (all arrays, one file).
DATA_NAME = "data.bin"
#: Array starts are padded to this boundary inside the data file.
_ALIGN = 64

#: LayerStructure attribute -> blob name for the plain array fields.
_STRUCTURE_BLOBS = (
    "values",
    "forall_parent_count",
    "forall_indptr",
    "forall_indices",
    "exists_gated",
    "exists_indptr",
    "exists_indices",
    "static_seeds",
    "coarse_levels",
    "fine_levels",
)
#: Blobs holding the freeze-time layer bound table (block id per node,
#: per-block per-attribute minima with the trailing -inf sentinel row).
_BOUND_BLOBS = ("bound_block_of", "bound_block_mins")
#: v2-only blobs holding the sublayer bound table (sublayer id per node,
#: per-sublayer per-attribute minima with the trailing -inf sentinel
#: row) — the coarse level of the hierarchical pruning check.
_SUBLAYER_BLOBS = ("bound_sublayer_of", "bound_sublayer_mins")


class SnapshotIndex(TopKIndex):
    """A built index backed by an mmap'd snapshot directory.

    Behaves exactly like the index it was saved from — same
    :class:`~repro.core.structure.LayerStructure` arrays (byte-identical),
    same kernels, same bitwise answers — but its arrays are read-only views
    into the page cache rather than private heap copies.  ``prune``-mode
    queries work out of the box: the layer bound table is part of the
    snapshot, so no O(n) recompute touches the mapped pages.
    """

    name = "snapshot"

    def __init__(
        self,
        relation: Relation,
        structure: LayerStructure,
        *,
        algorithm: str,
        path: str | Path,
    ) -> None:
        super().__init__(relation)
        self.structure = structure
        self.algorithm = algorithm
        self.path = Path(path)
        self.name = f"snapshot[{algorithm}]"
        self.build_stats.algorithm = self.name
        self._built = True
        self.version = 1

    def _build(self) -> None:
        """Snapshots are frozen; (re)build is a no-op."""

    def _query(self, weights, k, counter):
        from repro.core.query import process_top_k

        return process_top_k(self.structure, weights, k, counter)

    def __reduce__(self):
        # Pickling ships the *path*, not the arrays: the receiving process
        # re-opens the snapshot and shares the page-cache copy.
        return (open_snapshot, (str(self.path),))


def _seed_selector_spec(structure: LayerStructure) -> tuple[dict, dict]:
    """``(manifest_entry, extra_blobs)`` describing the seed selector."""
    selector = structure.seed_selector
    if selector is None:
        return {"type": "static"}, {}
    if isinstance(selector, PartitionSeedSelector):
        partition = selector.partition
        return (
            {"type": "weight_range"},
            {
                "chain_points": np.asarray(partition.chain_points, dtype=np.float64),
                "chain_ids": np.asarray(partition.chain_ids, dtype=np.intp),
            },
        )
    raise SerializationError(
        f"cannot snapshot index with seed selector {type(selector).__name__}: "
        "only static seeds and the 2-D weight-range selector have a "
        "snapshot representation"
    )


def save_snapshot(index: TopKIndex, path: str | Path) -> Path:
    """Write a built index as an mmap-openable snapshot directory.

    ``index`` must expose a frozen :class:`LayerStructure` (DL/DL+ and the
    gate-graph baselines all do); it is built first if needed.  Returns the
    snapshot directory path.  Overwrites an existing snapshot at ``path``
    atomically enough for our purposes (manifest is written last, so a
    partial snapshot has no manifest and is rejected by the opener).
    """
    if not index._built:
        index.build()
    if isinstance(index, SnapshotIndex):
        root = Path(path)
        if root.resolve() == index.path.resolve():
            # Re-snapshotting an open snapshot over itself would truncate
            # the very blobs its arrays are mapped from; it is also a
            # no-op — the directory already holds these bytes.
            return root
    structure = getattr(index, "structure", None)
    if not isinstance(structure, LayerStructure):
        raise SerializationError(
            f"{type(index).__name__} does not expose a LayerStructure; "
            "only gate-graph indexes can be snapshotted"
        )
    selector_entry, selector_blobs = _seed_selector_spec(structure)

    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    stale = root / MANIFEST_NAME
    if stale.exists():
        stale.unlink()  # invalidate any previous snapshot before rewriting

    block_of, block_mins = structure.layer_bound_table()
    sublayer_of, sublayer_mins = structure.sublayer_bound_table()
    blobs: dict[str, np.ndarray] = {
        name: np.asarray(getattr(structure, name)) for name in _STRUCTURE_BLOBS
    }
    blobs["bound_block_of"] = np.asarray(block_of)
    blobs["bound_block_mins"] = np.asarray(block_mins)
    blobs["bound_sublayer_of"] = np.asarray(sublayer_of)
    blobs["bound_sublayer_mins"] = np.asarray(sublayer_mins)
    blobs.update(selector_blobs)

    arrays = {}
    with (root / DATA_NAME).open("wb") as handle:
        for name, array in blobs.items():
            array = np.ascontiguousarray(array)
            pad = (-handle.tell()) % _ALIGN
            if pad:
                handle.write(b"\x00" * pad)
            arrays[name] = {
                "offset": handle.tell(),
                "nbytes": int(array.nbytes),
                "dtype": array.dtype.str,
                "shape": list(array.shape),
            }
            handle.write(array.tobytes())

    manifest = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "algorithm": getattr(index, "algorithm", None) or index.name,
        "attributes": list(index.relation.schema.attributes),
        "n_real": int(structure.n_real),
        "n_nodes": int(structure.n_nodes),
        "d": int(index.relation.d),
        "num_coarse_layers": int(structure.num_coarse_layers),
        "complete": bool(structure.complete),
        "seed_selector": selector_entry,
        "arrays": arrays,
    }
    with (root / MANIFEST_NAME).open("w") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
    return root


def read_manifest(path: str | Path) -> dict:
    """Parse and validate a snapshot directory's manifest."""
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    try:
        with manifest_path.open("r") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise SerializationError(
            f"cannot open snapshot at {root}: {exc}"
        ) from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SerializationError(
            f"snapshot manifest at {manifest_path} is corrupt: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("magic") != SNAPSHOT_MAGIC:
        raise SerializationError(f"{root} is not a repro snapshot")
    if manifest.get("version") not in SNAPSHOT_COMPAT_VERSIONS:
        raise SerializationError(
            f"snapshot {root} has format version {manifest.get('version')!r}; "
            f"this reader supports versions {SNAPSHOT_COMPAT_VERSIONS}"
        )
    if not isinstance(manifest.get("arrays"), dict):
        raise SerializationError(f"snapshot {root} manifest lacks an array table")
    return manifest


def _map_data(root: Path, *, mmap: bool) -> np.ndarray:
    """Open the snapshot data file as one flat byte buffer (mapped or read)."""
    data_path = root / DATA_NAME
    try:
        if mmap:
            buffer = np.memmap(data_path, dtype=np.uint8, mode="r")
        else:
            buffer = np.fromfile(data_path, dtype=np.uint8)
            buffer.setflags(write=False)
    except (OSError, ValueError) as exc:
        raise SerializationError(
            f"snapshot data file {data_path} is unreadable: {exc}"
        ) from exc
    return buffer


def _carve_blob(
    root: Path, manifest: dict, buffer: np.ndarray, name: str
) -> np.ndarray:
    """A zero-copy view of one array inside the mapped data buffer.

    Offsets and extents come from an untrusted manifest, so everything is
    bounds- and consistency-checked *before* the view exists: a lying or
    truncated snapshot raises here, not mid-query.
    """
    entry = manifest["arrays"].get(name)
    if entry is None:
        raise SerializationError(f"snapshot {root} is missing array {name!r}")
    try:
        offset = int(entry["offset"])
        nbytes = int(entry["nbytes"])
        dtype = np.dtype(str(entry["dtype"]))
        shape = tuple(int(dim) for dim in entry["shape"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"snapshot {root}: array entry {name!r} is malformed: {exc}"
        ) from exc
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    if nbytes != expected:
        raise SerializationError(
            f"snapshot {root}: array {name!r} declares {nbytes} bytes but "
            f"dtype {dtype.str} x shape {list(shape)} needs {expected}"
        )
    if offset < 0 or offset % dtype.itemsize or offset + nbytes > buffer.size:
        raise SerializationError(
            f"snapshot {root}: array {name!r} at [{offset}, {offset + nbytes}) "
            f"falls outside the {buffer.size}-byte data file (truncated "
            "snapshot?)"
        )
    return np.asarray(buffer[offset : offset + nbytes]).view(dtype).reshape(shape)


def _as_index_dtype(array: np.ndarray) -> np.ndarray:
    """Cast id arrays to the platform ``np.intp`` (copying only off-platform)."""
    if array.dtype == np.intp:
        return array
    return array.astype(np.intp)


def open_snapshot(path: str | Path, *, mmap: bool = True) -> SnapshotIndex:
    """Open a snapshot directory as a ready-to-query :class:`SnapshotIndex`.

    With ``mmap=True`` (the default) the data file is mapped once and
    every array is a read-only view at its manifest offset — no bytes are
    copied at open time, and pages are faulted in lazily as queries touch
    them.  ``mmap=False`` reads the data file into private memory (useful
    when the snapshot will be replaced while open).
    """
    root = Path(path)
    manifest = read_manifest(root)
    buffer = _map_data(root, mmap=mmap)

    def blob(name: str) -> np.ndarray:
        return _carve_blob(root, manifest, buffer, name)

    values = blob("values")
    selector_entry = manifest.get("seed_selector") or {"type": "static"}
    selector_type = selector_entry.get("type")
    if selector_type == "static":
        seed_selector = None
    elif selector_type == "weight_range":
        # Chain arrays are tiny: materialize them and rebuild the partition
        # (breakpoints recompute deterministically from the points).
        partition = WeightRangePartition(
            np.array(blob("chain_points")),
            _as_index_dtype(np.array(blob("chain_ids"))),
        )
        seed_selector = PartitionSeedSelector(partition)
    else:
        raise SerializationError(
            f"snapshot {root} names unknown seed selector {selector_type!r}"
        )

    # v1 snapshots predate the sublayer table: open them with the blob
    # absent and let the structure recompute it lazily (the table depends
    # only on placements/values, so the lazy result is identical to a
    # freeze-time one — v1 answers stay bitwise-identical).
    if all(name in manifest["arrays"] for name in _SUBLAYER_BLOBS):
        sublayer_bounds = (
            _as_index_dtype(blob("bound_sublayer_of")),
            blob("bound_sublayer_mins"),
        )
    else:
        sublayer_bounds = None

    structure = LayerStructure(
        values=values,
        n_real=int(manifest["n_real"]),
        forall_parent_count=blob("forall_parent_count"),
        forall_indptr=_as_index_dtype(blob("forall_indptr")),
        forall_indices=_as_index_dtype(blob("forall_indices")),
        exists_gated=blob("exists_gated"),
        exists_indptr=_as_index_dtype(blob("exists_indptr")),
        exists_indices=_as_index_dtype(blob("exists_indices")),
        static_seeds=_as_index_dtype(blob("static_seeds")),
        seed_selector=seed_selector,
        coarse_levels=blob("coarse_levels"),
        fine_levels=blob("fine_levels"),
        num_coarse_layers=int(manifest["num_coarse_layers"]),
        complete=bool(manifest["complete"]),
        layer_bounds=(
            _as_index_dtype(blob("bound_block_of")),
            blob("bound_block_mins"),
        ),
        sublayer_bounds=sublayer_bounds,
    )
    if structure.n_nodes != int(manifest["n_nodes"]):
        raise SerializationError(
            f"snapshot {root}: values blob holds {structure.n_nodes} nodes, "
            f"manifest says {manifest['n_nodes']}"
        )

    attributes = tuple(str(a) for a in manifest["attributes"])
    # The relation is a zero-copy view of the real rows of the mapped
    # values blob.  The trusted constructor skips the finiteness re-scan:
    # it would fault in every page of the mapping just to re-prove what
    # the normal constructor proved before the snapshot was written.
    relation = Relation.wrap_unchecked(
        values[: structure.n_real], Schema(attributes)
    )
    return SnapshotIndex(
        relation,
        structure,
        algorithm=str(manifest["algorithm"]),
        path=root,
    )


def snapshot_nbytes(path: str | Path) -> int:
    """Total on-disk size of a snapshot directory (manifest + data file)."""
    root = Path(path)
    read_manifest(root)  # reject non-snapshots before reporting a size
    return (
        (root / MANIFEST_NAME).stat().st_size + (root / DATA_NAME).stat().st_size
    )


__all__ = [
    "DATA_NAME",
    "MANIFEST_NAME",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_COMPAT_VERSIONS",
    "SNAPSHOT_VERSION",
    "SnapshotIndex",
    "open_snapshot",
    "read_manifest",
    "save_snapshot",
    "snapshot_nbytes",
]
