"""Persistence: relations to npz/CSV, built indexes to pickle files/bytes."""

from repro.io.serialize import (
    index_from_bytes,
    index_to_bytes,
    load_index,
    load_relation,
    save_index,
    save_relation,
)

__all__ = [
    "index_from_bytes",
    "index_to_bytes",
    "load_index",
    "load_relation",
    "save_index",
    "save_relation",
]
