"""Persistence: relations to npz/CSV, built indexes to pickle files."""

from repro.io.serialize import (
    load_index,
    load_relation,
    save_index,
    save_relation,
)

__all__ = ["load_index", "load_relation", "save_index", "save_relation"]
