"""Persistence: relations to npz/CSV, indexes to pickle or mmap snapshots."""

from repro.io.serialize import (
    index_from_bytes,
    index_to_bytes,
    load_index,
    load_relation,
    save_index,
    save_relation,
)
from repro.io.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotIndex,
    open_snapshot,
    read_manifest,
    save_snapshot,
    snapshot_nbytes,
)

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotIndex",
    "index_from_bytes",
    "index_to_bytes",
    "load_index",
    "load_relation",
    "open_snapshot",
    "read_manifest",
    "save_index",
    "save_relation",
    "snapshot_nbytes",
    "save_snapshot",
]
