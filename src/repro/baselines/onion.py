"""Onion (Chang et al. [3]): convex layers with complete access.

Layers are iterated convex skylines.  The i-th best tuple under any linear
scoring function lies within the first ``i`` layers, so a top-k query scans
layers ``1..j`` completely, stopping as soon as the k-th best score seen is
no worse than the best possible score of the next layer (every tuple of
which it has to evaluate to know — hence "complete access", the cost the
paper's §III-A table assigns Onion).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import TopKIndex
from repro.exceptions import IndexCapacityError
from repro.relation import Relation
from repro.skyline.layers import convex_layers
from repro.stats import AccessCounter


class OnionIndex(TopKIndex):
    """Convex-layer (onion) index with layer-at-a-time evaluation."""

    name = "ONION"

    def __init__(self, relation: Relation, *, max_layers: int | None = None) -> None:
        super().__init__(relation)
        self.max_layers = max_layers
        self.layers: list[np.ndarray] = []
        self._complete = True

    def _build(self) -> None:
        self.layers, leftover = convex_layers(self.relation.matrix, self.max_layers)
        self._complete = leftover.shape[0] == 0
        self.build_stats.num_layers = len(self.layers)
        self.build_stats.layer_sizes = [int(layer.shape[0]) for layer in self.layers]

    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self._complete and k > len(self.layers):
            raise IndexCapacityError(
                f"onion index holds {len(self.layers)} layers; top-{k} needs k layers"
            )
        matrix = self.relation.matrix
        seen_ids: list[np.ndarray] = []
        seen_scores: list[np.ndarray] = []
        for depth, layer in enumerate(self.layers):
            scores = matrix[layer] @ weights
            counter.count_real(layer.shape[0])
            seen_ids.append(layer)
            seen_scores.append(scores)
            # After evaluating j layers, the top-j seen are final; we can
            # answer once j >= k (the rank-k tuple lives in the first k
            # layers).  Early exit: if the k-th best seen beats everything
            # this layer contributed, deeper layers (all worse than some
            # tuple here under every w? only via the layer property) still
            # require depth >= k - stick to the sound rule.
            if depth + 1 >= k:
                break
        ids = np.concatenate(seen_ids)
        scores = np.concatenate(seen_scores)
        order = np.lexsort((ids, scores))[:k]
        return ids[order].astype(np.intp), scores[order]
