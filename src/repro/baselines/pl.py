"""PL — partitioned-layer index (after Heo et al. [29]).

The partitioned-layer index splits the relation into ``p`` partitions,
builds convex layers *per partition* (hull computations on ``n/p`` points
are far cheaper, and partitions can be built in parallel), and merges at
query time.

Merge rule (sound by the per-partition layer property — the rank-i tuple of
a partition lies within its first i layers): before emitting the global
rank-r answer, every partition must have evaluated ``min(r, its depth)``
layers; the global top-r of everything read so far is then final.  The
implementation reads layers lazily, one global rank at a time, so small-k
queries touch only the first few layers of each partition.

Positioned between Onion (one partition) and HL in the design space:
construction is the cheapest of the convex-layer family, at the price of
evaluating one layer per partition per rank.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import TopKIndex
from repro.exceptions import IndexCapacityError, ReproError
from repro.relation import Relation
from repro.skyline.layers import convex_layers
from repro.stats import AccessCounter


class PLIndex(TopKIndex):
    """Partitioned convex-layer index with rank-synchronized merging.

    Parameters
    ----------
    relation:
        Target relation.
    partitions:
        Number of partitions (default ``max(2, round(n / 4096))``).
    max_layers:
        Per-partition layer bound; queries then support ``k <= max_layers``.
    seed:
        Seed for the random partitioning.
    """

    name = "PL"

    def __init__(
        self,
        relation: Relation,
        *,
        partitions: int | None = None,
        max_layers: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(relation)
        if partitions is not None and partitions < 1:
            raise ReproError(f"partitions must be >= 1, got {partitions}")
        self.partitions = partitions
        self.max_layers = max_layers
        self.seed = seed
        self._partition_ids: list[np.ndarray] = []
        self._partition_layers: list[list[np.ndarray]] = []
        self._complete = True

    def _build(self) -> None:
        n = self.relation.n
        count = self.partitions
        if count is None:
            count = max(2, round(n / 4096))
        count = max(1, min(count, n)) if n else 1
        rng = np.random.default_rng(self.seed)
        assignment = rng.integers(0, count, size=n)

        self._partition_ids = []
        self._partition_layers = []
        matrix = self.relation.matrix
        max_depth = 0
        for p in range(count):
            members = np.nonzero(assignment == p)[0].astype(np.intp)
            if members.shape[0] == 0:
                continue
            local_layers, leftover = convex_layers(matrix[members], self.max_layers)
            if leftover.shape[0]:
                self._complete = False
            self._partition_ids.append(members)
            self._partition_layers.append(
                [members[layer] for layer in local_layers]
            )
            max_depth = max(max_depth, len(local_layers))
        self.build_stats.num_layers = max_depth
        self.build_stats.layer_sizes = [
            sum(
                layers[depth].shape[0]
                for layers in self._partition_layers
                if depth < len(layers)
            )
            for depth in range(max_depth)
        ]
        self.build_stats.extra["partitions"] = float(len(self._partition_ids))

    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self._complete and self.max_layers is not None and k > self.max_layers:
            raise IndexCapacityError(
                f"partitioned index holds {self.max_layers} layers per "
                f"partition; top-{k} needs k layers"
            )
        matrix = self.relation.matrix
        depth_read = [0] * len(self._partition_layers)
        seen_ids: list[np.ndarray] = []
        seen_scores: list[np.ndarray] = []

        def read_to_depth(rank: int) -> None:
            for p, layers in enumerate(self._partition_layers):
                while depth_read[p] < min(rank, len(layers)):
                    layer = layers[depth_read[p]]
                    seen_ids.append(layer)
                    seen_scores.append(matrix[layer] @ weights)
                    counter.count_real(layer.shape[0])
                    depth_read[p] += 1

        read_to_depth(k)
        ids = np.concatenate(seen_ids) if seen_ids else np.empty(0, dtype=np.intp)
        scores = (
            np.concatenate(seen_scores) if seen_scores else np.empty(0)
        )
        order = np.lexsort((ids, scores))[:k]
        return ids[order].astype(np.intp), scores[order]
