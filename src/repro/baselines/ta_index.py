"""Whole-relation list-based indexes (§VII-B related work): FA, TA, NRA.

These wrap the :mod:`repro.lists` algorithms behind the common
:class:`~repro.core.base.TopKIndex` interface so the examples and ablation
benchmarks can line the list-based approach up against the layer-based ones
under identical cost accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import TopKIndex
from repro.lists.fa import fagins_algorithm
from repro.lists.nra import no_random_access
from repro.lists.sorted_lists import SortedLists
from repro.lists.ta import threshold_algorithm
from repro.stats import AccessCounter


class _ListIndexBase(TopKIndex):
    """Shared build: d sorted lists over the full relation."""

    def _build(self) -> None:
        self.lists = SortedLists(self.relation.matrix)
        self.build_stats.num_layers = 1
        self.build_stats.layer_sizes = [self.relation.n]

    def _run(self, weights, k, counter):  # pragma: no cover - overridden
        raise NotImplementedError

    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        pairs = self._run(weights, k, counter)
        return (
            np.asarray([row for _, row in pairs], dtype=np.intp),
            np.asarray([score for score, _ in pairs], dtype=np.float64),
        )


class ListTAIndex(_ListIndexBase):
    """Threshold Algorithm over the full relation."""

    name = "TA"

    def _run(self, weights, k, counter):
        return threshold_algorithm(self.lists, weights, k, counter)


class ListFAIndex(_ListIndexBase):
    """Fagin's Algorithm over the full relation."""

    name = "FA"

    def _run(self, weights, k, counter):
        return fagins_algorithm(self.lists, weights, k, counter)


class ListNRAIndex(_ListIndexBase):
    """No-Random-Access algorithm over the full relation."""

    name = "NRA"

    def _run(self, weights, k, counter):
        return no_random_access(self.lists, weights, k, counter)
