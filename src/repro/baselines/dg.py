"""DG and DG+ (Zou & Chen, "Dominant Graph" [5]).

DG is exactly the dual-resolution machinery with fine sublayers disabled:
skyline coarse layers, ∀-dominance gates between adjacent layers, complete
access to the first layer.  DG+ adds the flat clustered pseudo-tuple zero
layer of [5] (no fine sublayers inside the zero layer — that refinement is
DL+'s).  Sharing the builder/engine with DL is what the paper's Theorem 5
cost comparison assumes: identical coarse structure, DL only adds ∃-gates.
"""

from __future__ import annotations

from repro.core.index import DLIndex, DLPlusIndex
from repro.relation import Relation


class DGIndex(DLIndex):
    """Dominant graph: coarse skyline layers + ∀-dominance gating only."""

    name = "DG"
    _fine_sublayers = False


class DGPlusIndex(DLPlusIndex):
    """DG with the flat clustered zero layer of [5]."""

    name = "DG+"
    _fine_sublayers = False

    def __init__(
        self,
        relation: Relation,
        *,
        max_layers: int | None = None,
        skyline_algorithm: str = "blocked",
        parallel: int | None = None,
        clusters: int | None = None,
        seed: int = 0,
    ) -> None:
        # DG+ always uses clustered pseudo-tuples (also in 2-D); the
        # weight-range chain is DL+'s 2-D refinement.
        super().__init__(
            relation,
            max_layers=max_layers,
            skyline_algorithm=skyline_algorithm,
            parallel=parallel,
            clusters=clusters,
            zero_layer="clusters",
            seed=seed,
        )
