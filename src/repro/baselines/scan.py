"""Sequential scan: the no-index floor every index must beat.

Evaluates the scoring function on every tuple (cost = n) and sorts out the
best k.  Used as the correctness oracle in tests and the cost ceiling in
benchmark tables.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import TopKIndex
from repro.relation import top_k_bruteforce
from repro.stats import AccessCounter


class ScanIndex(TopKIndex):
    """Full-scan "index": nothing to build, everything to evaluate."""

    name = "SCAN"

    def _build(self) -> None:
        self.build_stats.num_layers = 1
        self.build_stats.layer_sizes = [self.relation.n]

    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        counter.count_real(self.relation.n)
        return top_k_bruteforce(self.relation.matrix, weights, k)
