"""AppRI-style robust index (after Xin, Chen, Han [4]).

AppRI assigns each tuple the deepest layer from which it could still reach a
top-ranked position, shrinking layers relative to Onion.  We reproduce its
defining pruning property with a *dominance-count bucket index* (documented
as a substitution in DESIGN.md): a tuple dominated by ``c`` others has rank
at least ``c + 1`` under every monotone scoring function, so bucket ``c``
can be skipped entirely for ``k <= c``.  A query scans buckets ``0..k-1``
completely (AppRI also gives complete access within layers).

Dominance counting is all-pairs; the sum-sorted chunked sweep keeps it
vectorized and memory-bounded.  ``max_rank`` caps the distinguished buckets
(tuples with more dominators share an overflow bucket), bounding both build
time and the supported ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import TopKIndex
from repro.exceptions import IndexCapacityError
from repro.relation import Relation
from repro.stats import AccessCounter

_CHUNK = 1024


def dominance_counts(points: np.ndarray, cap: int | None = None) -> np.ndarray:
    """Number of dominators per point (clipped at ``cap`` when given).

    Points are swept in ascending attribute-sum order: dominators of a point
    always precede it, so each chunk only compares against earlier points.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    if n == 0:
        return counts
    # Sum-sorted with lexicographic tie-breaks: float rounding can tie the
    # sums of a dominator/dominated pair, and the lexicographic order keeps
    # dominators strictly earlier in that case (same fix as skyline SFS).
    d = points.shape[1]
    keys = (np.arange(n), *(points[:, c] for c in range(d - 1, -1, -1)),
            points.sum(axis=1))
    order = np.lexsort(keys)
    sorted_pts = points[order]
    for start in range(0, n, _CHUNK):
        stop = min(start + _CHUNK, n)
        block = sorted_pts[start:stop]
        block_counts = np.zeros(stop - start, dtype=np.int64)
        # Earlier points, including the in-block prefix.
        for prev_start in range(0, stop, _CHUNK):
            prev_stop = min(prev_start + _CHUNK, stop)
            prev = sorted_pts[prev_start:prev_stop]
            leq = np.all(prev[:, None, :] <= block[None, :, :], axis=2)
            lt = np.any(prev[:, None, :] < block[None, :, :], axis=2)
            dom = leq & lt
            if prev_start == start:
                # Same chunk: only strictly earlier rows count; upper
                # triangle relative to block offsets.
                rows = np.arange(prev.shape[0])[:, None]
                cols = np.arange(block.shape[0])[None, :]
                dom &= rows < cols
            elif prev_start > start:
                break
            block_counts += dom.sum(axis=0)
        counts[order[start:stop]] = block_counts
        if cap is not None:
            np.minimum(counts, cap, out=counts)
    return counts


class AppRIIndex(TopKIndex):
    """Dominance-count bucket index with AppRI's pruning guarantee."""

    name = "AppRI"

    def __init__(self, relation: Relation, *, max_rank: int | None = None) -> None:
        super().__init__(relation)
        self.max_rank = max_rank
        self.buckets: list[np.ndarray] = []

    def _build(self) -> None:
        counts = dominance_counts(self.relation.matrix, cap=self.max_rank)
        limit = int(counts.max()) + 1 if counts.shape[0] else 1
        self.buckets = [
            np.nonzero(counts == c)[0].astype(np.intp) for c in range(limit)
        ]
        self.build_stats.num_layers = len(self.buckets)
        self.build_stats.layer_sizes = [int(b.shape[0]) for b in self.buckets]

    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.max_rank is not None and k > self.max_rank:
            raise IndexCapacityError(
                f"robust index distinguishes ranks up to {self.max_rank}; "
                f"top-{k} is beyond capacity"
            )
        matrix = self.relation.matrix
        ids_parts: list[np.ndarray] = []
        score_parts: list[np.ndarray] = []
        for bucket in self.buckets[:k]:
            if bucket.shape[0] == 0:
                continue
            ids_parts.append(bucket)
            score_parts.append(matrix[bucket] @ weights)
            counter.count_real(bucket.shape[0])
        if not ids_parts:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float64)
        ids = np.concatenate(ids_parts)
        scores = np.concatenate(score_parts)
        order = np.lexsort((ids, scores))[:k]
        return ids[order].astype(np.intp), scores[order]
