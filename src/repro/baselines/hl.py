"""HL and HL+ (Heo et al., "The Hybrid-Layer Index" [6]).

Convex layers (as Onion) but each layer keeps ``d`` per-attribute sorted
lists, so tuples inside a layer can be accessed *selectively* with
threshold-style processing:

* **HL** runs TA independently inside each of the first ``k`` layers for a
  local top-k, then merges — selective within a layer, but each layer's TA
  stops on its own (loose) local condition.
* **HL+** advances the lists of all open layers in a round-robin and keeps a
  single *global* stopping test: the k-th best seen score against the
  minimum of the per-layer thresholds ``F(front values)``.  This tighter
  threshold is the optimization the paper credits to [6] and benchmarks.

Cost accounting: a tuple is "evaluated" the first time it is fully scored
(random access); sorted-list advances are tallied separately.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.base import TopKIndex
from repro.exceptions import IndexCapacityError
from repro.lists.sorted_lists import SortedLists
from repro.lists.ta import threshold_algorithm
from repro.relation import Relation
from repro.skyline.layers import convex_layers
from repro.stats import AccessCounter


class HLIndex(TopKIndex):
    """Hybrid-layer index with per-layer local TA (the unoptimized HL)."""

    name = "HL"

    def __init__(self, relation: Relation, *, max_layers: int | None = None) -> None:
        super().__init__(relation)
        self.max_layers = max_layers
        self.layers: list[np.ndarray] = []
        self.layer_lists: list[SortedLists] = []
        self._complete = True

    def _build(self) -> None:
        matrix = self.relation.matrix
        self.layers, leftover = convex_layers(matrix, self.max_layers)
        self._complete = leftover.shape[0] == 0
        self.layer_lists = [
            SortedLists(matrix[layer], ids=layer) for layer in self.layers
        ]
        self.build_stats.num_layers = len(self.layers)
        self.build_stats.layer_sizes = [int(layer.shape[0]) for layer in self.layers]

    def _check_capacity(self, k: int) -> None:
        if not self._complete and k > len(self.layers):
            raise IndexCapacityError(
                f"hybrid-layer index holds {len(self.layers)} layers; "
                f"top-{k} needs k layers"
            )

    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        self._check_capacity(k)
        merged: list[tuple[float, int]] = []
        for lists in self.layer_lists[:k]:
            local = threshold_algorithm(lists, weights, k, counter)
            merged.extend(
                (score, lists.external_id(row)) for score, row in local
            )
        merged.sort()
        top = merged[:k]
        return (
            np.asarray([tid for _, tid in top], dtype=np.intp),
            np.asarray([score for score, _ in top], dtype=np.float64),
        )


class HLPlusIndex(HLIndex):
    """HL with the round-robin global threshold (the paper's HL+)."""

    name = "HL+"

    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        self._check_capacity(k)
        open_lists = self.layer_lists[:k]
        if not open_lists:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float64)
        d = self.relation.d
        depths = [0] * len(open_lists)
        thresholds = [0.0] * len(open_lists)
        seen: list[set[int]] = [set() for _ in open_lists]
        # Max-heap of best k seen: (-score, -tuple_id).
        best: list[tuple[float, int]] = []

        def evaluate(layer_pos: int, row: int) -> None:
            lists = open_lists[layer_pos]
            score = float(lists.row_values(row) @ weights)
            counter.count_real()
            heapq.heappush(best, (-score, -lists.external_id(row)))
            if len(best) > k:
                heapq.heappop(best)

        total = sum(lists.n for lists in open_lists)
        while True:
            progressed = False
            for layer_pos, lists in enumerate(open_lists):
                if depths[layer_pos] >= lists.n:
                    thresholds[layer_pos] = float("inf")
                    continue
                progressed = True
                front = np.empty(d, dtype=np.float64)
                for attribute in range(d):
                    row, value = lists.sorted_entry(attribute, depths[layer_pos])
                    counter.count_sorted_access()
                    front[attribute] = value
                    if row not in seen[layer_pos]:
                        seen[layer_pos].add(row)
                        evaluate(layer_pos, row)
                depths[layer_pos] += 1
                thresholds[layer_pos] = float(front @ weights)
            floor = min(thresholds)
            if len(best) >= min(k, total) and -best[0][0] <= floor:
                break
            if not progressed:
                break
        top = sorted((-negscore, -negid) for negscore, negid in best)
        return (
            np.asarray([tid for _, tid in top], dtype=np.intp),
            np.asarray([score for score, _ in top], dtype=np.float64),
        )
