"""Baseline top-k indexes the paper compares against (or surveys).

* :mod:`repro.baselines.dg` — DG and DG+ (Zou & Chen [5]): coarse skyline
  layers with ∀-dominance gating, optionally a flat clustered zero layer.
* :mod:`repro.baselines.hl` — HL and HL+ (Heo et al. [6]): convex layers
  with per-layer sorted lists and threshold processing.
* :mod:`repro.baselines.onion` — Onion (Chang et al. [3]): convex layers,
  complete access.
* :mod:`repro.baselines.appri` — an AppRI-style robust index (Xin et al.
  [4]), reproduced as a dominance-count bucket index (see DESIGN.md).
* :mod:`repro.baselines.pl` — a partitioned-layer index (Heo et al. [29]).
* :mod:`repro.baselines.ta_index` — whole-relation list-based TA/NRA/FA
  (§VII-B related work).
* :mod:`repro.baselines.views` — a PREFER-style view index (§VII-C).
* :mod:`repro.baselines.scan` — the sequential-scan floor.
"""

from repro.baselines.scan import ScanIndex
from repro.baselines.dg import DGIndex, DGPlusIndex
from repro.baselines.onion import OnionIndex
from repro.baselines.hl import HLIndex, HLPlusIndex
from repro.baselines.appri import AppRIIndex
from repro.baselines.pl import PLIndex
from repro.baselines.ta_index import ListTAIndex, ListNRAIndex, ListFAIndex
from repro.baselines.views import PreferViewIndex

__all__ = [
    "ScanIndex",
    "DGIndex",
    "DGPlusIndex",
    "OnionIndex",
    "HLIndex",
    "HLPlusIndex",
    "AppRIIndex",
    "PLIndex",
    "ListTAIndex",
    "ListNRAIndex",
    "ListFAIndex",
    "PreferViewIndex",
]
