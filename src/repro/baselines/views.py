"""PREFER-style view-based index (Hristidis et al. [17, 18]) — §VII-C.

Materializes full rankings under a set of representative weight vectors
("views").  A query walks the most similar view's ranking in order, scoring
each tuple under the query weights, and stops at the *watermark*: once the
view-score prefix reaches ``τ``, every unread tuple satisfies
``w_v · t ≥ τ``, and the least query-score such a tuple could have is the
fractional-knapsack bound::

    min  w_q · x   s.t.  w_v · x ≥ τ,  0 ≤ x ≤ 1

(fill coordinates in ascending ``w_q_i / w_v_i`` order).  When the k-th best
seen query score is no worse than that bound, the walk stops.

Included as the view-based representative of the paper's related-work
taxonomy; its storage-versus-speed trade-off (one full ranking per view) is
the drawback the paper cites.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.base import TopKIndex
from repro.exceptions import ReproError
from repro.relation import Relation, normalize_weights
from repro.stats import AccessCounter


def watermark_bound(
    view_weights: np.ndarray, query_weights: np.ndarray, tau: float
) -> float:
    """Least possible query score of a tuple with view score >= tau."""
    ratios = query_weights / view_weights
    order = np.argsort(ratios)
    remaining = tau
    bound = 0.0
    for i in order:
        if remaining <= 0:
            break
        take = min(1.0, remaining / view_weights[i])
        bound += query_weights[i] * take
        remaining -= view_weights[i] * take
    return bound


class PreferViewIndex(TopKIndex):
    """A bank of materialized rankings with watermark-bounded reuse."""

    name = "PREFER"

    def __init__(
        self,
        relation: Relation,
        *,
        views: int = 8,
        view_weights: np.ndarray | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(relation)
        if view_weights is not None:
            vw = np.atleast_2d(np.asarray(view_weights, dtype=np.float64))
            self.view_weights = np.vstack([normalize_weights(w, relation.d) for w in vw])
        else:
            if views < 1:
                raise ReproError(f"need at least one view, got {views}")
            rng = np.random.default_rng(seed)
            d = relation.d
            # One balanced view plus random simplex draws.
            draws = [np.full(d, 1.0 / d)]
            draws.extend(
                np.clip(rng.dirichlet(np.ones(d)), 1e-6, None) for _ in range(views - 1)
            )
            self.view_weights = np.vstack([w / w.sum() for w in draws])
        self.view_orders: list[np.ndarray] = []
        self.view_scores: list[np.ndarray] = []

    def _build(self) -> None:
        matrix = self.relation.matrix
        self.view_orders = []
        self.view_scores = []
        for w in self.view_weights:
            scores = matrix @ w
            order = np.lexsort((np.arange(matrix.shape[0]), scores))
            self.view_orders.append(order.astype(np.intp))
            self.view_scores.append(scores[order])
        self.build_stats.num_layers = self.view_weights.shape[0]
        self.build_stats.layer_sizes = [self.relation.n] * self.view_weights.shape[0]

    def _closest_view(self, weights: np.ndarray) -> int:
        sims = self.view_weights @ weights
        norms = np.linalg.norm(self.view_weights, axis=1) * np.linalg.norm(weights)
        return int(np.argmax(sims / norms))

    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        matrix = self.relation.matrix
        view = self._closest_view(weights)
        order = self.view_orders[view]
        view_scores = self.view_scores[view]
        view_w = self.view_weights[view]

        best: list[tuple[float, int]] = []  # max-heap via (-score, -id)
        for pos in range(order.shape[0]):
            tid = int(order[pos])
            score = float(matrix[tid] @ weights)
            counter.count_real()
            heapq.heappush(best, (-score, -tid))
            if len(best) > k:
                heapq.heappop(best)
            if len(best) == k:
                bound = watermark_bound(view_w, weights, float(view_scores[pos]))
                if -best[0][0] <= bound:
                    break
        top = sorted((-negscore, -negid) for negscore, negid in best)
        return (
            np.asarray([tid for _, tid in top], dtype=np.intp),
            np.asarray([score for score, _ in top], dtype=np.float64),
        )
