"""§V: the virtual zero layer — selective access to the first layer.

All of ``L^{11}`` is ∀- and ∃-dominance-free, so plain DL gives it complete
access.  The zero layer fixes that:

* **2-D** (§V-A): the weight space collapses to ``w₁ ∈ (0, 1)``; a
  :class:`~repro.geometry.weight_ranges.WeightRangePartition` over the
  ``L^{11}`` chain picks the single top-1 tuple by binary search, and chain
  neighbors gate the rest of ``L^{11}`` (scores along a convex chain are
  unimodal in the chain position, so a tuple's inward neighbor always pops
  first).

* **d ≥ 3** (§V-B): k-means clusters ``L¹``; each cluster's componentwise
  minimum becomes a pseudo-tuple that (weakly) dominates all its members.
  For DL+ the pseudo set is itself peeled into fine sublayers with ∃-gates
  (richer than DG+'s flat pseudo layer), ∀-gates connect pseudo-tuples to
  every ``L¹`` member they dominate, and the first pseudo sublayer seeds the
  query.  Pseudo-tuples are scored (counted as ``counter.pseudo``) but never
  emitted.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.clustering import kmeans
from repro.core.structure import StructureBuilder
from repro.geometry.convex_skyline import convex_skyline_with_facets
from repro.geometry.weight_ranges import WeightRangePartition
from repro.geometry.hull2d import lower_left_chain
from repro.core.eds import assign_covering_facets


def default_cluster_count(layer_size: int) -> int:
    """Cluster-count heuristic for the zero layer: ``max(2, ⌈√|L¹|⌉)``.

    The paper defers to DG's instructions [5] without printing the constant;
    √-scaling keeps the pseudo layer a vanishing fraction of ``L¹`` while
    shrinking clusters (hence tightening pseudo minima) as the layer grows.
    Exposed as a knob on the indexes and swept in an ablation benchmark.
    """
    return max(2, math.isqrt(max(layer_size - 1, 1)) + 1)


class PartitionSeedSelector:
    """Picklable seed selector: binary-search the weight-range partition."""

    def __init__(self, partition: WeightRangePartition) -> None:
        self.partition = partition

    def __call__(self, weights: np.ndarray) -> np.ndarray:
        return np.asarray(
            [self.partition.top1_id(float(weights[0]))], dtype=np.intp
        )


def attach_chain_zero_layer(
    builder: StructureBuilder,
    points: np.ndarray,
    first_sublayer: np.ndarray,
) -> WeightRangePartition:
    """Wire the 2-D weight-range zero layer (§V-A) into ``builder``.

    ``first_sublayer`` is ``L^{11}`` (global ids).  Installs a seed selector
    returning the partition's single top-1 candidate and gates every chain
    tuple on its chain neighbors.
    """
    chain_local = lower_left_chain(points[first_sublayer])
    chain_ids = first_sublayer[chain_local]
    partition = WeightRangePartition(points[chain_ids], chain_ids)

    members = set(int(node) for node in first_sublayer)
    for pos, node in enumerate(chain_ids):
        neighbors = []
        if pos > 0:
            neighbors.append(int(chain_ids[pos - 1]))
        if pos + 1 < chain_ids.shape[0]:
            neighbors.append(int(chain_ids[pos + 1]))
        builder.add_exists_parents(int(node), neighbors)
    # L^{11} members dropped from the chain (duplicates/collinear) gate on
    # the whole chain: some chain tuple always scores weakly below them.
    for node in members.difference(int(i) for i in chain_ids):
        builder.add_exists_parents(node, (int(i) for i in chain_ids))

    builder.static_seeds.clear()
    builder.seed_selector = PartitionSeedSelector(partition)
    return partition


def attach_clustered_zero_layer(
    builder: StructureBuilder,
    points: np.ndarray,
    first_coarse_layer: np.ndarray,
    *,
    clusters: int | None = None,
    fine_sublayers: bool = True,
    seed: int = 0,
) -> np.ndarray:
    """Wire the clustered pseudo-tuple zero layer (§V-B) into ``builder``.

    Returns the pseudo-tuple value matrix.  ``fine_sublayers=False`` gives
    DG+'s flat zero layer (every pseudo-tuple is a seed); True gives DL+'s
    dual-resolution zero layer (only the first pseudo sublayer seeds).
    """
    layer_points = points[first_coarse_layer]
    k = clusters if clusters is not None else default_cluster_count(layer_points.shape[0])
    result = kmeans(layer_points, k, seed=seed)

    # Componentwise cluster minima; deduplicate identical pseudo-tuples.
    minima = np.vstack(
        [layer_points[result.labels == c].min(axis=0) for c in range(result.k)]
    )
    minima = np.unique(minima, axis=0)

    pseudo_nodes = np.asarray(
        [builder.add_pseudo_node(row) for row in minima], dtype=np.intp
    )

    builder.static_seeds.clear()
    if fine_sublayers and minima.shape[0] > 1:
        remaining = np.arange(minima.shape[0], dtype=np.intp)
        prev_local: np.ndarray | None = None
        prev_facets: list | None = None
        j = 0
        while remaining.shape[0] > 0:
            local_vertices, local_facets = convex_skyline_with_facets(minima[remaining])
            sublayer_local = remaining[local_vertices]
            facets_local = [
                replace(f, members=remaining[f.members]) for f in local_facets
            ]
            if j == 0:
                builder.static_seeds.extend(
                    int(pseudo_nodes[p]) for p in sublayer_local
                )
            else:
                position_of = {int(p): pos for pos, p in enumerate(prev_local)}
                facets_positions = [
                    replace(
                        f,
                        members=np.asarray(
                            [position_of[int(p)] for p in f.members], dtype=np.intp
                        ),
                    )
                    for f in prev_facets
                ]
                assignments = assign_covering_facets(
                    minima[prev_local], facets_positions, minima[sublayer_local]
                )
                for local, parents in zip(sublayer_local, assignments):
                    builder.add_exists_parents(
                        int(pseudo_nodes[local]),
                        (int(pseudo_nodes[p]) for p in prev_local[parents]),
                    )
            for local in sublayer_local:
                builder.place(int(pseudo_nodes[local]), 0, j)
            mask = np.ones(remaining.shape[0], dtype=bool)
            mask[local_vertices] = False
            remaining = remaining[mask]
            prev_local = sublayer_local
            prev_facets = facets_local
            j += 1
    else:
        builder.static_seeds.extend(int(node) for node in pseudo_nodes)
        for node in pseudo_nodes:
            builder.place(int(node), 0, 0)

    # ∀-gates from pseudo-tuples to the L¹ members they weakly dominate.
    # Weak dominance is required (a singleton cluster's minimum equals its
    # member) and safe: F(pseudo) <= F(member) for every positive w.
    weak = np.all(
        minima[:, None, :] <= layer_points[None, :, :] + 1e-12, axis=2
    )  # (n_pseudo, layer)
    for col, node in enumerate(first_coarse_layer):
        parents = pseudo_nodes[np.nonzero(weak[:, col])[0]]
        builder.add_forall_parents(int(node), (int(p) for p in parents))
    return minima
