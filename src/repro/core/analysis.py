"""Index introspection: structure statistics, cost bounds, graph export.

Tools for understanding *why* a dual-resolution index performs the way it
does: per-layer size/edge profiles, the static lower/upper bounds on query
cost implied by the gate structure, and an export of the gated graph to
:mod:`networkx` for visualization or graph-theoretic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.structure import LayerStructure


@dataclass
class LayerProfile:
    """Size and gate statistics of one coarse layer."""

    coarse: int
    size: int
    fine_sublayers: int
    sublayer_sizes: list[int] = field(default_factory=list)
    forall_in_edges: int = 0
    exists_in_edges: int = 0

    @property
    def mean_forall_fan_in(self) -> float:
        """Average number of ∀-parents per tuple of this layer."""
        return self.forall_in_edges / self.size if self.size else 0.0


@dataclass
class StructureReport:
    """Whole-index profile produced by :func:`profile_structure`."""

    n_real: int
    n_pseudo: int
    num_coarse_layers: int
    layers: list[LayerProfile]
    forall_edges: int
    exists_edges: int
    seeds_static: int

    @property
    def total_sublayers(self) -> int:
        """Fine sublayers across all coarse layers."""
        return sum(layer.fine_sublayers for layer in self.layers)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"nodes: {self.n_real} real + {self.n_pseudo} pseudo; "
            f"{self.num_coarse_layers} coarse layers, "
            f"{self.total_sublayers} fine sublayers",
            f"edges: {self.forall_edges} forall, {self.exists_edges} exists; "
            f"{self.seeds_static} static seeds",
        ]
        for layer in self.layers:
            lines.append(
                f"  L{layer.coarse + 1}: {layer.size} tuples in "
                f"{layer.fine_sublayers} sublayers {layer.sublayer_sizes}; "
                f"mean forall fan-in {layer.mean_forall_fan_in:.2f}"
            )
        return "\n".join(lines)


def profile_structure(structure: LayerStructure) -> StructureReport:
    """Compute the :class:`StructureReport` of a built layer structure."""
    by_coarse: dict[int, LayerProfile] = {}
    sublayer_sizes: dict[tuple[int, int], int] = {}
    for node in range(structure.n_real):
        coarse = structure.coarse_of.get(node)
        if coarse is None:
            continue
        fine = structure.fine_of.get(node, 0)
        profile = by_coarse.setdefault(
            coarse, LayerProfile(coarse=coarse, size=0, fine_sublayers=0)
        )
        profile.size += 1
        sublayer_sizes[(coarse, fine)] = sublayer_sizes.get((coarse, fine), 0) + 1
        profile.forall_in_edges += int(structure.forall_parent_count[node])
        profile.exists_in_edges += int(structure.exists_gated[node])
    for (coarse, fine), size in sorted(sublayer_sizes.items()):
        profile = by_coarse[coarse]
        profile.fine_sublayers = max(profile.fine_sublayers, fine + 1)
        profile.sublayer_sizes.append(size)
    counts = structure.edge_counts()
    return StructureReport(
        n_real=structure.n_real,
        n_pseudo=structure.n_pseudo,
        num_coarse_layers=structure.num_coarse_layers,
        layers=[by_coarse[c] for c in sorted(by_coarse)],
        forall_edges=counts["forall_edges"],
        exists_edges=counts["exists_edges"],
        seeds_static=int(structure.static_seeds.shape[0]),
    )


def cost_bounds(structure: LayerStructure, k: int) -> tuple[int, int]:
    """Static (lower, upper) bounds on the evaluation cost of any top-k query.

    Lower bound: every static seed is scored up front, and at least ``k``
    tuples must be scored to emit ``k`` answers; with a dynamic seed
    selector (2-D zero layer) the floor is just ``k``.  Upper bound: every
    node in the first ``k`` coarse layers plus the whole zero layer — no
    gate can force access beyond them.
    """
    k_floor = min(k, structure.n_real)
    if structure.seed_selector is not None or structure.n_real == 0:
        lower = k_floor
    else:
        lower = max(int(structure.static_seeds.shape[0]), k_floor)
        lower = min(lower, structure.n_nodes)
    reachable = structure.n_pseudo
    for node in range(structure.n_real):
        if structure.coarse_of.get(node, structure.num_coarse_layers) < k:
            reachable += 1
    return lower, min(reachable, structure.n_nodes)


def to_networkx(structure: LayerStructure):
    """Export the gated graph as a ``networkx.DiGraph``.

    Nodes carry ``kind`` ("real"/"pseudo"), ``coarse`` and ``fine``
    attributes; edges carry ``gate`` ("forall"/"exists").
    """
    import networkx as nx

    graph = nx.DiGraph()
    for node in range(structure.n_nodes):
        graph.add_node(
            node,
            kind="pseudo" if structure.is_pseudo(node) else "real",
            coarse=structure.coarse_of.get(node, -1),
            fine=structure.fine_of.get(node, -1),
        )
    for node in range(structure.n_nodes):
        for child in structure.forall_children[node]:
            graph.add_edge(node, int(child), gate="forall")
        for child in structure.exists_children[node]:
            graph.add_edge(node, int(child), gate="exists")
    return graph
