"""The gated layer graph: nodes, ∀-gates, ∃-gates, and seed selection.

Top-k processing over layer indexes is a graph-traversal problem (§IV).
This module holds the traversal-ready representation shared by DL, DL+, DG
and DG+:

* *nodes* are real tuples (ids ``0..n_real-1``) plus optional zero-layer
  pseudo-tuples (ids ``>= n_real``);
* a node's **∀-gate** (Definition 7) opens when *all* of its ∀-parents have
  been popped into the answer;
* a node's **∃-gate** (Definition 8) opens when *any* of its ∃-parents has
  been popped;
* a node may be *accessed* — scored and enqueued — only when both gates are
  open (Theorem 3);
* the *seeds* are the nodes whose gates are open at query start (``L^{11}``
  for plain DL; the zero layer's first sublayer for DL+; a single
  weight-range entry tuple in 2-D).

Construction code appends edges through :class:`StructureBuilder`; the
frozen :class:`LayerStructure` is what the query engine consumes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from repro.exceptions import IndexConstructionError


class StructureBuilder:
    """Mutable accumulator for nodes and gates during index construction."""

    def __init__(self, real_values: np.ndarray) -> None:
        self.real_values = np.atleast_2d(np.asarray(real_values, dtype=np.float64))
        self.n_real = self.real_values.shape[0]
        self.pseudo_values: list[np.ndarray] = []
        self._forall_parents: dict[int, list[int]] = {}
        self._exists_parents: dict[int, list[int]] = {}
        self.coarse_of: dict[int, int] = {}
        self.fine_of: dict[int, int] = {}
        self.static_seeds: list[int] = []
        self.seed_selector: Callable[[np.ndarray], np.ndarray] | None = None
        self.num_coarse_layers = 0
        self.complete = True
        self.materialized: list[int] = []

    def add_pseudo_node(self, value: np.ndarray) -> int:
        """Register a zero-layer pseudo-tuple; returns its node id."""
        node = self.n_real + len(self.pseudo_values)
        self.pseudo_values.append(np.asarray(value, dtype=np.float64))
        return node

    def place(self, node: int, coarse: int, fine: int) -> None:
        """Record the (coarse, fine) layer of a node and mark it materialized."""
        self.coarse_of[node] = coarse
        self.fine_of[node] = fine
        self.materialized.append(node)

    def add_forall_parents(self, node: int, parents: Iterable[int]) -> None:
        """Attach ∀-parents (all must pop before ``node`` opens)."""
        self._forall_parents.setdefault(node, []).extend(int(p) for p in parents)

    def add_exists_parents(self, node: int, parents: Iterable[int]) -> None:
        """Attach ∃-parents (any popping opens ``node``'s ∃-gate)."""
        self._exists_parents.setdefault(node, []).extend(int(p) for p in parents)

    def freeze(self) -> "LayerStructure":
        """Validate and produce the immutable traversal structure."""
        n_nodes = self.n_real + len(self.pseudo_values)
        values = (
            np.vstack([self.real_values, np.asarray(self.pseudo_values)])
            if self.pseudo_values
            else self.real_values
        )

        forall_count = np.zeros(n_nodes, dtype=np.int64)
        forall_children: list[list[int]] = [[] for _ in range(n_nodes)]
        for node, parents in self._forall_parents.items():
            unique = sorted(set(parents))
            forall_count[node] = len(unique)
            for parent in unique:
                forall_children[parent].append(node)

        exists_gated = np.zeros(n_nodes, dtype=bool)
        exists_children: list[list[int]] = [[] for _ in range(n_nodes)]
        for node, parents in self._exists_parents.items():
            unique = sorted(set(parents))
            if not unique:
                continue
            exists_gated[node] = True
            for parent in unique:
                exists_children[parent].append(node)

        materialized = np.asarray(sorted(set(self.materialized)), dtype=np.intp)
        if self.complete and materialized.shape[0] != n_nodes:
            raise IndexConstructionError(
                f"complete structure must place every node: "
                f"{materialized.shape[0]} of {n_nodes} placed"
            )
        # Every materialized non-seed node must have at least one gate,
        # otherwise it could never be reached by the traversal.
        seeds = set(self.static_seeds)
        for node in materialized:
            node = int(node)
            if node in seeds or self.seed_selector is not None:
                continue
            if forall_count[node] == 0 and not exists_gated[node]:
                raise IndexConstructionError(
                    f"node {node} is unreachable: no gates and not a seed"
                )

        return LayerStructure(
            values=values,
            n_real=self.n_real,
            forall_parent_count=forall_count,
            forall_children=[
                np.asarray(children, dtype=np.intp) for children in forall_children
            ],
            exists_gated=exists_gated,
            exists_children=[
                np.asarray(children, dtype=np.intp) for children in exists_children
            ],
            static_seeds=np.asarray(sorted(seeds), dtype=np.intp),
            seed_selector=self.seed_selector,
            coarse_of=dict(self.coarse_of),
            fine_of=dict(self.fine_of),
            num_coarse_layers=self.num_coarse_layers,
            complete=self.complete,
        )


class LayerStructure:
    """Frozen gated layer graph consumed by the Algorithm 2 engine.

    Thread-safety contract: instances are immutable after
    :meth:`StructureBuilder.freeze` — the engine and every consumer treat
    all arrays and the seed selector as read-only, and per-query traversal
    state (gate counters, heap, enqueued flags, access counters) is always
    copied or freshly allocated per query.  A single structure may therefore
    be traversed by many threads concurrently without locking; the serving
    layer's thread pool (:mod:`repro.serving`) depends on this.  Seed
    selectors installed via ``seed_selector`` must likewise be stateless
    (both shipped selectors — static seeds and the 2-D weight-range binary
    search — are).
    """

    def __init__(
        self,
        *,
        values: np.ndarray,
        n_real: int,
        forall_parent_count: np.ndarray,
        forall_children: list[np.ndarray],
        exists_gated: np.ndarray,
        exists_children: list[np.ndarray],
        static_seeds: np.ndarray,
        seed_selector: Callable[[np.ndarray], np.ndarray] | None,
        coarse_of: dict[int, int],
        fine_of: dict[int, int],
        num_coarse_layers: int,
        complete: bool,
    ) -> None:
        self.values = values
        self.n_real = n_real
        self.forall_parent_count = forall_parent_count
        self.forall_children = forall_children
        self.exists_gated = exists_gated
        self.exists_children = exists_children
        self.static_seeds = static_seeds
        self.seed_selector = seed_selector
        self.coarse_of = coarse_of
        self.fine_of = fine_of
        self.num_coarse_layers = num_coarse_layers
        self.complete = complete
        # Lazily extracted ``values[static_seeds]`` block shared by every
        # query (see :meth:`seed_block`); benign to race on — all writers
        # compute the identical array.
        self._seed_values: np.ndarray | None = None

    @property
    def n_nodes(self) -> int:
        """Total node count (real tuples + pseudo-tuples)."""
        return self.values.shape[0]

    @property
    def n_pseudo(self) -> int:
        """Number of zero-layer pseudo-tuples."""
        return self.n_nodes - self.n_real

    def is_pseudo(self, node: int) -> bool:
        """True for zero-layer nodes (never emitted as answers)."""
        return node >= self.n_real

    def seeds(self, weights: np.ndarray) -> np.ndarray:
        """Query-start nodes for a (normalized) weight vector."""
        if self.seed_selector is not None:
            return np.asarray(self.seed_selector(weights), dtype=np.intp)
        return self.static_seeds

    def seed_block(self) -> tuple[np.ndarray, np.ndarray]:
        """``(static_seeds, values[static_seeds])`` with the value block
        extracted once and reused by every query — the per-query seed
        scoring then costs a single matrix-vector product.  Only valid for
        static-seed structures (``seed_selector is None``)."""
        if self._seed_values is None:
            self._seed_values = self.values[self.static_seeds]
        return self.static_seeds, self._seed_values

    def edge_counts(self) -> dict[str, int]:
        """Diagnostics: number of ∀- and ∃-edges in the graph."""
        return {
            "forall_edges": int(sum(c.shape[0] for c in self.forall_children)),
            "exists_edges": int(sum(c.shape[0] for c in self.exists_children)),
        }
