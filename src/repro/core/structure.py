"""The gated layer graph: nodes, ∀-gates, ∃-gates, and seed selection.

Top-k processing over layer indexes is a graph-traversal problem (§IV).
This module holds the traversal-ready representation shared by DL, DL+, DG
and DG+:

* *nodes* are real tuples (ids ``0..n_real-1``) plus optional zero-layer
  pseudo-tuples (ids ``>= n_real``);
* a node's **∀-gate** (Definition 7) opens when *all* of its ∀-parents have
  been popped into the answer;
* a node's **∃-gate** (Definition 8) opens when *any* of its ∃-parents has
  been popped;
* a node may be *accessed* — scored and enqueued — only when both gates are
  open (Theorem 3);
* the *seeds* are the nodes whose gates are open at query start (``L^{11}``
  for plain DL; the zero layer's first sublayer for DL+; a single
  weight-range entry tuple in 2-D).

Construction code appends edges through :class:`StructureBuilder`; the
frozen :class:`LayerStructure` is what the query engine consumes.

Memory layout
-------------
Child adjacency is stored in **CSR form**: ``forall_indices[forall_indptr
[p]:forall_indptr[p + 1]]`` are the ∀-children of node ``p`` (likewise
``exists_*`` for ∃-children), both ``np.intp``.  The traversal hot path
(:func:`repro.core.query.process_top_k`) slices these flat arrays directly
— one bounds lookup and one view per pop instead of a Python list of
per-node arrays — and relaxes whole child slices with numpy ops.  Layer
placement is likewise array-backed (``coarse_levels`` / ``fine_levels``,
``-1`` for unplaced nodes); :class:`LayerLevelMap` keeps the historical
dict-style access (``structure.coarse_of[node]`` / ``.get(node)``) working
on top of the arrays.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import IndexConstructionError


@dataclass(frozen=True)
class BuilderFragment:
    """Picklable slice of builder state produced by one parallel-build worker.

    Each field mirrors one accumulation stream of :class:`StructureBuilder`
    (``None`` means the worker produced nothing for that stream); the parent
    process folds fragments back in with
    :meth:`StructureBuilder.merge_fragment`.  Because ``freeze`` deduplicates
    edges and emits canonical CSR, merge order cannot affect the frozen
    structure.
    """

    placements: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
    forall_edges: tuple[np.ndarray, np.ndarray] | None = None
    exists_edges: tuple[np.ndarray, np.ndarray] | None = None


class CSRAdjacency:
    """Read-only per-node view over a CSR ``(indptr, indices)`` pair.

    Supports the per-node access pattern of the pre-CSR representation —
    ``adjacency[node]`` returns the node's child ids as an ``np.intp``
    array (a zero-copy slice of the flat index array) — so callers written
    against ``list[np.ndarray]`` adjacency keep working unchanged.
    """

    __slots__ = ("indptr", "indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = indptr
        self.indices = indices

    def __getitem__(self, node: int) -> np.ndarray:
        if node < 0:  # forbid python negative indexing: node ids are >= 0
            raise IndexError(f"node id must be >= 0, got {node}")
        return self.indices[self.indptr[node] : self.indptr[node + 1]]

    def __len__(self) -> int:
        return self.indptr.shape[0] - 1

    def __iter__(self):
        for node in range(len(self)):
            yield self[node]


class LayerLevelMap:
    """Dict-compatible view over an array of per-node layer levels.

    ``levels[node] == -1`` encodes "not placed" and maps to the dict
    behaviours existing callers rely on: ``map[node]`` raises ``KeyError``,
    ``map.get(node)`` returns the default, ``node in map`` is False.
    """

    __slots__ = ("levels",)

    def __init__(self, levels: np.ndarray) -> None:
        self.levels = levels

    def __getitem__(self, node: int) -> int:
        if 0 <= node < self.levels.shape[0]:
            level = self.levels[node]
            if level >= 0:
                return int(level)
        raise KeyError(node)

    def get(self, node: int, default=None):
        if 0 <= node < self.levels.shape[0]:
            level = self.levels[node]
            if level >= 0:
                return int(level)
        return default

    def __contains__(self, node) -> bool:
        return self.get(node) is not None

    def __len__(self) -> int:
        return int(np.count_nonzero(self.levels >= 0))

    def __iter__(self):
        return iter(np.nonzero(self.levels >= 0)[0].tolist())

    def items(self):
        for node in self:
            yield node, int(self.levels[node])


class StructureBuilder:
    """Mutable accumulator for nodes and gates during index construction.

    Two ingestion granularities share one store:

    * the scalar API (:meth:`place`, :meth:`add_forall_parents`,
      :meth:`add_exists_parents`) used by the zero-layer decorators and the
      per-node reference build;
    * the bulk API (:meth:`place_many`, :meth:`add_forall_edges`,
      :meth:`add_exists_edges`) used by the vectorized pipeline and by the
      parallel build's fragment merge — whole arrays per call, no per-node
      Python loop.

    Everything is accumulated as ``(child, parent)`` edge chunks and
    placement chunks; :meth:`freeze` deduplicates, validates, and emits the
    **canonical** CSR layout: per-parent child runs sorted ascending.  The
    canonical order makes the frozen structure independent of ingestion
    order, which is what lets a parallel build's merged fragments compare
    array-equal to the sequential build.
    """

    def __init__(self, real_values: np.ndarray) -> None:
        self.real_values = np.atleast_2d(np.asarray(real_values, dtype=np.float64))
        self.n_real = self.real_values.shape[0]
        self.pseudo_values: list[np.ndarray] = []
        #: Edge chunks: pairs of equal-length (children, parents) arrays.
        self._forall_chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self._exists_chunks: list[tuple[np.ndarray, np.ndarray]] = []
        #: Placement chunks: (nodes, coarse_levels, fine_levels) arrays,
        #: applied in order at freeze (last placement of a node wins).
        self._placement_chunks: list[
            tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = []
        #: Scalar-place buffer, flushed into the chunk list lazily.
        self._pending_nodes: list[int] = []
        self._pending_coarse: list[int] = []
        self._pending_fine: list[int] = []
        self.static_seeds: list[int] = []
        self.seed_selector: Callable[[np.ndarray], np.ndarray] | None = None
        self.num_coarse_layers = 0
        self.complete = True

    def add_pseudo_node(self, value: np.ndarray) -> int:
        """Register a zero-layer pseudo-tuple; returns its node id."""
        node = self.n_real + len(self.pseudo_values)
        self.pseudo_values.append(np.asarray(value, dtype=np.float64))
        return node

    def place(self, node: int, coarse: int, fine: int) -> None:
        """Record the (coarse, fine) layer of a node and mark it materialized."""
        self._pending_nodes.append(node)
        self._pending_coarse.append(coarse)
        self._pending_fine.append(fine)

    def place_many(
        self,
        nodes: np.ndarray,
        coarse: int | np.ndarray,
        fine: int | np.ndarray,
    ) -> None:
        """Bulk :meth:`place`: one chunk of nodes with scalar or per-node levels."""
        nodes = np.asarray(nodes, dtype=np.intp)
        self._flush_pending()
        self._placement_chunks.append(
            (
                nodes,
                np.broadcast_to(np.asarray(coarse, dtype=np.int64), nodes.shape),
                np.broadcast_to(np.asarray(fine, dtype=np.int64), nodes.shape),
            )
        )

    def _flush_pending(self) -> None:
        if self._pending_nodes:
            self._placement_chunks.append(
                (
                    np.asarray(self._pending_nodes, dtype=np.intp),
                    np.asarray(self._pending_coarse, dtype=np.int64),
                    np.asarray(self._pending_fine, dtype=np.int64),
                )
            )
            self._pending_nodes = []
            self._pending_coarse = []
            self._pending_fine = []

    def add_forall_parents(self, node: int, parents: Iterable[int]) -> None:
        """Attach ∀-parents (all must pop before ``node`` opens)."""
        parents = np.asarray(
            [int(p) for p in parents] if not isinstance(parents, np.ndarray)
            else parents,
            dtype=np.intp,
        )
        if parents.shape[0]:
            self._forall_chunks.append(
                (np.full(parents.shape[0], node, dtype=np.intp), parents)
            )

    def add_exists_parents(self, node: int, parents: Iterable[int]) -> None:
        """Attach ∃-parents (any popping opens ``node``'s ∃-gate)."""
        parents = np.asarray(
            [int(p) for p in parents] if not isinstance(parents, np.ndarray)
            else parents,
            dtype=np.intp,
        )
        if parents.shape[0]:
            self._exists_chunks.append(
                (np.full(parents.shape[0], node, dtype=np.intp), parents)
            )

    def add_forall_edges(self, children: np.ndarray, parents: np.ndarray) -> None:
        """Bulk ∀-edges: parallel ``(children, parents)`` id arrays."""
        children = np.asarray(children, dtype=np.intp)
        parents = np.asarray(parents, dtype=np.intp)
        if children.shape[0] != parents.shape[0]:
            raise IndexConstructionError(
                f"edge arrays disagree: {children.shape[0]} children vs "
                f"{parents.shape[0]} parents"
            )
        if children.shape[0]:
            self._forall_chunks.append((children, parents))

    def add_exists_edges(self, children: np.ndarray, parents: np.ndarray) -> None:
        """Bulk ∃-edges: parallel ``(children, parents)`` id arrays."""
        children = np.asarray(children, dtype=np.intp)
        parents = np.asarray(parents, dtype=np.intp)
        if children.shape[0] != parents.shape[0]:
            raise IndexConstructionError(
                f"edge arrays disagree: {children.shape[0]} children vs "
                f"{parents.shape[0]} parents"
            )
        if children.shape[0]:
            self._exists_chunks.append((children, parents))

    def extract_fragment(self) -> "BuilderFragment":
        """Snapshot this builder's accumulated state as one picklable fragment.

        Used worker-side by the parallel build: the worker accumulates into
        a throwaway builder, extracts the fragment, and ships it back for
        :meth:`merge_fragment` in the parent.
        """
        self._flush_pending()

        def _concat(
            chunks: list[tuple[np.ndarray, ...]],
        ) -> tuple[np.ndarray, ...] | None:
            if not chunks:
                return None
            return tuple(
                np.concatenate([chunk[i] for chunk in chunks])
                for i in range(len(chunks[0]))
            )

        return BuilderFragment(
            placements=_concat(self._placement_chunks),
            forall_edges=_concat(self._forall_chunks),
            exists_edges=_concat(self._exists_chunks),
        )

    def merge_fragment(self, fragment: "BuilderFragment") -> None:
        """Fold a worker-local fragment (parallel build) into this builder."""
        if fragment.placements is not None:
            self._flush_pending()
            self._placement_chunks.append(fragment.placements)
        if fragment.forall_edges is not None:
            self.add_forall_edges(*fragment.forall_edges)
        if fragment.exists_edges is not None:
            self.add_exists_edges(*fragment.exists_edges)

    @staticmethod
    def _dedupe_pairs(
        chunks: list[tuple[np.ndarray, np.ndarray]], n_nodes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Unique ``(child, parent)`` pairs from all chunks, child-major."""
        if not chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        children = np.concatenate([c for c, _ in chunks]).astype(np.int64)
        parents = np.concatenate([p for _, p in chunks]).astype(np.int64)
        if np.any(children < 0) or np.any(parents < 0):
            raise IndexConstructionError("edge ids must be >= 0")
        encoded = np.unique(children * np.int64(n_nodes) + parents)
        return encoded // n_nodes, encoded % n_nodes

    @staticmethod
    def _pairs_to_csr(
        children: np.ndarray, parents: np.ndarray, n_nodes: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Canonical CSR from deduplicated pairs: per-parent ascending runs."""
        order = np.lexsort((children, parents))
        indptr = np.zeros(n_nodes + 1, dtype=np.intp)
        np.cumsum(np.bincount(parents, minlength=n_nodes), out=indptr[1:])
        return indptr, children[order].astype(np.intp)

    def freeze(self) -> "LayerStructure":
        """Validate and produce the immutable traversal structure."""
        n_nodes = self.n_real + len(self.pseudo_values)
        values = (
            np.vstack([self.real_values, np.asarray(self.pseudo_values)])
            if self.pseudo_values
            else self.real_values
        )
        self._flush_pending()

        f_children, f_parents = self._dedupe_pairs(self._forall_chunks, n_nodes)
        e_children, e_parents = self._dedupe_pairs(self._exists_chunks, n_nodes)
        forall_count = np.bincount(f_children, minlength=n_nodes).astype(np.int64)
        exists_gated = np.bincount(e_children, minlength=n_nodes).astype(bool)

        coarse_levels = np.full(n_nodes, -1, dtype=np.int64)
        fine_levels = np.full(n_nodes, -1, dtype=np.int64)
        placed_mask = np.zeros(n_nodes, dtype=bool)
        for nodes, coarse, fine in self._placement_chunks:
            coarse_levels[nodes] = coarse
            fine_levels[nodes] = fine
            placed_mask[nodes] = True
        materialized = np.nonzero(placed_mask)[0].astype(np.intp)

        if self.complete and materialized.shape[0] != n_nodes:
            raise IndexConstructionError(
                f"complete structure must place every node: "
                f"{materialized.shape[0]} of {n_nodes} placed"
            )
        # Every materialized non-seed node must have at least one gate,
        # otherwise it could never be reached by the traversal.
        if self.seed_selector is None and materialized.shape[0]:
            gateless = (forall_count[materialized] == 0) & ~exists_gated[materialized]
            if np.any(gateless):
                unreachable = materialized[gateless][
                    ~np.isin(
                        materialized[gateless],
                        np.asarray(sorted(set(self.static_seeds)), dtype=np.intp),
                    )
                ]
                if unreachable.shape[0]:
                    raise IndexConstructionError(
                        f"node {int(unreachable[0])} is unreachable: "
                        "no gates and not a seed"
                    )

        forall_indptr, forall_indices = self._pairs_to_csr(
            f_children, f_parents, n_nodes
        )
        exists_indptr, exists_indices = self._pairs_to_csr(
            e_children, e_parents, n_nodes
        )

        layer_bounds = compute_layer_bounds(values, coarse_levels, fine_levels)
        sublayer_bounds = compute_sublayer_bounds(
            values, coarse_levels, fine_levels
        )

        return LayerStructure(
            values=values,
            n_real=self.n_real,
            forall_parent_count=forall_count,
            forall_indptr=forall_indptr,
            forall_indices=forall_indices,
            exists_gated=exists_gated,
            exists_indptr=exists_indptr,
            exists_indices=exists_indices,
            static_seeds=np.asarray(sorted(set(self.static_seeds)), dtype=np.intp),
            seed_selector=self.seed_selector,
            coarse_levels=coarse_levels,
            fine_levels=fine_levels,
            num_coarse_layers=self.num_coarse_layers,
            complete=self.complete,
            layer_bounds=layer_bounds,
            sublayer_bounds=sublayer_bounds,
        )


#: Nodes per bound block (see :func:`compute_layer_bounds`).  Small blocks
#: keep the per-block minima close to their members' actual values — the
#: measured skip rate roughly halves at 8 and halves again at 16 — while a
#: block of 4 still keeps the metadata table at a quarter of the data size.
BOUND_BLOCK_SIZE = 4


def compute_layer_bounds(
    values: np.ndarray,
    coarse_levels: np.ndarray,
    fine_levels: np.ndarray,
    block_size: int = BOUND_BLOCK_SIZE,
) -> tuple[np.ndarray, np.ndarray]:
    """The dual-resolution layer bound table: ``(block_of, block_mins)``.

    Every placed node is assigned to a *bound block*: within each
    ``(coarse, fine)`` sublayer, members are sorted by value (lexicographic
    over attributes, node id as the final tie-break — fully deterministic)
    and chunked into runs of ``block_size``.  ``block_mins[b]`` holds the
    per-attribute minima of block ``b``'s members, so for strictly positive
    weights ``block_mins[b] @ w`` lower-bounds the score of every member —
    the same small-metadata-over-sorted-data trick as columnar zonemaps,
    with the sort making neighbours value-coherent and the bound therefore
    tight.  The pruned kernels (:func:`repro.core.query.process_top_k`)
    consult the bound of a just-opened node's block and skip the node when
    the bound already exceeds the running k-th score.

    ``block_of`` is ``-1`` for unplaced nodes, and ``block_mins`` carries a
    trailing sentinel row of ``-inf`` so that fancy-indexing with ``-1``
    lands on a bound no finite score can beat: unplaced nodes are never
    skipped.

    Within a sublayer, members are ordered by their **value sum** (total
    across attributes) before chunking.  The bound the kernel compares is
    ``block_mins[b] @ w`` with positive normalized weights, i.e. a
    weighted mean of the per-attribute minima — grouping tuples whose
    totals are close keeps every attribute's block minimum near the
    members' actual values simultaneously, where the former lexicographic
    order only kept the *first* attribute coherent and let the minima of
    the remaining attributes collapse toward the sublayer floor.  Tighter
    minima raise the bound, which is what lets pruning keep biting at
    k=64 instead of only at k<=10.  Ties fall back to the full value
    lexicographic order and finally the node id, so the assignment stays
    fully deterministic.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    d = values.shape[1] if values.ndim == 2 else 0
    block_of = np.full(n, -1, dtype=np.intp)
    placed = np.nonzero(coarse_levels >= 0)[0]
    if placed.shape[0] == 0:
        return block_of, np.full((1, d), -np.inf, dtype=np.float64)
    # lexsort: last key is primary — (coarse, fine, sum, v_0 .. v_{d-1}, id).
    keys = (placed,) + tuple(
        values[placed, j] for j in range(d - 1, -1, -1)
    ) + (values[placed].sum(axis=1), fine_levels[placed], coarse_levels[placed])
    order = np.lexsort(keys)
    nodes = placed[order]
    cl = coarse_levels[nodes]
    fl = fine_levels[nodes]
    m = nodes.shape[0]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    new_group[1:] = (cl[1:] != cl[:-1]) | (fl[1:] != fl[:-1])
    group_id = np.cumsum(new_group) - 1
    starts = np.nonzero(new_group)[0]
    chunk = (np.arange(m) - starts[group_id]) // block_size
    new_block = new_group.copy()
    new_block[1:] |= chunk[1:] != chunk[:-1]
    block_id = np.cumsum(new_block) - 1
    n_blocks = int(block_id[-1]) + 1
    mins = np.full((n_blocks + 1, d), np.inf, dtype=np.float64)
    np.minimum.at(mins, block_id, values[nodes])
    mins[n_blocks] = -np.inf  # sentinel row for block_of == -1
    block_of[nodes] = block_id
    return block_of, mins


def compute_sublayer_bounds(
    values: np.ndarray,
    coarse_levels: np.ndarray,
    fine_levels: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """The coarse level of the bound hierarchy: ``(sublayer_of, sublayer_mins)``.

    One row of per-attribute minima per ``(coarse, fine)`` sublayer —
    hundreds of rows where the block table has tens of thousands.  Since a
    sublayer's minimum is <= every one of its blocks' minima, a sublayer
    bound that already exceeds the running k-th score proves *every* block
    inside it prunable; the pruned solo kernel caches that verdict per
    query (the k-th floor only descends, so it can never be invalidated)
    and skips the per-node block gather for the whole sublayer from then
    on.  Conversely a sublayer that fails the test costs one extra small
    gather before the exact block check — the drop *set* is always
    identical to block-only pruning, which is what keeps the batch kernel
    (block-only) count-compatible with the solo kernel.

    ``sublayer_of`` is ``-1`` for unplaced nodes and ``sublayer_mins``
    carries the same trailing ``-inf`` sentinel row as the block table, so
    unplaced nodes can never be skipped.  Depends only on placements and
    values — v1 snapshots (which persist no sublayer arrays) rebuild it
    lazily with bounds identical to a freeze-time computation.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    d = values.shape[1] if values.ndim == 2 else 0
    sublayer_of = np.full(n, -1, dtype=np.intp)
    placed = np.nonzero(coarse_levels >= 0)[0]
    if placed.shape[0] == 0:
        return sublayer_of, np.full((1, d), -np.inf, dtype=np.float64)
    order = np.lexsort((fine_levels[placed], coarse_levels[placed]))
    nodes = placed[order]
    cl = coarse_levels[nodes]
    fl = fine_levels[nodes]
    m = nodes.shape[0]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    new_group[1:] = (cl[1:] != cl[:-1]) | (fl[1:] != fl[:-1])
    group_id = np.cumsum(new_group) - 1
    n_subs = int(group_id[-1]) + 1
    mins = np.full((n_subs + 1, d), np.inf, dtype=np.float64)
    np.minimum.at(mins, group_id, values[nodes])
    mins[n_subs] = -np.inf  # sentinel row for sublayer_of == -1
    sublayer_of[nodes] = group_id
    return sublayer_of, mins


def compute_block_extrema(
    values: np.ndarray,
    rows: np.ndarray,
    block_size: int = 2 * BOUND_BLOCK_SIZE,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Two-sided zonemap over an arbitrary candidate row set.

    The one-sided trick behind :func:`compute_layer_bounds` (value-sum
    sorting makes block neighbours value-coherent, so per-attribute block
    minima stay tight) generalized to both sides: ``rows`` are sorted by
    ``(value sum, value lex, row id)`` and chunked into runs of
    ``block_size``; the result is ``(block_rows, mins, maxs)`` where
    ``block_rows[b]`` lists block ``b``'s members and ``mins[b]`` /
    ``maxs[b]`` their per-attribute extrema.  For strictly positive
    weights and any score contraction that is monotone per attribute (the
    kernels' fixed-order ``einsum`` is), ``mins[b] · w`` lower-bounds and
    ``maxs[b] · w`` upper-bounds every member's score *in float*, not just
    in real arithmetic — which is what lets the reverse top-k screens
    (:mod:`repro.analytics.reverse`) certify membership decisions that are
    bitwise consistent with the walk kernels.

    Unlike the freeze-time tables this is placement-agnostic: analytics
    targets need bounds over a per-(target, k) candidate set, not over the
    whole structure.
    """
    values = np.asarray(values, dtype=np.float64)
    rows = np.asarray(rows, dtype=np.intp)
    d = values.shape[1] if values.ndim == 2 else 0
    if rows.shape[0] == 0:
        empty = np.empty((0, d), dtype=np.float64)
        return [], empty, empty
    block_size = max(1, int(block_size))
    keys = (rows,) + tuple(
        values[rows, j] for j in range(d - 1, -1, -1)
    ) + (values[rows].sum(axis=1),)
    ordered = rows[np.lexsort(keys)]
    m = ordered.shape[0]
    n_blocks = (m + block_size - 1) // block_size
    block_rows = [
        ordered[b * block_size : (b + 1) * block_size] for b in range(n_blocks)
    ]
    mins = np.empty((n_blocks, d), dtype=np.float64)
    maxs = np.empty((n_blocks, d), dtype=np.float64)
    for b, members in enumerate(block_rows):
        mins[b] = values[members].min(axis=0)
        maxs[b] = values[members].max(axis=0)
    return block_rows, mins, maxs


class LayerStructure:
    """Frozen gated layer graph consumed by the Algorithm 2 engine.

    Thread-safety contract: instances are immutable after
    :meth:`StructureBuilder.freeze` — the engine and every consumer treat
    all arrays and the seed selector as read-only, and per-query traversal
    state (gate counters, heap, enqueued flags, access counters) is always
    copied or freshly allocated per query.  A single structure may therefore
    be traversed by many threads concurrently without locking; the serving
    layer's thread pool (:mod:`repro.serving`) depends on this.  Seed
    selectors installed via ``seed_selector`` must likewise be stateless
    (both shipped selectors — static seeds and the 2-D weight-range binary
    search — are).

    Adjacency is CSR (see the module docstring): ``forall_indptr`` /
    ``forall_indices`` and ``exists_indptr`` / ``exists_indices`` are the
    flat layout the vectorized kernel slices; :attr:`forall_children` and
    :attr:`exists_children` are per-node views over the same arrays for
    callers that still walk one node at a time.
    """

    def __init__(
        self,
        *,
        values: np.ndarray,
        n_real: int,
        forall_parent_count: np.ndarray,
        forall_indptr: np.ndarray,
        forall_indices: np.ndarray,
        exists_gated: np.ndarray,
        exists_indptr: np.ndarray,
        exists_indices: np.ndarray,
        static_seeds: np.ndarray,
        seed_selector: Callable[[np.ndarray], np.ndarray] | None,
        coarse_levels: np.ndarray,
        fine_levels: np.ndarray,
        num_coarse_layers: int,
        complete: bool,
        layer_bounds: tuple[np.ndarray, np.ndarray] | None = None,
        sublayer_bounds: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.values = values
        self.n_real = n_real
        self.forall_parent_count = forall_parent_count
        self.forall_indptr = forall_indptr
        self.forall_indices = forall_indices
        self.exists_gated = exists_gated
        self.exists_indptr = exists_indptr
        self.exists_indices = exists_indices
        self.static_seeds = static_seeds
        self.seed_selector = seed_selector
        self.coarse_levels = coarse_levels
        self.fine_levels = fine_levels
        self.num_coarse_layers = num_coarse_layers
        self.complete = complete
        # Layer bound table (see :func:`compute_layer_bounds`).  Frozen
        # builds pass it eagerly; old pickles and hand-built structures fall
        # back to lazy computation in :meth:`layer_bound_table`.
        self._layer_bounds = layer_bounds
        # Sublayer-level bound table (see :func:`compute_sublayer_bounds`);
        # same eager-at-freeze / lazy-for-old-pickles contract.
        self._sublayer_bounds = sublayer_bounds
        # Lazy "no (parent, child) pair carries both edge kinds" flag (see
        # :meth:`edges_disjoint`); benign to race on.
        self._edges_disjoint: bool | None = None
        # Lazily extracted ``values[static_seeds]`` block shared by every
        # query (see :meth:`seed_block`); benign to race on — all writers
        # compute the identical array.
        self._seed_values: np.ndarray | None = None
        # Lazy Python-list copies of the CSR indptrs (see
        # :meth:`csr_indptr_lists`); same benign-race caching contract.
        self._indptr_lists: tuple[list[int], list[int]] | None = None
        # Lazy fused gate-state template (see :meth:`gate_state_template`).
        self._gate_state: np.ndarray | None = None

    def __getstate__(self) -> dict:
        """Drop the lazily derived caches; they rebuild on first use."""
        state = self.__dict__.copy()
        state["_seed_values"] = None
        state["_indptr_lists"] = None
        state["_gate_state"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        state.setdefault("_seed_values", None)
        state.setdefault("_indptr_lists", None)
        state.setdefault("_gate_state", None)
        # Pickles from before the layer bound table existed: recompute lazily.
        state.setdefault("_layer_bounds", None)
        state.setdefault("_sublayer_bounds", None)
        state.setdefault("_edges_disjoint", None)
        self.__dict__.update(state)

    @property
    def n_nodes(self) -> int:
        """Total node count (real tuples + pseudo-tuples)."""
        return self.values.shape[0]

    @property
    def n_pseudo(self) -> int:
        """Number of zero-layer pseudo-tuples."""
        return self.n_nodes - self.n_real

    @property
    def forall_children(self) -> CSRAdjacency:
        """Per-node view of the ∀-child CSR arrays."""
        return CSRAdjacency(self.forall_indptr, self.forall_indices)

    @property
    def exists_children(self) -> CSRAdjacency:
        """Per-node view of the ∃-child CSR arrays."""
        return CSRAdjacency(self.exists_indptr, self.exists_indices)

    @property
    def coarse_of(self) -> LayerLevelMap:
        """Dict-compatible view over :attr:`coarse_levels`."""
        return LayerLevelMap(self.coarse_levels)

    @property
    def fine_of(self) -> LayerLevelMap:
        """Dict-compatible view over :attr:`fine_levels`."""
        return LayerLevelMap(self.fine_levels)

    def is_pseudo(self, node: int) -> bool:
        """True for zero-layer nodes (never emitted as answers)."""
        return node >= self.n_real

    def seeds(self, weights: np.ndarray) -> np.ndarray:
        """Query-start nodes for a (normalized) weight vector."""
        if self.seed_selector is not None:
            return np.asarray(self.seed_selector(weights), dtype=np.intp)
        return self.static_seeds

    def seed_block(self) -> tuple[np.ndarray, np.ndarray]:
        """``(static_seeds, values[static_seeds])`` with the value block
        extracted once and reused by every query — the per-query seed
        scoring then costs a single matrix-vector product.  Only valid for
        static-seed structures (``seed_selector is None``)."""
        if self._seed_values is None:
            self._seed_values = self.values[self.static_seeds]
        return self.static_seeds, self._seed_values

    def csr_indptr_lists(self) -> tuple[list[int], list[int]]:
        """``(forall_indptr, exists_indptr)`` as cached Python lists.

        The traversal does two bounds lookups per gate per pop; plain-list
        indexing with Python ints is several times cheaper than numpy
        scalar extraction, so the kernel reads bounds from these lists and
        slices the flat index arrays with the resulting native ints.  Built
        once per structure and shared by every query (excluded from pickles
        and rebuilt on first use).
        """
        cached = self._indptr_lists
        if cached is None:
            cached = (self.forall_indptr.tolist(), self.exists_indptr.tolist())
            self._indptr_lists = cached
        return cached

    def gate_state_template(self) -> np.ndarray:
        """Initial per-node gate state fused into one integer array.

        The vectorized kernel encodes all three per-query gate facts in a
        single integer per node (see the :mod:`repro.core.query` docstring):

        ``state[v] = forall_parent_count[v] + (n_nodes + 1) * exists_gated[v]``

        A node is ready exactly when its state reaches 0; enqueueing stamps
        the sentinel ``-1`` so it can never re-open.  Built once per
        structure (``int32`` unless the node count forces 64-bit) and
        ``copy()``-ed per query — one array copy instead of a counter copy
        plus two boolean allocations.  Excluded from pickles and rebuilt on
        first use.
        """
        cached = self._gate_state
        if cached is None:
            # Max state = parent count + offset <= 2 * n_nodes + 1.
            dtype = np.int32 if self.n_nodes < 2**30 else np.int64
            cached = self.forall_parent_count.astype(dtype)
            cached[self.exists_gated] += self.n_nodes + 1
            self._gate_state = cached
        return cached

    def layer_bound_table(self) -> tuple[np.ndarray, np.ndarray]:
        """``(block_of, block_mins)`` — the dual-resolution bound table.

        See :func:`compute_layer_bounds`.  ``block_mins[block_of[v]] @ w``
        (with the kernel's own einsum contraction, so the rounding tree
        matches score computation) is a bitwise-safe lower bound on node
        ``v``'s score — the basis for the opt-in layer-bound skipping fast
        path.  Computed at freeze time; old pickles rebuild it here on
        first use (benign-race caching, like the other derived caches).
        """
        cached = self._layer_bounds
        if cached is None:
            cached = compute_layer_bounds(
                self.values, self.coarse_levels, self.fine_levels
            )
            self._layer_bounds = cached
        return cached

    @property
    def has_layer_bounds(self) -> bool:
        """True when the bound tables were attached at freeze/open time.

        Dispatch consults this before choosing a pruning-dependent plan:
        a structure without eager bounds (an old pickle, a hand-assembled
        graph) *could* prune via the lazy rebuild, but the O(n log n)
        first-use cost is the opposite of what ``prune=True`` promises, so
        ``auto`` declines instead.
        """
        return self._layer_bounds is not None

    def sublayer_bound_table(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sublayer_of, sublayer_mins)`` — the coarse bound level.

        See :func:`compute_sublayer_bounds`.  Computed at freeze time;
        v1 snapshots and old pickles rebuild it here on first use (the
        table depends only on placements and values, so the lazy result is
        identical to the freeze-time one).
        """
        cached = self._sublayer_bounds
        if cached is None:
            cached = compute_sublayer_bounds(
                self.values, self.coarse_levels, self.fine_levels
            )
            self._sublayer_bounds = cached
        return cached

    def edges_disjoint(self) -> bool:
        """True when no ``(parent, child)`` pair carries both edge kinds.

        Disjoint edge sets let a kernel fuse the ∀-decrement and ∃-ungate
        of one pop into a single gather (no node's state is written twice
        in the round).  All four shipped algorithms produce disjoint sets;
        the check is O(edges) and cached on the structure so both the
        batch and solo workspaces share one verdict.
        """
        cached = self._edges_disjoint
        if cached is None:
            n = np.int64(self.n_nodes)
            f_keys = (
                np.repeat(
                    np.arange(self.n_nodes, dtype=np.int64),
                    np.diff(self.forall_indptr),
                )
                * n
                + self.forall_indices
            )
            e_keys = (
                np.repeat(
                    np.arange(self.n_nodes, dtype=np.int64),
                    np.diff(self.exists_indptr),
                )
                * n
                + self.exists_indices
            )
            cached = bool(np.intersect1d(f_keys, e_keys).shape[0] == 0)
            self._edges_disjoint = cached
        return cached

    def edge_counts(self) -> dict[str, int]:
        """Diagnostics: number of ∀- and ∃-edges in the graph (O(1))."""
        return {
            "forall_edges": int(self.forall_indptr[-1]),
            "exists_edges": int(self.exists_indptr[-1]),
        }


#: Arrays that fully determine a frozen structure's traversal behaviour.
_STRUCTURE_ARRAYS = (
    "values",
    "forall_parent_count",
    "forall_indptr",
    "forall_indices",
    "exists_gated",
    "exists_indptr",
    "exists_indices",
    "static_seeds",
    "coarse_levels",
    "fine_levels",
)


def layer_structures_equal(a: LayerStructure, b: LayerStructure) -> bool:
    """True iff two frozen structures are array-equal.

    Compares every traversal-determining array (:data:`_STRUCTURE_ARRAYS`)
    plus the scalar metadata.  This is the oracle check the parallel build
    uses against the sequential build: canonical CSR makes equality exact,
    not merely isomorphic.
    """
    if (
        a.n_real != b.n_real
        or a.num_coarse_layers != b.num_coarse_layers
        or a.complete != b.complete
    ):
        return False
    return all(
        np.array_equal(getattr(a, name), getattr(b, name))
        for name in _STRUCTURE_ARRAYS
    )
