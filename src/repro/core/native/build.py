"""Build-or-first-use compilation of the native solo-walk kernel.

The kernel is plain C (``walker.c``) loaded through **cffi ABI mode**:
no ``Python.h``, no build-time extension machinery — just a shared
object produced by whatever C compiler the host has (``cc``/``gcc``/
``clang``, or ``$REPRO_NATIVE_CC``) and opened with ``ffi.dlopen``.
That keeps the compiled path *toolchain-only*: environments without a
compiler (or without cffi) simply never build it, and every caller
above falls back to the pure-python kernels.

The ``.so`` is cached under a version-keyed directory::

    $REPRO_NATIVE_CACHE | ~/.cache/repro-native / v{N}-{source-hash}-{machine}

so a source edit or a :data:`NATIVE_KERNEL_VERSION` bump changes the
key and triggers a rebuild — a stale library can never be loaded
against new source.  Compilation writes to a temp file and
``os.replace``\\ s it into place, so concurrent builders race benignly.
"""

from __future__ import annotations

import hashlib
import os
import platform
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.exceptions import NativeBuildError

#: Bump to invalidate every cached build (ABI or semantic change in
#: walker.c that the source hash alone would not capture, e.g. a
#: changed compile flag).
NATIVE_KERNEL_VERSION = 1

#: Compile flags. ``-ffp-contract=off`` is load-bearing: an FMA-fused
#: dot product produces different result bits and breaks the kernel's
#: bitwise-identity contract (the loader's self-check would refuse it).
CFLAGS = ("-O3", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")

SOURCE_PATH = Path(__file__).with_name("walker.c")

#: C declarations for ``ffi.cdef`` — must match walker.c exactly.
CDEF = """
double repro_dot(const double *v, const double *w, int64_t d);
int64_t repro_solo_walk(
    int64_t n_nodes, int64_t n_real, int64_t d,
    const double *values,
    const int64_t *f_indptr, const int64_t *f_indices,
    const int64_t *e_indptr, const int64_t *e_indices,
    int32_t exists_offset,
    const double *weights, int64_t k,
    const int64_t *seed_ids, const double *seed_sc, int64_t n_seeds,
    int32_t *state, const int32_t *template_state,
    uint8_t *dirty, int64_t *touched,
    double *heap_scores, int64_t *heap_ids,
    int64_t *opened_buf,
    double *kth_buf,
    int32_t prune,
    const int64_t *sub_of, const double *sub_mins, int64_t n_sub_rows,
    const int64_t *block_of, const double *block_mins, int64_t n_block_rows,
    uint8_t *pruned_sub,
    int64_t *out_ids, double *out_scores,
    int64_t *counts_out);
"""


def find_compiler() -> str | None:
    """Path of the C compiler to use, or ``None`` when the host has none.

    ``$REPRO_NATIVE_CC`` overrides discovery (set it to ``none`` to
    simulate a compiler-less host — the CI fallback job does exactly
    that); otherwise the first of ``cc``/``gcc``/``clang`` on PATH wins.
    """
    override = os.environ.get("REPRO_NATIVE_CC")
    if override is not None:
        if override.strip().lower() in ("", "none"):
            return None
        return override
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def source_digest() -> str:
    """Content hash of walker.c (part of the cache key)."""
    return hashlib.sha256(SOURCE_PATH.read_bytes()).hexdigest()[:16]


def cache_dir() -> Path:
    """Version-keyed directory holding the compiled library."""
    base = os.environ.get("REPRO_NATIVE_CACHE")
    if base:
        root = Path(base)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        root = Path(xdg) if xdg else Path.home() / ".cache"
        root = root / "repro-native"
    key = f"v{NATIVE_KERNEL_VERSION}-{source_digest()}-{platform.machine()}"
    return root / key


def library_path() -> Path:
    suffix = ".dll" if sys.platform == "win32" else ".so"
    return cache_dir() / f"repro_walker{suffix}"


def build_library(force: bool = False) -> tuple[Path, bool]:
    """Compile (or reuse) the native library; ``(path, was_cached)``.

    Raises :class:`~repro.exceptions.NativeBuildError` when no compiler
    is available or the compile fails — callers on the ``auto`` path
    catch it and fall back; the explicit ``kernel="native"`` path
    surfaces it as :class:`~repro.exceptions.KernelUnavailableError`.
    """
    target = library_path()
    if target.exists() and not force:
        return target, True
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError(
            "no C compiler found (set $REPRO_NATIVE_CC or install one of "
            "cc/gcc/clang); the native kernel cannot be built"
        )
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        suffix=target.suffix, prefix="repro_walker_", dir=target.parent
    )
    os.close(fd)
    cmd = [compiler, *CFLAGS, "-o", tmp_name, str(SOURCE_PATH)]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp_name)
        raise NativeBuildError(
            f"native kernel build could not run {compiler!r}: {exc}"
        ) from exc
    if proc.returncode != 0:
        os.unlink(tmp_name)
        detail = (proc.stderr or proc.stdout or "").strip()[-500:]
        raise NativeBuildError(
            f"native kernel build failed (exit {proc.returncode}, "
            f"compiler {compiler!r}): {detail}"
        )
    os.replace(tmp_name, target)  # atomic: concurrent builders race benignly
    return target, False
