/* Native solo gate walk — C implementation of the Algorithm-2 classic
 * schedule in repro/core/query.py (_solo_walk_classic).
 *
 * The contract is *bitwise identity* with the python kernels:
 *
 *   - Scoring reproduces numpy's einsum "j,j->" float association for
 *     d <= 7 (the SSE2 even/odd two-lane pairwise sum; see dot_pair).
 *     The python wrapper verifies this at load time via repro_dot and
 *     refuses the library on any platform where the association
 *     differs, so a wrong-bits build can never serve queries.
 *   - Heap keys (score, node) are unique — every node is enqueued at
 *     most once — so any correct binary min-heap pops the exact
 *     sequence heapq does; we need not mimic heapq's sift internals.
 *   - Pruning replicates the classic kernel's batch semantics: all
 *     prune decisions inside one opened batch compare against the k-th
 *     floor as of batch start; scores (and k-th updates) happen after
 *     the whole batch is filtered.  Definition-9 real/pseudo counts
 *     come out exact, not approximate.
 *
 * Compiled with -ffp-contract=off: a fused multiply-add would change
 * result bits and break the identity contract.
 *
 * The caller owns every buffer (numpy arrays managed from python); the
 * kernel allocates nothing.  On return the gate-state array has been
 * restored to template state and the dirty bitmap re-zeroed, so a
 * workspace can hand the same buffers to the next query unconditionally.
 */

#include <stdint.h>
#include <string.h>

/* Per-row dot product matching numpy einsum's "j,j->" reduction order
 * for d <= 7: two accumulator lanes over even/odd indices, products
 * folded in ascending pair order, odd-d remainder into the even lane,
 * lanes summed last.  (numpy's unroll-by-8 tree takes over at d >= 8;
 * the python wrapper never dispatches such structures here.) */
static double dot_pair(const double *v, const double *w, int64_t d) {
    double even = 0.0, odd = 0.0;
    int64_t j = 0;
    for (; j + 1 < d; j += 2) {
        even += v[j] * w[j];
        odd += v[j + 1] * w[j + 1];
    }
    if (j < d)
        even += v[j] * w[j];
    return even + odd;
}

/* Exported so the loader can verify the reduction order bitwise against
 * numpy before the library is ever allowed to answer a query. */
double repro_dot(const double *v, const double *w, int64_t d) {
    return dot_pair(v, w, d);
}

/* (score, id) lexicographic min-heap over parallel arrays. */
static inline int heap_less(double sa, int64_t ia, double sb, int64_t ib) {
    return sa < sb || (sa == sb && ia < ib);
}

static void heap_push(double *hs, int64_t *hi, int64_t *size,
                      double score, int64_t id) {
    int64_t i = (*size)++;
    while (i > 0) {
        int64_t parent = (i - 1) >> 1;
        if (!heap_less(score, id, hs[parent], hi[parent]))
            break;
        hs[i] = hs[parent];
        hi[i] = hi[parent];
        i = parent;
    }
    hs[i] = score;
    hi[i] = id;
}

static void heap_pop(double *hs, int64_t *hi, int64_t *size,
                     double *score, int64_t *id) {
    *score = hs[0];
    *id = hi[0];
    int64_t n = --(*size);
    double last_s = hs[n];
    int64_t last_i = hi[n];
    int64_t i = 0;
    for (;;) {
        int64_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n &&
            heap_less(hs[child + 1], hi[child + 1], hs[child], hi[child]))
            child++;
        if (!heap_less(hs[child], hi[child], last_s, last_i))
            break;
        hs[i] = hs[child];
        hi[i] = hi[child];
        i = child;
    }
    hs[i] = last_s;
    hi[i] = last_i;
}

/* Bounded max-heap of the k smallest real scores seen so far; its root
 * is the running k-th floor.  Matches python's negated-min-heap: the
 * multiset "k smallest so far" is order-independent, and only the root
 * (the k-th smallest) is ever read. */
static void kth_note(double *kh, int64_t *len, int64_t k, double *kth,
                     double score) {
    if (*len < k) {
        int64_t i = (*len)++;
        while (i > 0) {
            int64_t parent = (i - 1) >> 1;
            if (kh[parent] >= score)
                break;
            kh[i] = kh[parent];
            i = parent;
        }
        kh[i] = score;
        if (*len == k)
            *kth = kh[0];
    } else if (score < *kth) {
        int64_t i = 0;
        for (;;) {
            int64_t child = 2 * i + 1;
            if (child >= k)
                break;
            if (child + 1 < k && kh[child + 1] > kh[child])
                child++;
            if (kh[child] <= score)
                break;
            kh[i] = kh[child];
            i = child;
        }
        kh[i] = score;
        *kth = kh[0];
    }
}

#define POS_INF (1.0 / 0.0)

int64_t repro_solo_walk(
    /* structure */
    int64_t n_nodes, int64_t n_real, int64_t d,
    const double *values,
    const int64_t *f_indptr, const int64_t *f_indices,
    const int64_t *e_indptr, const int64_t *e_indices,
    int32_t exists_offset,
    /* query */
    const double *weights, int64_t k,
    const int64_t *seed_ids, const double *seed_sc, int64_t n_seeds,
    /* workspace (caller-owned; state/dirty in template/zero state) */
    int32_t *state, const int32_t *template_state,
    uint8_t *dirty, int64_t *touched,
    double *heap_scores, int64_t *heap_ids,
    int64_t *opened_buf,
    double *kth_buf,
    /* pruning (pointers may be NULL when prune == 0) */
    int32_t prune,
    const int64_t *sub_of, const double *sub_mins, int64_t n_sub_rows,
    const int64_t *block_of, const double *block_mins, int64_t n_block_rows,
    uint8_t *pruned_sub,
    /* outputs (capacity min(k, n_real)) */
    int64_t *out_ids, double *out_scores,
    int64_t *counts_out)
{
    int64_t heap_size = 0, touched_len = 0;
    int64_t real_acc = 0, pseudo_acc = 0;
    int64_t kth_len = 0;
    double kth_score = POS_INF;
    int64_t n_ans = 0;

    if (prune)
        memset(pruned_sub, 0, (size_t)n_sub_rows);

    /* Seed enqueue: stamp, count, push; then fold real seed scores into
     * the k-th floor (classic kernel order). */
    for (int64_t s = 0; s < n_seeds; s++) {
        int64_t node = seed_ids[s];
        if (!dirty[node]) {
            dirty[node] = 1;
            touched[touched_len++] = node;
        }
        state[node] = -1;
        if (node < n_real)
            real_acc++;
        else
            pseudo_acc++;
        heap_push(heap_scores, heap_ids, &heap_size, seed_sc[s], node);
    }
    if (prune && k > 0) {
        for (int64_t s = 0; s < n_seeds; s++)
            if (seed_ids[s] < n_real)
                kth_note(kth_buf, &kth_len, k, &kth_score, seed_sc[s]);
    }

    while (heap_size > 0 && n_ans < k) {
        double score;
        int64_t node;
        heap_pop(heap_scores, heap_ids, &heap_size, &score, &node);
        if (node < n_real) {
            out_ids[n_ans] = node;
            out_scores[n_ans] = score;
            n_ans++;
            if (n_ans >= k)
                break; /* don't relax the last answer's children */
        }

        /* Relax gates: ∀-children first, then ∃-children — the access
         * order of the reference kernel. */
        int64_t n_open = 0;
        for (int64_t p = f_indptr[node]; p < f_indptr[node + 1]; p++) {
            int64_t child = f_indices[p];
            if (!dirty[child]) {
                dirty[child] = 1;
                touched[touched_len++] = child;
            }
            if (--state[child] == 0)
                opened_buf[n_open++] = child;
        }
        for (int64_t p = e_indptr[node]; p < e_indptr[node + 1]; p++) {
            int64_t child = e_indices[p];
            int32_t st = state[child];
            if (st >= exists_offset) {
                if (!dirty[child]) {
                    dirty[child] = 1;
                    touched[touched_len++] = child;
                }
                st -= exists_offset;
                state[child] = st;
                if (st == 0)
                    opened_buf[n_open++] = child;
            }
        }
        if (n_open == 0)
            continue;

        /* Access batch: stamp every opened node as enqueued first (even
         * ones about to be pruned — they are dropped *as if* pushed). */
        for (int64_t i = 0; i < n_open; i++)
            state[opened_buf[i]] = -1;

        if (prune) {
            /* Filter against the k-th floor as of batch start.  A flag
             * set at level 2 by an earlier node in this batch short-
             * circuits later same-sublayer nodes at level 1 — the same
             * drop the bound recheck would produce, since kth_score is
             * frozen for the whole batch. */
            int64_t kept = 0;
            for (int64_t i = 0; i < n_open; i++) {
                int64_t child = opened_buf[i];
                int64_t sub = sub_of[child];
                if (sub < 0)
                    sub += n_sub_rows; /* unplaced: trailing -inf sentinel */
                if (pruned_sub[sub])
                    continue; /* level 1: sublayer already proven prunable */
                double sub_bound = dot_pair(sub_mins + sub * d, weights, d);
                if (sub_bound > kth_score) {
                    pruned_sub[sub] = 1; /* level 2: prune for the query */
                    continue;
                }
                int64_t block = block_of[child];
                if (block < 0)
                    block += n_block_rows;
                double bound = dot_pair(block_mins + block * d, weights, d);
                if (bound > kth_score)
                    continue; /* level 3: exact block bound */
                opened_buf[kept++] = child;
            }
            n_open = kept;
        }

        for (int64_t i = 0; i < n_open; i++) {
            int64_t child = opened_buf[i];
            double child_score = dot_pair(values + child * d, weights, d);
            if (child < n_real) {
                real_acc++;
                if (prune && k > 0)
                    kth_note(kth_buf, &kth_len, k, &kth_score, child_score);
            } else {
                pseudo_acc++;
            }
            heap_push(heap_scores, heap_ids, &heap_size, child_score, child);
        }
    }

    /* Restore the workspace: gate state back to template, dirty bitmap
     * back to zero, so the buffers are reusable without a reset pass. */
    for (int64_t i = 0; i < touched_len; i++) {
        int64_t node = touched[i];
        state[node] = template_state[node];
        dirty[node] = 0;
    }

    counts_out[0] = real_acc;
    counts_out[1] = pseudo_acc;
    return n_ans;
}
