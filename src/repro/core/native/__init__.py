"""Native compiled solo-walk kernel (cffi ABI mode + host C compiler).

Public surface:

* :func:`get_native_kernel` — build/load the library and return the
  ``process_top_k``-compatible callable (raises
  :class:`~repro.exceptions.NativeBuildError` when it cannot).
* :func:`native_ready` — non-raising availability probe used by the
  ``auto`` dispatch path (one logged warning on failure, then silence).
* :func:`build_info` — build outcome (``built``/``cached``/``failed``/
  ``unattempted``) for ``engine.stats()`` and operators.
* :class:`NativeWorkspace` — reusable per-structure scratch, the native
  analogue of :class:`~repro.core.query.QueryWorkspace`.
* :data:`NATIVE_KERNEL_VERSION` — bump to invalidate cached builds.
"""

from repro.core.native.build import (
    NATIVE_KERNEL_VERSION,
    build_library,
    cache_dir,
    find_compiler,
    library_path,
)
from repro.core.native.kernel import (
    NATIVE_MAX_DIM,
    NativeWorkspace,
    build_info,
    get_native_kernel,
    native_process_top_k,
    native_ready,
    native_supported,
)

__all__ = [
    "NATIVE_KERNEL_VERSION",
    "NATIVE_MAX_DIM",
    "NativeWorkspace",
    "build_info",
    "build_library",
    "cache_dir",
    "find_compiler",
    "get_native_kernel",
    "library_path",
    "native_process_top_k",
    "native_ready",
    "native_supported",
]
