"""Python wrapper for the compiled solo-walk kernel.

:func:`native_process_top_k` honours the
:func:`repro.core.query.process_top_k` signature and its bitwise
contract — same answer bytes, same Definition-9 counts — and is what
:func:`repro.core.dispatch.register_jit_kernel` receives when the
native library loads.  Queries the C kernel cannot serve bitwise
(``fetch_real`` storage reads, per-access trace hooks, d > 7 where
numpy's einsum switches to an unroll-by-8 reduction tree, or int64
gate-state structures) delegate to the python kernel transparently.

Load path
---------
The first load compiles or reuses the cached ``.so`` (see
:mod:`repro.core.native.build`), then runs a **bitwise self-check**:
``repro_dot`` must reproduce numpy's einsum ``"j,j->"`` bits exactly
for every supported dimensionality on a battery of random vectors.  A
platform whose einsum uses a different float association (or a build
that slipped FMA contraction in) fails the check and is refused — the
fallback ladder treats it exactly like a failed build, so a
wrong-bits library can never serve a query.
"""

from __future__ import annotations

import logging
import threading

import numpy as np

from repro.core.native.build import CDEF, build_library, library_path
from repro.core.query import process_top_k, seed_scores, _einsum
from repro.core.structure import LayerStructure
from repro.exceptions import IndexCapacityError, NativeBuildError

logger = logging.getLogger(__name__)

#: Highest dimensionality the C dot product reproduces bitwise (numpy's
#: pairwise einsum reduction switches association at d=8).
NATIVE_MAX_DIM = 7

_ffi = None
_lib = None
_status = "unattempted"  # unattempted | built | cached | failed
_detail = ""
_load_lock = threading.Lock()
_warned = False


def _fail(detail: str) -> None:
    global _status, _detail
    _status = "failed"
    _detail = detail
    raise NativeBuildError(detail)


def _self_check(ffi, lib) -> None:
    """Refuse the library unless its dot product matches einsum bitwise."""
    rng = np.random.default_rng(20120401)
    for d in range(1, NATIVE_MAX_DIM + 1):
        vals = rng.standard_normal((64, d))
        wts = rng.dirichlet(np.ones(d))
        w_ptr = ffi.cast("double *", wts.ctypes.data)
        expect = _einsum("ij,j->i", vals, wts)
        for i in range(vals.shape[0]):
            got = lib.repro_dot(
                ffi.cast("double *", vals[i].ctypes.data), w_ptr, d
            )
            if np.float64(got).tobytes() != expect[i].tobytes():
                _fail(
                    f"native kernel failed the bitwise scoring self-check at "
                    f"d={d}: this platform's einsum reduction order differs "
                    f"from the compiled dot product; refusing the library"
                )


def _load():
    """Build/open the library once per process; raise on any failure."""
    global _ffi, _lib, _status
    if _lib is not None:
        return _lib
    with _load_lock:
        if _lib is not None:
            return _lib
        if _status == "failed":
            raise NativeBuildError(_detail)
        if np.dtype(np.intp).itemsize != 8:
            _fail("native kernel requires a 64-bit platform (np.intp != int64)")
        try:
            import cffi
        except ImportError:
            _fail("cffi is not installed; the native kernel cannot load")
        try:
            path, was_cached = build_library()
        except NativeBuildError as exc:
            _fail(str(exc))
        ffi = cffi.FFI()
        ffi.cdef(CDEF)
        try:
            lib = ffi.dlopen(str(path))
        except OSError as exc:
            _fail(f"could not dlopen native kernel {path}: {exc}")
        _self_check(ffi, lib)
        _ffi = ffi
        _lib = lib
        _status = "cached" if was_cached else "built"
        return _lib


def native_ready(warn: bool = False) -> bool:
    """True when the compiled kernel is loadable; never raises.

    ``warn=True`` (the ``auto`` dispatch path) logs the failure detail
    once per process, then stays silent — build failure means one
    warning and a permanent fallback, not a per-query error stream.
    """
    global _warned
    try:
        _load()
        return True
    except Exception as exc:  # NativeBuildError or anything cffi raised
        if warn and not _warned:
            _warned = True
            logger.warning(
                "native walk kernel unavailable — kernel='auto' will serve "
                "via the python kernels (%s)", exc
            )
        return False


def build_info() -> dict:
    """Build/load outcome for observability: status, detail, cache path."""
    return {
        "status": _status,
        "detail": _detail,
        "path": str(library_path()),
    }


def _reset_for_tests() -> None:
    """Forget all load state (test helper — not part of the public API)."""
    global _ffi, _lib, _status, _detail, _warned
    with _load_lock:
        _ffi = None
        _lib = None
        _status = "unattempted"
        _detail = ""
        _warned = False


def native_supported(structure: LayerStructure) -> bool:
    """Can the C kernel serve this structure bitwise?"""
    return (
        1 <= structure.values.shape[1] <= NATIVE_MAX_DIM
        and structure.gate_state_template().dtype == np.int32
        and np.dtype(np.intp).itemsize == 8
    )


def _i64(array: np.ndarray) -> np.ndarray:
    out = np.ascontiguousarray(array, dtype=np.int64)
    return out


class _Prepared:
    """Per-structure buffers and cached cffi pointers (template-keyed)."""

    __slots__ = (
        "template", "n_nodes", "n_real", "d", "arrays", "ptrs",
        "state", "dirty", "touched", "heap_scores", "heap_ids",
        "opened", "kth", "counts", "prune_arrays", "prune_ptrs",
        "n_sub_rows", "n_block_rows", "pruned_sub",
    )

    def __init__(self, structure: LayerStructure) -> None:
        ffi = _ffi
        template = structure.gate_state_template()
        n = structure.n_nodes
        self.template = template
        self.n_nodes = n
        self.n_real = structure.n_real
        self.d = structure.values.shape[1]
        values = np.ascontiguousarray(structure.values, dtype=np.float64)
        f_indptr = _i64(structure.forall_indptr)
        f_indices = _i64(structure.forall_indices)
        e_indptr = _i64(structure.exists_indptr)
        e_indices = _i64(structure.exists_indices)
        self.state = template.copy()
        self.dirty = np.zeros(n, dtype=np.uint8)
        self.touched = np.empty(n, dtype=np.int64)
        self.heap_scores = np.empty(n, dtype=np.float64)
        self.heap_ids = np.empty(n, dtype=np.int64)
        self.opened = np.empty(n, dtype=np.int64)
        self.kth = np.empty(max(n, 1), dtype=np.float64)
        self.counts = np.zeros(2, dtype=np.int64)
        # Keep every backing array referenced for as long as its pointer
        # lives — cffi casts do not own the memory.
        self.arrays = (values, f_indptr, f_indices, e_indptr, e_indices)
        self.ptrs = {
            "values": ffi.cast("double *", values.ctypes.data),
            "f_indptr": ffi.cast("int64_t *", f_indptr.ctypes.data),
            "f_indices": ffi.cast("int64_t *", f_indices.ctypes.data),
            "e_indptr": ffi.cast("int64_t *", e_indptr.ctypes.data),
            "e_indices": ffi.cast("int64_t *", e_indices.ctypes.data),
            "state": ffi.cast("int32_t *", self.state.ctypes.data),
            "template": ffi.cast("int32_t *", template.ctypes.data),
            "dirty": ffi.cast("uint8_t *", self.dirty.ctypes.data),
            "touched": ffi.cast("int64_t *", self.touched.ctypes.data),
            "heap_scores": ffi.cast("double *", self.heap_scores.ctypes.data),
            "heap_ids": ffi.cast("int64_t *", self.heap_ids.ctypes.data),
            "opened": ffi.cast("int64_t *", self.opened.ctypes.data),
            "kth": ffi.cast("double *", self.kth.ctypes.data),
            "counts": ffi.cast("int64_t *", self.counts.ctypes.data),
        }
        self.prune_arrays = None
        self.prune_ptrs = None
        self.n_sub_rows = 0
        self.n_block_rows = 0
        self.pruned_sub = None

    def prune_pointers(self, structure: LayerStructure) -> dict:
        """Lazily gather + pin the bound tables (cached on the structure)."""
        if self.prune_ptrs is None:
            ffi = _ffi
            block_of, block_mins = structure.layer_bound_table()
            sub_of, sub_mins = structure.sublayer_bound_table()
            block_of = _i64(block_of)
            block_mins = np.ascontiguousarray(block_mins, dtype=np.float64)
            sub_of = _i64(sub_of)
            sub_mins = np.ascontiguousarray(sub_mins, dtype=np.float64)
            self.n_block_rows = block_mins.shape[0]
            self.n_sub_rows = sub_mins.shape[0]
            self.pruned_sub = np.zeros(self.n_sub_rows, dtype=np.uint8)
            self.prune_arrays = (block_of, block_mins, sub_of, sub_mins)
            self.prune_ptrs = {
                "sub_of": ffi.cast("int64_t *", sub_of.ctypes.data),
                "sub_mins": ffi.cast("double *", sub_mins.ctypes.data),
                "block_of": ffi.cast("int64_t *", block_of.ctypes.data),
                "block_mins": ffi.cast("double *", block_mins.ctypes.data),
                "pruned_sub": ffi.cast(
                    "uint8_t *", self.pruned_sub.ctypes.data
                ),
            }
        return self.prune_ptrs


class NativeWorkspace:
    """Reusable native-kernel scratch, following :class:`QueryWorkspace`.

    Checkout is non-blocking: a query that finds the workspace busy
    falls back to freshly allocated buffers (counted in
    :attr:`fallbacks`; the serving engine surfaces both counters).  The
    C kernel restores the gate-state array to template state before it
    returns, so the buffers need no python-side reset between queries.
    Buffers are keyed by gate-state-template *identity*, so a rebuilt
    structure transparently re-primes fresh state.
    """

    __slots__ = ("_lock", "_prepared", "_stats_lock", "checkouts", "fallbacks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._prepared: _Prepared | None = None
        self._stats_lock = threading.Lock()
        #: Queries served from the shared buffers (lock acquired).
        self.checkouts = 0
        #: Queries that found the workspace busy and allocated privately.
        self.fallbacks = 0

    def _checkout(self, structure: LayerStructure) -> _Prepared:
        prepared = self._prepared
        if (
            prepared is None
            or prepared.template is not structure.gate_state_template()
        ):
            prepared = _Prepared(structure)
            self._prepared = prepared
        self.checkouts += 1
        return prepared

    def _invalidate(self) -> None:
        self._prepared = None

    def _count_fallback(self) -> None:
        with self._stats_lock:
            self.fallbacks += 1


def native_process_top_k(
    structure: LayerStructure,
    weights: np.ndarray,
    k: int,
    counter,
    fetch_real=None,
    seeds=None,
    prune: bool = False,
    workspace: NativeWorkspace | None = None,
):
    """Compiled :func:`~repro.core.query.process_top_k` — same contract.

    Answers, heap order, and Definition-9 counts are bitwise identical
    to the python kernels; modes the C walk cannot observe faithfully
    (``fetch_real``, trace hooks, d > NATIVE_MAX_DIM, int64 gate state)
    delegate to :func:`process_top_k` unchanged.
    """
    trace_hook = getattr(counter, "count_real_tuple", None)
    if (
        fetch_real is not None
        or trace_hook is not None
        or not native_supported(structure)
    ):
        return process_top_k(
            structure, weights, k, counter,
            fetch_real=fetch_real, seeds=seeds, prune=prune,
        )
    lib = _load()
    ffi = _ffi
    if not structure.complete and k > structure.num_coarse_layers:
        raise IndexCapacityError(
            f"index was built with only {structure.num_coarse_layers} coarse "
            f"layers; top-{k} requires at least k layers"
        )

    w = np.ascontiguousarray(weights, dtype=np.float64)
    if seeds is None:
        seed_ids, seed_sc = seed_scores(structure, w)
    else:
        seed_ids, seed_sc = seeds
    seed_ids = _i64(seed_ids)
    seed_sc = np.ascontiguousarray(seed_sc, dtype=np.float64)

    ws_acquired = workspace is not None and workspace._lock.acquire(
        blocking=False
    )
    if workspace is not None and not ws_acquired:
        workspace._count_fallback()
    try:
        if ws_acquired:
            prepared = workspace._checkout(structure)
        else:
            prepared = _Prepared(structure)
        ptrs = prepared.ptrs
        if prune:
            pp = prepared.prune_pointers(structure)
        else:
            null = ffi.NULL
            pp = {
                "sub_of": null, "sub_mins": null,
                "block_of": null, "block_mins": null, "pruned_sub": null,
            }
        cap = max(min(int(k), prepared.n_real), 0)
        out_ids = np.empty(cap, dtype=np.intp)
        out_scores = np.empty(cap, dtype=np.float64)
        try:
            n_ans = lib.repro_solo_walk(
                prepared.n_nodes, prepared.n_real, prepared.d,
                ptrs["values"],
                ptrs["f_indptr"], ptrs["f_indices"],
                ptrs["e_indptr"], ptrs["e_indices"],
                structure.n_nodes + 1,
                ffi.cast("double *", w.ctypes.data), int(k),
                ffi.cast("int64_t *", seed_ids.ctypes.data),
                ffi.cast("double *", seed_sc.ctypes.data),
                seed_ids.shape[0],
                ptrs["state"], ptrs["template"],
                ptrs["dirty"], ptrs["touched"],
                ptrs["heap_scores"], ptrs["heap_ids"],
                ptrs["opened"],
                ptrs["kth"],
                1 if prune else 0,
                pp["sub_of"], pp["sub_mins"], prepared.n_sub_rows,
                pp["block_of"], pp["block_mins"], prepared.n_block_rows,
                pp["pruned_sub"],
                ffi.cast("int64_t *", out_ids.ctypes.data),
                ffi.cast("double *", out_scores.ctypes.data),
                ptrs["counts"],
            )
        except BaseException:
            if ws_acquired:
                workspace._invalidate()
            raise
        counter.count_real(int(prepared.counts[0]))
        counter.count_pseudo(int(prepared.counts[1]))
        return out_ids[:n_ans], out_scores[:n_ans]
    finally:
        if ws_acquired:
            workspace._lock.release()


def get_native_kernel():
    """Load the library and return the kernel callable (or raise)."""
    _load()
    return native_process_top_k
