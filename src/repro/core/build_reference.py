"""Reference BuildDualLayer: the original per-node Algorithm 1 oracle.

This is the pre-pipeline implementation of :mod:`repro.core.build`, kept
verbatim (per-node ``place`` calls, dict-based facet remap, dense
``dominance_matrix`` column walk, iterated ``sfs`` peel by default).  It is
deliberately *slow and obvious*: the vectorized and parallel pipelines are
asserted array-equal against it — same CSR indptr/indices, levels and seeds
— by the tier-1 tests and by ``build-bench``, the same oracle discipline the
query kernel uses with ``process_top_k_reference``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.build import DualLayerBlueprint
from repro.core.eds import assign_covering_facets
from repro.core.structure import StructureBuilder
from repro.geometry.convex_skyline import convex_skyline_with_facets
from repro.geometry.facets import Facet
from repro.skyline.dominance import dominance_matrix
from repro.skyline.layers import skyline_layers


def build_dual_layer_reference(
    points: np.ndarray,
    *,
    fine_sublayers: bool = True,
    max_layers: int | None = None,
    skyline_algorithm: str = "sfs",
    builder: StructureBuilder | None = None,
    freeze: bool = True,
    parallel: int | None = None,  # accepted for hook compatibility; unused
) -> DualLayerBlueprint:
    """Original one-node-at-a-time build; the pipeline's equality oracle."""
    del parallel
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    builder = builder if builder is not None else StructureBuilder(points)

    coarse, leftover = skyline_layers(points, skyline_algorithm, max_layers)
    builder.num_coarse_layers = len(coarse)
    builder.complete = leftover.shape[0] == 0

    fine_per_coarse: list[list[np.ndarray]] = []
    first_fine_facets: list[Facet] = []
    for i, layer in enumerate(coarse):
        sublayers, facets_of_first = _build_fine_sublayers_reference(
            builder, points, layer, coarse_index=i, enabled=fine_sublayers
        )
        fine_per_coarse.append(sublayers)
        first_fine_facets = facets_of_first if i == 0 else first_fine_facets
        if i > 0:
            _wire_forall_gates_reference(builder, points, coarse[i - 1], layer)

    if coarse:
        builder.static_seeds.extend(int(node) for node in fine_per_coarse[0][0])

    structure = builder.freeze() if freeze else None
    return DualLayerBlueprint(
        structure=structure,
        coarse_layers=coarse,
        fine_layers=fine_per_coarse,
        first_fine_facets=first_fine_facets,
        leftover=leftover,
    )


def _build_fine_sublayers_reference(
    builder: StructureBuilder,
    points: np.ndarray,
    layer: np.ndarray,
    *,
    coarse_index: int,
    enabled: bool,
) -> tuple[list[np.ndarray], list[Facet]]:
    """Per-node fine peel: scalar ``place`` calls, global facet remaps."""
    if not enabled:
        for node in layer:
            builder.place(int(node), coarse_index, 0)
        return [layer], [Facet(members=layer)]

    sublayers: list[np.ndarray] = []
    first_facets: list[Facet] = []
    remaining = layer
    prev_sublayer: np.ndarray | None = None
    prev_facets_global: list[Facet] = []
    j = 0
    while remaining.shape[0] > 0:
        local_vertices, local_facets = convex_skyline_with_facets(points[remaining])
        sublayer = remaining[local_vertices]
        facets_global = [
            replace(f, members=remaining[f.members]) for f in local_facets
        ]
        if j == 0:
            first_facets = facets_global
        else:
            _wire_exists_gates_reference(
                builder, points, prev_sublayer, prev_facets_global, sublayer
            )
        for node in sublayer:
            builder.place(int(node), coarse_index, j)
        sublayers.append(np.sort(sublayer).astype(np.intp))
        mask = np.ones(remaining.shape[0], dtype=bool)
        mask[local_vertices] = False
        remaining = remaining[mask]
        prev_sublayer = sublayer
        prev_facets_global = facets_global
        j += 1
    return sublayers, first_facets


def _wire_exists_gates_reference(
    builder: StructureBuilder,
    points: np.ndarray,
    prev_sublayer: np.ndarray,
    prev_facets_global: list[Facet],
    sublayer: np.ndarray,
) -> None:
    """Dict-based facet remap + one ``add_exists_parents`` call per node."""
    position_of = {int(node): pos for pos, node in enumerate(prev_sublayer)}
    local_facets = [
        replace(
            facet,
            members=np.asarray(
                [position_of[int(node)] for node in facet.members], dtype=np.intp
            ),
        )
        for facet in prev_facets_global
    ]
    assignments = assign_covering_facets(
        points[prev_sublayer], local_facets, points[sublayer]
    )
    for node, parents_local in zip(sublayer, assignments):
        builder.add_exists_parents(int(node), prev_sublayer[parents_local])


def _wire_forall_gates_reference(
    builder: StructureBuilder,
    points: np.ndarray,
    prev_layer: np.ndarray,
    layer: np.ndarray,
) -> None:
    """Dense dominance matrix + one ``add_forall_parents`` call per column."""
    matrix = dominance_matrix(points[prev_layer], points[layer])
    for col, node in enumerate(layer):
        parents = prev_layer[np.nonzero(matrix[:, col])[0]]
        if parents.shape[0]:
            builder.add_forall_parents(int(node), parents)
