"""Public DL / DL+ indexes — the paper's proposed algorithms.

:class:`DLIndex` is the dual-resolution layer of §III–IV: skyline coarse
layers, convex-skyline fine sublayers, ∀/∃-dominance gating.

:class:`DLPlusIndex` adds the §V zero layer for selective access to
``L^{11}``: a weight-range partition in 2-D, a dual-resolution clustered
pseudo-tuple layer in d ≥ 3.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import TopKIndex
from repro.core.build import build_dual_layer
from repro.core.query import process_top_k
from repro.core.structure import StructureBuilder
from repro.core.zero_layer import attach_chain_zero_layer, attach_clustered_zero_layer
from repro.relation import Relation
from repro.stats import AccessCounter


class DLIndex(TopKIndex):
    """Dual-resolution layer index (the paper's DL).

    Once built, ``self.structure`` is a frozen
    :class:`~repro.core.structure.LayerStructure` that is never mutated by
    queries — any number of threads may traverse it concurrently as long as
    each query keeps its own :class:`~repro.stats.AccessCounter` and heap
    (which :func:`~repro.core.query.process_top_k` and
    :class:`~repro.core.cursor.TopKCursor` do).  The serving engine
    (:mod:`repro.serving`) relies on this contract.

    Parameters
    ----------
    relation:
        Target relation.
    max_layers:
        Optional bound on materialized coarse layers; queries then support
        ``k <= max_layers``.  Benchmarks use this to build exactly the
        layers a workload can reach.
    skyline_algorithm:
        Coarse-layer skyline routine (``blocked`` default; ``sfs``, ``bnl``
        and ``bskytree`` run the classic iterated peel — the partition is
        identical either way).
    parallel:
        ``N > 1`` builds through the shared-memory worker pool (array-equal
        to the sequential build); ``None``/``1`` builds in-process.
    """

    name = "DL"
    _fine_sublayers = True
    #: Hook for tests/benchmarks to substitute a build implementation
    #: (e.g. the per-node oracle in :mod:`repro.core.build_reference`).
    _build_dual_layer = staticmethod(build_dual_layer)

    def __init__(
        self,
        relation: Relation,
        *,
        max_layers: int | None = None,
        skyline_algorithm: str = "blocked",
        parallel: int | None = None,
    ) -> None:
        super().__init__(relation)
        self.max_layers = max_layers
        self.skyline_algorithm = skyline_algorithm
        self.parallel = parallel
        self.structure = None
        self.blueprint = None

    def _build(self) -> None:
        blueprint = self._build_dual_layer(
            self.relation.matrix,
            fine_sublayers=self._fine_sublayers,
            max_layers=self.max_layers,
            skyline_algorithm=self.skyline_algorithm,
            parallel=self.parallel,
        )
        self.blueprint = blueprint
        self.structure = blueprint.structure
        self._record_stats()

    def _record_stats(self) -> None:
        blueprint = self.blueprint
        self.build_stats.num_layers = len(blueprint.coarse_layers)
        self.build_stats.layer_sizes = [
            int(layer.shape[0]) for layer in blueprint.coarse_layers
        ]
        profile = getattr(blueprint, "profile", None)
        if profile is not None:
            self.build_stats.stage_seconds = {
                stage: float(seconds)
                for stage, seconds in profile.stage_seconds.items()
            }
        counts = self.structure.edge_counts()
        self.build_stats.extra.update(counts)
        self.build_stats.extra["fine_sublayers"] = float(
            sum(len(sublayers) for sublayers in blueprint.fine_layers)
        )
        self.build_stats.extra["pseudo_tuples"] = float(self.structure.n_pseudo)

    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        return process_top_k(self.structure, weights, k, counter)

    def cursor(self, weights: np.ndarray) -> "TopKCursor":
        """A resumable paging cursor over this index for one weight vector."""
        from repro.core.cursor import TopKCursor

        if not self._built:
            self.build()
        return TopKCursor(self.structure, weights)


class DLPlusIndex(DLIndex):
    """DL with the §V zero layer (the paper's DL+).

    Parameters
    ----------
    clusters:
        k-means cluster count for the d ≥ 3 zero layer; default
        ``max(2, ⌈√|L¹|⌉)`` (see
        :func:`repro.core.zero_layer.default_cluster_count`).
    zero_layer:
        ``"auto"`` (weight ranges in 2-D, clusters otherwise),
        ``"chain"`` (force 2-D weight ranges; requires d == 2) or
        ``"clusters"`` (force clustered pseudo-tuples).
    seed:
        Seed for k-means.
    """

    name = "DL+"

    def __init__(
        self,
        relation: Relation,
        *,
        max_layers: int | None = None,
        skyline_algorithm: str = "blocked",
        parallel: int | None = None,
        clusters: int | None = None,
        zero_layer: str = "auto",
        seed: int = 0,
    ) -> None:
        super().__init__(
            relation,
            max_layers=max_layers,
            skyline_algorithm=skyline_algorithm,
            parallel=parallel,
        )
        if zero_layer not in ("auto", "chain", "clusters"):
            raise ValueError(f"unknown zero_layer mode {zero_layer!r}")
        if zero_layer == "chain" and relation.d != 2:
            raise ValueError("the weight-range zero layer is a 2-D construction")
        self.clusters = clusters
        self.zero_layer = zero_layer
        self.seed = seed
        self.weight_partition = None

    def _build(self) -> None:
        points = self.relation.matrix
        builder = StructureBuilder(points)
        blueprint = self._build_dual_layer(
            points,
            fine_sublayers=self._fine_sublayers,
            max_layers=self.max_layers,
            skyline_algorithm=self.skyline_algorithm,
            builder=builder,
            freeze=False,
            parallel=self.parallel,
        )
        if blueprint.coarse_layers:
            use_chain = self.zero_layer == "chain" or (
                self.zero_layer == "auto" and self.relation.d == 2
            )
            if use_chain:
                self.weight_partition = attach_chain_zero_layer(
                    builder, points, blueprint.fine_layers[0][0]
                )
            else:
                attach_clustered_zero_layer(
                    builder,
                    points,
                    blueprint.coarse_layers[0],
                    clusters=self.clusters,
                    fine_sublayers=self._fine_sublayers,
                    seed=self.seed,
                )
        blueprint.structure = builder.freeze()
        self.blueprint = blueprint
        self.structure = blueprint.structure
        self._record_stats()
