"""The common top-k index interface all algorithms implement.

Every index (DL, DL+, DG, DG+, HL, HL+, Onion, scan, ...) is constructed
over a :class:`~repro.relation.Relation` and answers ``query(weights, k)``
with a :class:`TopKResult`; the per-query :class:`~repro.stats.AccessCounter`
makes the paper's Definition 9 cost directly comparable across algorithms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidQueryError
from repro.relation import Relation, normalize_weights
from repro.stats import AccessCounter, BuildStats
from repro.stats.counters import Stopwatch


@dataclass
class TopKResult:
    """Answer of one top-k query.

    ``ids``/``scores`` are ascending by score; ``counter`` holds the
    evaluation cost (Definition 9).
    """

    ids: np.ndarray
    scores: np.ndarray
    counter: AccessCounter = field(default_factory=AccessCounter)

    @property
    def cost(self) -> int:
        """Tuples evaluated (real + pseudo) to answer this query."""
        return self.counter.total

    def __len__(self) -> int:
        return self.ids.shape[0]


class TopKIndex(ABC):
    """Base class: build once over a relation, answer many ``(w, k)`` queries."""

    #: Short algorithm name used in benchmark tables ("DL", "DG+", ...).
    name: str = "?"

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self.build_stats = BuildStats(algorithm=self.name, n=relation.n, d=relation.d)
        self._built = False
        #: Monotone structure version: bumped by every (re)build, so result
        #: caches keyed on it (see :mod:`repro.serving`) never serve answers
        #: computed against a previous incarnation of the index.
        self.version = 0

    def build(self) -> "TopKIndex":
        """Construct the index; returns self for chaining."""
        with Stopwatch() as timer:
            self._build()
        self.build_stats.seconds = timer.seconds
        self._built = True
        self.version = getattr(self, "version", 0) + 1
        return self

    def serve(self, **engine_kwargs) -> "repro.serving.QueryEngine":  # noqa: F821
        """A caching/batching :class:`~repro.serving.QueryEngine` over this index."""
        from repro.serving import QueryEngine

        return QueryEngine(self, **engine_kwargs)

    def query(
        self,
        weights: np.ndarray,
        k: int,
        counter: AccessCounter | None = None,
    ) -> TopKResult:
        """Answer a top-k query; validates inputs and normalizes weights."""
        if not self._built:
            self.build()
        if k < 1:
            raise InvalidQueryError(f"retrieval size k must be >= 1, got {k}")
        w = normalize_weights(weights, self.relation.d)
        counter = counter if counter is not None else AccessCounter()
        ids, scores = self._query(w, min(k, self.relation.n), counter)
        return TopKResult(ids=ids, scores=scores, counter=counter)

    @abstractmethod
    def _build(self) -> None:
        """Algorithm-specific construction (fills build_stats fields)."""

    @abstractmethod
    def _query(
        self, weights: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        """Algorithm-specific query; ``weights`` normalized, ``1 <= k <= n``."""
