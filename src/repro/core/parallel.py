"""Shared-memory worker pool for the parallel build (§IV at scale).

The parallel pipeline in :mod:`repro.core.build` fans per-coarse-layer work
out to a :class:`~concurrent.futures.ProcessPoolExecutor`.  Workers never
receive the relation itself — the ``(n, d)`` points matrix is copied once
into a :class:`multiprocessing.shared_memory.SharedMemory` segment and every
task ships only node-id arrays; workers gather rows from the shared buffer.

:class:`SharedPointsPool` owns both the segment and the executor and is used
as a context manager so the segment is always unlinked, even on build
failure.  Workers attach in the pool initializer; their re-registration of
the segment lands in the resource tracker the pool's processes share with
the parent (both fork and spawn pass the tracker down), where it is
idempotent — the parent's single ``unlink`` on close retires the entry.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

#: Worker-process global: (SharedMemory, ndarray view) after _attach_points.
_WORKER_POINTS: tuple[shared_memory.SharedMemory, np.ndarray] | None = None


def _attach_points(name: str, shape: tuple[int, ...], dtype_str: str) -> None:
    """Pool initializer: map the parent's points segment read-only-by-convention."""
    global _WORKER_POINTS
    shm = shared_memory.SharedMemory(name=name)
    view = np.ndarray(shape, dtype=np.dtype(dtype_str), buffer=shm.buf)
    _WORKER_POINTS = (shm, view)


def worker_points() -> np.ndarray:
    """The shared points matrix, callable from inside worker tasks only."""
    if _WORKER_POINTS is None:
        raise RuntimeError("worker_points() called outside a SharedPointsPool worker")
    return _WORKER_POINTS[1]


class SharedPointsPool:
    """A process pool whose workers all see one read-only points matrix.

    >>> with SharedPointsPool(points, processes=4) as pool:
    ...     fut = pool.submit(task_fn, node_ids)   # task gathers rows via
    ...     fut.result()                           # worker_points()[node_ids]
    """

    def __init__(self, points: np.ndarray, processes: int) -> None:
        points = np.ascontiguousarray(points, dtype=np.float64)
        self.processes = max(1, int(processes))
        self._shm = shared_memory.SharedMemory(create=True, size=points.nbytes)
        shared_view = np.ndarray(points.shape, dtype=points.dtype, buffer=self._shm.buf)
        shared_view[:] = points
        self._pool = ProcessPoolExecutor(
            max_workers=self.processes,
            initializer=_attach_points,
            initargs=(self._shm.name, points.shape, points.dtype.str),
        )

    def submit(self, fn, /, *args, **kwargs):
        return self._pool.submit(fn, *args, **kwargs)

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        self._shm.close()
        self._shm.unlink()

    def __enter__(self) -> "SharedPointsPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
