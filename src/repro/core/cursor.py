"""Incremental top-k: a resumable cursor over the gated traversal.

Interactive applications rarely know ``k`` up front — users page through
results ("show me 10 more").  Rebuilding the queue per page wastes exactly
the work the index saved, so :class:`TopKCursor` keeps Algorithm 2's state
(priority queue, gate counters) alive between calls: ``fetch(m)`` emits the
next ``m`` tuples in score order at the marginal cost of only the newly
opened gates.

The cursor is single-use per weight vector; create a new one to change the
preference.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.query import relax_gates, score_node, score_rows, seed_scores
from repro.core.structure import LayerStructure
from repro.exceptions import IndexCapacityError, InvalidQueryError
from repro.relation import normalize_weights
from repro.stats import AccessCounter


class TopKCursor:
    """Resumable best-first traversal of a layer structure.

    Parameters
    ----------
    structure:
        A frozen :class:`~repro.core.structure.LayerStructure` (obtain via
        ``index.structure`` on DL/DL+/DG/DG+).
    weights:
        Query weight vector (validated and normalized).
    """

    def __init__(self, structure: LayerStructure, weights: np.ndarray) -> None:
        self.structure = structure
        self.weights = normalize_weights(weights, structure.values.shape[1])
        self.counter = AccessCounter()
        self._remaining_forall = structure.forall_parent_count.copy()
        self._exists_open = ~structure.exists_gated
        self._enqueued = np.zeros(structure.n_nodes, dtype=bool)
        self._heap: list[tuple[float, int]] = []
        self._emitted = 0
        # A just-emitted node whose gate relaxation was deferred (mirrors
        # Algorithm 2's early exit — the caller may never ask for more).
        self._deferred: int | None = None
        seed_ids, scores = seed_scores(structure, self.weights)
        for pos, node in enumerate(seed_ids):
            node = int(node)
            if not self._enqueued[node]:
                self._access(node, float(scores[pos]))

    @property
    def emitted(self) -> int:
        """How many answers have been fetched so far."""
        return self._emitted

    @property
    def exhausted(self) -> bool:
        """True when no further tuple can be emitted.

        When the heap has drained but the last emission's gate relaxation
        was deferred, that relaxation is resolved here — it may enqueue
        further nodes, and only an empty heap afterwards means exhaustion.
        The relaxation's accesses are counted as usual; they would have been
        paid by the next ``fetch`` anyway.
        """
        if self._heap:
            return False
        if self._deferred is not None:
            node, self._deferred = self._deferred, None
            self._relax(node)
        return not self._heap

    def fetch(
        self, m: int, *, stop_score: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The next ``m`` tuples ``(ids, scores)`` in ascending score order.

        Returns fewer than ``m`` when the relation (or the materialized
        part of a bounded index) is exhausted; raises
        :class:`IndexCapacityError` when a partial index cannot guarantee
        the requested depth.  ``fetch(0)`` is a valid no-op returning empty
        arrays.

        ``stop_score`` is the **threshold hook** the cluster coordinator's
        scatter-gather merge uses (see :mod:`repro.cluster`): when given,
        the fetch also stops — *without consuming* — at the first tuple
        whose score strictly exceeds it (the tuple is pushed back onto the
        queue, so a later fetch re-emits it at no extra Definition 9 cost;
        accesses are counted at enqueue time, not at pop time).  Tuples
        scoring exactly ``stop_score`` are still emitted, so a caller
        merging several cursors can resolve score ties by id itself.
        Emissions are in ascending score order either way, so once a fetch
        stops early every future tuple of this cursor also exceeds the
        threshold.
        """
        if m < 0:
            raise InvalidQueryError(f"fetch size must be >= 0, got {m}")
        if m == 0:
            return (
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=np.float64),
            )
        target = self._emitted + m
        if not self.structure.complete and target > self.structure.num_coarse_layers:
            raise IndexCapacityError(
                f"index materializes {self.structure.num_coarse_layers} "
                f"coarse layers; cannot guarantee rank {target}"
            )
        if self._deferred is not None:
            node, self._deferred = self._deferred, None
            self._relax(node)

        ids: list[int] = []
        scores: list[float] = []
        n_real = self.structure.n_real
        while self._heap and len(ids) < m:
            score, node = heapq.heappop(self._heap)
            if node < n_real:
                if stop_score is not None and score > stop_score:
                    # Threshold hook: past the caller's global cutoff.  Push
                    # the tuple back unconsumed (its access was already
                    # counted at enqueue time, so this costs nothing) and
                    # stop; all later emissions score at least as high.
                    heapq.heappush(self._heap, (score, node))
                    break
                ids.append(node)
                scores.append(score)
                self._emitted += 1
                if len(ids) >= m:
                    self._deferred = node
                    break
            self._relax(node)
        return (
            np.asarray(ids, dtype=np.intp),
            np.asarray(scores, dtype=np.float64),
        )

    def __iter__(self):
        """Iterate ``(id, score)`` pairs until exhaustion."""
        while not self.exhausted:
            ids, scores = self.fetch(1)
            if ids.shape[0] == 0:
                return
            yield int(ids[0]), float(scores[0])

    def _relax(self, node: int) -> None:
        """Open the gates ``node``'s pop unlocks (vectorized CSR relax).

        Shares :func:`~repro.core.query.relax_gates` with the batch kernel,
        so the cursor's access order, scores, and Definition 9 accounting
        stay bitwise identical to a one-shot :func:`process_top_k` run at
        the same depth.
        """
        opened = relax_gates(
            self.structure,
            node,
            self._remaining_forall,
            self._exists_open,
            self._enqueued,
        )
        if opened is None:
            return
        self._enqueued[opened] = True
        n_real = self.structure.n_real
        scores = score_rows(self.structure.values, opened, self.weights)
        for child, score in zip(opened.tolist(), scores.tolist()):
            if child < n_real:
                self.counter.count_real()
            else:
                self.counter.count_pseudo()
            heapq.heappush(self._heap, (score, child))

    def _access(self, node: int, score: float | None = None) -> None:
        if score is None:
            score = score_node(self.structure.values, node, self.weights)
        if node < self.structure.n_real:
            self.counter.count_real()
        else:
            self.counter.count_pseudo()
        self._enqueued[node] = True
        heapq.heappush(self._heap, (score, node))
