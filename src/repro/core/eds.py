"""∃-dominance-set assignment between adjacent fine sublayers (§III-B).

Given the previous sublayer ``L^{ij}`` (its points and its lower-hull
facets) and the members of ``L^{i(j+1)}``, pick for each member one covering
∃-dominance set — a facet whose segment contains a virtual tuple weakly
dominating the member (Definition 5 restricted to the facet segment, which
is what makes Lemma 2 sound).

The assignment is geometric, not search-by-LP:

1. **Single-point cover** — a previous-sublayer point that weakly dominates
   the member is a one-point EDS (``λ = 1``); found for every member with
   one vectorized comparison.  (Rare between sublayers of one skyline layer,
   common for pseudo-tuple sets.)
2. **Ray shooting** — ``P = conv(L^{ij}) + R₊^d`` is exactly the
   intersection of its lower facets' half-spaces, so the downward ray
   ``t' - s·(1,...,1)`` exits ``P`` at ``s* = min_f s_f`` where
   ``s_f = (n_f·t' + o_f) / (n_f·1)``, and the exit point lies on the argmin
   facet.  A ``d×d`` barycentric solve confirms containment; the exit point
   itself is the witness ``t^V`` (it dominates ``t'`` by construction).
   Near-ties try the next few facets.
3. **LP fallback** — one feasibility LP over *all* sublayer points
   (``λ ≥ 0, Σλ = 1, Pᵀλ ≤ t'``); its vertex solution's support (≤ d+1
   points by Carathéodory) becomes the EDS.  Sound, because Lemma 2 only
   needs the virtual tuple to be a convex combination of the parents.

Coverage is guaranteed geometrically — every non-CSKY member of a mutually
non-dominated set lies in ``conv(CSKY) + R₊^d`` — and enforced at build
time: an uncoverable member raises :class:`IndexConstructionError`.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import IndexConstructionError
from repro.geometry.facets import Facet
from repro.geometry.feasibility import DEFAULT_TOL

#: How many near-minimal facets the ray fast path tries before the LP.
_RAY_CANDIDATES = 6
#: Barycentric slack: coordinates above -_BARY_TOL count as inside.
_BARY_TOL = 1e-7
#: Acceptance ceiling for the min-violation LP fallback.  Coverage between
#: adjacent sublayers is geometrically guaranteed, but HiGHS reports the
#: least-violating combination with its own feasibility tolerance on top of
#: float accumulation over the sublayer matrix — narrow directional subsets
#: (e.g. angular cluster shards) land a few multiples of _BARY_TOL away from
#: exact.  1e-6 stays at numerical-noise scale for data in [0, 1]^d while
#: still rejecting any genuinely uncovered target by many orders of
#: magnitude.
_LP_VIOLATION_TOL = 1e-6


def assign_covering_facets(
    prev_points: np.ndarray,
    prev_facets: list[Facet],
    target_points: np.ndarray,
    tol: float = DEFAULT_TOL,
) -> list[np.ndarray]:
    """For each target, indices (into ``prev_points``) of its EDS parents.

    ``prev_facets[*].members`` index into ``prev_points``; the returned
    parent arrays do too.  Raises :class:`IndexConstructionError` if any
    target cannot be covered even by the relaxed whole-sublayer EDS.
    """
    prev_points = np.atleast_2d(np.asarray(prev_points, dtype=np.float64))
    target_points = np.atleast_2d(np.asarray(target_points, dtype=np.float64))
    n_targets, d = target_points.shape
    if n_targets == 0:
        return []
    if prev_points.shape[0] == 0:
        raise IndexConstructionError("cannot cover targets from an empty sublayer")

    # Fast path 1: single-point weak dominator per target (vectorized).
    bounds = target_points + tol
    weak = np.all(prev_points[:, None, :] <= bounds[None, :, :], axis=2)
    single_parent = np.where(np.any(weak, axis=0), np.argmax(weak, axis=0), -1)

    # Exit-facet machinery: P = conv(sublayer) + R₊^d is exactly the
    # intersection of its facet half-spaces (pure *and* sentinel-mixed), so
    # the downward ray's exit parameter is min_f s_f.  A mixed-facet exit is
    # just as good a witness: the exit point is a convex combination of the
    # facet's real members plus non-negative axis directions, hence the real
    # members alone admit a combination below it.
    equipped = [f for f in prev_facets if f.normal is not None]
    if equipped:
        normals = np.vstack([f.normal for f in equipped])  # (f, d)
        offsets = np.asarray([f.offset for f in equipped])
        denom = normals.sum(axis=1)  # n·1, strictly negative for lower facets
        usable = denom < -1e-9
        normals, offsets, denom = normals[usable], offsets[usable], denom[usable]
        equipped = [f for f, u in zip(equipped, usable) if u]
    ray_ready = bool(equipped)
    mins = (
        np.vstack([prev_points[f.members].min(axis=0) for f in equipped])
        if ray_ready
        else None
    )

    # Fast path 2 (batched): one (targets × facets) ray matrix resolves the
    # exit facet for every target at once; only near-ties and misses drop to
    # the per-target machinery below.  ``unique_members`` caches each facet's
    # sorted member set so hit targets share one array per facet.
    if ray_ready:
        ray_hit, exit_facet = _batched_exit_facets(
            target_points, normals, offsets, denom, mins, tol
        )
        unique_members: dict[int, np.ndarray] = {}

    assignments: list[np.ndarray] = []
    for t in range(n_targets):
        if single_parent[t] >= 0:
            assignments.append(np.asarray([single_parent[t]], dtype=np.intp))
            continue
        if ray_ready and ray_hit[t]:
            facet_pos = int(exit_facet[t])
            chosen = unique_members.get(facet_pos)
            if chosen is None:
                chosen = np.unique(equipped[facet_pos].members).astype(np.intp)
                unique_members[facet_pos] = chosen
            assignments.append(chosen)
            continue
        target = target_points[t]
        chosen = _exit_facet_members(
            target, equipped, normals, offsets, denom, mins, tol
        ) if ray_ready else None
        if chosen is None:
            # Slow path: pure-facet ray + exact containment, then one LP
            # over the whole sublayer whose vertex support becomes the EDS.
            chosen = _verified_cover(prev_points, equipped, target, tol)
        if chosen is None:
            chosen = _lp_support(prev_points, target + tol)
        if chosen is None:
            # Boundary-degenerate targets (domain-clamped coordinates at
            # large anti-correlated scale, or narrow directional subsets)
            # can make HiGHS call a geometrically guaranteed cover
            # infeasible.  Solve for the least-violating combination
            # instead and accept it at numerical-noise scale.
            chosen = _lp_min_violation_support(
                prev_points, target + tol, max_violation=_LP_VIOLATION_TOL
            )
        if chosen is None:
            raise IndexConstructionError(
                "∃-dominance coverage violated: no convex combination of "
                f"the previous sublayer dominates target {target.tolist()}"
            )
        assignments.append(np.asarray(chosen, dtype=np.intp))
    return assignments


#: Target rows per block in :func:`_batched_exit_facets`; bounds the
#: (block × facets) ray-matrix intermediates.
_RAY_BLOCK = 2048


def _batched_exit_facets(
    target_points: np.ndarray,
    normals: np.ndarray,
    offsets: np.ndarray,
    denom: np.ndarray,
    facet_mins: np.ndarray,
    tol: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized single-exit-facet resolution for a whole target batch.

    Returns ``(hit, facet)``: ``hit[t]`` is True when target ``t``'s downward
    ray exits through exactly one facet (no near-ties) whose componentwise
    member minimum clears the same necessary condition
    :func:`_exit_facet_members` checks — for those targets the assignment is
    ``unique(members)`` of ``facet[t]``, byte-identical to the per-target
    path.  Ties and misses stay ``hit = False`` and take the slow path.
    """
    n_targets = target_points.shape[0]
    hit = np.zeros(n_targets, dtype=bool)
    exit_facet = np.zeros(n_targets, dtype=np.intp)
    mtol = max(tol, 1e-7)
    for start in range(0, n_targets, _RAY_BLOCK):
        block = target_points[start : start + _RAY_BLOCK]
        s_matrix = (block @ normals.T + offsets[None, :]) / denom[None, :]
        s_masked = np.where(s_matrix >= -tol, s_matrix, np.inf)
        f_star = np.argmin(s_masked, axis=1)
        rows = np.arange(block.shape[0])
        s_star = s_masked[rows, f_star]
        ties = np.count_nonzero(s_masked <= s_star[:, None] + 1e-9, axis=1)
        ok = (
            np.isfinite(s_star)
            & (ties == 1)
            & ~np.any(facet_mins[f_star] > block + mtol, axis=1)
        )
        hit[start : start + _RAY_BLOCK] = ok
        exit_facet[start : start + _RAY_BLOCK] = f_star
    return hit, exit_facet


def _exit_facet_members(
    target: np.ndarray,
    facets: list[Facet],
    normals: np.ndarray,
    offsets: np.ndarray,
    denom: np.ndarray,
    facet_mins: np.ndarray,
    tol: float,
) -> np.ndarray | None:
    """Members of the facet(s) the downward ray exits through, or None.

    Returns the union of members over near-tied exit facets (the exit point
    lies in one of their simplices, so the union is a sound, slightly
    relaxed EDS).  A cheap necessary condition — the union's componentwise
    minimum must sit below the target — guards against numerical surprises;
    failures fall back to the verified slow path.
    """
    s_values = (normals @ target + offsets) / denom
    valid = s_values >= -tol
    if not np.any(valid):
        return None
    s_star = float(s_values[valid].min())
    ties = valid & (s_values <= s_star + 1e-9)
    members = np.unique(np.concatenate([f.members for f, m in zip(facets, ties) if m]))
    union_min = facet_mins[ties].min(axis=0)
    if np.any(union_min > target + max(tol, 1e-7)):
        return None
    return members.astype(np.intp)


def _verified_cover(
    prev_points: np.ndarray,
    facets: list[Facet],
    target: np.ndarray,
    tol: float,
) -> np.ndarray | None:
    """Ray candidates with exact barycentric verification (slow path)."""
    if not facets:
        return None
    normals = np.vstack([f.normal for f in facets])
    offsets = np.asarray([f.offset for f in facets])
    denom = normals.sum(axis=1)
    s_values = (normals @ target + offsets) / denom
    order = np.argsort(np.where(s_values >= -tol, s_values, np.inf))
    for facet_pos in order[:_RAY_CANDIDATES]:
        s = s_values[facet_pos]
        if not np.isfinite(s) or s < -tol:
            break
        facet = facets[int(facet_pos)]
        if not facet.pure:
            continue
        exit_point = target - max(float(s), 0.0)
        if _barycentric_inside(prev_points[facet.members], exit_point):
            return facet.members
    return None


def _barycentric_inside(facet_points: np.ndarray, point: np.ndarray) -> bool:
    """True iff ``point`` lies (within tolerance) in the facet's simplex."""
    m = facet_points.shape[0]
    base = facet_points[-1]
    if m == 1:
        return bool(np.all(np.abs(point - base) <= 1e-9))
    directions = (facet_points[:-1] - base).T  # (d, m-1)
    rhs = point - base
    solution, residual, *_ = np.linalg.lstsq(directions, rhs, rcond=None)
    reconstructed = directions @ solution
    if not np.allclose(reconstructed, rhs, atol=1e-8):
        return False
    last = 1.0 - float(solution.sum())
    return bool(np.all(solution >= -_BARY_TOL) and last >= -_BARY_TOL)


def _lp_support(prev_points: np.ndarray, bound: np.ndarray) -> np.ndarray | None:
    """Support of a feasible convex combination under ``bound``, or None."""
    m = prev_points.shape[0]
    result = linprog(
        c=np.zeros(m),
        A_ub=prev_points.T,
        b_ub=bound,
        A_eq=np.ones((1, m)),
        b_eq=np.ones(1),
        bounds=[(0.0, 1.0)] * m,
        method="highs",
    )
    if result.status != 0:
        return None
    support = np.nonzero(result.x > 1e-9)[0].astype(np.intp)
    if support.shape[0] == 0:
        support = np.asarray([int(np.argmax(result.x))], dtype=np.intp)
    return support


def _lp_min_violation_support(
    prev_points: np.ndarray, bound: np.ndarray, max_violation: float
) -> np.ndarray | None:
    """Support of the least-violating convex combination, if tiny enough.

    Minimizes ``s`` subject to ``Pᵀλ ≤ bound + s·1, Σλ = 1, λ ≥ 0,
    s ≥ 0`` — always feasible — and returns the support only when the
    optimal violation is at most ``max_violation``.  A violation at
    numerical-noise scale means the cover exists geometrically and only
    the strict-feasibility LP tripped on solver tolerance; anything larger
    is a genuine coverage failure and stays an error.
    """
    m, d = prev_points.shape
    # Variables: lambda (m) then s (1).
    c = np.zeros(m + 1)
    c[m] = 1.0
    a_ub = np.hstack([prev_points.T, -np.ones((d, 1))])
    result = linprog(
        c=c,
        A_ub=a_ub,
        b_ub=bound,
        A_eq=np.hstack([np.ones((1, m)), np.zeros((1, 1))]),
        b_eq=np.ones(1),
        bounds=[(0.0, 1.0)] * m + [(0.0, None)],
        method="highs",
    )
    if result.status != 0 or result.x[m] > max_violation:
        return None
    support = np.nonzero(result.x[:m] > 1e-9)[0].astype(np.intp)
    if support.shape[0] == 0:
        support = np.asarray([int(np.argmax(result.x[:m]))], dtype=np.intp)
    return support
