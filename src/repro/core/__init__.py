"""The paper's contribution: dual-resolution layer indexing (DL / DL+).

* :mod:`repro.core.structure` — the gated layer graph: nodes (real tuples +
  optional zero-layer pseudo-tuples), ∀-dominance gates (all parents must be
  answered first) and ∃-dominance gates (any parent suffices);
* :mod:`repro.core.build` — Algorithm 1 (``BuildDualLayer``), shared by DL
  and (with fine sublayers disabled) DG;
* :mod:`repro.core.eds` — ∃-dominance-set assignment via lower-hull facets;
* :mod:`repro.core.query` — Algorithm 2 (``ComputeTopKProcessing``), the
  priority-queue traversal with the Theorem 3 filtering condition;
* :mod:`repro.core.zero_layer` — §V's virtual zero layer (2-D weight-range
  partition, high-d clustered pseudo-tuples);
* :mod:`repro.core.index` — the public :class:`DLIndex` / :class:`DLPlusIndex`.
"""

from repro.core.base import TopKIndex, TopKResult
from repro.core.index import DLIndex, DLPlusIndex
from repro.core.cursor import TopKCursor
from repro.core.dispatch import select_kernel
from repro.core.maintenance import DynamicDualLayerIndex
from repro.core.analysis import cost_bounds, profile_structure, to_networkx

__all__ = [
    "TopKIndex",
    "TopKResult",
    "DLIndex",
    "DLPlusIndex",
    "TopKCursor",
    "DynamicDualLayerIndex",
    "select_kernel",
    "cost_bounds",
    "profile_structure",
    "to_networkx",
]
