"""Algorithm 2: top-k processing over a gated layer structure.

A priority queue of accessed nodes ordered by ``(score, node id)``.  Seeds
are scored and enqueued; popping a node emits it (real tuples only) and
relaxes its children's gates; a child is scored and enqueued the moment both
its gates are open (Theorem 3's filtering condition).  Each node is scored
at most once — that count *is* the paper's cost metric.

Correctness (Theorem 4) rests on the gate soundness invariants the builders
maintain: every ∀-parent and at least one member of each ∃-parent facet
scores strictly (weakly, for duplicate-tolerant gates) below the gated node
under every positive weight vector, so a node's gates are always fully open
by the time its score could be the queue minimum.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import IndexCapacityError
from repro.core.structure import LayerStructure
from repro.stats import AccessCounter


def seed_scores(
    structure: LayerStructure, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(seed_ids, scores)`` for a query's entry nodes, scored in one matmul.

    This is the single scoring path shared by :func:`process_top_k`,
    :class:`~repro.core.cursor.TopKCursor`, and the batched serving engine
    (:mod:`repro.serving`): because all of them obtain seed scores from this
    helper, their answers agree bitwise — a batched query is byte-identical
    to its sequential counterpart.
    """
    if structure.seed_selector is None:
        seeds, block = structure.seed_block()  # static seeds: shared block
        return seeds, block @ weights
    seeds = np.asarray(structure.seeds(weights), dtype=np.intp)
    if seeds.shape[0] > 1:
        # Selectors may in principle repeat ids; dedupe preserving order.
        _, first = np.unique(seeds, return_index=True)
        if first.shape[0] != seeds.shape[0]:
            seeds = seeds[np.sort(first)]
    return seeds, structure.values[seeds] @ weights


def process_top_k(
    structure: LayerStructure,
    weights: np.ndarray,
    k: int,
    counter: AccessCounter,
    fetch_real=None,
    seeds: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(ids, scores)`` of the top-k real tuples, ascending by score.

    ``fetch_real(node) -> values`` overrides where *real* tuple values come
    from (disk-resident execution reads them through a buffered heap file);
    pseudo-tuples always score from the in-memory structure.  ``seeds``
    optionally supplies a precomputed :func:`seed_scores` result (the batch
    serving engine computes it once per deduplicated weight vector); it is
    ignored when ``fetch_real`` is given, since real seed values must then
    come from storage.
    """
    if not structure.complete and k > structure.num_coarse_layers:
        raise IndexCapacityError(
            f"index was built with only {structure.num_coarse_layers} coarse "
            f"layers; top-{k} requires at least k layers"
        )

    values = structure.values
    n_real = structure.n_real
    remaining_forall = structure.forall_parent_count.copy()
    exists_open = ~structure.exists_gated
    enqueued = np.zeros(structure.n_nodes, dtype=bool)

    heap: list[tuple[float, int]] = []

    # Optional fine-grained trace hook (the storage I/O replay uses it).
    # The hook is additive: Definition 9 cost is always counted through
    # ``count_real`` and the hook merely observes the access order, so an
    # instrumented run reports the same cost as a plain one.
    trace_hook = getattr(counter, "count_real_tuple", None)

    def access(node: int, score: float | None = None) -> None:
        """Score a node and enqueue it (counts toward Definition 9 cost)."""
        if score is None:
            if fetch_real is not None and node < n_real:
                score = float(fetch_real(node) @ weights)
            else:
                score = float(values[node] @ weights)
        if node < n_real:
            counter.count_real()
            if trace_hook is not None:
                trace_hook(node)
        else:
            counter.count_pseudo()
        enqueued[node] = True
        heapq.heappush(heap, (score, node))

    if fetch_real is not None:
        seed_ids, precomputed = structure.seeds(weights), None
    else:
        seed_ids, precomputed = seeds if seeds is not None else seed_scores(
            structure, weights
        )
    for pos, node in enumerate(seed_ids):
        node = int(node)
        if not enqueued[node]:
            access(node, None if precomputed is None else float(precomputed[pos]))

    answer_ids: list[int] = []
    answer_scores: list[float] = []
    while heap and len(answer_ids) < k:
        score, node = heapq.heappop(heap)
        if node < n_real:
            answer_ids.append(node)
            answer_scores.append(score)
            if len(answer_ids) >= k:
                break  # done — don't pay for relaxing the last answer's children
        # Relax children gates; access every node whose gates both opened.
        for child in structure.forall_children[node]:
            child = int(child)
            remaining_forall[child] -= 1
            if (
                not enqueued[child]
                and remaining_forall[child] == 0
                and exists_open[child]
            ):
                access(child)
        for child in structure.exists_children[node]:
            child = int(child)
            if exists_open[child]:
                continue
            exists_open[child] = True
            if not enqueued[child] and remaining_forall[child] == 0:
                access(child)

    return (
        np.asarray(answer_ids, dtype=np.intp),
        np.asarray(answer_scores, dtype=np.float64),
    )
