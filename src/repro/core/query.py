"""Algorithm 2: top-k processing over a gated layer structure.

A priority queue of accessed nodes ordered by ``(score, node id)``.  Seeds
are scored and enqueued; popping a node emits it (real tuples only) and
relaxes its children's gates; a child is scored and enqueued the moment both
its gates are open (Theorem 3's filtering condition).  Each node is scored
at most once — that count *is* the paper's cost metric.

Correctness (Theorem 4) rests on the gate soundness invariants the builders
maintain: every ∀-parent and at least one member of each ∃-parent facet
scores strictly (weakly, for duplicate-tolerant gates) below the gated node
under every positive weight vector, so a node's gates are always fully open
by the time its score could be the queue minimum.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import IndexCapacityError
from repro.core.structure import LayerStructure
from repro.stats import AccessCounter


def process_top_k(
    structure: LayerStructure,
    weights: np.ndarray,
    k: int,
    counter: AccessCounter,
    fetch_real=None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(ids, scores)`` of the top-k real tuples, ascending by score.

    ``fetch_real(node) -> values`` overrides where *real* tuple values come
    from (disk-resident execution reads them through a buffered heap file);
    pseudo-tuples always score from the in-memory structure.
    """
    if not structure.complete and k > structure.num_coarse_layers:
        raise IndexCapacityError(
            f"index was built with only {structure.num_coarse_layers} coarse "
            f"layers; top-{k} requires at least k layers"
        )

    values = structure.values
    n_real = structure.n_real
    remaining_forall = structure.forall_parent_count.copy()
    exists_open = ~structure.exists_gated
    enqueued = np.zeros(structure.n_nodes, dtype=bool)

    heap: list[tuple[float, int]] = []

    # Optional fine-grained trace hook (the storage I/O replay uses it).
    trace_hook = getattr(counter, "count_real_tuple", None)

    def access(node: int) -> None:
        """Score a node and enqueue it (counts toward Definition 9 cost)."""
        if fetch_real is not None and node < n_real:
            score = float(fetch_real(node) @ weights)
        else:
            score = float(values[node] @ weights)
        if node < n_real:
            if trace_hook is not None:
                trace_hook(node)
            else:
                counter.count_real()
        else:
            counter.count_pseudo()
        enqueued[node] = True
        heapq.heappush(heap, (score, node))

    for node in structure.seeds(weights):
        node = int(node)
        if not enqueued[node]:
            access(node)

    answer_ids: list[int] = []
    answer_scores: list[float] = []
    while heap and len(answer_ids) < k:
        score, node = heapq.heappop(heap)
        if node < n_real:
            answer_ids.append(node)
            answer_scores.append(score)
            if len(answer_ids) >= k:
                break  # done — don't pay for relaxing the last answer's children
        # Relax children gates; access every node whose gates both opened.
        for child in structure.forall_children[node]:
            child = int(child)
            remaining_forall[child] -= 1
            if (
                not enqueued[child]
                and remaining_forall[child] == 0
                and exists_open[child]
            ):
                access(child)
        for child in structure.exists_children[node]:
            child = int(child)
            if exists_open[child]:
                continue
            exists_open[child] = True
            if not enqueued[child] and remaining_forall[child] == 0:
                access(child)

    return (
        np.asarray(answer_ids, dtype=np.intp),
        np.asarray(answer_scores, dtype=np.float64),
    )
