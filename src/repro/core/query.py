"""Algorithm 2: top-k processing over a gated layer structure.

A priority queue of accessed nodes ordered by ``(score, node id)``.  Seeds
are scored and enqueued; popping a node emits it (real tuples only) and
relaxes its children's gates; a child is scored and enqueued the moment both
its gates are open (Theorem 3's filtering condition).  Each node is scored
at most once — that count *is* the paper's cost metric.

Correctness (Theorem 4) rests on the gate soundness invariants the builders
maintain: every ∀-parent and at least one member of each ∃-parent facet
scores strictly (weakly, for duplicate-tolerant gates) below the gated node
under every positive weight vector, so a node's gates are always fully open
by the time its score could be the queue minimum.

Two kernels implement the identical algorithm:

* :func:`process_top_k` — the production kernel.  On each pop it slices the
  structure's CSR child arrays, relaxes all gates of the popped node with
  numpy ops, and scores every newly opened child in one batched product
  before pushing them.
* :func:`process_top_k_reference` — the original per-node traversal, kept
  as the equivalence oracle: one Python iteration and one score per child.

Both kernels must return **bitwise identical** ids, scores, and Definition 9
access counts (the property tests assert this).  That only holds if scoring
arithmetic is independent of batch size, which BLAS matmul does **not**
guarantee (``A @ w`` row results differ in the last ulp from ``A[i] @ w``
under OpenBLAS).  All child scoring therefore goes through
:func:`score_rows` / :func:`score_node` — ``einsum`` contractions whose
per-row reduction order depends only on ``d``, never on how many rows are
scored together.

Gate-state encoding
-------------------
The vectorized kernel tracks all per-query gate state in **one** integer
per node instead of a counter array plus two boolean arrays:

``state[v] = remaining ∀-parents + (n_nodes + 1) * (∃-gate still closed)``

* popping a ∀-parent decrements ``state`` by 1;
* popping the first ∃-parent subtracts the ``n_nodes + 1`` offset (later
  ∃-parents see ``state < offset`` and are skipped — "any parent" semantics);
* a node is accessed exactly when its state reaches 0 — both gates open —
  and is then stamped with the sentinel ``-1``, which no remaining
  decrement can bring back to 0 (a non-enqueued node's ∀-component never
  goes below zero, and enqueued nodes are excluded from ∃-subtraction).

This halves the per-pop fancy-indexing work and turns per-query state
setup into a single ``copy()`` of a cached template
(:meth:`~repro.core.structure.LayerStructure.gate_state_template`).  The
encoding only changes *bookkeeping*; scoring arithmetic and access order
are untouched, so bitwise equivalence with the reference kernel holds.
"""

from __future__ import annotations

import heapq
import threading

import numpy as np

from repro.exceptions import IndexCapacityError
from repro.core.structure import LayerStructure
from repro.stats import AccessCounter

try:
    # Bind the C entry point ``np.einsum`` dispatches to when ``optimize``
    # is off — the same contraction routine, minus ~2µs of Python wrapper
    # per call (the kernel makes one call per pop).
    from numpy._core._multiarray_umath import c_einsum as _einsum
except ImportError:  # pragma: no cover - numpy < 2 module layout
    try:
        from numpy.core._multiarray_umath import c_einsum as _einsum
    except ImportError:
        _einsum = np.einsum


def score_rows(
    values: np.ndarray, nodes: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Scores of ``values[nodes]`` under ``weights``, batch-size invariant.

    ``einsum``'s per-row dot uses a reduction order that depends only on the
    dimensionality, so ``score_rows(v, nodes, w)[i] ==
    score_node(v, nodes[i], w)`` *bitwise* — the vectorized kernel and the
    per-node reference kernel produce identical floats.
    """
    return _einsum("ij,j->i", values[nodes], weights)


def score_node(values: np.ndarray, node: int, weights: np.ndarray) -> float:
    """Single-node counterpart of :func:`score_rows` (same arithmetic)."""
    return float(_einsum("j,j->", values[node], weights))


def seed_scores(
    structure: LayerStructure, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(seed_ids, scores)`` for a query's entry nodes, scored in one matmul.

    This is the single scoring path shared by :func:`process_top_k`,
    :func:`process_top_k_reference`,
    :class:`~repro.core.cursor.TopKCursor`, and the batched serving engine
    (:mod:`repro.serving`): because all of them obtain seed scores from this
    helper, their answers agree bitwise — a batched query is byte-identical
    to its sequential counterpart.

    Seeds use the same ``einsum`` contraction as child scoring, not BLAS
    gemv: identical value rows must receive identical scores no matter
    which path scored them, or the heap's (score, id) order — and hence the
    ascending-score output guarantee — breaks on duplicate tuples (gemv
    rows can differ from the per-row dot in the last ulp).
    """
    if structure.seed_selector is None:
        seeds, block = structure.seed_block()  # static seeds: shared block
        return seeds, _einsum("ij,j->i", block, weights)
    seeds = np.asarray(structure.seeds(weights), dtype=np.intp)
    if seeds.shape[0] > 1:
        # Selectors may in principle repeat ids; dedupe preserving order.
        _, first = np.unique(seeds, return_index=True)
        if first.shape[0] != seeds.shape[0]:
            seeds = seeds[np.sort(first)]
    return seeds, _einsum("ij,j->i", structure.values[seeds], weights)


def relax_gates(
    structure: LayerStructure,
    node: int,
    remaining_forall: np.ndarray,
    exists_open: np.ndarray,
    enqueued: np.ndarray,
) -> np.ndarray | None:
    """Vectorized gate relaxation for one popped ``node``.

    Decrements the ∀-counters of the node's ∀-children, opens the ∃-gates of
    its ∃-children, and returns the ids of nodes whose **both** gates just
    opened (∀-children first, then ∃-children — the access order of the
    reference kernel), or ``None`` when nothing opened.  Mutates the three
    per-query state arrays in place.  :class:`~repro.core.cursor.TopKCursor`
    shares this helper; :func:`process_top_k` inlines the same logic to keep
    the hot loop free of function-call overhead.
    """
    f_indptr = structure.forall_indptr
    start, end = f_indptr[node], f_indptr[node + 1]
    opened_f = opened_e = None
    if start != end:
        children = structure.forall_indices[start:end]
        count = remaining_forall[children] - 1
        remaining_forall[children] = count
        opened = children[(count == 0) & exists_open[children] & ~enqueued[children]]
        if opened.shape[0]:
            opened_f = opened
    e_indptr = structure.exists_indptr
    start, end = e_indptr[node], e_indptr[node + 1]
    if start != end:
        children = structure.exists_indices[start:end]
        newly = children[~exists_open[children]]
        if newly.shape[0]:
            exists_open[newly] = True
            opened = newly[(remaining_forall[newly] == 0) & ~enqueued[newly]]
            if opened.shape[0]:
                opened_e = opened
    if opened_f is None:
        return opened_e
    if opened_e is None:
        return opened_f
    return np.concatenate((opened_f, opened_e))


class QueryWorkspace:
    """Reusable gate-state scratch for the solo :func:`process_top_k` kernel.

    The solo kernel's only O(n_nodes) per-query cost is initialising the
    fused gate-state array — a ``copy()`` of the cached template.  A
    workspace keeps one state array allocated *in template state* between
    queries: the kernel checks it out, records every node whose state it
    writes, and restores exactly those entries from the template before
    returning, so a steady-state query allocates no O(n) scratch at all
    (a tracemalloc regression test pins this).

    Sharing follows :class:`BatchWorkspace`: checkout is non-blocking —
    a query that finds the workspace busy falls back to a private template
    copy (counted in :attr:`fallbacks`; the serving engine surfaces both
    counters in its stats) — and a query that dies mid-traversal drops
    the state array instead of restoring it.  The array is keyed by
    template *identity*, so a rebuilt structure transparently re-primes
    fresh state.

    The workspace also carries the speculative walker's learned AIMD
    run-length ceiling (:attr:`spec_ceiling`) across queries: workloads
    where multi-pop speculation keeps rolling back converge to the
    classic single-pop schedule after the first query instead of
    re-paying the discovery cost per query.  The ceiling only shapes the
    walk *schedule* — answers and Definition 9 counts stay bitwise
    identical at any ceiling — so carrying it across queries never
    couples one query's results to another's.
    """

    __slots__ = (
        "_lock", "_state", "_template", "_stats_lock",
        "checkouts", "fallbacks", "spec_ceiling", "_spec_streak",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._state: np.ndarray | None = None
        self._template: np.ndarray | None = None
        self._stats_lock = threading.Lock()
        #: Queries served from the shared state array (lock acquired).
        self.checkouts = 0
        #: Queries that found the workspace busy and fell back to a
        #: private template copy.
        self.fallbacks = 0
        #: Speculative run-length ceiling carried across queries
        #: (written back by the walker under the workspace lock).
        self.spec_ceiling = _SPEC_RUN_CAP
        # Consecutive rollback-free queries since the last ceiling
        # change; gates how often the walker probes the ceiling back up.
        self._spec_streak = 0

    def _checkout(self, structure: LayerStructure) -> np.ndarray:
        """Return the template-state array for ``structure`` (lock held)."""
        template = structure.gate_state_template()
        if self._template is not template:
            self._state = template.copy()
            self._template = template
        self.checkouts += 1
        return self._state

    def _invalidate(self) -> None:
        self._state = None
        self._template = None

    def _count_fallback(self) -> None:
        with self._stats_lock:
            self.fallbacks += 1


#: Speculative run-length schedule: a query's first round pops up to
#: ``_SPEC_CAP0`` entries, the cap triples after every round up to
#: ``_SPEC_RUN_CAP``, and a rollback resets it to 1 (the classic single
#: pop, which always settles).  Starting small keeps rollbacks rare —
#: mis-speculations cluster in the dense early rounds — while the steep
#: growth covers a typical k=10 walk in a handful of rounds (measured
#: faster than doubling: fewer, fatter fused rounds amortize the fixed
#: per-round numpy overhead without raising the rollback rate).
_SPEC_CAP0 = 1
_SPEC_GROWTH = 3
_SPEC_RUN_CAP = 48
#: Once a workspace's carried ceiling has collapsed to 1 the walker
#: stops speculating altogether — it delegates to the classic schedule,
#: which has no fused-round machinery at all — and only re-probes
#: speculation (one query at ceiling 2) every this-many queries.  The
#: probe keeps a converged workload from being locked out forever if its
#: weight mix drifts, while costing at most one small mis-speculated
#: round per probe interval.
_SPEC_PROBE_STREAK = 8


def process_top_k(
    structure: LayerStructure,
    weights: np.ndarray,
    k: int,
    counter: AccessCounter,
    fetch_real=None,
    seeds: tuple[np.ndarray, np.ndarray] | None = None,
    prune: bool = False,
    workspace: QueryWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(ids, scores)`` of the top-k real tuples, ascending by score.

    The vectorized CSR kernel: per round, child ranges are O(1) slices of
    the flat adjacency arrays, gate state updates are whole-slice numpy
    ops, and every newly opened child is scored in a single batched
    product before being pushed.  Results, heap order, and the
    Definition 9 access count are bitwise identical to
    :func:`process_top_k_reference`.

    Two walk schedules implement the kernel.  The *classic* schedule
    (:func:`_solo_walk_classic`) pops one heap entry per round; the
    *speculative* schedule (:func:`_solo_walk_speculative`) pops a run of
    entries and relaxes them in one fused pass, settling each round
    against the classic order — it is chosen automatically whenever
    nothing observes per-access order (no ``fetch_real``, no trace hook,
    no pruning) and is bitwise identical by construction.

    ``fetch_real(node) -> values`` overrides where *real* tuple values come
    from (disk-resident execution reads them through a buffered heap file);
    pseudo-tuples always score from the in-memory structure.  ``seeds``
    optionally supplies a precomputed :func:`seed_scores` result (the batch
    serving engine computes it once per deduplicated weight vector); it is
    ignored when ``fetch_real`` is given, since real seed values must then
    come from storage.  ``workspace`` (see :class:`QueryWorkspace`)
    amortizes gate-state initialisation across queries; omitting it keeps
    the kernel a pure function.

    Layer-bound skipping (``prune=True``)
    -------------------------------------
    The structure's layer bound table
    (:meth:`~repro.core.structure.LayerStructure.layer_bound_table`)
    assigns every placed node to a value-sorted block of its sublayer and
    stores per-block per-attribute minima; ``block_mins[b] @ w`` —
    computed with the kernel's own einsum contraction, so its rounding
    tree matches :func:`score_rows` — is a lower bound on the score of
    every member of block ``b``.  The kernel tracks ``s_k``, the k-th
    smallest *real* score accessed so far (a bounded max-heap).  A
    just-opened child whose block bound strictly exceeds ``s_k`` would pop
    strictly after the k-th answer (its score ≥ bound > ``s_k`` ≥ the
    final k-th answer score), so it is stamped as enqueued and dropped
    **without being scored**: emitted ids and scores stay bitwise
    identical to the unpruned run while the Definition 9 access count
    drops.  The check is hierarchical: a sublayer-level bound table
    (:meth:`~repro.core.structure.LayerStructure.sublayer_bound_table`)
    is consulted first, and a sublayer whose bound already exceeds
    ``s_k`` is remembered for the rest of the query — the k-th floor only
    descends, so the verdict can never be invalidated, and later children
    from that sublayer skip the per-node block gather entirely.  The drop
    *set* is provably identical to a block-only check (a sublayer minimum
    lower-bounds all of its blocks' minima), so pruned access counts stay
    bitwise compatible with the block-only batch kernel.  Bounds are
    gathered lazily, per opened batch — no per-query O(n) precompute.
    The bound comparison is only sound against einsum-scored nodes, so
    pruning is ignored when ``fetch_real`` rescoring is in effect; it is
    off by default because the access count is part of the
    kernel-equivalence contract (pruned runs report *fewer* accesses by
    design).
    """
    if not structure.complete and k > structure.num_coarse_layers:
        raise IndexCapacityError(
            f"index was built with only {structure.num_coarse_layers} coarse "
            f"layers; top-{k} requires at least k layers"
        )

    trace_hook = getattr(counter, "count_real_tuple", None)

    ws_acquired = workspace is not None and workspace._lock.acquire(blocking=False)
    if workspace is not None and not ws_acquired:
        workspace._count_fallback()
    try:
        if ws_acquired:
            state = workspace._checkout(structure)
        else:
            state = structure.gate_state_template().copy()
        # Undo log: every node whose state was written this query (duplicate
        # entries are harmless — they restore the same template value).
        touched: list[np.ndarray] = []
        try:
            if fetch_real is None and trace_hook is None and not prune:
                result = _solo_walk_speculative(
                    structure, weights, k, counter, seeds, state, touched,
                    workspace if ws_acquired else None,
                )
            else:
                result = _solo_walk_classic(
                    structure, weights, k, counter, fetch_real, trace_hook,
                    seeds, prune, state, touched,
                )
        except BaseException:
            if ws_acquired:
                workspace._invalidate()
            raise
        if ws_acquired and touched:
            idx = touched[0] if len(touched) == 1 else np.concatenate(touched)
            state[idx] = structure.gate_state_template()[idx]
        return result
    finally:
        if ws_acquired:
            workspace._lock.release()


def _solo_walk_speculative(
    structure: LayerStructure,
    weights: np.ndarray,
    k: int,
    counter: AccessCounter,
    seeds: tuple[np.ndarray, np.ndarray] | None,
    state: np.ndarray,
    touched: list[np.ndarray],
    workspace: QueryWorkspace | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Speculative multi-pop walk — the fast schedule of :func:`process_top_k`.

    A round pops a *run* of up to ``cap`` heap entries (stopping early when
    the run would complete the answer), relaxes every popped node's gates
    in one fused two-phase pass (all ∀-decrements, then all ∃-ungates — the
    ∃ gather must observe the ∀ writes since a node's fused state mixes
    both components), and scores all newly opened children in one
    contraction.  The *settlement* step then proves the round equals the
    one-pop-at-a-time schedule: every entry left on the heap already
    exceeds the run's last entry (they were not among the ``m`` smallest),
    so the round is exact iff every opened child also sorts after the last
    run entry in ``(score, id)`` order — then the classic schedule would
    have popped exactly this run, in this order, before any child, and
    heap pop order for unique tuples is insensitive to push order.  Gate
    soundness makes that the common case (children score weakly above
    their parents); when it fails, the gate writes are rolled back (∃
    before ∀ — a node can be both edge kinds' child, and its pre-round
    value is the ∀-side one), the run is re-pushed, and the round retries
    with ``cap = 1`` — the classic single pop, which always settles, so
    progress is guaranteed.  ``cap`` grows by :data:`_SPEC_GROWTH` per
    round under an AIMD ceiling that halves on every rollback: walks
    where speculation pays (high-d, fat frontiers) run long fused
    rounds, while walks where it keeps failing (low-d chains whose every
    pop opens a better-scoring child) collapse to the classic single-pop
    loop instead of thrashing.  When a ``workspace`` is supplied the
    ceiling is carried across queries — halved once per rolled-back
    query, doubled per rollback-free query, and once it reaches 1 the
    walker delegates whole queries to :func:`_solo_walk_classic`, re-
    probing speculation every :data:`_SPEC_PROBE_STREAK`-th query — so
    rollback-storm workloads converge to the classic schedule once per
    workload, not per query; without a workspace each query starts from
    :data:`_SPEC_RUN_CAP`.  The ceiling never affects results —
    every committed round is proven equal to the classic schedule.

    Definition 9 totals are accumulated in two Python ints and flushed
    once at the end — totals are order-free, so the counter sees the same
    sums as the classic schedule.  Runs that would emit the k-th answer
    stop at it and skip relaxing it (the classic break-before-relax).
    """
    if workspace is not None:
        ceiling0 = workspace.spec_ceiling
        if ceiling0 <= 1:
            streak = workspace._spec_streak + 1
            if streak < _SPEC_PROBE_STREAK:
                # Converged: this workload's rollback storms collapsed
                # the ceiling to 1, where the fused path is pure
                # overhead — run the classic schedule outright (bitwise
                # identical by construction) until the next probe.
                workspace._spec_streak = streak
                return _solo_walk_classic(
                    structure, weights, k, counter, None, None, seeds,
                    False, state, touched,
                )
            # Probe round: one speculative query at the smallest useful
            # ceiling decides whether speculation gets re-enabled.
            workspace._spec_streak = 0
            ceiling0 = 2
    else:
        ceiling0 = _SPEC_RUN_CAP
    values = structure.values
    n_real = structure.n_real
    f_indptr, e_indptr = structure.csr_indptr_lists()
    f_indices = structure.forall_indices
    e_indices = structure.exists_indices
    exists_offset = structure.n_nodes + 1
    heappush = heapq.heappush
    heappop = heapq.heappop
    concatenate = np.concatenate
    unique = np.unique
    count_nonzero = np.count_nonzero
    t_append = touched.append

    if seeds is None:
        seeds = seed_scores(structure, weights)
    seed_ids, precomputed = seeds
    state[seed_ids] = -1
    t_append(seed_ids)
    heap = list(zip(precomputed.tolist(), seed_ids.tolist()))
    heapq.heapify(heap)
    real_seeds = int(np.count_nonzero(seed_ids < n_real))
    counter.count_real(real_seeds)
    counter.count_pseudo(seed_ids.shape[0] - real_seeds)

    acc_real = 0
    acc_total = 0
    answer_ids: list[int] = []
    answer_scores: list[float] = []
    cap = _SPEC_CAP0
    # AIMD ceiling on the run length: each rollback halves it, each
    # committed round lets cap regrow toward it.  Walks where
    # speculation keeps failing (low-d chains open one better-scoring
    # child per pop) collapse to ceiling 1 — the classic single-pop
    # loop — instead of paying a wasted fused round per pop.  The
    # The carried ceiling persists across queries through the
    # workspace: a rolled-back query halves it once (the within-query
    # AIMD collapse above still protects *this* query, but its full
    # depth is one query's evidence, not the workload's), a rollback-
    # free query doubles it back, and a collapse to 1 hands subsequent
    # queries to the classic schedule (see the delegation at the top) —
    # so rollback-storm workloads pay discovery once, not per query.
    ceiling = ceiling0
    rolled_back = False
    while heap and len(answer_ids) < k:
        # Build the run: the m smallest heap entries, cut short at the
        # entry that completes the answer (that one is never relaxed).
        needed = k - len(answer_ids)
        run: list[tuple[float, int]] = []
        reals = 0
        terminal = False
        while heap and len(run) < cap:
            entry = heappop(heap)
            run.append(entry)
            if entry[1] < n_real:
                reals += 1
                if reals == needed:
                    terminal = True
                    break
        if cap < ceiling:
            cap = min(cap * _SPEC_GROWTH, ceiling)
        if len(run) == 1:
            # Classic single-pop round: nothing else was committed, so no
            # settlement is needed.  Also the rollback retry path.
            score, node = run[0]
            if node < n_real:
                answer_ids.append(node)
                answer_scores.append(score)
                if terminal:
                    continue
            start, end = f_indptr[node], f_indptr[node + 1]
            opened_f = opened_e = None
            if start != end:
                children = f_indices[start:end]
                count = state[children] - 1
                state[children] = count
                t_append(children)
                opened = children[count == 0]
                if opened.shape[0]:
                    opened_f = opened
            start, end = e_indptr[node], e_indptr[node + 1]
            if start != end:
                children = e_indices[start:end]
                count = state[children]
                gated = count >= exists_offset
                if gated.any():
                    newly = children[gated]
                    count = count[gated] - exists_offset
                    state[newly] = count
                    t_append(newly)
                    opened = newly[count == 0]
                    if opened.shape[0]:
                        opened_e = opened
            if opened_f is None:
                opened = opened_e
            elif opened_e is None:
                opened = opened_f
            else:
                opened = concatenate((opened_f, opened_e))
            if opened is not None:
                state[opened] = -1
                scores = _einsum("ij,j->i", values[opened], weights)
                acc_total += opened.shape[0]
                acc_real += int(count_nonzero(opened < n_real))
                for pair in zip(scores.tolist(), opened.tolist()):
                    heappush(heap, pair)
            continue

        # Fused multi-pop relax over the whole run (minus a terminal
        # entry).  The ∀ side deduplicates with np.unique so a node's
        # count drops by its number of popped ∀-parents in one write; the
        # ∃ side needs no dedup — the offset subtraction is a plain
        # assignment, and duplicate occurrences of a node write the same
        # value ("any parent" semantics).  Newly opened ∃-children are
        # deduplicated after the fact (the opened set is tiny).
        relax = run[:-1] if terminal else run
        f_kids = concatenate(
            [f_indices[f_indptr[x]:f_indptr[x + 1]] for _, x in relax]
        )
        e_kids = concatenate(
            [e_indices[e_indptr[x]:e_indptr[x + 1]] for _, x in relax]
        )
        uf = eg = None
        opened_f = opened_e = None
        if f_kids.shape[0]:
            uf, f_dec = unique(f_kids, return_counts=True)
            old_f = state[uf]
            new_f = old_f - f_dec
            state[uf] = new_f
            opened = uf[new_f == 0]
            if opened.shape[0]:
                opened_f = opened
        if e_kids.shape[0]:
            cur_e = state[e_kids]
            gated = cur_e >= exists_offset
            if gated.any():
                eg = e_kids[gated]
                e_vals = cur_e[gated] - exists_offset
                state[eg] = e_vals
                opened = eg[e_vals == 0]
                if opened.shape[0]:
                    # A node gated by two popped ∃-parents appears twice.
                    opened_e = unique(opened)
        if opened_f is None:
            opened = opened_e
        elif opened_e is None:
            opened = opened_f
        else:
            opened = concatenate((opened_f, opened_e))
        if opened is not None:
            scores = _einsum("ij,j->i", values[opened], weights)
            last_score, last_node = run[-1]
            low = scores.min()
            if low < last_score or (
                low == last_score
                and bool(((scores == last_score) & (opened < last_node)).any())
            ):
                # Mis-speculation: some opened child would pop before the
                # run's last entry.  Undo the gate writes (∃ first — a
                # node may be both edge kinds' child, and its pre-round
                # value is the ∀-side one) and replay classically.
                if eg is not None:
                    state[eg] = e_vals + exists_offset
                if uf is not None:
                    state[uf] = old_f
                for entry in reversed(run):
                    heappush(heap, entry)
                cap = 1
                ceiling >>= 1  # multiplicative decrease; 0 pins cap at 1
                rolled_back = True
                continue
            state[opened] = -1
            acc_total += opened.shape[0]
            acc_real += int(count_nonzero(opened < n_real))
            for pair in zip(scores.tolist(), opened.tolist()):
                heappush(heap, pair)
        if uf is not None:
            t_append(uf)
        if eg is not None:
            t_append(eg)
        for score, node in run:
            if node < n_real:
                answer_ids.append(node)
                answer_scores.append(score)

    if workspace is not None:
        if rolled_back:
            workspace.spec_ceiling = max(1, ceiling0 // 2)
        else:
            workspace.spec_ceiling = min(_SPEC_RUN_CAP, ceiling0 * 2)
        workspace._spec_streak = 0
    if acc_real:
        counter.count_real(acc_real)
    pseudo = acc_total - acc_real
    if pseudo:
        counter.count_pseudo(pseudo)
    return (
        np.asarray(answer_ids, dtype=np.intp),
        np.asarray(answer_scores, dtype=np.float64),
    )


def _solo_walk_classic(
    structure: LayerStructure,
    weights: np.ndarray,
    k: int,
    counter: AccessCounter,
    fetch_real,
    trace_hook,
    seeds: tuple[np.ndarray, np.ndarray] | None,
    prune: bool,
    state: np.ndarray,
    touched: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """One-pop-per-round walk — the observing schedule of :func:`process_top_k`.

    Serves the modes speculation cannot: ``fetch_real`` storage reads,
    per-access trace hooks, and ``prune`` (whose k-th floor must advance
    in exact access order).  This is also the schedule the speculative
    walk's settlement step certifies against.
    """
    values = structure.values
    n_real = structure.n_real
    f_indptr, e_indptr = structure.csr_indptr_lists()
    f_indices = structure.forall_indices
    e_indices = structure.exists_indices
    exists_offset = structure.n_nodes + 1
    t_append = touched.append

    heap: list[tuple[float, int]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop
    heapreplace = heapq.heapreplace

    # Layer-bound skipping state (see process_top_k's docstring).
    # ``kth_score`` is +inf until k real tuples have been accessed, which
    # disables skipping (every finite bound passes); unplaced nodes
    # (``block_of == -1``) gather the tables' trailing -inf sentinel rows
    # and are likewise never skipped.
    prune_blocks = prune_mins = prune_subs = sub_mins = pruned_sub = None
    kth_heap: list[float] = []
    kth_score = np.inf
    if prune and fetch_real is None:
        prune_blocks, prune_mins = structure.layer_bound_table()
        prune_subs, sub_mins = structure.sublayer_bound_table()
        pruned_sub = np.zeros(sub_mins.shape[0], dtype=bool)

    def kth_note(score: float) -> None:
        """Fold one real-tuple score into the running k-th smallest."""
        nonlocal kth_score
        if len(kth_heap) < k:
            heappush(kth_heap, -score)
            if len(kth_heap) == k:
                kth_score = -kth_heap[0]
        elif score < kth_score:
            heapreplace(kth_heap, -score)
            kth_score = -kth_heap[0]

    count_real = counter.count_real
    count_pseudo = counter.count_pseudo

    def access_batch(opened: np.ndarray) -> None:
        """Score and enqueue just-opened nodes (counts toward Definition 9)."""
        state[opened] = -1
        t_append(opened)
        if prune_blocks is not None:
            # Drop children whose bound already beats the running k-th
            # score *before* scoring them — the skipped access is the
            # saving.  Stamping above still marks them enqueued, exactly
            # as if they had been pushed (they would never pop in time).
            # Level 1: sublayers already proven prunable this query.
            subs = prune_subs[opened]
            flags = pruned_sub[subs]
            if flags.any():
                keep = ~flags
                opened = opened[keep]
                if not opened.shape[0]:
                    return
                subs = subs[keep]
            # Level 2: sublayer bounds — a hit prunes the whole sublayer
            # for the rest of the query (the k-th floor only descends).
            sub_bounds = _einsum("ij,j->i", sub_mins[subs], weights)
            drop = sub_bounds > kth_score
            if drop.any():
                pruned_sub[subs[drop]] = True
                opened = opened[~drop]
                if not opened.shape[0]:
                    return
            # Level 3: exact block bounds for the survivors.
            bounds = _einsum("ij,j->i", prune_mins[prune_blocks[opened]], weights)
            keep = bounds <= kth_score
            if not keep.all():
                opened = opened[keep]
                if not opened.shape[0]:
                    return
        if fetch_real is None:
            scores = _einsum("ij,j->i", values[opened], weights)
            if prune_blocks is not None:
                real = 0
                for child, score in zip(opened.tolist(), scores.tolist()):
                    if child < n_real:
                        real += 1
                        if trace_hook is not None:
                            trace_hook(child)
                        kth_note(score)
                    heappush(heap, (score, child))
                count_real(real)
                count_pseudo(opened.shape[0] - real)
            elif trace_hook is None:
                real = 0
                for child, score in zip(opened.tolist(), scores.tolist()):
                    if child < n_real:
                        real += 1
                    heappush(heap, (score, child))
                count_real(real)
                count_pseudo(opened.shape[0] - real)
            else:
                for child, score in zip(opened.tolist(), scores.tolist()):
                    if child < n_real:
                        count_real()
                        trace_hook(child)
                    else:
                        count_pseudo()
                    heappush(heap, (score, child))
        else:
            for child in opened.tolist():
                if child < n_real:
                    score = float(fetch_real(child) @ weights)
                    count_real()
                    if trace_hook is not None:
                        trace_hook(child)
                else:
                    score = score_node(values, child, weights)
                    count_pseudo()
                heappush(heap, (score, child))

    if fetch_real is not None:
        seed_ids, precomputed = structure.seeds(weights), None
        for node in seed_ids.tolist():
            if state[node] >= 0:  # not yet enqueued
                access_batch(np.asarray([node], dtype=np.intp))
    else:
        seed_ids, precomputed = seeds if seeds is not None else seed_scores(
            structure, weights
        )
        # Seeds are unique (static seeds by construction, selector seeds
        # deduplicated in seed_scores), so the whole block enqueues in one
        # shot; heapify over an O(n log n) push loop.  The heap holds the
        # same (score, node) set either way, and pops from equal heaps
        # yield the identical sequence.
        state[seed_ids] = -1
        t_append(seed_ids)
        if trace_hook is None:
            real = 0
            for node, score in zip(seed_ids.tolist(), precomputed.tolist()):
                if node < n_real:
                    real += 1
                heap.append((score, node))
            count_real(real)
            count_pseudo(seed_ids.shape[0] - real)
        else:
            for node, score in zip(seed_ids.tolist(), precomputed.tolist()):
                if node < n_real:
                    count_real()
                    trace_hook(node)
                else:
                    count_pseudo()
                heap.append((score, node))
        heapq.heapify(heap)
        if prune_blocks is not None:
            # Seed accesses count toward s_k too — folding them in up
            # front lets the bound start biting as early as possible.
            for node, score in zip(seed_ids.tolist(), precomputed.tolist()):
                if node < n_real:
                    kth_note(score)

    answer_ids: list[int] = []
    answer_scores: list[float] = []
    while heap and len(answer_ids) < k:
        score, node = heappop(heap)
        if node < n_real:
            answer_ids.append(node)
            answer_scores.append(score)
            if len(answer_ids) >= k:
                break  # done — don't pay for relaxing the last answer's children
        # Relax children gates on the fused state encoding; access every
        # node whose gates both opened — ∀-children first, then ∃-children,
        # matching the reference kernel's access order.
        start, end = f_indptr[node], f_indptr[node + 1]
        opened_f = opened_e = None
        if start != end:
            children = f_indices[start:end]
            count = state[children] - 1
            state[children] = count
            t_append(children)
            opened = children[count == 0]
            if opened.shape[0]:
                opened_f = opened
        start, end = e_indptr[node], e_indptr[node + 1]
        if start != end:
            children = e_indices[start:end]
            count = state[children]
            gated = count >= exists_offset
            if gated.any():
                newly = children[gated]
                count = count[gated] - exists_offset
                state[newly] = count
                t_append(newly)
                opened = newly[count == 0]
                if opened.shape[0]:
                    opened_e = opened
        if opened_f is not None:
            if opened_e is not None:
                access_batch(np.concatenate((opened_f, opened_e)))
            else:
                access_batch(opened_f)
        elif opened_e is not None:
            access_batch(opened_e)

    return (
        np.asarray(answer_ids, dtype=np.intp),
        np.asarray(answer_scores, dtype=np.float64),
    )


class BatchWorkspace:
    """Reusable gate-state scratch for :func:`process_top_k_batch`.

    The batch kernel needs one fused gate-state slot per (node, lane) pair.
    Copying the template into a fresh ``(n_nodes, B)`` matrix costs a full
    memory sweep per batch (~1 ms at n=100k, B=32 — comparable to the
    traversal itself), but a batch only ever *touches* the entries its
    rounds relax.  A workspace keeps the matrix allocated in template state
    between batches; the kernel records every entry it writes and restores
    exactly those from the template before returning, so re-initialisation
    costs O(touched) instead of O(n_nodes x B).

    A workspace belongs to one owner (e.g. a ``QueryEngine``).  It is safe
    to share: the kernel takes the internal lock without blocking and
    falls back to a fresh allocation when the workspace is busy, and a
    batch that dies mid-traversal drops the matrix instead of restoring
    it.  The backing matrix is keyed by template *identity* (the template
    array is cached on the immutable structure, so identity tracks
    structure lifetime through rebuilds) and grows to the widest batch
    seen.
    """

    __slots__ = ("_lock", "_state", "_template", "_edges_disjoint")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._state: np.ndarray | None = None
        self._template: np.ndarray | None = None
        self._edges_disjoint = False

    def _checkout(self, structure: LayerStructure, n_lanes: int) -> np.ndarray:
        """Return a template-state matrix with >= ``n_lanes`` columns."""
        template = structure.gate_state_template()
        state = self._state
        if state is not None and self._template is template:
            if state.shape[1] >= n_lanes:
                return state
        else:
            # New structure: when its ∀- and ∃-edge sets are disjoint (no
            # parent lists the same child in both CSRs — true for every
            # structure the builder emits, and cached on the structure),
            # the kernel may relax both gate kinds of a round in one fused
            # gather/scatter pass; otherwise it keeps the two-phase order
            # (∀ writes before ∃ reads).
            self._edges_disjoint = structure.edges_disjoint()
        state = np.broadcast_to(
            template[:, None], (template.shape[0], n_lanes)
        ).copy()
        self._state = state
        self._template = template
        return state

    def _invalidate(self) -> None:
        self._state = None
        self._template = None


def process_top_k_batch(
    structure: LayerStructure,
    weights_matrix: np.ndarray,
    k,
    counters,
    fetch_real=None,
    seeds=None,
    workspace: BatchWorkspace | None = None,
    prune: bool = False,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Run B top-k queries through one lane-parallel traversal.

    ``weights_matrix`` is a ``(B, d)`` matrix of (normalized) weight
    vectors; lane ``i`` answers the query ``weights_matrix[i]`` with
    retrieval size ``k`` (a scalar, or a length-B sequence for mixed-``k``
    batches) and charges its Definition 9 cost to ``counters[i]``.  Returns
    one ``(ids, scores)`` pair per lane, each **bitwise identical** — ids,
    float scores, ascending order, per-lane real/pseudo access counts — to
    running :func:`process_top_k` on that lane alone.

    How the lanes share work
    ------------------------
    Gate state lives in one ``(n_nodes, B)`` matrix: column ``i`` is lane
    ``i``'s fused per-node state int (the same encoding as the single-query
    kernel).  Node-major layout keeps a round's writes cache-local: live
    lanes traverse the same shallow layers, so the (node, lane) pairs of a
    round cluster in nearby rows.  The traversal proceeds in lock-step
    *rounds*: every live lane pops one node from its private heap, then all
    popped nodes' gates are relaxed together — the ∀-child slices of every
    lane are gathered into one flat (node, lane) index list and decremented
    with a single fancy-indexed op (pairs are unique within a round, so no
    update is lost), and likewise for the ∃-gates.  Every newly opened
    child of every lane is then scored in one batched contraction, and
    Definition 9 counts are settled with one per-lane ``bincount`` instead
    of a python call per access.

    Why the answers stay bitwise identical
    --------------------------------------
    * Lanes never interact: each has its own state column, heap, answer
      list, and counter, so a round is just an interleaving of B
      independent per-query steps.  Lanes finish independently (k answers
      emitted or heap drained) and are masked out of later rounds — a cheap
      lane never waits on an expensive one, and a finished lane's final pop
      skips gate relaxation exactly like the single-query kernel's
      break-before-relax.
    * Scoring uses the paired contraction
      ``einsum("ij,ij->i", opened_values, weights_matrix[opened_lanes])``,
      which is bitwise equal to both the per-query ``score_rows``
      contraction and the GEMM form
      ``einsum("ij,kj->ik", opened_values, weights_matrix)`` gathered per
      lane — the per-row reduction order of this ``einsum`` family depends
      only on ``d`` (see the module docstring) — while doing B-fold less
      arithmetic than the GEMM.  Heap order, tie-breaks on duplicate
      tuples, and emitted scores therefore cannot drift by even an ulp;
      the batch-equivalence property suite asserts this across the full
      distribution/dimension grid.
    * Seed scoring goes through the shared :func:`seed_scores` path with a
      fresh contiguous copy of each lane's weight row (a row *view* of the
      matrix has lane-dependent alignment; a copy has the same layout a
      solo query's weight vector does).

    ``fetch_real`` behaves as in :func:`process_top_k` (per-node storage
    reads; scoring arithmetic matches the per-query kernel exactly).
    ``seeds`` optionally supplies one precomputed :func:`seed_scores`
    result per lane; ignored when ``fetch_real`` is given.  ``workspace``
    (see :class:`BatchWorkspace`) amortizes gate-state initialisation
    across batches; omitting it keeps the kernel a pure function.

    ``prune=True`` enables per-lane layer-bound skipping with the same
    semantics as the per-query kernel (see :func:`process_top_k`): each
    lane tracks its own k-th smallest real score, the per-lane bound
    matrix comes from the GEMM-shaped contraction (bitwise equal per
    column to the per-query bound vector), and a pruned batch lane's ids,
    scores, *and* access counts are bitwise identical to the pruned
    per-query kernel on that lane alone.  Ignored when ``fetch_real`` is
    given.
    """
    weights_matrix = np.asarray(weights_matrix, dtype=np.float64)
    if weights_matrix.ndim != 2:
        raise ValueError(
            f"weights_matrix must be 2-D (B, d), got shape {weights_matrix.shape}"
        )
    n_lanes = weights_matrix.shape[0]
    counters = list(counters)
    if len(counters) != n_lanes:
        raise ValueError(
            f"need one counter per lane: {n_lanes} lanes, {len(counters)} counters"
        )
    ks = [int(x) for x in np.broadcast_to(np.asarray(k, dtype=np.int64), (n_lanes,))]
    if n_lanes == 0:
        return []
    if not structure.complete and max(ks) > structure.num_coarse_layers:
        raise IndexCapacityError(
            f"index was built with only {structure.num_coarse_layers} coarse "
            f"layers; top-{max(ks)} requires at least k layers"
        )

    values = structure.values
    n_real = structure.n_real
    n_nodes = structure.n_nodes
    f_indptr = structure.forall_indptr
    f_indices = structure.forall_indices
    e_indptr = structure.exists_indptr
    e_indices = structure.exists_indices
    exists_offset = n_nodes + 1
    template = structure.gate_state_template()

    ws_acquired = workspace is not None and workspace._lock.acquire(blocking=False)
    try:
        if ws_acquired:
            state = workspace._checkout(structure, n_lanes)
            restore = True
            merged_rounds = workspace._edges_disjoint
        else:
            state = np.broadcast_to(template[:, None], (n_nodes, n_lanes)).copy()
            restore = False
            merged_rounds = False
        stride = state.shape[1]
        state_flat = state.reshape(-1)
        # Undo log: every (node, lane) entry written this batch, as parallel
        # lists of flat indices and node ids (the template value to restore).
        touched_flat: list[np.ndarray] = []
        touched_nodes: list[np.ndarray] = []

        heappush = heapq.heappush
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        heaps: list[list[tuple[float, int]]] = [[] for _ in range(n_lanes)]
        answer_ids: list[list[int]] = [[] for _ in range(n_lanes)]
        answer_scores: list[list[float]] = [[] for _ in range(n_lanes)]
        trace_hooks = [getattr(c, "count_real_tuple", None) for c in counters]
        any_hook = any(hook is not None for hook in trace_hooks)

        # Per-lane layer-bound skipping state (see process_top_k): a
        # (node, lane) pair's bound is gathered lazily from the block
        # metadata with the paired contraction — bitwise equal to the
        # per-query kernel's per-row bound, so a pruned lane skips exactly
        # the nodes its solo pruned run would skip (identical ids, scores,
        # and access counts).
        prune_blocks = prune_mins = None
        if prune and fetch_real is None:
            prune_blocks, prune_mins = structure.layer_bound_table()
            kth_heaps: list[list[float]] = [[] for _ in range(n_lanes)]
            kth_scores = np.full(n_lanes, np.inf)

        def kth_note(lane: int, score: float) -> None:
            """Fold a real score into ``lane``'s running k-th smallest."""
            kh = kth_heaps[lane]
            if len(kh) < ks[lane]:
                heappush(kh, -score)
                if len(kh) == ks[lane]:
                    kth_scores[lane] = -kh[0]
            elif score < kth_scores[lane]:
                heapreplace(kh, -score)
                kth_scores[lane] = -kh[0]

        # Fresh contiguous per-lane weight copies for the paths that score
        # one node at a time: a row view's alignment depends on the lane
        # offset, a copy's does not — per-node scoring and seed scoring
        # must see the exact memory layout a solo query would.  The static
        # all-lane seed path below never scores per lane, so it skips them.
        lane_weights: list[np.ndarray] | None = None
        if (
            fetch_real is None
            and seeds is None
            and structure.seed_selector is None
            and not any_hook
        ):
            # Static seeds are one shared block for every lane: score them
            # with a single GEMM-shaped contraction (bitwise equal per
            # column to seed_scores' per-row contraction) and stamp all
            # (seed, lane) slots in one write.
            seed_ids, block = structure.seed_block()
            seed_matrix = _einsum("ij,kj->ik", block, weights_matrix)
            real_seeds = int(np.count_nonzero(seed_ids < n_real))
            pseudo_seeds = seed_ids.shape[0] - real_seeds
            seed_grid = (
                seed_ids[:, None] * stride
                + np.arange(n_lanes, dtype=np.intp)[None, :]
            ).reshape(-1)
            state_flat[seed_grid] = -1
            if restore and seed_grid.shape[0]:
                touched_flat.append(seed_grid)
                touched_nodes.append(np.repeat(seed_ids, n_lanes))
            seed_list = seed_ids.tolist()
            for lane in range(n_lanes):
                heap = list(zip(seed_matrix[:, lane].tolist(), seed_list))
                heapq.heapify(heap)
                heaps[lane] = heap
                counters[lane].count_real(real_seeds)
                counters[lane].count_pseudo(pseudo_seeds)
                if prune_blocks is not None:
                    for score, node in heap:
                        if node < n_real:
                            kth_note(lane, score)
            lane_range: range | tuple = ()
        else:
            lane_weights = [
                np.array(weights_matrix[lane], copy=True)
                for lane in range(n_lanes)
            ]
            lane_range = range(n_lanes)

        # Seeding replays the per-query kernel's seed path lane by lane (one
        # einsum per lane through seed_scores — seeds are per query, not per
        # pop, so this is off the hot path).
        for lane in lane_range:
            heap = heaps[lane]
            counter = counters[lane]
            trace_hook = trace_hooks[lane]
            w = lane_weights[lane]
            if fetch_real is not None:
                enqueued: list[int] = []
                for node in structure.seeds(w).tolist():
                    slot = node * stride + lane
                    if state_flat[slot] < 0:  # already enqueued (repeated seed)
                        continue
                    state_flat[slot] = -1
                    enqueued.append(node)
                    if node < n_real:
                        score = float(fetch_real(node) @ w)
                        counter.count_real()
                        if trace_hook is not None:
                            trace_hook(node)
                    else:
                        score = score_node(values, node, w)
                        counter.count_pseudo()
                    heappush(heap, (score, node))
                if restore and enqueued:
                    nodes_arr = np.asarray(enqueued, dtype=np.intp)
                    touched_flat.append(nodes_arr * stride + lane)
                    touched_nodes.append(nodes_arr)
                continue
            seed_ids, precomputed = (
                seeds[lane] if seeds is not None else seed_scores(structure, w)
            )
            seed_slots = seed_ids * stride + lane
            state_flat[seed_slots] = -1
            if restore:
                touched_flat.append(seed_slots)
                touched_nodes.append(seed_ids)
            if trace_hook is None:
                real = 0
                for node, score in zip(seed_ids.tolist(), precomputed.tolist()):
                    if node < n_real:
                        real += 1
                    heap.append((score, node))
                counter.count_real(real)
                counter.count_pseudo(seed_ids.shape[0] - real)
            else:
                for node, score in zip(seed_ids.tolist(), precomputed.tolist()):
                    if node < n_real:
                        counter.count_real()
                        trace_hook(node)
                    else:
                        counter.count_pseudo()
                    heap.append((score, node))
            heapq.heapify(heap)
            if prune_blocks is not None:
                for node, score in zip(seed_ids.tolist(), precomputed.tolist()):
                    if node < n_real:
                        kth_note(lane, score)

        # Fast-path Definition 9 bookkeeping: per-lane real/pseudo access
        # totals accumulate in two arrays (one bincount per round) and are
        # flushed into the counters once at the end — totals are
        # order-free, so deferring them is invisible.
        fast_counts = fetch_real is None and not any_hook
        if fast_counts:
            acc_total = np.zeros(n_lanes, dtype=np.int64)
            acc_real = np.zeros(n_lanes, dtype=np.int64)

        active = [lane for lane in range(n_lanes) if heaps[lane] and ks[lane] > 0]
        while active:
            # One pop per live lane; a lane that emits its k-th answer skips
            # relaxation entirely (the per-query kernel's
            # break-before-relax).
            relax_lanes: list[int] = []
            relax_nodes: list[int] = []
            for lane in active:
                score, node = heappop(heaps[lane])
                if node < n_real:
                    emitted = answer_ids[lane]
                    emitted.append(node)
                    answer_scores[lane].append(score)
                    if len(emitted) >= ks[lane]:
                        continue
                relax_lanes.append(lane)
                relax_nodes.append(node)
            if not relax_lanes:
                break
            lanes = np.asarray(relax_lanes, dtype=np.intp)
            nodes = np.asarray(relax_nodes, dtype=np.intp)

            if merged_rounds:
                # Fused gate pass (∀/∃ edge sets verified disjoint at
                # workspace checkout, so no (node, lane) pair appears
                # twice): both edge kinds of every lane are gathered into
                # one pair list, updated with one arithmetic sweep —
                # ∀-entries decrement, gated ∃-entries subtract the offset —
                # stamped, and scattered back in a single write.  Pair
                # order is [∀ by lane, ∃ by lane], the reference access
                # order (heap pops are tuple-ordered, so within-round push
                # order cannot affect answers).
                all_lanes = all_children = None
                starts = f_indptr[nodes]
                f_counts = f_indptr[nodes + 1] - starts
                nf = int(f_counts.sum())
                if nf:
                    ends = np.cumsum(f_counts)
                    flat = np.arange(nf, dtype=np.intp) + np.repeat(
                        starts - (ends - f_counts), f_counts
                    )
                    f_children = f_indices[flat]
                    f_lanes = np.repeat(lanes, f_counts)
                starts = e_indptr[nodes]
                e_counts = e_indptr[nodes + 1] - starts
                ne = int(e_counts.sum())
                if ne:
                    ends = np.cumsum(e_counts)
                    flat = np.arange(ne, dtype=np.intp) + np.repeat(
                        starts - (ends - e_counts), e_counts
                    )
                    e_children = e_indices[flat]
                    e_lanes = np.repeat(lanes, e_counts)
                if nf and ne:
                    children = np.concatenate((f_children, e_children))
                    child_lanes = np.concatenate((f_lanes, e_lanes))
                elif nf:
                    children, child_lanes = f_children, f_lanes
                elif ne:
                    children, child_lanes = e_children, e_lanes
                else:
                    children = None
                if children is not None:
                    pair_flat = children * stride + child_lanes
                    cur = state_flat[pair_flat]
                    new = np.empty_like(cur)
                    np.subtract(cur[:nf], 1, out=new[:nf])
                    if ne:
                        cur_e = cur[nf:]
                        # Gated entries (state >= offset) drop the offset;
                        # already-open ones pass through unchanged (their
                        # state is never 0 between rounds, so they cannot
                        # look freshly opened below).
                        np.subtract(
                            cur_e,
                            (cur_e >= exists_offset)
                            * state.dtype.type(exists_offset),
                            out=new[nf:],
                        )
                    opened = new == 0
                    if opened.any():
                        all_lanes = child_lanes[opened]
                        all_children = children[opened]
                        new[opened] = -1
                    state_flat[pair_flat] = new
                    if restore:
                        touched_flat.append(pair_flat)
                        touched_nodes.append(children)
            else:
                # Two-phase pass, used when the edge sets might overlap (the
                # ∃ gather must observe this round's ∀ writes) or when no
                # workspace vouches for disjointness.
                # ∀-gates: gather every lane's child slice into one flat
                # (node, lane) index list and decrement with a single
                # fancy-indexed op.  Each pair occurs at most once per round
                # (one pop per lane, unique children per node), so plain
                # assignment loses no update.
                opened_f_lanes = opened_f_children = opened_f_flat = None
                starts = f_indptr[nodes]
                counts = f_indptr[nodes + 1] - starts
                total = int(counts.sum())
                if total:
                    ends = np.cumsum(counts)
                    flat = np.arange(total, dtype=np.intp) + np.repeat(
                        starts - (ends - counts), counts
                    )
                    children = f_indices[flat]
                    child_lanes = np.repeat(lanes, counts)
                    pair_flat = children * stride + child_lanes
                    remaining = state_flat[pair_flat] - 1
                    state_flat[pair_flat] = remaining
                    if restore:
                        touched_flat.append(pair_flat)
                        touched_nodes.append(children)
                    mask = remaining == 0
                    if mask.any():
                        opened_f_lanes = child_lanes[mask]
                        opened_f_children = children[mask]
                        opened_f_flat = pair_flat[mask]

                # ∃-gates: same gather; the first popped ∃-parent of a
                # (node, lane) pair subtracts the offset, later ones see
                # state < offset.
                opened_e_lanes = opened_e_children = opened_e_flat = None
                starts = e_indptr[nodes]
                counts = e_indptr[nodes + 1] - starts
                total = int(counts.sum())
                if total:
                    ends = np.cumsum(counts)
                    flat = np.arange(total, dtype=np.intp) + np.repeat(
                        starts - (ends - counts), counts
                    )
                    children = e_indices[flat]
                    child_lanes = np.repeat(lanes, counts)
                    pair_flat = children * stride + child_lanes
                    current = state_flat[pair_flat]
                    gated = current >= exists_offset
                    if gated.any():
                        gated_flat = pair_flat[gated]
                        gated_children = children[gated]
                        current = current[gated] - exists_offset
                        state_flat[gated_flat] = current
                        if restore:
                            touched_flat.append(gated_flat)
                            touched_nodes.append(gated_children)
                        mask = current == 0
                        if mask.any():
                            opened_e_lanes = child_lanes[gated][mask]
                            opened_e_children = gated_children[mask]
                            opened_e_flat = gated_flat[mask]

                # Access every (node, lane) pair whose gates both opened —
                # per lane, ∀-children first, then ∃-children, the
                # reference access order.
                if opened_f_lanes is None:
                    all_lanes, all_children, all_flat = (
                        opened_e_lanes,
                        opened_e_children,
                        opened_e_flat,
                    )
                elif opened_e_lanes is None:
                    all_lanes, all_children, all_flat = (
                        opened_f_lanes,
                        opened_f_children,
                        opened_f_flat,
                    )
                else:
                    all_lanes = np.concatenate((opened_f_lanes, opened_e_lanes))
                    all_children = np.concatenate(
                        (opened_f_children, opened_e_children)
                    )
                    all_flat = np.concatenate((opened_f_flat, opened_e_flat))
                if all_lanes is not None:
                    state_flat[all_flat] = -1

            if all_lanes is not None and prune_blocks is not None:
                # Per-lane layer-bound skip, after stamping (state already
                # marks every opened pair enqueued) and before scoring —
                # the skipped scoring rows and heap pushes are the win.
                bounds = _einsum(
                    "ij,ij->i",
                    prune_mins[prune_blocks[all_children]],
                    weights_matrix[all_lanes],
                )
                keep = bounds <= kth_scores[all_lanes]
                if not keep.all():
                    all_children = all_children[keep]
                    all_lanes = all_lanes[keep]
                    if not all_lanes.shape[0]:
                        all_lanes = None

            if all_lanes is not None:
                if fast_counts:
                    # One paired contraction scores every opened (node,
                    # lane) pair; one bincount per side accumulates
                    # Definition 9 counts for all lanes at once.
                    scores = _einsum(
                        "ij,ij->i", values[all_children], weights_matrix[all_lanes]
                    )
                    acc_total += np.bincount(all_lanes, minlength=n_lanes)
                    acc_real += np.bincount(
                        all_lanes[all_children < n_real], minlength=n_lanes
                    )
                    if prune_blocks is None:
                        for lane, child, score in zip(
                            all_lanes.tolist(),
                            all_children.tolist(),
                            scores.tolist(),
                        ):
                            heappush(heaps[lane], (score, child))
                    else:
                        for lane, child, score in zip(
                            all_lanes.tolist(),
                            all_children.tolist(),
                            scores.tolist(),
                        ):
                            if child < n_real:
                                kth_note(lane, score)
                            heappush(heaps[lane], (score, child))
                elif fetch_real is None:
                    scores = _einsum(
                        "ij,ij->i", values[all_children], weights_matrix[all_lanes]
                    )
                    for lane, child, score in zip(
                        all_lanes.tolist(), all_children.tolist(), scores.tolist()
                    ):
                        if child < n_real:
                            counters[lane].count_real()
                            hook = trace_hooks[lane]
                            if hook is not None:
                                hook(child)
                            if prune_blocks is not None:
                                kth_note(lane, score)
                        else:
                            counters[lane].count_pseudo()
                        heappush(heaps[lane], (score, child))
                else:
                    for lane, child in zip(
                        all_lanes.tolist(), all_children.tolist()
                    ):
                        w = lane_weights[lane]
                        if child < n_real:
                            score = float(fetch_real(child) @ w)
                            counters[lane].count_real()
                            hook = trace_hooks[lane]
                            if hook is not None:
                                hook(child)
                        else:
                            score = score_node(values, child, w)
                            counters[lane].count_pseudo()
                        heappush(heaps[lane], (score, child))

            active = [lane for lane in relax_lanes if heaps[lane]]

        if fast_counts:
            for lane in range(n_lanes):
                real = int(acc_real[lane])
                if real:
                    counters[lane].count_real(real)
                pseudo = int(acc_total[lane]) - real
                if pseudo:
                    counters[lane].count_pseudo(pseudo)

        if restore and touched_flat:
            # Put every written entry back to template state so the next
            # batch checks out a clean matrix without a full re-copy.
            # Duplicate indices are harmless (same template value).
            state_flat[np.concatenate(touched_flat)] = template[
                np.concatenate(touched_nodes)
            ]
    except BaseException:
        if ws_acquired:
            workspace._invalidate()
        raise
    finally:
        if ws_acquired:
            workspace._lock.release()

    return [
        (
            np.asarray(answer_ids[lane], dtype=np.intp),
            np.asarray(answer_scores[lane], dtype=np.float64),
        )
        for lane in range(n_lanes)
    ]


def process_top_k_reference(
    structure: LayerStructure,
    weights: np.ndarray,
    k: int,
    counter: AccessCounter,
    fetch_real=None,
    seeds: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The per-node reference kernel — Algorithm 2, one child at a time.

    This is the pre-CSR traversal retained verbatim as the equivalence
    oracle for :func:`process_top_k`: same signature, same gate semantics,
    same scoring arithmetic (:func:`score_node`), walking the CSR adjacency
    through the per-node :class:`~repro.core.structure.CSRAdjacency` view.
    The property suite asserts both kernels agree bitwise on ids, scores,
    and real/pseudo access counts; benchmarks use it as the wall-clock
    "before" baseline.
    """
    if not structure.complete and k > structure.num_coarse_layers:
        raise IndexCapacityError(
            f"index was built with only {structure.num_coarse_layers} coarse "
            f"layers; top-{k} requires at least k layers"
        )

    values = structure.values
    n_real = structure.n_real
    remaining_forall = structure.forall_parent_count.copy()
    exists_open = ~structure.exists_gated
    enqueued = np.zeros(structure.n_nodes, dtype=bool)

    heap: list[tuple[float, int]] = []

    trace_hook = getattr(counter, "count_real_tuple", None)

    def access(node: int, score: float | None = None) -> None:
        """Score a node and enqueue it (counts toward Definition 9 cost)."""
        if score is None:
            if fetch_real is not None and node < n_real:
                score = float(fetch_real(node) @ weights)
            else:
                score = score_node(values, node, weights)
        if node < n_real:
            counter.count_real()
            if trace_hook is not None:
                trace_hook(node)
        else:
            counter.count_pseudo()
        enqueued[node] = True
        heapq.heappush(heap, (score, node))

    if fetch_real is not None:
        seed_ids, precomputed = structure.seeds(weights), None
    else:
        seed_ids, precomputed = seeds if seeds is not None else seed_scores(
            structure, weights
        )
    for pos, node in enumerate(seed_ids):
        node = int(node)
        if not enqueued[node]:
            access(node, None if precomputed is None else float(precomputed[pos]))

    forall_children = structure.forall_children
    exists_children = structure.exists_children
    answer_ids: list[int] = []
    answer_scores: list[float] = []
    while heap and len(answer_ids) < k:
        score, node = heapq.heappop(heap)
        if node < n_real:
            answer_ids.append(node)
            answer_scores.append(score)
            if len(answer_ids) >= k:
                break  # done — don't pay for relaxing the last answer's children
        # Relax children gates; access every node whose gates both opened.
        for child in forall_children[node]:
            child = int(child)
            remaining_forall[child] -= 1
            if (
                not enqueued[child]
                and remaining_forall[child] == 0
                and exists_open[child]
            ):
                access(child)
        for child in exists_children[node]:
            child = int(child)
            if exists_open[child]:
                continue
            exists_open[child] = True
            if not enqueued[child] and remaining_forall[child] == 0:
                access(child)

    return (
        np.asarray(answer_ids, dtype=np.intp),
        np.asarray(answer_scores, dtype=np.float64),
    )
