"""Algorithm 2: top-k processing over a gated layer structure.

A priority queue of accessed nodes ordered by ``(score, node id)``.  Seeds
are scored and enqueued; popping a node emits it (real tuples only) and
relaxes its children's gates; a child is scored and enqueued the moment both
its gates are open (Theorem 3's filtering condition).  Each node is scored
at most once — that count *is* the paper's cost metric.

Correctness (Theorem 4) rests on the gate soundness invariants the builders
maintain: every ∀-parent and at least one member of each ∃-parent facet
scores strictly (weakly, for duplicate-tolerant gates) below the gated node
under every positive weight vector, so a node's gates are always fully open
by the time its score could be the queue minimum.

Two kernels implement the identical algorithm:

* :func:`process_top_k` — the production kernel.  On each pop it slices the
  structure's CSR child arrays, relaxes all gates of the popped node with
  numpy ops, and scores every newly opened child in one batched product
  before pushing them.
* :func:`process_top_k_reference` — the original per-node traversal, kept
  as the equivalence oracle: one Python iteration and one score per child.

Both kernels must return **bitwise identical** ids, scores, and Definition 9
access counts (the property tests assert this).  That only holds if scoring
arithmetic is independent of batch size, which BLAS matmul does **not**
guarantee (``A @ w`` row results differ in the last ulp from ``A[i] @ w``
under OpenBLAS).  All child scoring therefore goes through
:func:`score_rows` / :func:`score_node` — ``einsum`` contractions whose
per-row reduction order depends only on ``d``, never on how many rows are
scored together.

Gate-state encoding
-------------------
The vectorized kernel tracks all per-query gate state in **one** integer
per node instead of a counter array plus two boolean arrays:

``state[v] = remaining ∀-parents + (n_nodes + 1) * (∃-gate still closed)``

* popping a ∀-parent decrements ``state`` by 1;
* popping the first ∃-parent subtracts the ``n_nodes + 1`` offset (later
  ∃-parents see ``state < offset`` and are skipped — "any parent" semantics);
* a node is accessed exactly when its state reaches 0 — both gates open —
  and is then stamped with the sentinel ``-1``, which no remaining
  decrement can bring back to 0 (a non-enqueued node's ∀-component never
  goes below zero, and enqueued nodes are excluded from ∃-subtraction).

This halves the per-pop fancy-indexing work and turns per-query state
setup into a single ``copy()`` of a cached template
(:meth:`~repro.core.structure.LayerStructure.gate_state_template`).  The
encoding only changes *bookkeeping*; scoring arithmetic and access order
are untouched, so bitwise equivalence with the reference kernel holds.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.exceptions import IndexCapacityError
from repro.core.structure import LayerStructure
from repro.stats import AccessCounter

try:
    # Bind the C entry point ``np.einsum`` dispatches to when ``optimize``
    # is off — the same contraction routine, minus ~2µs of Python wrapper
    # per call (the kernel makes one call per pop).
    from numpy._core._multiarray_umath import c_einsum as _einsum
except ImportError:  # pragma: no cover - numpy < 2 module layout
    try:
        from numpy.core._multiarray_umath import c_einsum as _einsum
    except ImportError:
        _einsum = np.einsum


def score_rows(
    values: np.ndarray, nodes: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Scores of ``values[nodes]`` under ``weights``, batch-size invariant.

    ``einsum``'s per-row dot uses a reduction order that depends only on the
    dimensionality, so ``score_rows(v, nodes, w)[i] ==
    score_node(v, nodes[i], w)`` *bitwise* — the vectorized kernel and the
    per-node reference kernel produce identical floats.
    """
    return _einsum("ij,j->i", values[nodes], weights)


def score_node(values: np.ndarray, node: int, weights: np.ndarray) -> float:
    """Single-node counterpart of :func:`score_rows` (same arithmetic)."""
    return float(_einsum("j,j->", values[node], weights))


def seed_scores(
    structure: LayerStructure, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(seed_ids, scores)`` for a query's entry nodes, scored in one matmul.

    This is the single scoring path shared by :func:`process_top_k`,
    :func:`process_top_k_reference`,
    :class:`~repro.core.cursor.TopKCursor`, and the batched serving engine
    (:mod:`repro.serving`): because all of them obtain seed scores from this
    helper, their answers agree bitwise — a batched query is byte-identical
    to its sequential counterpart.

    Seeds use the same ``einsum`` contraction as child scoring, not BLAS
    gemv: identical value rows must receive identical scores no matter
    which path scored them, or the heap's (score, id) order — and hence the
    ascending-score output guarantee — breaks on duplicate tuples (gemv
    rows can differ from the per-row dot in the last ulp).
    """
    if structure.seed_selector is None:
        seeds, block = structure.seed_block()  # static seeds: shared block
        return seeds, _einsum("ij,j->i", block, weights)
    seeds = np.asarray(structure.seeds(weights), dtype=np.intp)
    if seeds.shape[0] > 1:
        # Selectors may in principle repeat ids; dedupe preserving order.
        _, first = np.unique(seeds, return_index=True)
        if first.shape[0] != seeds.shape[0]:
            seeds = seeds[np.sort(first)]
    return seeds, _einsum("ij,j->i", structure.values[seeds], weights)


def relax_gates(
    structure: LayerStructure,
    node: int,
    remaining_forall: np.ndarray,
    exists_open: np.ndarray,
    enqueued: np.ndarray,
) -> np.ndarray | None:
    """Vectorized gate relaxation for one popped ``node``.

    Decrements the ∀-counters of the node's ∀-children, opens the ∃-gates of
    its ∃-children, and returns the ids of nodes whose **both** gates just
    opened (∀-children first, then ∃-children — the access order of the
    reference kernel), or ``None`` when nothing opened.  Mutates the three
    per-query state arrays in place.  :class:`~repro.core.cursor.TopKCursor`
    shares this helper; :func:`process_top_k` inlines the same logic to keep
    the hot loop free of function-call overhead.
    """
    f_indptr = structure.forall_indptr
    start, end = f_indptr[node], f_indptr[node + 1]
    opened_f = opened_e = None
    if start != end:
        children = structure.forall_indices[start:end]
        count = remaining_forall[children] - 1
        remaining_forall[children] = count
        opened = children[(count == 0) & exists_open[children] & ~enqueued[children]]
        if opened.shape[0]:
            opened_f = opened
    e_indptr = structure.exists_indptr
    start, end = e_indptr[node], e_indptr[node + 1]
    if start != end:
        children = structure.exists_indices[start:end]
        newly = children[~exists_open[children]]
        if newly.shape[0]:
            exists_open[newly] = True
            opened = newly[(remaining_forall[newly] == 0) & ~enqueued[newly]]
            if opened.shape[0]:
                opened_e = opened
    if opened_f is None:
        return opened_e
    if opened_e is None:
        return opened_f
    return np.concatenate((opened_f, opened_e))


def process_top_k(
    structure: LayerStructure,
    weights: np.ndarray,
    k: int,
    counter: AccessCounter,
    fetch_real=None,
    seeds: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(ids, scores)`` of the top-k real tuples, ascending by score.

    The vectorized CSR kernel: per pop, both child ranges are O(1) slices of
    the flat adjacency arrays, gate state updates are whole-slice numpy ops,
    and every newly opened child is scored in a single batched product
    before being pushed.  Results, heap order, and the Definition 9 access
    count are bitwise identical to :func:`process_top_k_reference`.

    ``fetch_real(node) -> values`` overrides where *real* tuple values come
    from (disk-resident execution reads them through a buffered heap file);
    pseudo-tuples always score from the in-memory structure.  ``seeds``
    optionally supplies a precomputed :func:`seed_scores` result (the batch
    serving engine computes it once per deduplicated weight vector); it is
    ignored when ``fetch_real`` is given, since real seed values must then
    come from storage.
    """
    if not structure.complete and k > structure.num_coarse_layers:
        raise IndexCapacityError(
            f"index was built with only {structure.num_coarse_layers} coarse "
            f"layers; top-{k} requires at least k layers"
        )

    values = structure.values
    n_real = structure.n_real
    f_indptr, e_indptr = structure.csr_indptr_lists()
    f_indices = structure.forall_indices
    e_indices = structure.exists_indices
    # Fused per-node gate state (see the module docstring): remaining
    # ∀-parents plus ``exists_offset`` while the ∃-gate is closed; 0 means
    # ready, the sentinel -1 means already enqueued.
    state = structure.gate_state_template().copy()
    exists_offset = structure.n_nodes + 1

    heap: list[tuple[float, int]] = []
    heappush = heapq.heappush
    heappop = heapq.heappop

    # Optional fine-grained trace hook (the storage I/O replay uses it).
    # The hook is additive: Definition 9 cost is always counted through
    # ``count_real`` and the hook merely observes the access order, so an
    # instrumented run reports the same cost as a plain one.
    trace_hook = getattr(counter, "count_real_tuple", None)
    count_real = counter.count_real
    count_pseudo = counter.count_pseudo

    def access_batch(opened: np.ndarray) -> None:
        """Score and enqueue just-opened nodes (counts toward Definition 9)."""
        state[opened] = -1
        if fetch_real is None:
            scores = _einsum("ij,j->i", values[opened], weights)
            if trace_hook is None:
                real = 0
                for child, score in zip(opened.tolist(), scores.tolist()):
                    if child < n_real:
                        real += 1
                    heappush(heap, (score, child))
                count_real(real)
                count_pseudo(opened.shape[0] - real)
            else:
                for child, score in zip(opened.tolist(), scores.tolist()):
                    if child < n_real:
                        count_real()
                        trace_hook(child)
                    else:
                        count_pseudo()
                    heappush(heap, (score, child))
        else:
            for child in opened.tolist():
                if child < n_real:
                    score = float(fetch_real(child) @ weights)
                    count_real()
                    if trace_hook is not None:
                        trace_hook(child)
                else:
                    score = score_node(values, child, weights)
                    count_pseudo()
                heappush(heap, (score, child))

    if fetch_real is not None:
        seed_ids, precomputed = structure.seeds(weights), None
        for node in seed_ids.tolist():
            if state[node] >= 0:  # not yet enqueued
                access_batch(np.asarray([node], dtype=np.intp))
    else:
        seed_ids, precomputed = seeds if seeds is not None else seed_scores(
            structure, weights
        )
        # Seeds are unique (static seeds by construction, selector seeds
        # deduplicated in seed_scores), so the whole block enqueues in one
        # shot; heapify over an O(n log n) push loop.  The heap holds the
        # same (score, node) set either way, and pops from equal heaps
        # yield the identical sequence.
        state[seed_ids] = -1
        if trace_hook is None:
            real = 0
            for node, score in zip(seed_ids.tolist(), precomputed.tolist()):
                if node < n_real:
                    real += 1
                heap.append((score, node))
            count_real(real)
            count_pseudo(seed_ids.shape[0] - real)
        else:
            for node, score in zip(seed_ids.tolist(), precomputed.tolist()):
                if node < n_real:
                    count_real()
                    trace_hook(node)
                else:
                    count_pseudo()
                heap.append((score, node))
        heapq.heapify(heap)

    answer_ids: list[int] = []
    answer_scores: list[float] = []
    while heap and len(answer_ids) < k:
        score, node = heappop(heap)
        if node < n_real:
            answer_ids.append(node)
            answer_scores.append(score)
            if len(answer_ids) >= k:
                break  # done — don't pay for relaxing the last answer's children
        # Relax children gates on the fused state encoding; access every
        # node whose gates both opened — ∀-children first, then ∃-children,
        # matching the reference kernel's access order.
        start, end = f_indptr[node], f_indptr[node + 1]
        opened_f = opened_e = None
        if start != end:
            children = f_indices[start:end]
            count = state[children] - 1
            state[children] = count
            opened = children[count == 0]
            if opened.shape[0]:
                opened_f = opened
        start, end = e_indptr[node], e_indptr[node + 1]
        if start != end:
            children = e_indices[start:end]
            count = state[children]
            gated = count >= exists_offset
            if gated.any():
                newly = children[gated]
                count = count[gated] - exists_offset
                state[newly] = count
                opened = newly[count == 0]
                if opened.shape[0]:
                    opened_e = opened
        if opened_f is not None:
            if opened_e is not None:
                access_batch(np.concatenate((opened_f, opened_e)))
            else:
                access_batch(opened_f)
        elif opened_e is not None:
            access_batch(opened_e)

    return (
        np.asarray(answer_ids, dtype=np.intp),
        np.asarray(answer_scores, dtype=np.float64),
    )


def process_top_k_reference(
    structure: LayerStructure,
    weights: np.ndarray,
    k: int,
    counter: AccessCounter,
    fetch_real=None,
    seeds: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The per-node reference kernel — Algorithm 2, one child at a time.

    This is the pre-CSR traversal retained verbatim as the equivalence
    oracle for :func:`process_top_k`: same signature, same gate semantics,
    same scoring arithmetic (:func:`score_node`), walking the CSR adjacency
    through the per-node :class:`~repro.core.structure.CSRAdjacency` view.
    The property suite asserts both kernels agree bitwise on ids, scores,
    and real/pseudo access counts; benchmarks use it as the wall-clock
    "before" baseline.
    """
    if not structure.complete and k > structure.num_coarse_layers:
        raise IndexCapacityError(
            f"index was built with only {structure.num_coarse_layers} coarse "
            f"layers; top-{k} requires at least k layers"
        )

    values = structure.values
    n_real = structure.n_real
    remaining_forall = structure.forall_parent_count.copy()
    exists_open = ~structure.exists_gated
    enqueued = np.zeros(structure.n_nodes, dtype=bool)

    heap: list[tuple[float, int]] = []

    trace_hook = getattr(counter, "count_real_tuple", None)

    def access(node: int, score: float | None = None) -> None:
        """Score a node and enqueue it (counts toward Definition 9 cost)."""
        if score is None:
            if fetch_real is not None and node < n_real:
                score = float(fetch_real(node) @ weights)
            else:
                score = score_node(values, node, weights)
        if node < n_real:
            counter.count_real()
            if trace_hook is not None:
                trace_hook(node)
        else:
            counter.count_pseudo()
        enqueued[node] = True
        heapq.heappush(heap, (score, node))

    if fetch_real is not None:
        seed_ids, precomputed = structure.seeds(weights), None
    else:
        seed_ids, precomputed = seeds if seeds is not None else seed_scores(
            structure, weights
        )
    for pos, node in enumerate(seed_ids):
        node = int(node)
        if not enqueued[node]:
            access(node, None if precomputed is None else float(precomputed[pos]))

    forall_children = structure.forall_children
    exists_children = structure.exists_children
    answer_ids: list[int] = []
    answer_scores: list[float] = []
    while heap and len(answer_ids) < k:
        score, node = heapq.heappop(heap)
        if node < n_real:
            answer_ids.append(node)
            answer_scores.append(score)
            if len(answer_ids) >= k:
                break  # done — don't pay for relaxing the last answer's children
        # Relax children gates; access every node whose gates both opened.
        for child in forall_children[node]:
            child = int(child)
            remaining_forall[child] -= 1
            if (
                not enqueued[child]
                and remaining_forall[child] == 0
                and exists_open[child]
            ):
                access(child)
        for child in exists_children[node]:
            child = int(child)
            if exists_open[child]:
                continue
            exists_open[child] = True
            if not enqueued[child] and remaining_forall[child] == 0:
                access(child)

    return (
        np.asarray(answer_ids, dtype=np.intp),
        np.asarray(answer_scores, dtype=np.float64),
    )
