"""Algorithm 1: BuildDualLayer — constructing the dual-resolution layer.

Coarse layers are iterated skylines; each coarse layer is peeled into fine
sublayers by iterated convex skylines; ∃-dominance gates connect adjacent
sublayers through lower-hull facets; ∀-dominance gates connect adjacent
coarse layers through plain dominance.

The same builder also produces the DG structure (``fine_sublayers=False``:
one sublayer per coarse layer, no ∃-gates), which is exactly the paper's
framing of DG as "a dual-resolution index that employs only coarse-level
layers" — and what makes the Theorem 5 cost comparison apples-to-apples.

Pipeline
--------
The build is staged and each stage is vectorized (see :data:`BUILD_STAGES`
and :class:`BuildProfile` for the profiling hooks):

1. **coarse_peel** — skyline-layer partition (``"blocked"`` by default; see
   :func:`repro.skyline.layers.skyline_layer_partition`).
2. **fine_peel** — per coarse layer, iterated convex-skyline sublayers;
   placements land in the builder as whole-array chunks.
3. **eds** — ∃-gate wiring between adjacent sublayers; facet members are
   remapped with one ``searchsorted`` against the ascending vertex list and
   the covering-facet assignment is batched in :mod:`repro.core.eds`.
4. **forall_gates** — ∀-edges from :func:`~repro.skyline.dominance.
   dominance_pairs`, ingested as flat ``(children, parents)`` arrays.
5. **freeze** — canonical CSR assembly in
   :meth:`~repro.core.structure.StructureBuilder.freeze`.

With ``parallel=N`` the fine peel + ∃-wiring of each coarse layer and the
∀-wiring of each adjacent pair run in pool workers over a shared read-only
points buffer (:mod:`repro.core.parallel`); the coarse peel splits its
per-layer dominance scans across the same pool.  Workers return
:class:`~repro.core.structure.BuilderFragment` chunks that the parent merges
in coarse-layer order; because ``freeze`` deduplicates edges and emits
canonical CSR, the parallel structure is **array-equal** to the sequential
one (asserted by the tier-1 tests and by ``build-bench``).

The original per-node implementation is preserved verbatim as
:mod:`repro.core.build_reference` and serves as the oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.eds import assign_covering_facets
from repro.core.structure import LayerStructure, StructureBuilder
from repro.geometry.convex_skyline import convex_skyline_with_facets
from repro.geometry.facets import Facet
from repro.skyline.dominance import dominance_pairs, dominates_any
from repro.skyline.layers import skyline_layer_partition, skyline_layers

#: Stages recorded by :class:`BuildProfile`, in pipeline order.
BUILD_STAGES = ("coarse_peel", "fine_peel", "eds", "forall_gates", "freeze")


@dataclass
class BuildProfile:
    """Per-stage wall-clock accounting for one build.

    ``stage_seconds`` maps each :data:`BUILD_STAGES` entry to accumulated
    seconds.  In a parallel build the fine-peel/EDS/∀-gate entries sum the
    *workers'* in-task seconds (so stage shares stay comparable across
    modes) while ``wall_seconds`` is the parent's end-to-end wall clock;
    sequentially the two views coincide up to scheduling noise.
    """

    stage_seconds: dict[str, float] = field(
        default_factory=lambda: dict.fromkeys(BUILD_STAGES, 0.0)
    )
    wall_seconds: float = 0.0
    parallel: int | None = None

    def add(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def merge_stage_seconds(self, other: dict[str, float]) -> None:
        for stage, seconds in other.items():
            self.add(stage, seconds)

    def total_stage_seconds(self) -> float:
        return float(sum(self.stage_seconds.values()))

    def as_dict(self) -> dict:
        return {
            "stage_seconds": {k: float(v) for k, v in self.stage_seconds.items()},
            "wall_seconds": float(self.wall_seconds),
            "parallel": self.parallel,
        }


@dataclass
class DualLayerBlueprint:
    """Construction by-products useful for zero layers, stats and tests."""

    structure: LayerStructure
    coarse_layers: list[np.ndarray]
    fine_layers: list[list[np.ndarray]]
    first_fine_facets: list[Facet] = field(default_factory=list)
    leftover: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    profile: BuildProfile = field(default_factory=BuildProfile)


def build_dual_layer(
    points: np.ndarray,
    *,
    fine_sublayers: bool = True,
    max_layers: int | None = None,
    skyline_algorithm: str = "blocked",
    builder: StructureBuilder | None = None,
    freeze: bool = True,
    parallel: int | None = None,
) -> DualLayerBlueprint:
    """Build the dual-resolution layer structure over ``points``.

    Parameters
    ----------
    points:
        ``(n, d)`` relation values.
    fine_sublayers:
        True → DL (convex-skyline sublayers + ∃-gates); False → DG
        (coarse layers and ∀-gates only).
    max_layers:
        Bound on the number of coarse layers; the remainder of the relation
        is left unindexed (queries are then valid for ``k <= max_layers``).
    skyline_algorithm:
        Which skyline routine peels the coarse layers (``blocked`` default;
        ``sfs`` / ``bnl`` / ``bskytree`` run the classic iterated peel and
        produce the identical partition).
    builder / freeze:
        Advanced hooks for the zero-layer decorators: pass a pre-made
        builder and/or delay freezing to splice in extra nodes and gates.
    parallel:
        ``N > 1`` ships per-coarse-layer work to ``N`` pool workers over a
        shared points buffer.  The resulting structure is array-equal to
        the sequential build.  ``None``/``1`` stays in-process.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    builder = builder if builder is not None else StructureBuilder(points)
    profile = BuildProfile(parallel=parallel)
    wall_start = time.perf_counter()

    if parallel is not None and parallel > 1:
        coarse, leftover, fine_per_coarse, first_fine_facets = _parallel_pipeline(
            points,
            builder,
            profile,
            fine_sublayers=fine_sublayers,
            max_layers=max_layers,
            skyline_algorithm=skyline_algorithm,
            processes=parallel,
        )
    else:
        start = time.perf_counter()
        coarse, leftover = skyline_layers(points, skyline_algorithm, max_layers)
        profile.add("coarse_peel", time.perf_counter() - start)

        fine_per_coarse = []
        first_fine_facets: list[Facet] = []
        for i, layer in enumerate(coarse):
            sublayers, facets_of_first = _build_fine_sublayers(
                builder,
                points,
                layer,
                coarse_index=i,
                enabled=fine_sublayers,
                profile=profile,
            )
            fine_per_coarse.append(sublayers)
            first_fine_facets = facets_of_first if i == 0 else first_fine_facets
            if i > 0:
                _wire_forall_gates(
                    builder, points, coarse[i - 1], layer, profile=profile
                )

    builder.num_coarse_layers = len(coarse)
    builder.complete = leftover.shape[0] == 0

    # Seeds: the first fine sublayer of the first coarse layer (L^{11}).
    if coarse:
        builder.static_seeds.extend(int(node) for node in fine_per_coarse[0][0])

    if freeze:
        start = time.perf_counter()
        structure = builder.freeze()
        profile.add("freeze", time.perf_counter() - start)
    else:
        structure = None
    profile.wall_seconds = time.perf_counter() - wall_start
    return DualLayerBlueprint(
        structure=structure,
        coarse_layers=coarse,
        fine_layers=fine_per_coarse,
        first_fine_facets=first_fine_facets,
        leftover=leftover,
        profile=profile,
    )


def _build_fine_sublayers(
    builder: StructureBuilder,
    points: np.ndarray,
    layer: np.ndarray,
    *,
    coarse_index: int,
    enabled: bool,
    profile: BuildProfile | None = None,
) -> tuple[list[np.ndarray], list[Facet]]:
    """Peel one coarse layer into fine sublayers and wire ∃-gates.

    Returns ``(sublayers, facets_of_first_sublayer)`` with sublayers/facets
    as *global* node-id arrays.
    """
    if not enabled:
        builder.place_many(layer, coarse_index, 0)
        return [layer], [Facet(members=layer)]

    fine_start = time.perf_counter()
    eds_seconds = 0.0
    sublayers: list[np.ndarray] = []
    first_facets: list[Facet] = []
    remaining = layer
    prev_sublayer: np.ndarray | None = None
    prev_facets: list[Facet] = []
    prev_vertices: np.ndarray | None = None
    j = 0
    while remaining.shape[0] > 0:
        local_vertices, local_facets = convex_skyline_with_facets(points[remaining])
        sublayer = remaining[local_vertices]
        if j == 0:
            # Only the chain entry needs facets in global ids (zero-layer
            # decorators consume them); later hops stay in local positions
            # and are remapped lazily inside _wire_exists_gates.
            first_facets = [
                replace(f, members=remaining[f.members]) for f in local_facets
            ]
        else:
            eds_start = time.perf_counter()
            _wire_exists_gates(
                builder, points, prev_sublayer, prev_facets, prev_vertices, sublayer
            )
            eds_seconds += time.perf_counter() - eds_start
        builder.place_many(sublayer, coarse_index, j)
        sublayers.append(np.sort(sublayer).astype(np.intp))
        mask = np.ones(remaining.shape[0], dtype=bool)
        mask[local_vertices] = False
        remaining = remaining[mask]
        prev_sublayer = sublayer
        prev_facets = local_facets
        prev_vertices = local_vertices
        j += 1
    if profile is not None:
        profile.add("eds", eds_seconds)
        profile.add("fine_peel", time.perf_counter() - fine_start - eds_seconds)
    return sublayers, first_facets


def _wire_exists_gates(
    builder: StructureBuilder,
    points: np.ndarray,
    prev_sublayer: np.ndarray,
    prev_facets: list[Facet],
    prev_vertices: np.ndarray,
    sublayer: np.ndarray,
) -> None:
    """Attach each new-sublayer node to one covering EDS of the previous one.

    ``prev_facets`` members index into the array the previous sublayer was
    peeled *from*; ``prev_vertices`` is the ascending vertex list of that
    peel, so one ``searchsorted`` per facet remaps members to positions in
    ``prev_sublayer``'s order (hyperplane data is position-independent and
    carried over).
    """
    local_facets = [
        replace(
            facet,
            members=np.searchsorted(prev_vertices, facet.members).astype(np.intp),
        )
        for facet in prev_facets
    ]
    assignments = assign_covering_facets(
        points[prev_sublayer], local_facets, points[sublayer]
    )
    lengths = np.fromiter(
        (a.shape[0] for a in assignments), dtype=np.intp, count=len(assignments)
    )
    builder.add_exists_edges(
        np.repeat(sublayer, lengths),
        prev_sublayer[np.concatenate(assignments)],
    )


def _wire_forall_gates(
    builder: StructureBuilder,
    points: np.ndarray,
    prev_layer: np.ndarray,
    layer: np.ndarray,
    profile: BuildProfile | None = None,
) -> None:
    """Attach ∀-parents: dominators in the previous coarse layer."""
    start = time.perf_counter()
    i, j = dominance_pairs(points[prev_layer], points[layer])
    builder.add_forall_edges(layer[j], prev_layer[i])
    if profile is not None:
        profile.add("forall_gates", time.perf_counter() - start)


# ---------------------------------------------------------------------------
# Parallel pipeline: per-coarse-layer tasks over a shared points buffer.
# ---------------------------------------------------------------------------


def _fine_layer_task(
    layer: np.ndarray, coarse_index: int, enabled: bool
) -> tuple[list[np.ndarray], "BuilderFragment", list[Facet] | None, dict[str, float]]:
    """Worker: fine-peel one coarse layer, return its builder fragment."""
    from repro.core.parallel import worker_points

    points = worker_points()
    local_builder = StructureBuilder(points)
    local_profile = BuildProfile()
    sublayers, first_facets = _build_fine_sublayers(
        local_builder,
        points,
        layer,
        coarse_index=coarse_index,
        enabled=enabled,
        profile=local_profile,
    )
    return (
        sublayers,
        local_builder.extract_fragment(),
        first_facets if coarse_index == 0 else None,
        local_profile.stage_seconds,
    )


def _forall_task(
    prev_layer: np.ndarray, layer: np.ndarray
) -> tuple["BuilderFragment", float]:
    """Worker: ∀-edges between two adjacent coarse layers."""
    from repro.core.parallel import worker_points

    points = worker_points()
    start = time.perf_counter()
    local_builder = StructureBuilder(points)
    _wire_forall_gates(local_builder, points, prev_layer, layer)
    return local_builder.extract_fragment(), time.perf_counter() - start


def _dominated_rows_task(point_ids: np.ndarray, member_ids: np.ndarray) -> np.ndarray:
    """Worker: dominance mask of shared-buffer rows against member rows."""
    from repro.core.parallel import worker_points

    points = worker_points()
    return dominates_any(points[point_ids], points[member_ids])


def _parallel_pipeline(
    points: np.ndarray,
    builder: StructureBuilder,
    profile: BuildProfile,
    *,
    fine_sublayers: bool,
    max_layers: int | None,
    skyline_algorithm: str,
    processes: int,
) -> tuple[list[np.ndarray], np.ndarray, list[list[np.ndarray]], list[Facet]]:
    """Fan the per-coarse-layer stages out to a shared-memory pool.

    Fragments are merged into ``builder`` in coarse-layer order (∀-edge
    fragments after all fine fragments), but any order would do: ``freeze``
    deduplicates edges and emits canonical CSR, so merge order cannot leak
    into the frozen structure.
    """
    from repro.core.parallel import SharedPointsPool

    with SharedPointsPool(points, processes) as pool:
        start = time.perf_counter()
        if skyline_algorithm == "blocked":
            def scanner(point_ids: np.ndarray, member_ids: np.ndarray) -> np.ndarray:
                # Small scans aren't worth a round trip through the pool.
                if point_ids.shape[0] * member_ids.shape[0] < 16384:
                    return dominates_any(points[point_ids], points[member_ids])
                return _pool_dominance_scan(pool, point_ids, member_ids)

            coarse, leftover = skyline_layer_partition(
                points, max_layers, scanner=scanner
            )
        else:
            coarse, leftover = skyline_layers(points, skyline_algorithm, max_layers)
        profile.add("coarse_peel", time.perf_counter() - start)

        fine_futures = [
            pool.submit(_fine_layer_task, layer, i, fine_sublayers)
            for i, layer in enumerate(coarse)
        ]
        forall_futures = [
            pool.submit(_forall_task, coarse[i - 1], coarse[i])
            for i in range(1, len(coarse))
        ]

        fine_per_coarse: list[list[np.ndarray]] = []
        first_fine_facets: list[Facet] = []
        for i, future in enumerate(fine_futures):
            sublayers, fragment, first_facets, stage_seconds = future.result()
            builder.merge_fragment(fragment)
            fine_per_coarse.append(sublayers)
            if i == 0 and first_facets is not None:
                first_fine_facets = first_facets
            profile.merge_stage_seconds(stage_seconds)
        for future in forall_futures:
            fragment, seconds = future.result()
            builder.merge_fragment(fragment)
            profile.add("forall_gates", seconds)
    return coarse, leftover, fine_per_coarse, first_fine_facets


def _pool_dominance_scan(
    pool, point_ids: np.ndarray, member_ids: np.ndarray
) -> np.ndarray:
    """Split one dominance scan row-wise across the pool, keeping row order."""
    shard = -(-point_ids.shape[0] // pool.processes)
    futures = [
        pool.submit(
            _dominated_rows_task,
            point_ids[start : start + shard],
            member_ids,
        )
        for start in range(0, point_ids.shape[0], shard)
    ]
    return np.concatenate([f.result() for f in futures])
