"""Algorithm 1: BuildDualLayer — constructing the dual-resolution layer.

Coarse layers are iterated skylines; each coarse layer is peeled into fine
sublayers by iterated convex skylines; ∃-dominance gates connect adjacent
sublayers through lower-hull facets; ∀-dominance gates connect adjacent
coarse layers through plain dominance.

The same builder also produces the DG structure (``fine_sublayers=False``:
one sublayer per coarse layer, no ∃-gates), which is exactly the paper's
framing of DG as "a dual-resolution index that employs only coarse-level
layers" — and what makes the Theorem 5 cost comparison apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.eds import assign_covering_facets
from repro.core.structure import LayerStructure, StructureBuilder
from repro.geometry.convex_skyline import convex_skyline_with_facets
from repro.geometry.facets import Facet
from repro.skyline.dominance import dominance_matrix
from repro.skyline.layers import skyline_layers


@dataclass
class DualLayerBlueprint:
    """Construction by-products useful for zero layers, stats and tests."""

    structure: LayerStructure
    coarse_layers: list[np.ndarray]
    fine_layers: list[list[np.ndarray]]
    first_fine_facets: list[Facet] = field(default_factory=list)
    leftover: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))


def build_dual_layer(
    points: np.ndarray,
    *,
    fine_sublayers: bool = True,
    max_layers: int | None = None,
    skyline_algorithm: str = "sfs",
    builder: StructureBuilder | None = None,
    freeze: bool = True,
) -> DualLayerBlueprint:
    """Build the dual-resolution layer structure over ``points``.

    Parameters
    ----------
    points:
        ``(n, d)`` relation values.
    fine_sublayers:
        True → DL (convex-skyline sublayers + ∃-gates); False → DG
        (coarse layers and ∀-gates only).
    max_layers:
        Bound on the number of coarse layers; the remainder of the relation
        is left unindexed (queries are then valid for ``k <= max_layers``).
    skyline_algorithm:
        Which skyline routine peels the coarse layers.
    builder / freeze:
        Advanced hooks for the zero-layer decorators: pass a pre-made
        builder and/or delay freezing to splice in extra nodes and gates.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    builder = builder if builder is not None else StructureBuilder(points)

    coarse, leftover = skyline_layers(points, skyline_algorithm, max_layers)
    builder.num_coarse_layers = len(coarse)
    builder.complete = leftover.shape[0] == 0

    fine_per_coarse: list[list[np.ndarray]] = []
    first_fine_facets: list[np.ndarray] = []
    for i, layer in enumerate(coarse):
        sublayers, facets_of_first = _build_fine_sublayers(
            builder, points, layer, coarse_index=i, enabled=fine_sublayers
        )
        fine_per_coarse.append(sublayers)
        first_fine_facets = facets_of_first if i == 0 else first_fine_facets
        if i > 0:
            _wire_forall_gates(builder, points, coarse[i - 1], layer)

    # Seeds: the first fine sublayer of the first coarse layer (L^{11}).
    if coarse:
        builder.static_seeds.extend(int(node) for node in fine_per_coarse[0][0])

    structure = builder.freeze() if freeze else None
    return DualLayerBlueprint(
        structure=structure,
        coarse_layers=coarse,
        fine_layers=fine_per_coarse,
        first_fine_facets=first_fine_facets,
        leftover=leftover,
    )


def _build_fine_sublayers(
    builder: StructureBuilder,
    points: np.ndarray,
    layer: np.ndarray,
    *,
    coarse_index: int,
    enabled: bool,
) -> tuple[list[np.ndarray], list[Facet]]:
    """Peel one coarse layer into fine sublayers and wire ∃-gates.

    Returns ``(sublayers, facets_of_first_sublayer)`` with sublayers/facets
    as *global* node-id arrays.
    """
    if not enabled:
        for node in layer:
            builder.place(int(node), coarse_index, 0)
        return [layer], [Facet(members=layer)]

    sublayers: list[np.ndarray] = []
    first_facets: list[Facet] = []
    remaining = layer
    prev_sublayer: np.ndarray | None = None
    prev_facets_global: list[Facet] = []
    j = 0
    while remaining.shape[0] > 0:
        local_vertices, local_facets = convex_skyline_with_facets(points[remaining])
        sublayer = remaining[local_vertices]
        facets_global = [
            replace(f, members=remaining[f.members]) for f in local_facets
        ]
        if j == 0:
            first_facets = facets_global
        else:
            _wire_exists_gates(
                builder, points, prev_sublayer, prev_facets_global, sublayer
            )
        for node in sublayer:
            builder.place(int(node), coarse_index, j)
        sublayers.append(np.sort(sublayer).astype(np.intp))
        mask = np.ones(remaining.shape[0], dtype=bool)
        mask[local_vertices] = False
        remaining = remaining[mask]
        prev_sublayer = sublayer
        prev_facets_global = facets_global
        j += 1
    return sublayers, first_facets


def _wire_exists_gates(
    builder: StructureBuilder,
    points: np.ndarray,
    prev_sublayer: np.ndarray,
    prev_facets_global: list[Facet],
    sublayer: np.ndarray,
) -> None:
    """Attach each new-sublayer node to one covering EDS of the previous one."""
    # Facet members index globally; remap to positions in prev_sublayer's
    # order (hyperplane data is position-independent and carried over).
    position_of = {int(node): pos for pos, node in enumerate(prev_sublayer)}
    local_facets = [
        replace(
            facet,
            members=np.asarray(
                [position_of[int(node)] for node in facet.members], dtype=np.intp
            ),
        )
        for facet in prev_facets_global
    ]
    assignments = assign_covering_facets(
        points[prev_sublayer], local_facets, points[sublayer]
    )
    for node, parents_local in zip(sublayer, assignments):
        builder.add_exists_parents(int(node), prev_sublayer[parents_local])


def _wire_forall_gates(
    builder: StructureBuilder,
    points: np.ndarray,
    prev_layer: np.ndarray,
    layer: np.ndarray,
) -> None:
    """Attach ∀-parents: dominators in the previous coarse layer."""
    matrix = dominance_matrix(points[prev_layer], points[layer])
    for col, node in enumerate(layer):
        parents = prev_layer[np.nonzero(matrix[:, col])[0]]
        if parents.shape[0]:
            builder.add_forall_parents(int(node), parents)
