"""Auto kernel dispatch for Algorithm 2 traversals.

BENCH_query.json (committed, full scale) shows no single kernel wins
everywhere:

* the **native** compiled kernel (``repro/core/native/`` — the C classic
  walk loaded via cffi ABI mode) removes the per-round python overhead
  entirely and wins every *solo* cell where it is available, by 5–9x
  over csr at full scale;
* the CSR kernel is 2.4–3.4x faster than the per-node reference at d=4,
  and still 1.2–1.3x faster at d=2 once the structure reaches ~100k
  tuples — vectorized gate relaxation amortizes well when pops open many
  children;
* but on *small low-dimensional* structures (d=2, n=10k: 0.89x IND,
  0.73x ANT) the reference kernel wins among the python kernels: pops
  open only a handful of children there, and the fixed overhead of
  whole-slice numpy ops exceeds the python loop it replaces;
* and once a caller presents many queries at once, the lane-parallel
  batch kernel beats the solo kernels — it walks the gate graph once per
  *round* for all lanes and scores every lane's opened children in one
  GEMM-shaped contraction (see BENCH_query.json's ``batch`` sweep).

``select_kernel`` encodes those calibrated crossover points so
``kernel="auto"`` (the serving/cluster default) picks the right kernel
from structure size, dimensionality, batch width, and — when pruning is
requested — whether the structure actually carries a bound table
(structures frozen without bounds cannot serve a pruning-dependent
plan, so ``auto`` falls back to a bound-free kernel there).

The ``"native"`` kernel (alias ``"jit"``, kept for compatibility with
the PR 8 registration slot) is served through
:func:`register_jit_kernel` / :func:`get_jit_kernel`.  On first demand
the bundled C walker auto-registers itself — building its ``.so`` with
the host compiler if no cached build exists.  When no compiler is
present or the build fails, the ``auto`` path logs one warning and
falls back to the python kernels permanently; only an explicit
``kernel="native"`` request raises
:class:`~repro.exceptions.KernelUnavailableError`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.structure import LayerStructure
from repro.exceptions import KernelUnavailableError

#: Node-count threshold below which (at low d) the per-node reference
#: kernel beats the vectorized CSR kernel. Calibrated from
#: BENCH_query.json: csr loses at n=10k d=2 (0.89x/0.73x) but wins at
#: n=100k d=2 (1.27x/1.16x); 32768 sits between the measured cells.
#: Only consulted when the native kernel is unavailable.
AUTO_SMALL_STRUCTURE_NODES = 32768

#: Dimension threshold for the small-structure exception. At d>=3 the
#: batched einsum scoring already pays off even on 10k-node structures
#: (csr 1.9–2.4x at d=4 n=10k), so only d<=2 dispatches to reference.
AUTO_SMALL_STRUCTURE_DIM = 2

#: Minimum number of same-k query lanes before the lane-parallel batch
#: kernel is dispatched. Calibrated from BENCH_query.json's batch sweep:
#: at B=8 the batch kernel already beats per-query csr on every
#: committed cell, while B<8 round overheads can lose on small cells.
#: The crossover survives the native kernel: at B=8 the batch kernel's
#: one-GEMM-per-round scoring still beats eight compiled solo walks on
#: the committed cells, so batch dispatch is unchanged.
AUTO_BATCH_MIN_LANES = 8

#: Dimensionality ceiling for the native kernel's bitwise contract
#: (numpy's einsum switches its float reduction tree at d=8; the C dot
#: product reproduces the d<=7 association exactly).  Mirrored from
#: :data:`repro.core.native.NATIVE_MAX_DIM` to keep this module import-
#: light; a unit test pins the two equal.
NATIVE_DISPATCH_MAX_DIM = 7

#: Node-count ceiling for the native kernel: structures at or above
#: this size use an int64 gate-state template the C walker does not
#: speak (2**30 nodes ~ 4 GiB of values alone — far beyond the
#: committed bench grid).
NATIVE_DISPATCH_MAX_NODES = 2**30 - 1

VALID_KERNELS = ("auto", "reference", "csr", "batch", "native", "jit")

#: Registered compiled solo kernel, or ``None``. Filled either by the
#: bundled native walker's lazy auto-registration (see
#: :func:`get_jit_kernel`) or explicitly by :func:`register_jit_kernel`
#: with any compiled walker honouring the ``process_top_k`` signature.
_JIT_KERNEL: Optional[Callable] = None

#: One-shot flag: the native auto-registration is attempted at most
#: once per process (success or failure), so a missing compiler costs
#: one probe, not one per query.
_AUTOLOAD_ATTEMPTED = False


def register_jit_kernel(kernel: Optional[Callable]) -> None:
    """Install (or with ``None``, clear) the ``kernel="native"``/``"jit"`` slot.

    The callable must honour the :func:`repro.core.query.process_top_k`
    signature and its bitwise-identity contract — registration is a
    promise, not a check; the equivalence suites are the check.
    Clearing the slot also re-arms the native auto-registration probe.
    """
    global _JIT_KERNEL, _AUTOLOAD_ATTEMPTED
    _JIT_KERNEL = kernel
    if kernel is None:
        _AUTOLOAD_ATTEMPTED = False


def _try_autoload_native() -> None:
    """Attempt (once) to register the bundled C walker."""
    global _AUTOLOAD_ATTEMPTED
    if _AUTOLOAD_ATTEMPTED:
        return
    _AUTOLOAD_ATTEMPTED = True
    try:
        from repro.core.native import get_native_kernel

        kernel = get_native_kernel()
    except Exception:
        # Missing compiler, failed build, failed self-check, absent
        # cffi — all leave the slot empty; get_jit_kernel raises the
        # actionable error for explicit requests, the auto path warns
        # once via native_ready(warn=True) and falls back.
        return
    register_jit_kernel(kernel)


def get_jit_kernel() -> Callable:
    """Return the compiled kernel or raise :class:`KernelUnavailableError`.

    Reached by explicit ``kernel="native"``/``"jit"`` requests and by
    ``auto`` dispatches that already verified availability through
    :func:`native_kernel_usable`, so the error names the remedy.
    """
    if _JIT_KERNEL is None:
        _try_autoload_native()
    if _JIT_KERNEL is None:
        raise KernelUnavailableError(
            "kernel='native' requested but no compiled walk kernel is "
            "available: the bundled C walker could not be built — a C "
            "toolchain (cc/gcc/clang) and cffi are required, or a cached "
            "build under the native cache dir; see "
            "repro.core.native.build_info() for the failure detail, or "
            "use kernel='auto' to serve via the python kernels"
        )
    return _JIT_KERNEL


def native_kernel_usable(n_nodes: int, d: int) -> bool:
    """Can ``auto`` dispatch this shape to the native kernel right now?

    Shape gates first (cheap, no import): the bitwise contract covers
    d <= 7 and int32 gate-state structures only.  Then the build/load
    probe — which compiles on first use, logs one warning on failure,
    and is a cached boolean ever after.  Never raises.
    """
    if d > NATIVE_DISPATCH_MAX_DIM or n_nodes > NATIVE_DISPATCH_MAX_NODES:
        return False
    if _JIT_KERNEL is not None:
        return True
    try:
        from repro.core.native import native_ready
    except Exception:  # pragma: no cover - core.native always importable
        return False
    return native_ready(warn=True)


def select_kernel(
    structure: LayerStructure | None = None,
    *,
    n_nodes: int | None = None,
    d: int | None = None,
    batch_width: int = 1,
    prune: bool = False,
    has_bounds: bool | None = None,
) -> str:
    """Pick the concrete kernel for an ``auto`` dispatch.

    Pass either a built ``structure`` or explicit ``n_nodes``/``d``
    (both required in that case). ``batch_width`` is the number of
    queries sharing one traversal opportunity (same effective k).
    ``prune`` says the caller wants layer-bound skipping; pruning is a
    property of the csr/batch/native kernels only, and only on
    structures that carry a bound table, so ``prune=True`` with bounds
    present steers the small-structure case away from ``"reference"``
    (which cannot prune), while ``prune=True`` without bounds changes
    nothing — the caller must run unpruned anyway. ``has_bounds``
    overrides the structure's own
    :attr:`~repro.core.structure.LayerStructure.has_layer_bounds`
    when dispatching from shape alone.

    Returns one of ``"batch"``, ``"native"``, ``"reference"``,
    ``"csr"`` — never ``"auto"`` or ``"jit"``.  ``"native"`` is
    returned only when the compiled kernel is importable *now* (the
    probe builds on first use); otherwise the python crossovers below
    apply unchanged, so a host without a C compiler dispatches exactly
    as before this kernel existed.
    """
    if structure is not None:
        n_nodes = structure.n_nodes
        d = structure.values.shape[1]
        if has_bounds is None:
            has_bounds = structure.has_layer_bounds
    if n_nodes is None or d is None:
        raise ValueError("select_kernel needs a structure or both n_nodes and d")
    if has_bounds is None:
        has_bounds = False
    if batch_width >= AUTO_BATCH_MIN_LANES:
        return "batch"
    # Solo/low-batch: the compiled walk wins every committed solo cell
    # it supports (5–9x over csr at full scale, and still ahead at
    # n=2k — per-pop cost is two orders of magnitude below python's),
    # so availability is the only crossover.
    if native_kernel_usable(n_nodes, d):
        return "native"
    if n_nodes <= AUTO_SMALL_STRUCTURE_NODES and d <= AUTO_SMALL_STRUCTURE_DIM:
        return "csr" if (prune and has_bounds) else "reference"
    return "csr"
