"""Auto kernel dispatch for Algorithm 2 traversals.

BENCH_query.json (committed, full scale) shows no single kernel wins
everywhere:

* the CSR kernel is 2.4–3.4x faster than the per-node reference at d=4,
  and still 1.2–1.3x faster at d=2 once the structure reaches ~100k
  tuples — vectorized gate relaxation amortizes well when pops open many
  children;
* but on *small low-dimensional* structures (d=2, n=10k: 0.89x IND,
  0.73x ANT) the reference kernel wins: pops open only a handful of
  children there, and the fixed overhead of whole-slice numpy ops
  exceeds the python loop it replaces;
* and once a caller presents many queries at once, the lane-parallel
  batch kernel beats both — it walks the gate graph once per *round*
  for all lanes and scores every lane's opened children in one
  GEMM-shaped contraction (see BENCH_query.json's ``batch`` sweep).

``select_kernel`` encodes those calibrated crossover points so
``kernel="auto"`` (the serving/cluster default) picks the right kernel
from structure size, dimensionality, batch width, and — when pruning is
requested — whether the structure actually carries a bound table
(structures frozen without bounds cannot serve a pruning-dependent
plan, so ``auto`` falls back to a bound-free kernel there).

A fourth kernel slot, ``"jit"``, is registration-only scaffolding for a
numba-compiled walker (the ROADMAP JIT item): this environment has no
numba, so nothing registers by default and an explicit
``kernel="jit"`` request raises
:class:`~repro.exceptions.KernelUnavailableError` with a clear message.
``auto`` never selects it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.structure import LayerStructure
from repro.exceptions import KernelUnavailableError

#: Node-count threshold below which (at low d) the per-node reference
#: kernel beats the vectorized CSR kernel. Calibrated from
#: BENCH_query.json: csr loses at n=10k d=2 (0.89x/0.73x) but wins at
#: n=100k d=2 (1.27x/1.16x); 32768 sits between the measured cells.
AUTO_SMALL_STRUCTURE_NODES = 32768

#: Dimension threshold for the small-structure exception. At d>=3 the
#: batched einsum scoring already pays off even on 10k-node structures
#: (csr 1.9–2.4x at d=4 n=10k), so only d<=2 dispatches to reference.
AUTO_SMALL_STRUCTURE_DIM = 2

#: Minimum number of same-k query lanes before the lane-parallel batch
#: kernel is dispatched. Calibrated from BENCH_query.json's batch sweep:
#: at B=8 the batch kernel already beats per-query csr on every
#: committed cell, while B<8 round overheads can lose on small cells.
AUTO_BATCH_MIN_LANES = 8

VALID_KERNELS = ("auto", "reference", "csr", "batch", "jit")

#: Registered JIT-compiled solo kernel, or ``None``. The slot is filled
#: by :func:`register_jit_kernel` from an environment that has numba (or
#: any compiled walker honouring the ``process_top_k`` signature); this
#: container ships without one.
_JIT_KERNEL: Optional[Callable] = None


def register_jit_kernel(kernel: Optional[Callable]) -> None:
    """Install (or with ``None``, clear) the ``kernel="jit"`` implementation.

    The callable must honour the :func:`repro.core.query.process_top_k`
    signature and its bitwise-identity contract — registration is a
    promise, not a check; the equivalence suites are the check.
    """
    global _JIT_KERNEL
    _JIT_KERNEL = kernel


def get_jit_kernel() -> Callable:
    """Return the registered JIT kernel or raise :class:`KernelUnavailableError`.

    ``auto`` never dispatches here; only an explicit ``kernel="jit"``
    request reaches this lookup, so the error names the remedy.
    """
    if _JIT_KERNEL is None:
        raise KernelUnavailableError(
            "kernel='jit' requested but no JIT kernel is registered: numba "
            "is not available in this environment; call "
            "repro.core.dispatch.register_jit_kernel() with a compiled "
            "walker, or use kernel='auto'"
        )
    return _JIT_KERNEL


def select_kernel(
    structure: LayerStructure | None = None,
    *,
    n_nodes: int | None = None,
    d: int | None = None,
    batch_width: int = 1,
    prune: bool = False,
    has_bounds: bool | None = None,
) -> str:
    """Pick the concrete kernel for an ``auto`` dispatch.

    Pass either a built ``structure`` or explicit ``n_nodes``/``d``
    (both required in that case). ``batch_width`` is the number of
    queries sharing one traversal opportunity (same effective k).
    ``prune`` says the caller wants layer-bound skipping; pruning is a
    property of the csr/batch kernels only, and only on structures that
    carry a bound table, so ``prune=True`` with bounds present steers
    the small-structure case to ``"csr"`` (the reference kernel cannot
    prune), while ``prune=True`` without bounds changes nothing — the
    caller must run unpruned anyway. ``has_bounds`` overrides the
    structure's own :attr:`~repro.core.structure.LayerStructure.has_layer_bounds`
    when dispatching from shape alone.

    Returns one of ``"batch"``, ``"reference"``, ``"csr"`` — never
    ``"auto"`` or ``"jit"``.
    """
    if structure is not None:
        n_nodes = structure.n_nodes
        d = structure.values.shape[1]
        if has_bounds is None:
            has_bounds = structure.has_layer_bounds
    if n_nodes is None or d is None:
        raise ValueError("select_kernel needs a structure or both n_nodes and d")
    if has_bounds is None:
        has_bounds = False
    if batch_width >= AUTO_BATCH_MIN_LANES:
        return "batch"
    if n_nodes <= AUTO_SMALL_STRUCTURE_NODES and d <= AUTO_SMALL_STRUCTURE_DIM:
        return "csr" if (prune and has_bounds) else "reference"
    return "csr"
