"""Dynamic maintenance: insert/delete without re-peeling the skyline.

An extension beyond the paper (which builds statically).  A tuple's coarse
layer equals the length of its longest dominance chain, so single-tuple
updates perturb the partition locally:

* **insert** — binary-search the first layer whose members do not dominate
  the new tuple (the "dominated by layer i" predicate is monotone in i by
  transitivity), insert there, and cascade *demotions*: layer members
  dominated by an arriving tuple move exactly one layer down.
* **delete** — remove the tuple and cascade *promotions*: a tuple rises to
  the previous layer exactly when no member of that (updated) layer
  dominates it; a single deletion shortens any chain by at most one, so
  one-layer moves suffice.

The maintained partition always equals the from-scratch skyline peel
(asserted in the tests).  The gated structure (fine sublayers, ∀/∃ edges)
is rebuilt lazily from the partition on the next query — skipping the
skyline computation that dominates construction time.

CSR splicing
------------
When the index runs without fine sublayers (DG mode: coarse layers and
∀-gates only), the common insert — a tuple that lands in its layer without
demoting anyone — is applied to the frozen CSR structure *incrementally*
instead of dropping it: the new node's value row, layer level, ∀-parent
count and child slice are appended, and one ``np.insert`` pass splices the
node into each dominator's child slice (its local id is always the maximum,
so every splice point is a slice end and CSR ordering is preserved).  The
patched structure is array-equal to a from-scratch rebuild (asserted in
tests) at O(nodes + edges) copy cost, skipping the dominance wiring
entirely.  Inserts that cascade demotions, deletions, and fine-sublayer
indexes still take the lazy-rebuild path.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.query import process_top_k
from repro.core.structure import LayerStructure, StructureBuilder
from repro.exceptions import EmptyRelationError, InvalidQueryError
from repro.skyline.dominance import dominance_matrix, dominates_any, dominators_of
from repro.stats import AccessCounter


class DynamicDualLayerIndex:
    """A mutable dual-resolution index over a growing/shrinking point set.

    Points are addressed by insertion-order ids (ids of deleted points are
    never reused).  Queries rebuild the gated structure lazily from the
    maintained layer partition.
    """

    def __init__(self, d: int, *, fine_sublayers: bool = True) -> None:
        if d < 1:
            raise InvalidQueryError(f"dimensionality must be >= 1, got {d}")
        self.d = d
        self.fine_sublayers = fine_sublayers
        #: Monotone structure version: bumped by every insert/delete, so a
        #: serving layer keying cached answers by version can never return
        #: a stale result (see :mod:`repro.serving`).
        self.version = 0
        self._points: list[np.ndarray] = []
        self._alive: list[bool] = []
        #: layer index per live point id; -1 for deleted.
        self._layer_of: dict[int, int] = {}
        self._layers: list[list[int]] = []
        self._structure = None
        self._id_map: np.ndarray | None = None
        #: How many inserts were applied by splicing the CSR structure
        #: in place of a lazy rebuild (diagnostics; see module docstring).
        self.patched_inserts = 0
        # Serializes the lazy structure rebuild so concurrent readers (the
        # serving engine's thread pool) never observe a half-built graph.
        self._rebuild_lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_rebuild_lock"]  # locks don't pickle
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._rebuild_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    def insert(self, values: np.ndarray) -> int:
        """Insert a tuple; returns its id."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.d,):
            raise InvalidQueryError(
                f"expected a {self.d}-vector, got shape {values.shape}"
            )
        point_id = len(self._points)
        self._points.append(values)
        self._alive.append(True)
        layer = self._first_non_dominating_layer(values)
        self._place(point_id, layer)
        demoted = self._cascade_demotions(layer, [point_id])
        with self._rebuild_lock:
            structure, id_map = self._structure, self._id_map
            if structure is not None and not demoted and self._patchable(structure):
                self._structure, self._id_map = self._splice_insert(
                    structure, id_map, point_id, values, layer
                )
                self.patched_inserts += 1
            else:
                self._structure = None
        self.version += 1
        return point_id

    def delete(self, point_id: int) -> None:
        """Delete a tuple by id."""
        if not (0 <= point_id < len(self._points)) or not self._alive[point_id]:
            raise InvalidQueryError(f"no live tuple with id {point_id}")
        layer = self._layer_of.pop(point_id)
        self._alive[point_id] = False
        self._layers[layer].remove(point_id)
        self._cascade_promotions(layer)
        self._trim_empty_layers()
        self._structure = None
        self.version += 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of live tuples."""
        return len(self._layer_of)

    def layers(self) -> list[list[int]]:
        """The maintained coarse-layer partition (ids per layer)."""
        return [list(layer) for layer in self._layers]

    def values_of(self, point_id: int) -> np.ndarray:
        """Attribute values of a live tuple."""
        if not self._alive[point_id]:
            raise InvalidQueryError(f"no live tuple with id {point_id}")
        return self._points[point_id]

    def query(
        self,
        weights: np.ndarray,
        k: int,
        counter: AccessCounter | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-k ``(ids, scores)``; rebuilds the gate structure if stale.

        ``counter`` optionally receives the Definition 9 cost accounting
        (the serving engine passes one per query).
        """
        if self.n == 0:
            raise EmptyRelationError("query on an empty dynamic index")
        with self._rebuild_lock:
            if self._structure is None:
                self._rebuild_structure()
            # Capture a consistent (structure, id_map) snapshot; concurrent
            # mutations replace both references rather than mutating them.
            structure, id_map = self._structure, self._id_map
        counter = counter if counter is not None else AccessCounter()
        from repro.relation import normalize_weights

        w = normalize_weights(weights, self.d)
        local_ids, scores = process_top_k(
            structure, w, min(k, self.n), counter
        )
        return id_map[local_ids], scores

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _layer_points(self, layer: int) -> np.ndarray:
        ids = self._layers[layer]
        return np.vstack([self._points[i] for i in ids]) if ids else np.empty((0, self.d))

    def _first_non_dominating_layer(self, values: np.ndarray) -> int:
        """Binary search: first layer whose members don't dominate ``values``."""
        lo, hi = 0, len(self._layers)
        while lo < hi:
            mid = (lo + hi) // 2
            dominated = bool(
                dominates_any(values[None, :], self._layer_points(mid))[0]
            )
            if dominated:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _place(self, point_id: int, layer: int) -> None:
        while layer >= len(self._layers):
            self._layers.append([])
        self._layers[layer].append(point_id)
        self._layer_of[point_id] = layer

    def _cascade_demotions(self, layer: int, arrivals: list[int]) -> bool:
        """Arriving tuples push the members they dominate one layer down.

        Returns True when at least one incumbent moved (the CSR splice
        fast path only applies to demotion-free inserts).
        """
        any_demoted = False
        while arrivals and layer + 1 <= len(self._layers):
            incumbents = [i for i in self._layers[layer] if i not in arrivals]
            if not incumbents:
                break
            arrival_points = np.vstack([self._points[i] for i in arrivals])
            incumbent_points = np.vstack([self._points[i] for i in incumbents])
            demoted_mask = dominates_any(incumbent_points, arrival_points)
            demoted = [i for i, out in zip(incumbents, demoted_mask) if out]
            if not demoted:
                break
            any_demoted = True
            for i in demoted:
                self._layers[layer].remove(i)
                self._place_into(i, layer + 1)
            layer += 1
            arrivals = demoted
        return any_demoted

    def _place_into(self, point_id: int, layer: int) -> None:
        while layer >= len(self._layers):
            self._layers.append([])
        self._layers[layer].append(point_id)
        self._layer_of[point_id] = layer

    def _cascade_promotions(self, layer: int) -> None:
        """After a removal at ``layer``, pull up newly undominated tuples."""
        current = layer
        while current + 1 < len(self._layers):
            above = self._layer_points(current)
            below_ids = list(self._layers[current + 1])
            if not below_ids:
                break
            below_points = np.vstack([self._points[i] for i in below_ids])
            if above.shape[0] == 0:
                promoted = below_ids
            else:
                dominated = dominates_any(below_points, above)
                promoted = [i for i, d in zip(below_ids, dominated) if not d]
            if not promoted:
                break
            for i in promoted:
                self._layers[current + 1].remove(i)
                self._layers[current].append(i)
                self._layer_of[i] = current
            current += 1
        self._trim_empty_layers()

    def _trim_empty_layers(self) -> None:
        while self._layers and not self._layers[-1]:
            self._layers.pop()

    def _patchable(self, structure: LayerStructure) -> bool:
        """True when an insert may splice ``structure``'s CSR arrays.

        The splice covers the coarse-only (DG-mode) graph: no fine
        sublayers to re-peel, no ∃-edges, static layer-0 seeds, no
        pseudo-tuples.  (The rebuild path never produces a selector or
        pseudo nodes here; the checks are defensive.)
        """
        return (
            not self.fine_sublayers
            and structure.seed_selector is None
            and structure.n_pseudo == 0
        )

    def _splice_insert(
        self,
        structure: LayerStructure,
        id_map: np.ndarray,
        point_id: int,
        values: np.ndarray,
        layer: int,
    ) -> tuple[LayerStructure, np.ndarray]:
        """Splice a demotion-free insert into the frozen CSR structure.

        Produces a new :class:`LayerStructure` that is array-equal to a
        from-scratch rebuild of the updated partition (the old structure
        object is left untouched for concurrent readers).  The new tuple's
        insertion-order id exceeds every live id, so its local id is the
        append position ``n`` and every CSR splice lands at a slice end:

        * its ∀-parents are its dominators in layer ``L-1`` — one
          ``np.insert`` pass appends node ``n`` to each dominator's child
          slice (``n`` is the largest id, so slice ordering is preserved);
        * its ∀-children are the layer ``L+1`` members it dominates — their
          parent counts increment and its own child slice lands at the end
          of the index array;
        * placement, seeds (for a layer-0 insert) and the value matrix
          extend by one row.
        """
        n_old = structure.n_real
        new_node = n_old
        matrix = structure.values

        def layer_locals(members: list[int]) -> np.ndarray:
            # Live point ids -> local node ids (positions in the sorted id
            # map; monotone, so sorted ids map to sorted locals).
            return np.searchsorted(id_map, np.asarray(sorted(members)))

        if layer > 0:
            prev_local = layer_locals(self._layers[layer - 1])
            parents = prev_local[dominators_of(values, matrix[prev_local])]
        else:
            parents = np.empty(0, dtype=np.intp)
        if layer + 1 < len(self._layers):
            next_local = layer_locals(self._layers[layer + 1])
            dominated = dominance_matrix(values[None, :], matrix[next_local])[0]
            children = next_local[dominated].astype(np.intp)
        else:
            children = np.empty(0, dtype=np.intp)

        forall_count = np.append(structure.forall_parent_count, parents.shape[0])
        forall_count[children] += 1

        # Splice node n into each parent's child slice (at the slice end),
        # then append n's own child slice; indptr entries after a parent
        # shift by the number of earlier splices.
        indptr = structure.forall_indptr
        indices = np.insert(structure.forall_indices, indptr[parents + 1], new_node)
        indices = np.concatenate([indices, children])
        shifted = indptr + np.cumsum(np.bincount(parents + 1, minlength=n_old + 1))
        forall_indptr = np.append(shifted, shifted[-1] + children.shape[0]).astype(
            np.intp
        )

        exists_indptr = np.append(
            structure.exists_indptr, structure.exists_indptr[-1]
        ).astype(np.intp)

        static_seeds = (
            np.append(structure.static_seeds, new_node).astype(np.intp)
            if layer == 0
            else structure.static_seeds
        )

        patched = LayerStructure(
            values=np.vstack([matrix, values[None, :]]),
            n_real=n_old + 1,
            forall_parent_count=forall_count,
            forall_indptr=forall_indptr,
            forall_indices=indices.astype(np.intp),
            exists_gated=np.append(structure.exists_gated, False),
            exists_indptr=exists_indptr,
            exists_indices=structure.exists_indices,
            static_seeds=static_seeds,
            seed_selector=None,
            coarse_levels=np.append(structure.coarse_levels, layer),
            fine_levels=np.append(structure.fine_levels, 0),
            num_coarse_layers=len(self._layers),
            complete=True,
        )
        return patched, np.append(id_map, point_id)

    def _rebuild_structure(self) -> None:
        """Rebuild the gated structure from the maintained partition.

        The coarse layers are already known, so the skyline peel — the
        dominant build cost — is skipped: points are fed to the standard
        builder layer by layer via a pre-partitioned matrix.
        """
        live_ids = sorted(self._layer_of)
        self._id_map = np.asarray(live_ids, dtype=np.intp)
        position = {pid: pos for pos, pid in enumerate(live_ids)}
        matrix = np.vstack([self._points[i] for i in live_ids])

        from repro.core.build import _build_fine_sublayers, _wire_forall_gates

        builder = StructureBuilder(matrix)
        layers_local = [
            np.asarray(sorted(position[i] for i in layer), dtype=np.intp)
            for layer in self._layers
        ]
        builder.num_coarse_layers = len(layers_local)
        builder.complete = True
        fine_first: np.ndarray | None = None
        for index, layer in enumerate(layers_local):
            sublayers, _ = _build_fine_sublayers(
                builder, matrix, layer, coarse_index=index,
                enabled=self.fine_sublayers,
            )
            if index == 0:
                fine_first = sublayers[0]
            else:
                _wire_forall_gates(builder, matrix, layers_local[index - 1], layer)
        if fine_first is not None:
            builder.static_seeds.extend(int(i) for i in fine_first)
        self._structure = builder.freeze()
