"""I/O cost replay: page faults of a top-k access trace under a layout.

Wires a recording counter into an index query, then replays the accessed
tuple sequence against a :class:`~repro.storage.blocks.BlockStore` +
:class:`~repro.storage.buffer.BufferPool` to count page faults — the
disk-resident cost the paper's §VI-A remark predicts layer clustering
reduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import TopKIndex
from repro.stats import AccessCounter
from repro.storage.blocks import BlockStore
from repro.storage.buffer import BufferPool


@dataclass
class IOReport:
    """Page-fault accounting for one replayed query."""

    tuples_accessed: int
    pages_touched: int
    page_faults: int
    buffer_hits: int

    @property
    def fault_rate(self) -> float:
        """Faults per tuple access (0 when nothing was accessed)."""
        if self.tuples_accessed == 0:
            return 0.0
        return self.page_faults / self.tuples_accessed


class IOCostModel:
    """Replays query traces of an index against a storage layout."""

    def __init__(
        self,
        index: TopKIndex,
        store: BlockStore,
        buffer_capacity: int = 16,
    ) -> None:
        self.index = index
        self.store = store
        self.buffer = BufferPool(buffer_capacity)

    def run_query(self, weights: np.ndarray, k: int, *, cold: bool = True) -> IOReport:
        """Answer one query and report its I/O cost.

        ``cold=True`` clears the buffer pool first (per-query cold cache);
        ``cold=False`` keeps pages across queries (a warm shared buffer).
        """
        trace = self._trace(weights, k)
        if cold:
            self.buffer.clear()
        else:
            self.buffer.reset_counters()
        for page in self.store.pages_of(trace):
            self.buffer.access(int(page))
        return IOReport(
            tuples_accessed=len(trace),
            pages_touched=int(np.unique(self.store.pages_of(trace)).shape[0])
            if trace
            else 0,
            page_faults=self.buffer.misses,
            buffer_hits=self.buffer.hits,
        )

    def _trace(self, weights: np.ndarray, k: int) -> list[int]:
        """The sequence of real tuples the index scores for this query."""
        recorder = _TraceRecorder()
        result = self.index.query(weights, k, counter=recorder)
        if recorder.trace:
            return recorder.trace
        # Indexes that bypass per-tuple hooks (e.g. vectorized scans)
        # fall back to the result ids as the best available trace.
        return [int(i) for i in result.ids]


class _TraceRecorder(AccessCounter):
    """Counter capturing per-tuple access order.

    The gated-graph engine (DL/DL+/DG/DG+) calls ``count_real_tuple`` once
    per scored tuple, in access order, *in addition to* the normal
    ``count_real`` accounting — the hook only observes order and must not
    count, or the Definition 9 cost would be double-reported.  Engines that
    score in bulk (ScanIndex, Onion, the list engines) don't report an
    order, so the model falls back to the result ids.
    """

    __slots__ = ("trace",)

    def __init__(self) -> None:
        super().__init__()
        self.trace: list[int] = []

    def count_real_tuple(self, tuple_id: int) -> None:
        self.trace.append(int(tuple_id))
