"""Page-structured tuple storage with pluggable placement policies.

A :class:`BlockStore` assigns every tuple id to a page of fixed capacity.
The *placement* decides which tuples share pages — the knob the paper's
disk remark is about:

* :func:`row_order_placement` — tuples packed in id order (a heap file);
* :func:`layer_clustered_placement` — tuples packed layer by layer (and
  within a coarse layer, sublayer by sublayer), so the pages touched by a
  top-k traversal are few and contiguous.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import ReproError


def row_order_placement(n: int) -> np.ndarray:
    """Tuple ids in storage order for a plain heap file (identity)."""
    return np.arange(n, dtype=np.intp)


def layer_clustered_placement(layers: Sequence[Iterable[int]], n: int) -> np.ndarray:
    """Tuple ids in storage order when clustered by (sub)layer.

    ``layers`` lists tuple ids layer by layer; every tuple must appear
    exactly once.  Returns the concatenated storage order.
    """
    order = np.concatenate(
        [np.asarray(list(layer), dtype=np.intp) for layer in layers]
    ) if layers else np.empty(0, dtype=np.intp)
    if order.shape[0] != n or np.unique(order).shape[0] != n:
        raise ReproError(
            f"placement must cover each of {n} tuples exactly once, "
            f"got {order.shape[0]} entries"
        )
    return order


class BlockStore:
    """Maps tuple ids to fixed-capacity pages under a storage order.

    Parameters
    ----------
    storage_order:
        Tuple ids in the order they are written to disk.
    page_capacity:
        Tuples per page (e.g. 4 KiB page / 32-byte tuple = 128).
    """

    def __init__(self, storage_order: np.ndarray, page_capacity: int) -> None:
        if page_capacity < 1:
            raise ReproError(f"page capacity must be >= 1, got {page_capacity}")
        storage_order = np.asarray(storage_order, dtype=np.intp)
        self.page_capacity = page_capacity
        self.n = storage_order.shape[0]
        self._page_of = np.empty(self.n, dtype=np.intp)
        for slot, tuple_id in enumerate(storage_order):
            self._page_of[tuple_id] = slot // page_capacity

    @property
    def num_pages(self) -> int:
        """Total pages used."""
        if self.n == 0:
            return 0
        return int(self._page_of.max()) + 1

    def page_of(self, tuple_id: int) -> int:
        """The page holding a tuple."""
        return int(self._page_of[tuple_id])

    def pages_of(self, tuple_ids: Iterable[int]) -> np.ndarray:
        """Pages (with duplicates, in access order) for a tuple-id sequence."""
        ids = np.asarray(list(tuple_ids), dtype=np.intp)
        return self._page_of[ids]
