"""A file-backed paged heap: the disk-resident relation.

Writes a relation to an actual file of :class:`~repro.storage.pages.
SlottedPage` bytes in a chosen storage order, and serves tuple reads
through the LRU :class:`~repro.storage.buffer.BufferPool`, counting real
file reads.  This turns the I/O-replay experiments into an executable
end-to-end path: a disk-resident index reads every tuple it scores through
this file.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.exceptions import ReproError
from repro.relation import Relation
from repro.storage.buffer import BufferPool
from repro.storage.pages import DEFAULT_PAGE_SIZE, SlottedPage


class HeapFile:
    """A relation stored as slotted pages in a real file.

    Parameters
    ----------
    path:
        File location (created/overwritten by :meth:`write`).
    d:
        Tuple dimensionality.
    page_size:
        Bytes per page.
    buffer_capacity:
        Pages cached in memory; every miss is a real file read.
    """

    def __init__(
        self,
        path: str | Path,
        d: int,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 16,
    ) -> None:
        self.path = Path(path)
        self.d = d
        self.page_size = page_size
        self.buffer = BufferPool(buffer_capacity)
        self._page_of: dict[int, int] = {}
        self._cache: dict[int, SlottedPage] = {}
        self.num_pages = 0
        self.file_reads = 0

    @classmethod
    def write(
        cls,
        relation: Relation,
        path: str | Path,
        storage_order: np.ndarray | None = None,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_capacity: int = 16,
    ) -> "HeapFile":
        """Materialize a relation to disk in ``storage_order`` and open it."""
        heap = cls(
            path, relation.d, page_size=page_size, buffer_capacity=buffer_capacity
        )
        order = (
            np.asarray(storage_order, dtype=np.intp)
            if storage_order is not None
            else np.arange(relation.n, dtype=np.intp)
        )
        if order.shape[0] != relation.n or (
            relation.n and np.unique(order).shape[0] != relation.n
        ):
            raise ReproError("storage order must cover each tuple exactly once")
        with heap.path.open("wb") as handle:
            page = SlottedPage(relation.d, page_size)
            page_index = 0
            for tuple_id in order:
                if page.full:
                    handle.write(page.to_bytes())
                    page_index += 1
                    page = SlottedPage(relation.d, page_size)
                heap._page_of[int(tuple_id)] = page_index
                page.append(int(tuple_id), relation.tuple(int(tuple_id)))
            if page.count or relation.n == 0:
                handle.write(page.to_bytes())
                page_index += 1
            heap.num_pages = page_index
        return heap

    def page_of(self, tuple_id: int) -> int:
        """The page index holding a tuple."""
        try:
            return self._page_of[int(tuple_id)]
        except KeyError:
            raise ReproError(f"tuple {tuple_id} is not in this heap file") from None

    def read_tuple(self, tuple_id: int) -> np.ndarray:
        """Fetch tuple values through the buffer pool (counting file reads)."""
        page_index = self.page_of(tuple_id)
        hit = self.buffer.access(page_index)
        if not hit:
            self._cache[page_index] = self._read_page(page_index)
            self.file_reads += 1
            # Evict cached payloads that fell out of the pool.
            if len(self._cache) > self.buffer.capacity:
                resident = set(self.buffer._pages)
                for stale in [p for p in self._cache if p not in resident]:
                    del self._cache[stale]
        values = self._cache[page_index].lookup(int(tuple_id))
        if values is None:  # pragma: no cover - directory corruption guard
            raise ReproError(f"tuple {tuple_id} missing from page {page_index}")
        return values

    def _read_page(self, page_index: int) -> SlottedPage:
        with self.path.open("rb") as handle:
            handle.seek(page_index * self.page_size)
            raw = handle.read(self.page_size)
        return SlottedPage.from_bytes(raw, self.page_size)

    def reset_io_counters(self) -> None:
        """Zero the file-read and buffer tallies (cache contents kept)."""
        self.file_reads = 0
        self.buffer.reset_counters()
