"""Disk-resident query execution: a layer index over a heap file.

Combines a built gated-graph index (DL/DL+/DG/DG+) with a
:class:`~repro.storage.heapfile.HeapFile`: the *structure* (gates, layer
assignment, pseudo-tuples) stays in memory — it is the index — while every
*real tuple* the traversal scores is fetched through the heap file's buffer
pool, producing genuine file reads.  This is exactly the paper's §VI-A
disk-based modification, executable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.index import DLIndex
from repro.core.query import process_top_k
from repro.exceptions import ReproError
from repro.relation import normalize_weights
from repro.stats import AccessCounter
from repro.storage.heapfile import HeapFile


@dataclass
class DiskQueryResult:
    """Answer plus the I/O activity behind it."""

    ids: np.ndarray
    scores: np.ndarray
    tuples_evaluated: int
    file_reads: int
    buffer_hits: int


class DiskResidentIndex:
    """Query executor pairing an in-memory layer structure with a heap file.

    Parameters
    ----------
    index:
        A built gated-graph index (``DLIndex`` family) over the relation.
    heap:
        A :class:`HeapFile` written for the *same* relation (any storage
        order; layer-clustered orders minimize faults).
    """

    def __init__(self, index: DLIndex, heap: HeapFile) -> None:
        structure = getattr(index, "structure", None)
        if structure is None:
            raise ReproError(
                f"{index.name} is not a gated layer index; disk execution "
                "needs DL/DL+/DG/DG+"
            )
        if heap.d != index.relation.d:
            raise ReproError("heap file dimensionality does not match the index")
        self.index = index
        self.heap = heap

    def query(self, weights: np.ndarray, k: int) -> DiskQueryResult:
        """Answer a top-k query with all real tuple reads going to disk."""
        w = normalize_weights(weights, self.index.relation.d)
        self.heap.reset_io_counters()
        counter = AccessCounter()
        ids, scores = process_top_k(
            self.index.structure,
            w,
            min(k, self.index.relation.n),
            counter,
            fetch_real=self.heap.read_tuple,
        )
        return DiskQueryResult(
            ids=ids,
            scores=scores,
            tuples_evaluated=counter.total,
            file_reads=self.heap.file_reads,
            buffer_hits=self.heap.buffer.hits,
        )
