"""Slotted pages: fixed-size byte pages holding float tuples.

The replay model in :mod:`repro.storage.iocost` works on page *ids*; this
module makes the bytes real, so the disk-resident experiments exercise an
actual storage path: a :class:`SlottedPage` is a fixed-size ``bytearray``
with a header (tuple count, dimensionality) and densely packed float64
tuples plus their tuple ids; pages serialize to/from raw bytes.

Layout (little-endian)::

    [u32 magic][u16 d][u16 count] then count * ([u64 tuple_id][d * f64])
"""

from __future__ import annotations

import struct

import numpy as np

from repro.exceptions import ReproError

#: Default page size in bytes (a common DBMS page).
DEFAULT_PAGE_SIZE = 4096
_MAGIC = 0x52505247  # "RPRG"
_HEADER = struct.Struct("<IHH")
_SLOT_ID = struct.Struct("<Q")


class SlottedPage:
    """One fixed-size page of ``(tuple_id, values)`` records."""

    def __init__(self, d: int, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if d < 1:
            raise ReproError(f"dimensionality must be >= 1, got {d}")
        if page_size < self.slot_size(d) + _HEADER.size:
            raise ReproError(
                f"page size {page_size} cannot hold even one {d}-d tuple"
            )
        self.d = d
        self.page_size = page_size
        self.tuple_ids: list[int] = []
        self.values: list[np.ndarray] = []

    @staticmethod
    def slot_size(d: int) -> int:
        """Bytes per record: id + d float64 values."""
        return _SLOT_ID.size + 8 * d

    @property
    def capacity(self) -> int:
        """Maximum records per page."""
        return (self.page_size - _HEADER.size) // self.slot_size(self.d)

    @property
    def count(self) -> int:
        """Records currently stored."""
        return len(self.tuple_ids)

    @property
    def full(self) -> bool:
        """True when no further record fits."""
        return self.count >= self.capacity

    def append(self, tuple_id: int, values: np.ndarray) -> None:
        """Add one record; raises :class:`ReproError` when full."""
        if self.full:
            raise ReproError("page is full")
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.d,):
            raise ReproError(
                f"expected a {self.d}-vector, got shape {values.shape}"
            )
        self.tuple_ids.append(int(tuple_id))
        self.values.append(values.copy())

    def to_bytes(self) -> bytes:
        """Serialize to exactly ``page_size`` bytes (zero padded)."""
        buffer = bytearray(self.page_size)
        _HEADER.pack_into(buffer, 0, _MAGIC, self.d, self.count)
        offset = _HEADER.size
        for tuple_id, values in zip(self.tuple_ids, self.values):
            _SLOT_ID.pack_into(buffer, offset, tuple_id)
            offset += _SLOT_ID.size
            buffer[offset : offset + 8 * self.d] = values.tobytes()
            offset += 8 * self.d
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, raw: bytes, page_size: int = DEFAULT_PAGE_SIZE) -> "SlottedPage":
        """Deserialize a page written by :meth:`to_bytes`."""
        if len(raw) != page_size:
            raise ReproError(
                f"expected {page_size} bytes, got {len(raw)}"
            )
        magic, d, count = _HEADER.unpack_from(raw, 0)
        if magic != _MAGIC:
            raise ReproError("not a repro page (bad magic)")
        page = cls(d, page_size)
        offset = _HEADER.size
        for _ in range(count):
            (tuple_id,) = _SLOT_ID.unpack_from(raw, offset)
            offset += _SLOT_ID.size
            values = np.frombuffer(raw, dtype=np.float64, count=d, offset=offset)
            offset += 8 * d
            page.append(tuple_id, values)
        return page

    def lookup(self, tuple_id: int) -> np.ndarray | None:
        """Values of a tuple on this page, or None."""
        try:
            slot = self.tuple_ids.index(tuple_id)
        except ValueError:
            return None
        return self.values[slot]
