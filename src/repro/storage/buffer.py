"""An LRU buffer pool with hit/miss accounting."""

from __future__ import annotations

from collections import OrderedDict

from repro.exceptions import ReproError


class BufferPool:
    """Fixed-capacity page cache with least-recently-used eviction.

    ``access(page)`` returns True on a hit; misses "fault the page in",
    evicting the least recently used page when full.  Counters expose the
    totals the I/O cost model reports.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ReproError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, page: int) -> bool:
        """Touch a page; returns True on a buffer hit."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
            self.evictions += 1
        self._pages[page] = None
        return False

    @property
    def resident(self) -> int:
        """Pages currently cached."""
        return len(self._pages)

    def reset_counters(self) -> None:
        """Zero the hit/miss/eviction tallies (cache content kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def clear(self) -> None:
        """Drop all cached pages and zero the counters."""
        self._pages.clear()
        self.reset_counters()
