"""Disk-layout substrate: block storage, buffer pool, I/O cost replay.

The paper evaluates in main memory but notes (§VI-A) that all the layer
indexes "can be modified into disk-based algorithms, where tuples in the
same layer are stored in the same disk block to reduce I/O cost, as
discussed in [5]".  This package simulates exactly that: a page-structured
:class:`~repro.storage.blocks.BlockStore` with pluggable tuple placement
(layer-clustered vs. insertion order), an LRU
:class:`~repro.storage.buffer.BufferPool`, and an
:class:`~repro.storage.iocost.IOCostModel` that replays an index's
per-query access trace against a layout and reports page faults.
"""

from repro.storage.blocks import BlockStore, layer_clustered_placement, row_order_placement
from repro.storage.buffer import BufferPool
from repro.storage.iocost import IOCostModel, IOReport
from repro.storage.pages import DEFAULT_PAGE_SIZE, SlottedPage
from repro.storage.heapfile import HeapFile
from repro.storage.disk_index import DiskQueryResult, DiskResidentIndex

__all__ = [
    "BlockStore",
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "DiskQueryResult",
    "DiskResidentIndex",
    "HeapFile",
    "IOCostModel",
    "IOReport",
    "SlottedPage",
    "layer_clustered_placement",
    "row_order_placement",
]
