"""Serving metrics: latency, Definition 9 cost, cache hits, queue depth.

A thread-safe registry shared by every query path of the
:class:`~repro.serving.engine.QueryEngine`.  Each query is tracked through
the :meth:`MetricsRegistry.track` context manager, which measures wall-clock
latency and maintains the in-flight queue-depth gauge; the engine fills in
the cost and cache outcome on the yielded record.  :meth:`as_dict` exports a
flat snapshot for reporting (the ``serve-bench`` CLI renders it).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.stats import LatencyWindow


class QueryRecord:
    """Mutable per-query record the engine fills in while serving."""

    __slots__ = ("hit", "cost", "batched")

    def __init__(self) -> None:
        #: True when the answer came from the result cache.
        self.hit = False
        #: Definition 9 cost (tuples evaluated); 0 for cache hits.
        self.cost = 0
        #: True when the query arrived through ``query_batch``.
        self.batched = False


class MetricsRegistry:
    """Aggregates per-query serving metrics; safe for concurrent writers."""

    def __init__(self, *, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self.queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batched_queries = 0
        self.total_cost = 0
        self.max_cost = 0
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.started_at = time.perf_counter()
        self._latency = LatencyWindow(latency_window)

    @contextmanager
    def track(self):
        """Track one query: latency, queue depth, and the engine's record."""
        with self._lock:
            self.queue_depth += 1
            if self.queue_depth > self.max_queue_depth:
                self.max_queue_depth = self.queue_depth
        record = QueryRecord()
        start = time.perf_counter()
        try:
            yield record
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.queue_depth -= 1
                self.queries += 1
                if record.hit:
                    self.cache_hits += 1
                else:
                    self.cache_misses += 1
                if record.batched:
                    self.batched_queries += 1
                self.total_cost += record.cost
                if record.cost > self.max_cost:
                    self.max_cost = record.cost
                self._latency.record(elapsed)

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction over all served queries (0 when idle)."""
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def mean_cost(self) -> float:
        """Mean Definition 9 cost per query (cache hits count as 0)."""
        return self.total_cost / self.queries if self.queries else 0.0

    def throughput(self) -> float:
        """Served queries per second since the registry was created."""
        elapsed = time.perf_counter() - self.started_at
        return self.queries / elapsed if elapsed > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat snapshot of every gauge and summary statistic."""
        with self._lock:
            latency = self._latency.summary(scale=1e3)
            return {
                "queries": float(self.queries),
                "batched_queries": float(self.batched_queries),
                "cache_hits": float(self.cache_hits),
                "cache_misses": float(self.cache_misses),
                "hit_rate": self.hit_rate,
                "total_cost": float(self.total_cost),
                "mean_cost": self.mean_cost,
                "max_cost": float(self.max_cost),
                "latency_ms_mean": latency["mean"],
                "latency_ms_p50": latency["p50"],
                "latency_ms_p95": latency["p95"],
                "latency_ms_p99": latency["p99"],
                "latency_ms_max": latency["max"],
                "queue_depth": float(self.queue_depth),
                "max_queue_depth": float(self.max_queue_depth),
            }

    def reset(self) -> None:
        """Zero every counter and restart the clock (for benchmark phases)."""
        with self._lock:
            self.queries = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.batched_queries = 0
            self.total_cost = 0
            self.max_cost = 0
            self.max_queue_depth = self.queue_depth
            self.started_at = time.perf_counter()
            self._latency = LatencyWindow(self._latency._samples.maxlen or 4096)
