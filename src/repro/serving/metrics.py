"""Serving metrics: latency, Definition 9 cost, cache hits, queue depth.

A thread-safe registry shared by every query path of the
:class:`~repro.serving.engine.QueryEngine`.  Each query is tracked through
the :meth:`MetricsRegistry.track` context manager, which measures wall-clock
latency and maintains the in-flight queue-depth gauge; the engine fills in
the cost and cache outcome on the yielded record.  :meth:`as_dict` exports a
flat snapshot for reporting (the ``serve-bench`` CLI renders it).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.stats import LatencyWindow


class QueryRecord:
    """Mutable per-query record the engine fills in while serving."""

    __slots__ = ("hit", "cost", "batched", "slo_violated")

    def __init__(self) -> None:
        #: True when the answer came from the result cache.
        self.hit = False
        #: Definition 9 cost (tuples evaluated); 0 for cache hits.
        self.cost = 0
        #: True when the query arrived through ``query_batch``.
        self.batched = False
        #: True when the query's end-to-end latency missed its SLO target
        #: (only the gateway sets this — offline paths have no SLO).
        self.slo_violated = False


class MetricsRegistry:
    """Aggregates per-query serving metrics; safe for concurrent writers.

    Thread-safety contract: every mutation — the :meth:`track` context
    manager's enter/exit, :meth:`record_external`, :meth:`reset` — runs
    under the registry's single lock, covering the counters *and* the
    latency window together, so concurrent writers (the serving engine's
    thread pool, the cluster coordinator driving one registry per shard
    from its scatter threads) can never lose an update or tear a
    counter/latency pair.  :meth:`as_dict` snapshots under the same lock.
    """

    def __init__(self, *, latency_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self.queries = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batched_queries = 0
        self.total_cost = 0
        self.max_cost = 0
        self.queue_depth = 0
        self.max_queue_depth = 0
        #: Queries whose end-to-end latency missed the SLO target (set per
        #: query by the gateway via :class:`QueryRecord.slo_violated` or
        #: :meth:`record_external`).
        self.slo_violations = 0
        self.batches = 0
        self.batch_rows = 0
        self.max_batch_size = 0
        #: Batch-size histogram: power-of-two bucket lower bound -> count
        #: (a batch of 12 rows lands in bucket 8).
        self.batch_size_hist: dict[int, int] = {}
        #: Per-kernel dispatch counters: kernel name ("reference", "csr",
        #: "batch", "native") -> queries served by that kernel.  Cache
        #: hits touch no kernel and are not counted here, so the sum
        #: attributes exactly the traversal work (bench runs read these
        #: to attribute wins to the kernel that produced them).
        self.kernel_counts: dict[str, int] = {}
        self.started_at = time.perf_counter()
        self._latency = LatencyWindow(latency_window)
        #: Amortized per-query latency of batched execution (seconds/row,
        #: one sample per batch) — the figure that shows what batching
        #: buys over the per-query latency window above.
        self._batch_amortized = LatencyWindow(latency_window)

    @contextmanager
    def track(self):
        """Track one query: latency, queue depth, and the engine's record."""
        with self._lock:
            self.queue_depth += 1
            if self.queue_depth > self.max_queue_depth:
                self.max_queue_depth = self.queue_depth
        record = QueryRecord()
        start = time.perf_counter()
        try:
            yield record
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self.queue_depth -= 1
                self.queries += 1
                if record.hit:
                    self.cache_hits += 1
                else:
                    self.cache_misses += 1
                if record.batched:
                    self.batched_queries += 1
                if record.slo_violated:
                    self.slo_violations += 1
                self.total_cost += record.cost
                if record.cost > self.max_cost:
                    self.max_cost = record.cost
                self._latency.record(elapsed)

    def record_external(
        self,
        *,
        cost: int,
        seconds: float | None = None,
        hit: bool = False,
        batched: bool = False,
        slo_violated: bool = False,
    ) -> None:
        """Fold in one query served outside :meth:`track`.

        The cluster coordinator's threshold merge drives shard cursors
        directly (round-robin, interleaved across shards), so a shard's
        share of the work has no contiguous wall-clock span to wrap in
        :meth:`track`; the engine's fused ``query_batch`` path likewise
        serves many rows in one kernel call and attributes each row its
        amortized share of the batch's wall clock.  This records one
        served query's cost (and optionally its latency share), under
        the same single lock.
        """
        with self._lock:
            self.queries += 1
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if batched:
                self.batched_queries += 1
            if slo_violated:
                self.slo_violations += 1
            self.total_cost += cost
            if cost > self.max_cost:
                self.max_cost = cost
            if seconds is not None:
                self._latency.record(seconds)

    def record_kernel(self, name: str, count: int = 1) -> None:
        """Attribute ``count`` served queries to kernel ``name``.

        Called by the engine on every traversal (never on cache hits):
        once per query on the solo paths, once per group with the lane
        count on the fused batch path.  Surfaced as ``kernel_<name>``
        in :meth:`as_dict` and summed by :meth:`aggregate`.
        """
        if count <= 0:
            return
        with self._lock:
            self.kernel_counts[name] = self.kernel_counts.get(name, 0) + count

    def record_batch(self, size: int, seconds: float | None = None) -> None:
        """Record one fused batch-kernel invocation covering ``size`` rows.

        Feeds the batch-size histogram (power-of-two buckets) and, when
        ``seconds`` is given, the amortized per-query latency window with
        one ``seconds / size`` sample.  Per-row counters are *not*
        touched here — each row still goes through :meth:`track` or
        :meth:`record_external` — so ``batch_rows`` vs ``queries``
        separates kernel invocations from served queries.
        """
        if size <= 0:
            return
        with self._lock:
            self.batches += 1
            self.batch_rows += size
            if size > self.max_batch_size:
                self.max_batch_size = size
            bucket = 1 << (int(size).bit_length() - 1)
            self.batch_size_hist[bucket] = self.batch_size_hist.get(bucket, 0) + 1
            if seconds is not None:
                self._batch_amortized.record(seconds / size)

    @staticmethod
    def aggregate(registries: "list[MetricsRegistry]") -> dict[str, float]:
        """One flat snapshot summed across registries (cluster roll-up).

        Counters add; queue depths take the max; latency percentiles are
        computed over the union of every registry's latency window, so the
        roll-up reflects the pooled query population rather than an
        average of percentiles.  Throughput is likewise pooled — total
        queries over the elapsed time since the *earliest* registry
        started — matching what single-engine ``stats()`` reports as
        ``throughput_qps`` (summing per-registry rates would double-count
        the shared wall clock).  Each registry is snapshotted under its
        own lock.
        """
        queries = hits = misses = batched = 0
        total_cost = 0
        max_cost = 0
        queue_depth = max_queue_depth = 0
        slo_violations = 0
        batches = batch_rows = max_batch_size = 0
        batch_hist: dict[int, int] = {}
        kernel_counts: dict[str, int] = {}
        samples: list[float] = []
        amortized: list[float] = []
        total_seconds = 0.0
        lifetime = 0
        earliest_start: float | None = None
        for registry in registries:
            with registry._lock:
                queries += registry.queries
                hits += registry.cache_hits
                misses += registry.cache_misses
                batched += registry.batched_queries
                total_cost += registry.total_cost
                max_cost = max(max_cost, registry.max_cost)
                queue_depth = max(queue_depth, registry.queue_depth)
                max_queue_depth = max(max_queue_depth, registry.max_queue_depth)
                slo_violations += registry.slo_violations
                batches += registry.batches
                batch_rows += registry.batch_rows
                max_batch_size = max(max_batch_size, registry.max_batch_size)
                for bucket, count in registry.batch_size_hist.items():
                    batch_hist[bucket] = batch_hist.get(bucket, 0) + count
                for name, count in registry.kernel_counts.items():
                    kernel_counts[name] = kernel_counts.get(name, 0) + count
                samples.extend(registry._latency._samples)
                amortized.extend(registry._batch_amortized._samples)
                total_seconds += registry._latency.total
                lifetime += registry._latency.count
                if earliest_start is None or registry.started_at < earliest_start:
                    earliest_start = registry.started_at
        elapsed = (
            time.perf_counter() - earliest_start
            if earliest_start is not None
            else 0.0
        )
        from repro.stats.latency import percentile

        scaled = [s * 1e3 for s in samples]
        amortized_ms = [s * 1e3 for s in amortized]
        merged = {
            "queries": float(queries),
            "batched_queries": float(batched),
            "cache_hits": float(hits),
            "cache_misses": float(misses),
            "hit_rate": hits / queries if queries else 0.0,
            "total_cost": float(total_cost),
            "mean_cost": total_cost / queries if queries else 0.0,
            "max_cost": float(max_cost),
            "latency_ms_mean": (total_seconds / lifetime * 1e3) if lifetime else 0.0,
            "latency_ms_p50": percentile(scaled, 50.0),
            "latency_ms_p95": percentile(scaled, 95.0),
            "latency_ms_p99": percentile(scaled, 99.0),
            "latency_ms_max": max(scaled) if scaled else 0.0,
            "throughput_qps": queries / elapsed if elapsed > 0 else 0.0,
            "queue_depth": float(queue_depth),
            "max_queue_depth": float(max_queue_depth),
            "slo_violations": float(slo_violations),
            "batches": float(batches),
            "batch_rows": float(batch_rows),
            "batch_size_mean": batch_rows / batches if batches else 0.0,
            "batch_size_max": float(max_batch_size),
            "batch_amortized_ms_p50": percentile(amortized_ms, 50.0),
            "batch_amortized_ms_p95": percentile(amortized_ms, 95.0),
        }
        for bucket in sorted(batch_hist):
            merged[f"batch_size_hist_{bucket}"] = float(batch_hist[bucket])
        for name in sorted(kernel_counts):
            merged[f"kernel_{name}"] = float(kernel_counts[name])
        return merged

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction over all served queries (0 when idle)."""
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def mean_cost(self) -> float:
        """Mean Definition 9 cost per query (cache hits count as 0)."""
        return self.total_cost / self.queries if self.queries else 0.0

    def throughput(self) -> float:
        """Served queries per second since the registry was created."""
        elapsed = time.perf_counter() - self.started_at
        return self.queries / elapsed if elapsed > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat snapshot of every gauge and summary statistic."""
        with self._lock:
            latency = self._latency.summary(scale=1e3)
            amortized = self._batch_amortized.summary(scale=1e3)
            snapshot = {
                "queries": float(self.queries),
                "batched_queries": float(self.batched_queries),
                "cache_hits": float(self.cache_hits),
                "cache_misses": float(self.cache_misses),
                "hit_rate": self.hit_rate,
                "total_cost": float(self.total_cost),
                "mean_cost": self.mean_cost,
                "max_cost": float(self.max_cost),
                "latency_ms_mean": latency["mean"],
                "latency_ms_p50": latency["p50"],
                "latency_ms_p95": latency["p95"],
                "latency_ms_p99": latency["p99"],
                "latency_ms_max": latency["max"],
                "queue_depth": float(self.queue_depth),
                "max_queue_depth": float(self.max_queue_depth),
                "slo_violations": float(self.slo_violations),
                "batches": float(self.batches),
                "batch_rows": float(self.batch_rows),
                "batch_size_mean": (
                    self.batch_rows / self.batches if self.batches else 0.0
                ),
                "batch_size_max": float(self.max_batch_size),
                "batch_amortized_ms_p50": amortized["p50"],
                "batch_amortized_ms_p95": amortized["p95"],
            }
            for bucket in sorted(self.batch_size_hist):
                snapshot[f"batch_size_hist_{bucket}"] = float(
                    self.batch_size_hist[bucket]
                )
            for name in sorted(self.kernel_counts):
                snapshot[f"kernel_{name}"] = float(self.kernel_counts[name])
            return snapshot

    def reset(self) -> None:
        """Zero every counter and restart the clock (for benchmark phases)."""
        with self._lock:
            self.queries = 0
            self.cache_hits = 0
            self.cache_misses = 0
            self.batched_queries = 0
            self.total_cost = 0
            self.max_cost = 0
            self.max_queue_depth = self.queue_depth
            self.slo_violations = 0
            self.batches = 0
            self.batch_rows = 0
            self.max_batch_size = 0
            self.batch_size_hist = {}
            self.kernel_counts = {}
            self.started_at = time.perf_counter()
            window = self._latency._samples.maxlen or 4096
            self._latency = LatencyWindow(window)
            self._batch_amortized = LatencyWindow(window)
