"""LRU result cache for top-k answers.

Real top-k workloads show heavy weight-vector locality (the same preference
vectors recur across users and sessions — the observation behind
PREFER-style materialized views), so a serving layer can answer a repeated
query without touching the index at all.

Keying
------
An entry is keyed by ``(quantized weights, k, structure version)``:

* *quantized weights* — the normalized weight vector rounded to
  ``decimals`` places (default 12) and serialized to bytes.  Vectors that
  agree to that precision share an entry; at 1e-12 the top-k answer is
  insensitive to the difference except at exact score ties.
* *k* — the effective retrieval size (after clamping to the relation size).
* *structure version* — the fronted index's monotone ``version`` counter,
  bumped by every rebuild and by every
  :class:`~repro.core.maintenance.DynamicDualLayerIndex` insert/delete.
  A mutation therefore changes the key of *every* subsequent lookup, so a
  cached answer can never be served stale; :meth:`prune` additionally drops
  the unreachable old-version entries eagerly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

#: Key type: (weight bytes, effective k, structure version).
CacheKey = tuple[bytes, int, int]


class ResultCache:
    """Thread-safe LRU cache of ``(ids, scores)`` top-k answers.

    ``capacity=0`` disables caching — lookups return ``None`` without
    counting a miss and stores are dropped, so a disabled cache's stats
    stay all-zero (the serving engine uses ``capacity=0`` to benchmark
    uncached paths without polluting hit-rate dashboards).
    """

    def __init__(self, capacity: int = 1024, *, decimals: int = 12) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        if decimals < 1:
            raise ValueError(f"quantization decimals must be >= 1, got {decimals}")
        self.capacity = capacity
        self.decimals = decimals
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[CacheKey, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def make_key(self, weights: np.ndarray, k: int, version: int) -> CacheKey:
        """The cache key of a (normalized weights, k, version) query."""
        quantized = np.round(np.asarray(weights, dtype=np.float64), self.decimals)
        quantized = quantized + 0.0  # fold -0.0 into +0.0 for stable bytes
        return (quantized.tobytes(), int(k), int(version))

    def get(self, key: CacheKey) -> tuple[np.ndarray, np.ndarray] | None:
        """``(ids, scores)`` copies on a hit (refreshing LRU order), else None.

        With caching disabled (``capacity=0``) the lookup short-circuits
        without touching the miss counter: a disabled cache reports
        ``hits == misses == 0``, so a 0% hit rate on a dashboard always
        means a *thrashing* cache, never a deliberately absent one.
        """
        if self.capacity == 0:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            ids, scores = entry
            return ids.copy(), scores.copy()

    def put(self, key: CacheKey, ids: np.ndarray, scores: np.ndarray) -> None:
        """Store an answer (copies are taken; LRU entries evicted as needed)."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = (
                np.array(ids, dtype=np.intp, copy=True),
                np.array(scores, dtype=np.float64, copy=True),
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def prune(self, current_version: int) -> int:
        """Drop entries from versions other than ``current_version``.

        Version keying already makes them unreachable; pruning frees their
        memory the moment the engine observes a version change.  Returns the
        number of entries dropped.
        """
        with self._lock:
            stale = [
                key for key in self._entries if key[2] != int(current_version)
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the metrics registry."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
