"""Multi-process serving over one mmap'd snapshot (the zero-copy tier).

:class:`SharedPointsPool` proved the pattern for the parallel *build*:
workers attach a shared buffer in their pool initializer and tasks ship
only small arrays.  :class:`SnapshotEngine` extends it to *serving*: each
worker process opens the same snapshot directory with
:func:`~repro.io.snapshot.open_snapshot` in its initializer, so all
workers (and the parent, if it also opens the snapshot) share a single
page-cache copy of the index — adding a worker adds file handles and a
private result cache, not another copy of the arrays.  Queries ship a
weight vector and k; answers ship the ``(ids, scores, real, pseudo)``
tuple back.

Answers are bitwise identical to querying the snapshot (or the original
index) in-process: workers run the same kernels over byte-identical
arrays.  The pool is deliberately stateless between calls — a crashed
worker is replaced by the executor and re-opens the snapshot in its
initializer, which is the restart-is-an-open() failover story the
snapshot format exists for.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.base import TopKResult
from repro.io.snapshot import open_snapshot, read_manifest
from repro.serving.engine import QueryEngine, validate_k
from repro.stats import AccessCounter

#: Worker-process global: the QueryEngine over the worker's mmap'd snapshot.
_WORKER_ENGINE: QueryEngine | None = None


def _open_worker_engine(
    path: str, kernel: str, prune: bool, cache_size: int
) -> None:
    """Pool initializer: mmap the snapshot and build the worker's engine."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = QueryEngine(
        open_snapshot(path),
        kernel=kernel,
        prune=prune,
        cache_size=cache_size,
    )


def _worker_engine() -> QueryEngine:
    if _WORKER_ENGINE is None:
        raise RuntimeError(
            "snapshot worker used outside a SnapshotEngine pool"
        )
    return _WORKER_ENGINE


def _worker_query(
    weights: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, int, int]:
    result = _worker_engine().query(weights, k)
    return result.ids, result.scores, result.counter.real, result.counter.pseudo


def _worker_query_batch(
    matrix: np.ndarray, ks: np.ndarray
) -> list[tuple[np.ndarray, np.ndarray, int, int]]:
    results = _worker_engine().query_batch(matrix, ks)
    return [
        (r.ids, r.scores, r.counter.real, r.counter.pseudo) for r in results
    ]


def _worker_rss_kib() -> int:
    """Resident set size of this worker in KiB (self-reported)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _result(
    payload: tuple[np.ndarray, np.ndarray, int, int]
) -> TopKResult:
    ids, scores, real, pseudo = payload
    counter = AccessCounter()
    counter.count_real(real)
    counter.count_pseudo(pseudo)
    return TopKResult(ids=ids, scores=scores, counter=counter)


class SnapshotEngine:
    """Serve one snapshot from N worker processes sharing its pages.

    >>> with SnapshotEngine("idx.snapshot", workers=2) as engine:
    ...     result = engine.query(w, k)          # one worker answers
    ...     results = engine.query_batch(W, k)   # rows split across workers

    Parameters
    ----------
    path:
        Snapshot directory written by :func:`~repro.io.snapshot.save_snapshot`.
        Validated eagerly (manifest magic/version) so a bad path fails at
        construction, not inside the first worker.
    workers:
        Process count.  RSS stays roughly flat as this grows because every
        worker maps the same blobs.
    kernel / prune / cache_size:
        Forwarded to each worker's :class:`QueryEngine`.  Caching defaults
        off: with N independent caches a hit rate measured on one worker
        would be misleading, so opt in explicitly.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        workers: int = 2,
        kernel: str = "auto",
        prune: bool = False,
        cache_size: int = 0,
    ) -> None:
        self.path = Path(path)
        manifest = read_manifest(self.path)  # fail fast on corrupt snapshots
        self.d = int(manifest["d"])
        self.n = int(manifest["n_real"])
        self.workers = max(1, int(workers))
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_open_worker_engine,
            initargs=(str(self.path), kernel, bool(prune), int(cache_size)),
        )

    # ------------------------------------------------------------------ #
    # Serving paths
    # ------------------------------------------------------------------ #

    def query(self, weights: np.ndarray, k: int) -> TopKResult:
        """Answer one query on some worker; bitwise equal to in-process."""
        k = validate_k(k)
        payload = self._pool.submit(
            _worker_query, np.asarray(weights, dtype=np.float64), k
        ).result()
        return _result(payload)

    def query_batch(self, weights_matrix: np.ndarray, k) -> list[TopKResult]:
        """Split the rows across workers; results in input order."""
        matrix = np.asarray(weights_matrix, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        n_rows = matrix.shape[0]
        ks_input = np.asarray(k)
        if ks_input.ndim == 0:
            ks = np.full(n_rows, validate_k(ks_input[()]), dtype=np.int64)
        else:
            ks = np.asarray(
                [validate_k(value) for value in ks_input], dtype=np.int64
            )
        if not n_rows:
            return []
        chunks = np.array_split(np.arange(n_rows), min(self.workers, n_rows))
        futures = [
            self._pool.submit(_worker_query_batch, matrix[chunk], ks[chunk])
            for chunk in chunks
            if chunk.shape[0]
        ]
        results: list[TopKResult] = []
        for future in futures:
            results.extend(_result(payload) for payload in future.result())
        return results

    def worker_rss_kib(self) -> list[int]:
        """Per-worker resident set sizes in KiB (one probe per worker).

        Submits ``workers`` probe tasks; with an idle pool each lands on a
        distinct process, giving the per-process memory picture the
        snapshot bench reports.
        """
        futures = [
            self._pool.submit(_worker_rss_kib) for _ in range(self.workers)
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SnapshotEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["SnapshotEngine"]
