"""Query serving: batching, result caching, concurrency, and metrics.

The ROADMAP's north star is a production-scale serving system; this package
is its substrate.  A :class:`QueryEngine` fronts one built index and serves
query traffic with an LRU result cache (keyed so mutations can never serve
stale answers), batched execution that amortizes per-query numpy overhead,
a thread-pool path over the frozen read-only layer structure, and a metrics
registry (latency percentiles, Definition 9 cost, hit rate, queue depth,
SLO violations).  :class:`AsyncGateway` sits in front of either engine and
coalesces concurrent single-query traffic into batch-kernel lanes (flush
at B or the window deadline, whichever first) with per-tenant fair-share
scheduling and admission control — see :mod:`repro.serving.gateway`.

Quickstart::

    from repro import DLPlusIndex, generate, random_weight_vector
    from repro.serving import QueryEngine

    relation = generate("ANT", n=20_000, d=4, seed=7)
    engine = QueryEngine(DLPlusIndex(relation).build())
    batch = [random_weight_vector(4) for _ in range(64)]
    results = engine.query_batch(batch, k=10)
    print(engine.stats()["hit_rate"], engine.stats()["latency_ms_p95"])
"""

from repro.serving.cache import ResultCache
from repro.serving.engine import QueryEngine, validate_k
from repro.serving.gateway import AsyncGateway
from repro.serving.metrics import MetricsRegistry, QueryRecord
from repro.serving.snapshot_pool import SnapshotEngine

__all__ = [
    "AsyncGateway",
    "MetricsRegistry",
    "QueryEngine",
    "QueryRecord",
    "ResultCache",
    "SnapshotEngine",
    "validate_k",
]
