"""Asyncio serving gateway: dynamic batching over the query engines.

The fused multi-query batch kernel (:mod:`repro.core.query`) pays off most
when its lanes are full, but production traffic arrives as concurrent
*single* queries — nobody hands the engine a pre-assembled weight matrix.
:class:`AsyncGateway` closes that gap: concurrent ``await gateway.query(w,
k)`` calls are coalesced into batch-kernel lanes under a flush window
("flush at B=32 or 2 ms, whichever first"), the way PREFER-style view
servers and threshold-algorithm pipelines amortize per-request overhead
across a request stream.

Coalescing
----------
Arriving requests are queued per tenant.  A single flush worker opens a
window anchored at the oldest pending request and dispatches a batch when
either the window expires (*flush-on-deadline*) or ``max_batch`` requests
are pending (*flush-on-size*).  Each flush drains requests **round-robin
across tenants** (fair share: a tenant flooding the gateway cannot starve
a light tenant's requests out of the next batch) and groups the drained
rows by k, feeding each group through ``engine.query_batch`` — so every
answer inherits the engine's bitwise-identity contract: a coalesced answer
is byte-for-byte the answer ``engine.query(w, k)`` would have returned.
Both the single-node :class:`~repro.serving.QueryEngine` and the sharded
:class:`~repro.cluster.ClusterEngine` are accepted (the gateway only needs
``d``, ``query_batch``, and per-row ``cost``).

Admission control and backpressure
----------------------------------
Two caps shed load *at arrival* instead of queueing unboundedly:
``max_pending`` bounds the not-yet-dispatched queue and ``max_inflight``
bounds everything admitted but not yet answered.  A request over either
cap fails fast with :class:`~repro.exceptions.GatewayOverloadError` —
callers see overload immediately and can back off, and the requests
already admitted keep their latency instead of aging behind an unbounded
backlog.

SLOs
----
Every completed request records its end-to-end latency (enqueue to
resolution, on the gateway's clock) into its tenant's
:class:`~repro.serving.MetricsRegistry`; latencies above ``slo_target_ms``
bump the registry's ``slo_violations`` counter.  :meth:`AsyncGateway.stats`
reports per-tenant snapshots plus the pooled roll-up
(:meth:`MetricsRegistry.aggregate` — union percentiles, pooled
throughput), and gateway-level batch occupancy (mean lanes per flush, the
figure that shows coalescing actually engages the batch kernel).

Determinism under test
----------------------
The gateway never reads the wall clock directly: ``clock`` (a ``() ->
seconds`` callable) and ``sleep`` (an async ``sleep(seconds)``) are
injectable.  Tests drive a fake clock and step the event loop manually, so
flush-on-size, flush-on-deadline, cancellation, and fairness paths are all
exercised without a single real timed sleep (see
``tests/serving/test_gateway.py``).  The defaults are ``time.monotonic``
and :func:`asyncio.sleep`.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    GatewayClosedError,
    GatewayOverloadError,
    InvalidQueryError,
)
from repro.relation import normalize_weights
from repro.serving.engine import validate_k
from repro.serving.metrics import MetricsRegistry

__all__ = ["AsyncGateway"]


@dataclass
class _Pending:
    """One admitted request waiting for its batch lane."""

    #: Raw weights as submitted — forwarded untouched so the engine
    #: normalizes exactly once, keeping answers bitwise identical to a
    #: direct ``engine.query(w, k)`` call.
    weights: np.ndarray
    k: int
    tenant: str
    future: asyncio.Future
    enqueued_at: float


class AsyncGateway:
    """Coalesce concurrent single-query traffic into batch-kernel lanes.

    Parameters
    ----------
    engine:
        A :class:`~repro.serving.QueryEngine` or
        :class:`~repro.cluster.ClusterEngine` (anything exposing ``d`` and
        ``query_batch(matrix, k)`` whose results carry ``cost``).
    max_batch:
        Flush-on-size threshold: a batch is dispatched the moment this
        many requests are pending (also the lane cap per flush).
    flush_window_ms:
        Flush-on-deadline window: a pending request waits at most this
        long (on the gateway clock) before its batch is dispatched.
    max_pending:
        Bounded queue: requests arriving while this many are queued are
        fast-rejected with :class:`GatewayOverloadError`.
    max_inflight:
        Admission cap on requests admitted but not yet answered
        (queued + executing); beyond it arrivals are fast-rejected.
    slo_target_ms:
        End-to-end latency target; completions above it count as
        ``slo_violations`` in the tenant's registry.  ``None`` disables
        SLO accounting.
    latency_window:
        Sliding-window size for each tenant registry's percentiles.
    clock / sleep:
        Injectable time source and async sleep (fake-clock tests);
        default ``time.monotonic`` / ``asyncio.sleep``.
    executor:
        Optional ``concurrent.futures`` executor the engine call is
        offloaded to, keeping the event loop responsive while the kernel
        runs.  ``None`` (default) executes inline on the loop — fully
        deterministic, which is what the fake-clock tests rely on.
    """

    def __init__(
        self,
        engine,
        *,
        max_batch: int = 32,
        flush_window_ms: float = 2.0,
        max_pending: int = 1024,
        max_inflight: int = 4096,
        slo_target_ms: float | None = None,
        latency_window: int = 4096,
        clock=None,
        sleep=None,
        executor=None,
    ) -> None:
        if max_batch < 1:
            raise InvalidQueryError(f"max_batch must be >= 1, got {max_batch}")
        if flush_window_ms < 0:
            raise InvalidQueryError(
                f"flush_window_ms must be >= 0, got {flush_window_ms}"
            )
        if max_pending < 1:
            raise InvalidQueryError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_inflight < 1:
            raise InvalidQueryError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.engine = engine
        self.max_batch = int(max_batch)
        self.flush_window = float(flush_window_ms) / 1e3
        self.max_pending = int(max_pending)
        self.max_inflight = int(max_inflight)
        self.slo_target_ms = slo_target_ms
        self._latency_window = latency_window
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._executor = executor
        # Per-tenant FIFO queues; _rr holds the round-robin rotation of
        # tenants with pending work (arrival order, rotating per drain).
        self._queues: OrderedDict[str, deque[_Pending]] = OrderedDict()
        self._rr: deque[str] = deque()
        self._pending = 0
        self._inflight = 0
        #: Batch-level metrics (occupancy histogram, amortized latency);
        #: per-request accounting lives in the per-tenant registries.
        self.metrics = MetricsRegistry(latency_window=latency_window)
        self._tenant_metrics: dict[str, MetricsRegistry] = {}
        self.accepted = 0
        self.rejected_queue_full = 0
        self.rejected_inflight = 0
        self._arrival = asyncio.Event()
        self._full = asyncio.Event()
        self._worker: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Serving path
    # ------------------------------------------------------------------ #

    async def query(self, weights, k, *, tenant: str = "default"):
        """Serve one top-k query through the coalescer.

        Validates eagerly (a malformed request raises before anything is
        queued), admits under the pending/in-flight caps, then awaits its
        batch lane.  The returned result is bitwise identical to
        ``engine.query(weights, k)``.  Cancelling the awaiting task
        removes the request from its batch: an already-cancelled request
        never occupies a lane.
        """
        if self._closed:
            raise GatewayClosedError("gateway is closed")
        raw = np.asarray(weights, dtype=np.float64)
        normalize_weights(raw, self.engine.d)  # validate only; raw is queued
        k = validate_k(k)
        if self._pending >= self.max_pending:
            self.rejected_queue_full += 1
            raise GatewayOverloadError(
                f"pending queue full ({self.max_pending} queued)"
            )
        if self._inflight >= self.max_inflight:
            self.rejected_inflight += 1
            raise GatewayOverloadError(
                f"in-flight cap reached ({self.max_inflight} admitted)"
            )
        self._ensure_worker()
        loop = asyncio.get_running_loop()
        item = _Pending(
            weights=raw,
            k=k,
            tenant=str(tenant),
            future=loop.create_future(),
            enqueued_at=self._clock(),
        )
        queue = self._queues.get(item.tenant)
        if queue is None:
            queue = deque()
            self._queues[item.tenant] = queue
            self._rr.append(item.tenant)
        queue.append(item)
        self._pending += 1
        self._inflight += 1
        self.accepted += 1
        self._arrival.set()
        if self._pending >= self.max_batch:
            self._full.set()
        try:
            return await item.future
        finally:
            self._inflight -= 1

    # ------------------------------------------------------------------ #
    # Flush worker
    # ------------------------------------------------------------------ #

    def _ensure_worker(self) -> None:
        if self._worker is None or self._worker.done():
            self._worker = asyncio.get_running_loop().create_task(self._run())

    async def _run(self) -> None:
        try:
            while True:
                if self._pending == 0:
                    if self._closed:
                        return
                    self._arrival.clear()
                    await self._arrival.wait()
                    continue
                if self._pending < self.max_batch and not self._closed:
                    deadline = self._oldest_enqueue() + self.flush_window
                    delay = deadline - self._clock()
                    if delay > 0:
                        await self._wait_full_or_sleep(delay)
                        if (
                            self._pending < self.max_batch
                            and self._clock() < deadline
                            and not self._closed
                        ):
                            # Spurious wake (a size flush raced a drain):
                            # re-anchor on the now-oldest request.
                            continue
                batch = self._drain()
                if batch:
                    await self._dispatch(batch)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            # A worker crash must not strand waiters: fail every pending
            # future with the underlying error.
            for queue in self._queues.values():
                for item in queue:
                    if not item.future.done():
                        item.future.set_exception(exc)
                queue.clear()
            self._queues.clear()
            self._rr.clear()
            self._pending = 0
            raise

    async def _wait_full_or_sleep(self, delay: float) -> None:
        """Race the flush deadline against the batch filling up.

        ``asyncio.wait`` carries no timeout of its own — the only timer is
        the injected ``sleep``, which is what keeps fake-clock tests free
        of real sleeps.
        """
        sleeper = asyncio.ensure_future(self._sleep(delay))
        filled = asyncio.ensure_future(self._full.wait())
        try:
            await asyncio.wait(
                {sleeper, filled}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for task in (sleeper, filled):
                if not task.done():
                    task.cancel()
            await asyncio.gather(sleeper, filled, return_exceptions=True)

    def _oldest_enqueue(self) -> float:
        return min(
            queue[0].enqueued_at for queue in self._queues.values() if queue
        )

    def _drain(self) -> list[_Pending]:
        """Assemble one batch, round-robin across tenant queues.

        Each pass takes one request per tenant in rotation until the batch
        is full or the queues are empty; cancelled requests are discarded
        without occupying a lane.
        """
        batch: list[_Pending] = []
        while self._pending > 0 and self._rr and len(batch) < self.max_batch:
            tenant = self._rr.popleft()
            queue = self._queues.get(tenant)
            if not queue:
                del self._queues[tenant]
                continue
            item = queue.popleft()
            self._pending -= 1
            if queue:
                self._rr.append(tenant)
            else:
                del self._queues[tenant]
            if not item.future.done():
                batch.append(item)
        if self._pending < self.max_batch:
            self._full.clear()
        return batch

    async def _dispatch(self, batch: list[_Pending]) -> None:
        """Serve one flushed batch through ``engine.query_batch``.

        Rows are grouped by k (the unit both engines batch on; the
        cluster engine only takes a scalar k per call) — mixed-k flushes
        still fill lanes per group.  Any engine failure resolves every
        waiter with the exception instead of stranding them.
        """
        groups: dict[int, list[_Pending]] = {}
        for item in batch:
            groups.setdefault(item.k, []).append(item)
        start = self._clock()
        outputs: list[tuple[list[_Pending], list]] = []
        try:
            for k, items in groups.items():
                matrix = np.ascontiguousarray(
                    np.stack([item.weights for item in items])
                )
                results = await self._execute(matrix, k)
                outputs.append((items, results))
        except Exception as exc:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        self.metrics.record_batch(len(batch), self._clock() - start)
        now = self._clock()
        for items, results in outputs:
            for item, result in zip(items, results):
                latency = now - item.enqueued_at
                violated = (
                    self.slo_target_ms is not None
                    and latency * 1e3 > self.slo_target_ms
                )
                # A zero-cost answer means the engine served it from its
                # result cache (any real traversal evaluates >= 1 tuple).
                self._tenant_registry(item.tenant).record_external(
                    cost=result.cost,
                    seconds=latency,
                    hit=result.cost == 0,
                    batched=True,
                    slo_violated=violated,
                )
                if not item.future.done():
                    item.future.set_result(result)

    async def _execute(self, matrix: np.ndarray, k: int):
        if self._executor is None:
            return self.engine.query_batch(matrix, k)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, self.engine.query_batch, matrix, k
        )

    # ------------------------------------------------------------------ #
    # Metrics / lifecycle
    # ------------------------------------------------------------------ #

    def _tenant_registry(self, tenant: str) -> MetricsRegistry:
        registry = self._tenant_metrics.get(tenant)
        if registry is None:
            registry = MetricsRegistry(latency_window=self._latency_window)
            self._tenant_metrics[tenant] = registry
        return registry

    def stats(self) -> dict:
        """Gateway snapshot: admission, occupancy, roll-up, per-tenant.

        ``rollup`` pools every tenant registry through
        :meth:`MetricsRegistry.aggregate` (union percentiles, pooled
        ``throughput_qps``, summed ``slo_violations``);
        ``batch_occupancy`` is the mean number of lanes per flush — the
        number that shows coalescing actually engages the batch kernel.
        """
        batch = self.metrics.as_dict()
        registries = list(self._tenant_metrics.values())
        return {
            "accepted": float(self.accepted),
            "rejected_queue_full": float(self.rejected_queue_full),
            "rejected_inflight": float(self.rejected_inflight),
            "pending": float(self._pending),
            "inflight": float(self._inflight),
            "batches": batch["batches"],
            "batch_rows": batch["batch_rows"],
            "batch_occupancy": batch["batch_size_mean"],
            "batch_size_max": batch["batch_size_max"],
            "batch_amortized_ms_p50": batch["batch_amortized_ms_p50"],
            "rollup": MetricsRegistry.aggregate(registries),
            "per_tenant": {
                tenant: registry.as_dict()
                for tenant, registry in self._tenant_metrics.items()
            },
        }

    async def aclose(self) -> None:
        """Drain pending requests, then stop the flush worker.

        Requests admitted before the close are still answered (the worker
        skips the flush window once closing); new arrivals raise
        :class:`GatewayClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        self._arrival.set()
        self._full.set()
        if self._worker is not None:
            await self._worker
            self._worker = None

    async def __aenter__(self) -> "AsyncGateway":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()
