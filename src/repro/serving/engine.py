"""The batched, cached, concurrent query-serving engine.

:class:`QueryEngine` fronts any built index — a static
:class:`~repro.core.base.TopKIndex` (DL/DL+/DG/DG+/baselines) or a mutable
:class:`~repro.core.maintenance.DynamicDualLayerIndex` — and serves query
traffic the way a deployed system would:

* **result caching** — answers are memoized in an LRU keyed by
  ``(quantized weights, k, structure version)`` (see
  :mod:`repro.serving.cache`); a hit returns the stored answer with *zero*
  tuple evaluations and the version key guarantees freshness across
  inserts/deletes and rebuilds;
* **batching** — :meth:`query_batch` normalizes the whole weight matrix up
  front, shares the structure's precomputed seed block
  (:meth:`~repro.core.structure.LayerStructure.seed_block`) so each query's
  seed scoring is one matrix-vector product, and deduplicates repeated
  weight vectors through the cache.  Batched answers are byte-identical to
  sequential :func:`~repro.core.query.process_top_k` calls because both run
  the exact same scoring path;
* **concurrency** — :meth:`query_many` fans queries out over a thread pool.
  The frozen :class:`~repro.core.structure.LayerStructure` is read-only by
  contract and every query owns its
  :class:`~repro.stats.AccessCounter`/heap, so no locking is needed on the
  traversal itself (the cache and metrics registry carry their own locks);
* **metrics** — every query is tracked in a
  :class:`~repro.serving.metrics.MetricsRegistry` (latency percentiles,
  Definition 9 cost, hit rate, queue depth), exportable as a flat dict and
  rendered by the ``repro-topk serve-bench`` CLI.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.base import TopKIndex, TopKResult
from repro.core.query import process_top_k, process_top_k_reference
from repro.exceptions import InvalidQueryError, InvalidWeightError
from repro.relation import normalize_weights
from repro.serving.cache import ResultCache
from repro.serving.metrics import MetricsRegistry, QueryRecord
from repro.stats import AccessCounter


class QueryEngine:
    """Serve top-k queries against one index with caching and batching.

    Parameters
    ----------
    index:
        A :class:`~repro.core.base.TopKIndex` (built automatically if not
        yet built) or any object exposing ``query(weights, k, counter=...)``
        plus ``d``/``n``/``version`` attributes (duck-typed; the dynamic
        maintenance index qualifies).
    cache_size:
        LRU capacity in entries; ``0`` disables result caching.
    quantize_decimals:
        Weight-vector rounding used for cache keys (see
        :class:`~repro.serving.cache.ResultCache`).
    latency_window:
        Sliding-window size for latency percentiles.
    kernel:
        ``"csr"`` (default) serves gated-structure queries through the
        vectorized :func:`~repro.core.query.process_top_k`; ``"reference"``
        routes them through the per-node
        :func:`~repro.core.query.process_top_k_reference` oracle instead.
        Both kernels return bitwise-identical answers, so this switch only
        changes wall-clock behaviour — it exists for A/B latency
        measurements (``repro-topk perf-bench``) and for ruling the
        vectorized kernel in or out when debugging.
    build_parallel:
        Worker count for (re)builds the engine triggers: applied to the
        fronted index's ``parallel`` knob before the initial build and for
        every index that exposes one.  Parallel builds are array-equal to
        sequential ones, so this only changes build wall-clock.
    """

    def __init__(
        self,
        index,
        *,
        cache_size: int = 1024,
        quantize_decimals: int = 12,
        latency_window: int = 4096,
        kernel: str = "csr",
        build_parallel: int | None = None,
    ) -> None:
        if kernel not in ("csr", "reference"):
            raise InvalidQueryError(
                f"kernel must be 'csr' or 'reference', got {kernel!r}"
            )
        self.build_parallel = build_parallel
        if build_parallel is not None and hasattr(index, "parallel"):
            index.parallel = build_parallel
        if isinstance(index, TopKIndex) and not index._built:
            index.build()
        self.index = index
        self.kernel = kernel
        self._process = (
            process_top_k if kernel == "csr" else process_top_k_reference
        )
        self.cache = ResultCache(cache_size, decimals=quantize_decimals)
        self.metrics = MetricsRegistry(latency_window=latency_window)
        self._seen_version = self.version

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """The fronted index's structure version (0 for unversioned indexes)."""
        return int(getattr(self.index, "version", 0))

    @property
    def d(self) -> int:
        """Dimensionality of the fronted index."""
        relation = getattr(self.index, "relation", None)
        return relation.d if relation is not None else self.index.d

    @property
    def n(self) -> int:
        """Current tuple population of the fronted index."""
        relation = getattr(self.index, "relation", None)
        return relation.n if relation is not None else self.index.n

    def stats(self) -> dict[str, float]:
        """Merged metrics + cache snapshot."""
        snapshot = self.metrics.as_dict()
        for key, value in self.cache.stats().items():
            snapshot[f"cache_{key}"] = float(value)
        snapshot["throughput_qps"] = self.metrics.throughput()
        return snapshot

    # ------------------------------------------------------------------ #
    # Serving paths
    # ------------------------------------------------------------------ #

    def query(self, weights: np.ndarray, k: int) -> TopKResult:
        """Serve one top-k query through the cache."""
        w = normalize_weights(weights, self.d)
        self._validate_k(k)
        with self.metrics.track() as record:
            return self._serve(w, k, record)

    def query_batch(self, weights_matrix: np.ndarray, k: int) -> list[TopKResult]:
        """Serve one query per row of ``weights_matrix``, amortizing overhead.

        The whole matrix is validated and normalized up front; repeated
        weight vectors are computed once and answered from the cache; seed
        scoring reuses the structure's shared seed block.  Results are
        byte-identical to issuing the queries one at a time.
        """
        matrix = np.asarray(weights_matrix, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.ndim != 2:
            raise InvalidWeightError(
                f"weight matrix must be 2-D, got shape {matrix.shape}"
            )
        self._validate_k(k)
        d = self.d
        normalized = [normalize_weights(matrix[row], d) for row in range(matrix.shape[0])]
        results: list[TopKResult] = []
        for w in normalized:
            with self.metrics.track() as record:
                record.batched = True
                results.append(self._serve(w, k, record))
        return results

    def query_many(
        self,
        queries,
        *,
        max_workers: int | None = None,
    ) -> list[TopKResult]:
        """Serve ``(weights, k)`` pairs concurrently on a thread pool.

        Safe because the frozen structure is read-only and all per-query
        traversal state is private; results are returned in input order.
        """
        items = list(queries)
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(self.query, w, int(k)) for w, k in items]
            return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _validate_k(self, k: int) -> None:
        if k < 1:
            raise InvalidQueryError(f"retrieval size k must be >= 1, got {k}")

    def _serve(self, w: np.ndarray, k: int, record: QueryRecord) -> TopKResult:
        """Core cached path: ``w`` is already normalized."""
        version = self.version
        if version != self._seen_version:
            # A mutation/rebuild happened since we last looked: old-version
            # entries are unreachable by key; free them eagerly.
            self.cache.prune(version)
            self._seen_version = version
        effective_k = min(int(k), self.n)
        key = self.cache.make_key(w, effective_k, version)
        cached = self.cache.get(key)
        if cached is not None:
            record.hit = True
            record.cost = 0
            return TopKResult(ids=cached[0], scores=cached[1], counter=AccessCounter())
        counter = AccessCounter()
        ids, scores = self._execute(w, effective_k, counter)
        self.cache.put(key, ids, scores)
        record.cost = counter.total
        return TopKResult(ids=ids, scores=scores, counter=counter)

    def _execute(
        self, w: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run one uncached query on the fronted index."""
        structure = getattr(self.index, "structure", None)
        if isinstance(self.index, TopKIndex):
            if structure is not None:
                # Gated layer index: traverse the frozen structure directly
                # with the configured kernel (skips re-validation; bitwise
                # the same answers either way).
                return self._process(structure, w, k, counter)
            result = self.index.query(w, k, counter=counter)
            return result.ids, result.scores
        # Duck-typed mutable index (DynamicDualLayerIndex): returns ids
        # remapped to insertion-order ids.
        return self.index.query(w, k, counter=counter)
