"""The batched, cached, concurrent query-serving engine.

:class:`QueryEngine` fronts any built index — a static
:class:`~repro.core.base.TopKIndex` (DL/DL+/DG/DG+/baselines) or a mutable
:class:`~repro.core.maintenance.DynamicDualLayerIndex` — and serves query
traffic the way a deployed system would:

* **result caching** — answers are memoized in an LRU keyed by
  ``(quantized weights, k, structure version)`` (see
  :mod:`repro.serving.cache`); a hit returns the stored answer with *zero*
  tuple evaluations and the version key guarantees freshness across
  inserts/deletes and rebuilds;
* **batching** — :meth:`query_batch` normalizes the whole weight matrix up
  front, deduplicates repeated weight vectors through the cache, groups the
  remaining rows by effective k, and feeds each group through the
  lane-parallel :func:`~repro.core.query.process_top_k_batch` kernel, which
  walks the gate graph once per round for *all* rows of the group and
  scores every lane's opened children in one batched contraction.  Batched
  answers are byte-identical to sequential
  :func:`~repro.core.query.process_top_k` calls (the batch kernel's
  bitwise-identity contract);
* **concurrency** — :meth:`query_many` fans queries out over a thread pool.
  The frozen :class:`~repro.core.structure.LayerStructure` is read-only by
  contract and every query owns its
  :class:`~repro.stats.AccessCounter`/heap, so no locking is needed on the
  traversal itself (the cache and metrics registry carry their own locks);
* **metrics** — every query is tracked in a
  :class:`~repro.serving.metrics.MetricsRegistry` (latency percentiles,
  Definition 9 cost, hit rate, queue depth), exportable as a flat dict and
  rendered by the ``repro-topk serve-bench`` CLI.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.base import TopKIndex, TopKResult
from repro.core.dispatch import VALID_KERNELS, get_jit_kernel, select_kernel
from repro.core.native import NativeWorkspace, build_info
from repro.core.query import (
    BatchWorkspace,
    QueryWorkspace,
    process_top_k,
    process_top_k_batch,
    process_top_k_reference,
)
from repro.exceptions import InvalidQueryError, InvalidWeightError
from repro.relation import normalize_weights
from repro.serving.cache import ResultCache
from repro.serving.metrics import MetricsRegistry, QueryRecord
from repro.stats import AccessCounter


def validate_k(k) -> int:
    """Validate a retrieval size and return it as a plain ``int``.

    Accepts anything integral (``int``, ``np.int64``, ``2.0``) and raises
    :class:`~repro.exceptions.InvalidQueryError` on non-integral values —
    ``np.asarray(k, dtype=np.int64)`` used to silently truncate ``k=2.5``
    to ``k=2`` on the batched path, so a malformed request returned two
    results instead of failing.  Shared by the engine, the cluster
    coordinator, and the gateway so every serving entry point enforces the
    same contract.  Strings and booleans are rejected even when ``float``
    would coerce them — ``k="5"`` or ``k=True`` in a request is a caller
    bug, not a retrieval size.
    """
    if isinstance(k, (str, bytes, bool)):
        raise InvalidQueryError(
            f"retrieval size k must be an integer, got {k!r}"
        )
    try:
        as_float = float(k)
    except (TypeError, ValueError) as exc:
        raise InvalidQueryError(
            f"retrieval size k must be an integer, got {k!r}"
        ) from exc
    if not as_float.is_integer():
        raise InvalidQueryError(
            f"retrieval size k must be an integer, got {k!r}"
        )
    value = int(as_float)
    if value < 1:
        raise InvalidQueryError(f"retrieval size k must be >= 1, got {k}")
    return value


class QueryEngine:
    """Serve top-k queries against one index with caching and batching.

    Parameters
    ----------
    index:
        A :class:`~repro.core.base.TopKIndex` (built automatically if not
        yet built) or any object exposing ``query(weights, k, counter=...)``
        plus ``d``/``n``/``version`` attributes (duck-typed; the dynamic
        maintenance index qualifies).
    cache_size:
        LRU capacity in entries; ``0`` disables result caching.
    quantize_decimals:
        Weight-vector rounding used for cache keys (see
        :class:`~repro.serving.cache.ResultCache`).
    latency_window:
        Sliding-window size for latency percentiles.
    kernel:
        ``"auto"`` (default) dispatches per call through
        :func:`~repro.core.dispatch.select_kernel`: the lane-parallel
        :func:`~repro.core.query.process_top_k_batch` for wide enough
        cache-miss groups, the per-node
        :func:`~repro.core.query.process_top_k_reference` on small
        low-dimensional structures (where whole-slice numpy overhead loses
        to the python loop), and the vectorized
        :func:`~repro.core.query.process_top_k` otherwise — and, when the
        compiled C walker is available (built on first use; see
        :mod:`repro.core.native`), the ``"native"`` kernel for every solo
        and narrow-batch miss.  ``"csr"``, ``"reference"``, and
        ``"batch"`` force one kernel unconditionally.  Every kernel
        returns bitwise-identical answers, so this switch only changes
        wall-clock behaviour — it exists for A/B latency measurements
        (``repro-topk perf-bench``) and for ruling individual kernels in
        or out when debugging.  ``"native"`` (alias ``"jit"``) forces the
        compiled walker and raises
        :class:`~repro.exceptions.KernelUnavailableError` when it cannot
        be built (no C toolchain) and nothing else was registered through
        :func:`~repro.core.dispatch.register_jit_kernel`; ``auto`` only
        selects it when it is actually loadable, so a compiler-less host
        serves every query through the python kernels with one logged
        warning and no errors.
    build_parallel:
        Worker count for (re)builds the engine triggers: applied to the
        fronted index's ``parallel`` knob before the initial build and for
        every index that exposes one.  Parallel builds are array-equal to
        sequential ones, so this only changes build wall-clock.
    prune:
        Enable layer-bound skipping in the CSR and batch kernels (see
        :func:`~repro.core.query.process_top_k`): children whose bound-table
        score bound already beats the running k-th score are dropped before
        they are scored.  Answers stay bitwise identical; only the access
        counts shrink.  When the dispatcher would pick the ``reference``
        kernel (which has no pruning path), it is promoted to ``csr`` so
        the skip actually runs.
    """

    def __init__(
        self,
        index,
        *,
        cache_size: int = 1024,
        quantize_decimals: int = 12,
        latency_window: int = 4096,
        kernel: str = "auto",
        build_parallel: int | None = None,
        prune: bool = False,
    ) -> None:
        if kernel not in VALID_KERNELS:
            raise InvalidQueryError(
                f"kernel must be one of {VALID_KERNELS}, got {kernel!r}"
            )
        self.build_parallel = build_parallel
        if build_parallel is not None and hasattr(index, "parallel"):
            index.parallel = build_parallel
        if isinstance(index, TopKIndex) and not index._built:
            index.build()
        self.index = index
        self.kernel = kernel
        self.prune = bool(prune)
        # Reusable (n_nodes, B) gate-state scratch for the batch kernel;
        # owned by the engine because the frozen structure is immutable by
        # contract and cannot cache mutable state.
        self._workspace = BatchWorkspace()
        # Reusable solo gate-state scratch for the CSR kernel (undo-log
        # checkout/reset; concurrent query_many threads that lose the
        # non-blocking checkout fall back to a fresh allocation and are
        # counted — see stats()["workspace_fallbacks"]).
        self._solo_workspace = QueryWorkspace()
        # Reusable buffers for the compiled native kernel (gate state,
        # heap scratch, pinned cffi pointers — see NativeWorkspace);
        # cheap to hold even when the native kernel never loads.
        self._native_workspace = NativeWorkspace()
        self.cache = ResultCache(cache_size, decimals=quantize_decimals)
        self.metrics = MetricsRegistry(latency_window=latency_window)
        self._seen_version = self.version

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        """The fronted index's structure version (0 for unversioned indexes)."""
        return int(getattr(self.index, "version", 0))

    @property
    def d(self) -> int:
        """Dimensionality of the fronted index."""
        relation = getattr(self.index, "relation", None)
        return relation.d if relation is not None else self.index.d

    @property
    def n(self) -> int:
        """Current tuple population of the fronted index."""
        relation = getattr(self.index, "relation", None)
        return relation.n if relation is not None else self.index.n

    def stats(self) -> dict[str, float]:
        """Merged metrics + cache snapshot."""
        snapshot = self.metrics.as_dict()
        for key, value in self.cache.stats().items():
            snapshot[f"cache_{key}"] = float(value)
        snapshot["throughput_qps"] = self.metrics.throughput()
        snapshot["workspace_checkouts"] = float(self._solo_workspace.checkouts)
        snapshot["workspace_fallbacks"] = float(self._solo_workspace.fallbacks)
        snapshot["native_workspace_checkouts"] = float(
            self._native_workspace.checkouts
        )
        snapshot["native_workspace_fallbacks"] = float(
            self._native_workspace.fallbacks
        )
        # Native build outcome as 0/1 flags ("built" = compiled this
        # process, "cached" = loaded a prior build, "fallback" = build
        # failed or was never demanded — the python kernels serve).
        status = build_info()["status"]
        snapshot["native_built"] = float(status == "built")
        snapshot["native_cached"] = float(status == "cached")
        snapshot["native_fallback"] = float(status not in ("built", "cached"))
        return snapshot

    def analytics(self):
        """A dual-direction :class:`~repro.analytics.AnalyticsEngine` facade.

        The facade serves reverse top-k / why-not / what-if through this
        engine's kernels and cache; it snapshots placements per structure
        version, so the same facade stays valid across maintenance.
        """
        from repro.analytics import AnalyticsEngine

        return AnalyticsEngine(self)

    # ------------------------------------------------------------------ #
    # Serving paths
    # ------------------------------------------------------------------ #

    def query(self, weights: np.ndarray, k: int) -> TopKResult:
        """Serve one top-k query through the cache."""
        w = normalize_weights(weights, self.d)
        k = validate_k(k)
        with self.metrics.track() as record:
            return self._serve(w, k, record)

    def query_batch(self, weights_matrix: np.ndarray, k) -> list[TopKResult]:
        """Serve one query per row of ``weights_matrix``, amortizing overhead.

        ``k`` is a scalar applied to every row, or a sequence with one
        retrieval size per row.  The whole matrix is validated and
        normalized up front; repeated weight vectors are computed once and
        answered from the cache.  The remaining cache misses are grouped by
        effective k (k clamped to the relation size — the unit the cache
        keys and the batch kernel share) and each group runs through one
        lane-parallel :func:`~repro.core.query.process_top_k_batch` call
        when the dispatcher selects the batch kernel, walking the gate
        graph once per round for the whole group.  Results are
        byte-identical to issuing the queries one at a time.
        """
        matrix = np.asarray(weights_matrix, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.ndim != 2:
            raise InvalidWeightError(
                f"weight matrix must be 2-D, got shape {matrix.shape}"
            )
        n_rows = matrix.shape[0]
        # Validate k *before* any integer conversion: casting to int64 up
        # front would truncate a non-integral k (2.5 -> 2) and silently
        # serve the wrong retrieval size instead of raising.
        ks_input = np.asarray(k)
        if ks_input.ndim == 0:
            ks = np.full(n_rows, validate_k(ks_input[()]), dtype=np.int64)
        elif ks_input.shape != (n_rows,):
            raise InvalidQueryError(
                f"per-row k must have one entry per weight row: "
                f"got {ks_input.shape} for {n_rows} rows"
            )
        else:
            ks = np.asarray(
                [validate_k(value) for value in ks_input], dtype=np.int64
            )
        d = self.d
        # Fail fast: every row is validated/normalized before any query runs.
        normalized = [normalize_weights(matrix[row], d) for row in range(n_rows)]
        if not n_rows:
            return []
        version = self.version
        if version != self._seen_version:
            self.cache.prune(version)
            self._seen_version = version
        n = self.n
        cache_enabled = self.cache.capacity > 0
        results: list[TopKResult | None] = [None] * n_rows
        # First pass: answer cache hits immediately, defer duplicates of an
        # in-flight key (first occurrence pays, the duplicate hits after the
        # group is computed), and collect the rows that need a traversal.
        pending_keys: set = set()
        to_compute: list[tuple[int, tuple, np.ndarray, int]] = []
        deferred: list[tuple[int, tuple, int]] = []
        for row, w in enumerate(normalized):
            effective_k = min(int(ks[row]), n)
            key = self.cache.make_key(w, effective_k, version)
            if cache_enabled and key in pending_keys:
                deferred.append((row, key, effective_k))
                continue
            start = time.perf_counter()
            cached = self.cache.get(key)
            if cached is not None:
                self.metrics.record_external(
                    cost=0,
                    seconds=time.perf_counter() - start,
                    hit=True,
                    batched=True,
                )
                results[row] = TopKResult(
                    ids=cached[0], scores=cached[1], counter=AccessCounter()
                )
            else:
                pending_keys.add(key)
                to_compute.append((row, key, w, effective_k))
        # Group misses by effective k and run each group through the
        # dispatched kernel — fused when the dispatcher picks "batch".
        groups: dict[int, list[tuple[int, tuple, np.ndarray, int]]] = {}
        for item in to_compute:
            groups.setdefault(item[3], []).append(item)
        structure = getattr(self.index, "structure", None)
        batchable = isinstance(self.index, TopKIndex) and structure is not None
        for effective_k, group in groups.items():
            width = len(group)
            kernel = self.kernel
            if kernel == "auto":
                kernel = (
                    select_kernel(structure, batch_width=width, prune=self.prune)
                    if batchable
                    else "csr"
                )
            if batchable and kernel == "batch":
                lanes = np.ascontiguousarray(
                    np.stack([item[2] for item in group])
                )
                counters = [AccessCounter() for _ in group]
                self.metrics.record_kernel("batch", width)
                start = time.perf_counter()
                outputs = process_top_k_batch(
                    structure,
                    lanes,
                    effective_k,
                    counters,
                    workspace=self._workspace,
                    prune=self.prune,
                )
                elapsed = time.perf_counter() - start
                self.metrics.record_batch(width, elapsed)
                share = elapsed / width
                for (row, key, _w, _ek), counter, (ids, scores) in zip(
                    group, counters, outputs
                ):
                    self.cache.put(key, ids, scores)
                    self.metrics.record_external(
                        cost=counter.total, seconds=share, hit=False, batched=True
                    )
                    results[row] = TopKResult(
                        ids=ids, scores=scores, counter=counter
                    )
            else:
                for row, key, w, _ek in group:
                    with self.metrics.track() as record:
                        record.batched = True
                        counter = AccessCounter()
                        ids, scores = self._execute(w, effective_k, counter)
                        self.cache.put(key, ids, scores)
                        record.cost = counter.total
                        results[row] = TopKResult(
                            ids=ids, scores=scores, counter=counter
                        )
        # Duplicates of computed rows: now cache hits (unless the entry was
        # already evicted by a tiny cache, in which case compute singly —
        # exactly what the sequential loop would have done).
        for row, key, effective_k in deferred:
            with self.metrics.track() as record:
                record.batched = True
                cached = self.cache.get(key)
                if cached is not None:
                    record.hit = True
                    results[row] = TopKResult(
                        ids=cached[0], scores=cached[1], counter=AccessCounter()
                    )
                else:
                    counter = AccessCounter()
                    ids, scores = self._execute(
                        normalized[row], effective_k, counter
                    )
                    self.cache.put(key, ids, scores)
                    record.cost = counter.total
                    results[row] = TopKResult(
                        ids=ids, scores=scores, counter=counter
                    )
        return results

    def query_many(
        self,
        queries,
        *,
        max_workers: int | None = None,
    ) -> list[TopKResult]:
        """Serve ``(weights, k)`` pairs concurrently on a thread pool.

        Safe because the frozen structure is read-only and all per-query
        traversal state is private; results are returned in input order.
        Every pair is validated *before* the pool spawns, so one malformed
        row raises immediately instead of surfacing as a late future
        exception after sibling queries already ran.  The raw weights are
        submitted (not the validation pass's normalized copies) so
        :meth:`query` normalizes exactly once, keeping answers bitwise
        identical to the sequential path.
        """
        items = list(queries)
        if not items:
            return []
        d = self.d
        validated = []
        for weights, k in items:
            normalize_weights(weights, d)
            validated.append((weights, validate_k(k)))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(self.query, w, k) for w, k in validated]
            return [future.result() for future in futures]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _serve(self, w: np.ndarray, k: int, record: QueryRecord) -> TopKResult:
        """Core cached path: ``w`` is already normalized."""
        version = self.version
        if version != self._seen_version:
            # A mutation/rebuild happened since we last looked: old-version
            # entries are unreachable by key; free them eagerly.
            self.cache.prune(version)
            self._seen_version = version
        effective_k = min(int(k), self.n)
        key = self.cache.make_key(w, effective_k, version)
        cached = self.cache.get(key)
        if cached is not None:
            record.hit = True
            record.cost = 0
            return TopKResult(ids=cached[0], scores=cached[1], counter=AccessCounter())
        counter = AccessCounter()
        ids, scores = self._execute(w, effective_k, counter)
        self.cache.put(key, ids, scores)
        record.cost = counter.total
        return TopKResult(ids=ids, scores=scores, counter=counter)

    def _execute(
        self, w: np.ndarray, k: int, counter: AccessCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        """Run one uncached query on the fronted index."""
        structure = getattr(self.index, "structure", None)
        if isinstance(self.index, TopKIndex):
            if structure is not None:
                # Gated layer index: traverse the frozen structure directly
                # with the configured kernel (skips re-validation; bitwise
                # the same answers whichever kernel runs).
                kernel = self.kernel
                if kernel == "auto":
                    kernel = select_kernel(structure, prune=self.prune)
                if kernel in ("native", "jit"):
                    # Compiled walker: the bundled C kernel auto-registers
                    # on first demand (building its .so if needed); an
                    # explicit request on a host without a toolchain
                    # raises a clear KernelUnavailableError, while auto
                    # only lands here when the kernel is loadable.
                    self.metrics.record_kernel("native")
                    return get_jit_kernel()(
                        structure,
                        w,
                        k,
                        counter,
                        prune=self.prune,
                        workspace=self._native_workspace,
                    )
                if kernel == "reference":
                    if not (self.prune and structure.has_layer_bounds):
                        self.metrics.record_kernel("reference")
                        return process_top_k_reference(structure, w, k, counter)
                    # The reference kernel has no pruning path; the CSR
                    # kernel is bitwise identical, so promote when the
                    # frozen bound table makes pruning worthwhile.
                    kernel = "csr"
                if kernel == "batch":
                    # Forced batch kernel on a single query: one lane.
                    self.metrics.record_kernel("batch")
                    outputs = process_top_k_batch(
                        structure,
                        np.asarray(w, dtype=np.float64)[None, :],
                        k,
                        [counter],
                        workspace=self._workspace,
                        prune=self.prune,
                    )
                    return outputs[0]
                self.metrics.record_kernel("csr")
                return process_top_k(
                    structure,
                    w,
                    k,
                    counter,
                    prune=self.prune,
                    workspace=self._solo_workspace,
                )
            result = self.index.query(w, k, counter=counter)
            return result.ids, result.scores
        # Duck-typed mutable index (DynamicDualLayerIndex): returns ids
        # remapped to insertion-order ids.
        return self.index.query(w, k, counter=counter)
