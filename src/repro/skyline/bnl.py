"""Block-nested-loops skyline (Börzsönyi et al. [23]).

The classic baseline: maintain a window of incomparable tuples; each incoming
tuple is dropped if dominated, otherwise it evicts the window tuples it
dominates and joins the window.  Kept primarily as an independent oracle for
cross-checking the faster algorithms; O(n·|window|) with per-tuple numpy
filtering.
"""

from __future__ import annotations

import numpy as np


def skyline_bnl(points: np.ndarray) -> np.ndarray:
    """Indices (into ``points``) of the skyline, ascending.

    Parameters
    ----------
    points:
        ``(n, d)`` array, minimization orientation.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    window_idx: list[int] = []
    for i in range(n):
        candidate = points[i]
        if window_idx:
            window = points[window_idx]
            leq = np.all(window <= candidate, axis=1)
            lt = np.any(window < candidate, axis=1)
            if np.any(leq & lt):
                continue
            geq = np.all(window >= candidate, axis=1)
            gt = np.any(window > candidate, axis=1)
            evicted = geq & gt
            if np.any(evicted):
                window_idx = [
                    idx for idx, out in zip(window_idx, evicted) if not out
                ]
        window_idx.append(i)
    return np.asarray(sorted(window_idx), dtype=np.intp)
