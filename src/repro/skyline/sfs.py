"""Sort-filter-skyline (Chomicki et al. [27]), block-vectorized.

Tuples are processed in ascending order of a monotone topological score (the
attribute sum, with id tie-breaks).  Under that order no later tuple can
dominate an earlier one, so a tuple only needs checking against already
accepted skyline tuples — no eviction pass.

The sorted stream is consumed in blocks: each block is first filtered
against the accumulated skyline window with one broadcast comparison, then
cleaned of intra-block dominance with a masked pairwise matrix (only
earlier-in-order rows can dominate), and the survivors are appended.  This
keeps the Python-loop iteration count at ``n / block`` instead of ``n``.
"""

from __future__ import annotations

import numpy as np

#: Rows per processed block; pairwise intra-block matrices stay ~block² · d.
_BLOCK = 256


def skyline_sfs(points: np.ndarray) -> np.ndarray:
    """Indices (into ``points``) of the skyline, ascending."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n, d = points.shape
    if n == 0:
        return np.empty(0, dtype=np.intp)
    # Primary key: attribute sum (monotone in dominance).  Floating-point
    # rounding can tie the sums of a dominator/dominated pair, so ties are
    # broken lexicographically by coordinates — a dominator is always
    # lexicographically smaller — keeping the "dominators come first"
    # invariant exact.
    keys = (np.arange(n), *(points[:, c] for c in range(d - 1, -1, -1)),
            points.sum(axis=1))
    order = np.lexsort(keys)
    sorted_pts = points[order]

    capacity = max(64, _BLOCK)
    window = np.empty((capacity, d), dtype=np.float64)
    window_count = 0
    keep: list[np.ndarray] = []
    for start in range(0, n, _BLOCK):
        block = sorted_pts[start : start + _BLOCK]
        block_ids = order[start : start + _BLOCK]
        if window_count:
            active = window[:window_count]
            # survivors: not dominated by any accepted skyline tuple.
            leq = np.all(active[:, None, :] <= block[None, :, :], axis=2)
            lt = np.any(active[:, None, :] < block[None, :, :], axis=2)
            alive = ~np.any(leq & lt, axis=0)
            block = block[alive]
            block_ids = block_ids[alive]
        if block.shape[0] > 1:
            # Intra-block: only earlier-in-order rows can dominate later ones
            # (dominance implies a strictly smaller attribute sum).
            leq = np.all(block[:, None, :] <= block[None, :, :], axis=2)
            lt = np.any(block[:, None, :] < block[None, :, :], axis=2)
            dom = leq & lt
            rows = np.arange(block.shape[0])
            dom &= rows[:, None] < rows[None, :]
            alive = ~np.any(dom, axis=0)
            block = block[alive]
            block_ids = block_ids[alive]
        if block.shape[0] == 0:
            continue
        needed = window_count + block.shape[0]
        if needed > capacity:
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, d), dtype=np.float64)
            grown[:window_count] = window[:window_count]
            window = grown
        window[window_count : window_count + block.shape[0]] = block
        window_count += block.shape[0]
        keep.append(block_ids)
    if not keep:
        return np.empty(0, dtype=np.intp)
    return np.sort(np.concatenate(keep)).astype(np.intp)
