"""Layer peeling: skyline layers (DG/DL coarse layers) and convex layers (Onion/HL).

Both peels satisfy the layer-index contract the paper relies on: the i-th
best tuple under any monotone linear scoring function lies within the first
``i`` layers, so a top-k query never needs more than ``k`` layers.  Passing
``max_layers`` bounds construction accordingly (the remainder is returned as
an overflow layer by :func:`skyline_layers` / :func:`convex_layers` callers
via the ``leftover`` entry).

Two routes produce the skyline-layer partition:

* the classic *iterated peel* (:func:`skyline_layers` with ``bnl`` / ``sfs``
  / ``bskytree``): layer i is the skyline of whatever layers < i left —
  every pass re-scans all remaining points;
* the *blocked partition* (:func:`skyline_layer_partition`, algorithm name
  ``"blocked"``): every point's layer is its longest-dominance-chain length,
  so processing points in ascending attribute-sum order assigns each point
  in one pass — its layer is the first existing layer with no member
  dominating it (a monotone predicate by transitivity), corrected for
  dominators inside its own block by a vectorized fix-point.  With
  ``max_layers`` set, a single check against the deepest kept layer routes
  overflow points straight to ``leftover``, which is what makes bounded
  builds cheap (the iterated peel pays a full scan per layer regardless).

The partition is unique — layer membership does not depend on the
algorithm — so both routes return identical layers (asserted in the tests).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.geometry.convex_skyline import convex_skyline
from repro.skyline.bnl import skyline_bnl
from repro.skyline.bskytree import skyline_bskytree
from repro.skyline.dominance import dominates_any, leq_matrix
from repro.skyline.sfs import skyline_sfs

_ALGORITHMS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "bnl": skyline_bnl,
    "sfs": skyline_sfs,
    "bskytree": skyline_bskytree,
}

#: Rows per processed block in :func:`skyline_layer_partition`; intra-block
#: pairwise matrices stay ~block² bytes.
_PARTITION_BLOCK = 512


def skyline(points: np.ndarray, algorithm: str = "sfs") -> np.ndarray:
    """Skyline indices of ``points`` using a named algorithm (sfs default)."""
    try:
        impl = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown skyline algorithm {algorithm!r}; have {sorted(_ALGORITHMS)}"
        ) from None
    return impl(points)


def _peel(
    points: np.ndarray,
    extract: Callable[[np.ndarray], np.ndarray],
    max_layers: int | None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Iteratively peel ``points`` with ``extract``; returns (layers, leftover).

    Each layer is an ascending array of *global* indices into ``points``;
    ``leftover`` holds the indices never assigned because ``max_layers``
    stopped the peel (empty on a full peel).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    remaining = np.arange(points.shape[0], dtype=np.intp)
    layers: list[np.ndarray] = []
    while remaining.shape[0] > 0:
        if max_layers is not None and len(layers) >= max_layers:
            return layers, remaining
        local = extract(points[remaining])
        if local.shape[0] == 0:
            raise RuntimeError("layer extraction returned an empty layer")
        layer = remaining[local]
        layers.append(np.sort(layer).astype(np.intp))
        mask = np.ones(remaining.shape[0], dtype=bool)
        mask[local] = False
        remaining = remaining[mask]
    return layers, remaining


def skyline_layers(
    points: np.ndarray,
    algorithm: str = "sfs",
    max_layers: int | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Skyline-layer peel: layer i is the skyline of what layers < i left.

    Returns ``(layers, leftover)`` of global index arrays.  ``"blocked"``
    routes to :func:`skyline_layer_partition` (identical layers, one pass).
    """
    if algorithm == "blocked":
        return skyline_layer_partition(points, max_layers)
    impl = _ALGORITHMS.get(algorithm)
    if impl is None:
        raise ValueError(
            f"unknown skyline algorithm {algorithm!r}; "
            f"have {sorted([*_ALGORITHMS, 'blocked'])}"
        )
    return _peel(points, impl, max_layers)


class _LayerAccumulator:
    """One growing skyline layer: member ids plus an amortized point buffer."""

    __slots__ = ("ids", "buffer", "count", "_member_ids")

    def __init__(self, d: int) -> None:
        self.ids: list[np.ndarray] = []
        self.buffer = np.empty((64, d), dtype=np.float64)
        self.count = 0
        self._member_ids: np.ndarray | None = None

    def members(self) -> np.ndarray:
        """Current member points, in insertion (ascending attribute-sum) order."""
        return self.buffer[: self.count]

    def member_ids(self) -> np.ndarray:
        """Current member *global ids*, in the same insertion order."""
        cached = self._member_ids
        if cached is None or cached.shape[0] != self.count:
            cached = (
                np.concatenate(self.ids)
                if self.ids
                else np.empty(0, dtype=np.intp)
            )
            self._member_ids = cached
        return cached

    def extend(self, ids: np.ndarray, points: np.ndarray) -> None:
        needed = self.count + points.shape[0]
        if needed > self.buffer.shape[0]:
            capacity = self.buffer.shape[0]
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self.buffer.shape[1]), dtype=np.float64)
            grown[: self.count] = self.buffer[: self.count]
            self.buffer = grown
        self.buffer[self.count : needed] = points
        self.count = needed
        self.ids.append(ids)
        self._member_ids = None


def skyline_layer_partition(
    points: np.ndarray,
    max_layers: int | None = None,
    *,
    block: int = _PARTITION_BLOCK,
    scanner: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Single-pass skyline-layer partition (the ``"blocked"`` algorithm).

    Returns the same ``(layers, leftover)`` as the iterated peel: each layer
    an ascending array of global indices, ``leftover`` the (ascending)
    indices beyond ``max_layers``.

    A point's layer equals the length of its longest dominance chain, and a
    dominator always has a strictly smaller attribute sum, so walking points
    in ascending-sum order (ties broken lexicographically, like
    :mod:`repro.skyline.sfs`) guarantees every cross-block dominator is
    already placed.  For a block of points the tentative layer is found by
    scanning existing layers in order — the "dominated by layer i" predicate
    is monotone in ``i``, so the first non-dominating layer is the answer —
    restricted to the still-dominated subset at each step.  Dominators
    *inside* the block only ever deepen a point's layer; a vectorized
    fix-point (``layer[j] = max(layer[j], 1 + max over in-block dominators
    i of layer[i])``) converges in at most the longest in-block chain.

    ``scanner``, when given, replaces the in-process layer scans: it is
    called as ``scanner(point_ids, member_ids)`` with *global* row ids and
    must return the boolean dominated-by-members mask over ``point_ids``.
    The parallel build injects a pool-sharded scanner here; the gathered
    rows are the identical float values, so results match the in-process
    path exactly.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n, d = points.shape
    if n == 0:
        return [], np.empty(0, dtype=np.intp)

    keys = (np.arange(n), *(points[:, c] for c in range(d - 1, -1, -1)),
            points.sum(axis=1))
    order = np.lexsort(keys)
    sorted_pts = points[order]

    layers: list[_LayerAccumulator] = []
    leftover_ids: list[np.ndarray] = []
    #: With max_layers set, anything at this depth or beyond is leftover.
    cutoff = max_layers if max_layers is not None else np.iinfo(np.int64).max

    def dominated_by(sel: np.ndarray, layer: _LayerAccumulator) -> np.ndarray:
        if scanner is None:
            return dominates_any(chunk[sel], layer.members())
        return scanner(chunk_ids[sel], layer.member_ids())

    for start in range(0, n, block):
        chunk = sorted_pts[start : start + block]
        chunk_ids = order[start : start + block]
        m = chunk.shape[0]
        assigned = np.zeros(m, dtype=np.int64)
        all_rows = np.arange(m, dtype=np.intp)

        # Overflow fast path: one check against the deepest kept layer
        # settles every point that would land beyond the bound.
        overflow = np.zeros(m, dtype=bool)
        if max_layers is not None and len(layers) >= max_layers:
            overflow = dominated_by(all_rows, layers[max_layers - 1])
            assigned[overflow] = cutoff

        # Tentative layers vs already-placed points: scan layers in order on
        # the still-dominated subset (first non-dominating layer wins).
        undecided = np.nonzero(~overflow)[0]
        for depth, layer in enumerate(layers):
            if undecided.shape[0] == 0:
                break
            if max_layers is not None and depth >= max_layers:
                break
            dominated = dominated_by(undecided, layer)
            assigned[undecided[~dominated]] = depth
            undecided = undecided[dominated]
        if undecided.shape[0]:
            # Dominated by every existing layer: opens the next one.
            assigned[undecided] = min(len(layers), cutoff)

        # In-block dominators deepen layers: fix-point over the block DAG
        # (earlier-in-order rows only, since dominance lowers the sum).
        if m > 1:
            leq = leq_matrix(chunk, chunk)
            rows = np.arange(m)
            leq &= rows[:, None] < rows[None, :]
            di, dj = np.nonzero(leq)
            dom = np.zeros((m, m), dtype=bool)
            if di.shape[0]:
                strict = np.any(chunk[di] != chunk[dj], axis=1)
                dom[di[strict], dj[strict]] = True
            if np.any(dom):
                while True:
                    pushed = np.where(dom, (assigned + 1)[:, None], 0).max(axis=0)
                    deeper = np.maximum(assigned, pushed)
                    if np.array_equal(deeper, assigned):
                        break
                    assigned = deeper

        np.minimum(assigned, cutoff, out=assigned)
        in_bounds = assigned < cutoff
        if not np.all(in_bounds):
            leftover_ids.append(chunk_ids[~in_bounds])
        kept = np.nonzero(in_bounds)[0]
        if kept.shape[0] == 0:
            continue
        for depth in np.unique(assigned[kept]):
            sel = kept[assigned[kept] == depth]
            while depth >= len(layers):
                layers.append(_LayerAccumulator(d))
            layers[depth].extend(chunk_ids[sel], chunk[sel])

    result = [
        np.sort(np.concatenate(layer.ids)).astype(np.intp) for layer in layers
    ]
    leftover = (
        np.sort(np.concatenate(leftover_ids)).astype(np.intp)
        if leftover_ids
        else np.empty(0, dtype=np.intp)
    )
    return result, leftover


def convex_layers(
    points: np.ndarray,
    max_layers: int | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Convex (onion) peel: layer i is the convex skyline of the residual.

    Returns ``(layers, leftover)`` of global index arrays.
    """
    return _peel(points, convex_skyline, max_layers)
