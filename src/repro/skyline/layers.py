"""Layer peeling: skyline layers (DG/DL coarse layers) and convex layers (Onion/HL).

Both peels satisfy the layer-index contract the paper relies on: the i-th
best tuple under any monotone linear scoring function lies within the first
``i`` layers, so a top-k query never needs more than ``k`` layers.  Passing
``max_layers`` bounds construction accordingly (the remainder is returned as
an overflow layer by :func:`skyline_layers` / :func:`convex_layers` callers
via the ``leftover`` entry).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.geometry.convex_skyline import convex_skyline
from repro.skyline.bnl import skyline_bnl
from repro.skyline.bskytree import skyline_bskytree
from repro.skyline.sfs import skyline_sfs

_ALGORITHMS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "bnl": skyline_bnl,
    "sfs": skyline_sfs,
    "bskytree": skyline_bskytree,
}


def skyline(points: np.ndarray, algorithm: str = "sfs") -> np.ndarray:
    """Skyline indices of ``points`` using a named algorithm (sfs default)."""
    try:
        impl = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown skyline algorithm {algorithm!r}; have {sorted(_ALGORITHMS)}"
        ) from None
    return impl(points)


def _peel(
    points: np.ndarray,
    extract: Callable[[np.ndarray], np.ndarray],
    max_layers: int | None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Iteratively peel ``points`` with ``extract``; returns (layers, leftover).

    Each layer is an ascending array of *global* indices into ``points``;
    ``leftover`` holds the indices never assigned because ``max_layers``
    stopped the peel (empty on a full peel).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    remaining = np.arange(points.shape[0], dtype=np.intp)
    layers: list[np.ndarray] = []
    while remaining.shape[0] > 0:
        if max_layers is not None and len(layers) >= max_layers:
            return layers, remaining
        local = extract(points[remaining])
        if local.shape[0] == 0:
            raise RuntimeError("layer extraction returned an empty layer")
        layer = remaining[local]
        layers.append(np.sort(layer).astype(np.intp))
        mask = np.ones(remaining.shape[0], dtype=bool)
        mask[local] = False
        remaining = remaining[mask]
    return layers, remaining


def skyline_layers(
    points: np.ndarray,
    algorithm: str = "sfs",
    max_layers: int | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Skyline-layer peel: layer i is the skyline of what layers < i left.

    Returns ``(layers, leftover)`` of global index arrays.
    """
    impl = _ALGORITHMS.get(algorithm)
    if impl is None:
        raise ValueError(
            f"unknown skyline algorithm {algorithm!r}; have {sorted(_ALGORITHMS)}"
        )
    return _peel(points, impl, max_layers)


def convex_layers(
    points: np.ndarray,
    max_layers: int | None = None,
) -> tuple[list[np.ndarray], np.ndarray]:
    """Convex (onion) peel: layer i is the convex skyline of the residual.

    Returns ``(layers, leftover)`` of global index arrays.
    """
    return _peel(points, convex_skyline, max_layers)
