"""Pivot-partitioned divide-and-conquer skyline (in the spirit of BSkyTree [28]).

The paper computes its coarse layers with BSkyTree (Lee & Hwang, EDBT 2010).
The skyline is unique, so for reproduction purposes what matters is a correct
and reasonably scalable algorithm; this module implements the core BSkyTree
idea — pick a balanced pivot, partition tuples into the ``2^d`` dominance
lattice regions relative to it, prune the region fully dominated by the
pivot, solve regions recursively, and cross-filter region results along the
lattice's subset order.
"""

from __future__ import annotations

import numpy as np

from repro.skyline.bnl import skyline_bnl

#: Below this size, fall back to BNL — recursion bookkeeping stops paying off.
_LEAF_SIZE = 96


def skyline_bskytree(points: np.ndarray) -> np.ndarray:
    """Indices (into ``points``) of the skyline, ascending."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    idx = _solve(points, np.arange(n, dtype=np.intp))
    return np.asarray(sorted(idx), dtype=np.intp)


def _solve(points: np.ndarray, idx: np.ndarray) -> list[int]:
    """Skyline of ``points[idx]`` as a list of global indices."""
    if idx.shape[0] <= _LEAF_SIZE:
        local = skyline_bnl(points[idx])
        return [int(i) for i in idx[local]]

    subset = points[idx]
    pivot_pos = _balanced_pivot(subset)
    pivot = subset[pivot_pos]

    # Lattice code: bit j set when the tuple is >= pivot on attribute j.
    d = subset.shape[1]
    bits = (subset >= pivot) @ (1 << np.arange(d))
    full = (1 << d) - 1
    dominated_by_pivot = (bits == full) & np.any(subset > pivot, axis=1)

    keep = ~dominated_by_pivot
    # The pivot is a skyline point of the subset by construction.
    survivors = idx[keep]
    survivor_bits = bits[keep]

    # Solve each non-empty lattice region independently.
    region_results: dict[int, list[int]] = {}
    for code in np.unique(survivor_bits):
        members = survivors[survivor_bits == int(code)]
        if members.shape[0] == idx.shape[0]:
            # Degenerate partition (e.g. all-duplicate input): no progress was
            # made, so recursing would not terminate — solve directly.
            local = skyline_bnl(points[members])
            region_results[int(code)] = [int(i) for i in members[local]]
        else:
            region_results[int(code)] = _solve(points, members)

    # Cross-filter: region B can contain dominators of region A only when
    # B's code is a (strict) subset of A's code.
    result: list[int] = []
    codes = sorted(region_results)
    for code_a in codes:
        candidates = np.asarray(region_results[code_a], dtype=np.intp)
        if candidates.shape[0] == 0:
            continue
        cand_pts = points[candidates]
        alive = np.ones(candidates.shape[0], dtype=bool)
        for code_b in codes:
            if code_b == code_a or (code_b & ~code_a) != 0:
                continue
            other = np.asarray(region_results[code_b], dtype=np.intp)
            if other.shape[0] == 0:
                continue
            other_pts = points[other]
            leq = np.all(other_pts[:, None, :] <= cand_pts[None, :, :], axis=2)
            lt = np.any(other_pts[:, None, :] < cand_pts[None, :, :], axis=2)
            alive &= ~np.any(leq & lt, axis=0)
        result.extend(int(i) for i in candidates[alive])
    return result


def _balanced_pivot(subset: np.ndarray) -> int:
    """Pick a pivot: the skyline point minimizing the attribute sum.

    A min-sum point is always on the skyline, and small sums maximize the
    volume of the fully-dominated region that gets pruned outright —
    BSkyTree's "balanced pivot" intent without its full scoring machinery.
    """
    return int(np.argmin(subset.sum(axis=1)))
