"""Vectorized dominance primitives (Definition 2).

``t`` dominates ``t'`` (written ``t ≺ t'``) iff ``t_i <= t'_i`` for every
attribute and ``t_j < t'_j`` for at least one.  Minimization orientation
throughout, matching the paper.
"""

from __future__ import annotations

import numpy as np

#: Chunk row-count for pairwise dominance checks, keeps peak memory bounded.
_CHUNK = 4096

#: First chunk size of the early-exit schedule in :func:`dominates_any`.
_CHUNK_MIN = 64


def dominates(t: np.ndarray, u: np.ndarray) -> bool:
    """True iff tuple ``t`` dominates tuple ``u``."""
    t = np.asarray(t, dtype=np.float64)
    u = np.asarray(u, dtype=np.float64)
    return bool(np.all(t <= u) and np.any(t < u))


def is_dominated(point: np.ndarray, against: np.ndarray) -> bool:
    """True iff ``point`` is dominated by any row of ``against``."""
    against = np.atleast_2d(np.asarray(against, dtype=np.float64))
    if against.shape[0] == 0:
        return False
    leq = np.all(against <= point, axis=1)
    lt = np.any(against < point, axis=1)
    return bool(np.any(leq & lt))


def leq_matrix(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Weak-dominance matrix ``M[i, j] = all(rows[i] <= cols[j])``.

    Built one attribute at a time — ``d`` two-dimensional broadcasts ANDed
    in place — instead of reducing an ``(m, n, d)`` comparison cube, which
    is ~7x faster at skyline dimensionalities and never materializes the
    3-D intermediate.
    """
    leq = rows[:, 0, None] <= cols[None, :, 0]
    for c in range(1, rows.shape[1]):
        leq &= rows[:, c, None] <= cols[None, :, c]
    return leq


def _dominated_columns(block: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Mask over ``pts`` rows dominated by some ``block`` row (one chunk).

    Only the weak-dominance broadcast is materialized; strictness (``q ≠ p``)
    is resolved on the surviving ``(q ≤ p)`` pairs, which are sparse for
    real data — about half the element work of a second ``<`` broadcast.
    """
    leq = leq_matrix(block, pts)
    rows, cols = np.nonzero(leq)
    hit = np.zeros(pts.shape[0], dtype=bool)
    if rows.shape[0]:
        strict = np.any(block[rows] != pts[cols], axis=1)
        hit[cols[strict]] = True
    return hit


def dominates_any(points: np.ndarray, against: np.ndarray) -> np.ndarray:
    """Boolean mask over ``points`` rows: dominated by some row of ``against``.

    Iterates ``against`` on a geometric chunk schedule
    (:data:`_CHUNK_MIN` rows doubling up to :data:`_CHUNK`), dropping
    already-dominated rows of ``points`` between chunks.  When ``against``
    comes sorted by ascending attribute sum — as skyline-layer members do —
    the strongest dominators land in the first chunks, so most rows exit
    after a fraction of the scan; the schedule costs at most one extra
    doubling pass when nothing exits early.  The mask is an OR over
    ``against`` rows, so chunking never changes the result.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    against = np.atleast_2d(np.asarray(against, dtype=np.float64))
    n = points.shape[0]
    result = np.zeros(n, dtype=bool)
    if n == 0 or against.shape[0] == 0:
        return result
    remaining = np.arange(n, dtype=np.intp)
    pending = points
    start = 0
    step = _CHUNK_MIN
    while start < against.shape[0]:
        block = against[start : start + step]
        hit = _dominated_columns(block, pending)
        if hit.any():
            keep = ~hit
            result[remaining[hit]] = True
            remaining = remaining[keep]
            if remaining.shape[0] == 0:
                break
            pending = pending[keep]
        start += block.shape[0]
        step = min(step * 2, _CHUNK)
    return result


def dominance_pairs(
    rows: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All ``(i, j)`` with ``rows[i]`` dominating ``cols[j]``, column-major.

    The pair arrays are ordered by ``j`` then ``i`` (ascending), i.e. each
    column's dominators appear as one contiguous ascending run — exactly the
    shape the bulk ∀-gate wiring consumes.  Memory-bounded like
    :func:`dominance_matrix`, but skips materializing the strict ``<``
    broadcast by resolving strictness on the weak-dominance pairs.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    cols = np.atleast_2d(np.asarray(cols, dtype=np.float64))
    row_parts: list[np.ndarray] = []
    col_parts: list[np.ndarray] = []
    if rows.shape[0] == 0 or cols.shape[0] == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
    for start in range(0, rows.shape[0], _CHUNK):
        block = rows[start : start + _CHUNK]
        leq = leq_matrix(block, cols)
        i, j = np.nonzero(leq)
        if i.shape[0]:
            strict = np.any(block[i] != cols[j], axis=1)
            row_parts.append((i[strict] + start).astype(np.intp))
            col_parts.append(j[strict].astype(np.intp))
    if not row_parts:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
    i = np.concatenate(row_parts)
    j = np.concatenate(col_parts)
    order = np.lexsort((i, j))
    return i[order], j[order]


def dominance_matrix(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Boolean matrix ``M[i, j]`` = row ``i`` of ``rows`` dominates row ``j`` of ``cols``.

    Used to wire ∀-dominance edges between adjacent coarse layers.  The
    output matrix is dense ``(m, n)``, but the ``(m, n, d)`` broadcast
    intermediates are built in :data:`_CHUNK`-row blocks of ``rows`` so
    peak memory stays bounded even when two adjacent coarse layers are
    large (anti-correlated data at scale).
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    cols = np.atleast_2d(np.asarray(cols, dtype=np.float64))
    result = np.zeros((rows.shape[0], cols.shape[0]), dtype=bool)
    if rows.shape[0] == 0 or cols.shape[0] == 0:
        return result
    for start in range(0, rows.shape[0], _CHUNK):
        block = rows[start : start + _CHUNK]
        leq = leq_matrix(block, cols)
        i, j = np.nonzero(leq)
        if i.shape[0]:
            strict = np.any(block[i] != cols[j], axis=1)
            leq[i[~strict], j[~strict]] = False
        result[start : start + _CHUNK] = leq
    return result


def dominators_of(point: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Indices of ``candidates`` rows that dominate ``point``."""
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    if candidates.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    leq = np.all(candidates <= point, axis=1)
    lt = np.any(candidates < point, axis=1)
    return np.nonzero(leq & lt)[0].astype(np.intp)
