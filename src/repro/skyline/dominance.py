"""Vectorized dominance primitives (Definition 2).

``t`` dominates ``t'`` (written ``t ≺ t'``) iff ``t_i <= t'_i`` for every
attribute and ``t_j < t'_j`` for at least one.  Minimization orientation
throughout, matching the paper.
"""

from __future__ import annotations

import numpy as np

#: Chunk row-count for pairwise dominance checks, keeps peak memory bounded.
_CHUNK = 4096


def dominates(t: np.ndarray, u: np.ndarray) -> bool:
    """True iff tuple ``t`` dominates tuple ``u``."""
    t = np.asarray(t, dtype=np.float64)
    u = np.asarray(u, dtype=np.float64)
    return bool(np.all(t <= u) and np.any(t < u))


def is_dominated(point: np.ndarray, against: np.ndarray) -> bool:
    """True iff ``point`` is dominated by any row of ``against``."""
    against = np.atleast_2d(np.asarray(against, dtype=np.float64))
    if against.shape[0] == 0:
        return False
    leq = np.all(against <= point, axis=1)
    lt = np.any(against < point, axis=1)
    return bool(np.any(leq & lt))


def dominates_any(points: np.ndarray, against: np.ndarray) -> np.ndarray:
    """Boolean mask over ``points`` rows: dominated by some row of ``against``.

    Memory-bounded: iterates ``against`` in chunks of :data:`_CHUNK` rows.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    against = np.atleast_2d(np.asarray(against, dtype=np.float64))
    n = points.shape[0]
    result = np.zeros(n, dtype=bool)
    if n == 0 or against.shape[0] == 0:
        return result
    for start in range(0, against.shape[0], _CHUNK):
        block = against[start : start + _CHUNK]
        # (m, n): block row dominates point column.
        remaining = ~result
        if not np.any(remaining):
            break
        pts = points[remaining]
        leq = np.all(block[:, None, :] <= pts[None, :, :], axis=2)
        lt = np.any(block[:, None, :] < pts[None, :, :], axis=2)
        result[remaining] |= np.any(leq & lt, axis=0)
    return result


def dominance_matrix(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Boolean matrix ``M[i, j]`` = row ``i`` of ``rows`` dominates row ``j`` of ``cols``.

    Used to wire ∀-dominance edges between adjacent coarse layers.  The
    output matrix is dense ``(m, n)``, but the ``(m, n, d)`` broadcast
    intermediates are built in :data:`_CHUNK`-row blocks of ``rows`` so
    peak memory stays bounded even when two adjacent coarse layers are
    large (anti-correlated data at scale).
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    cols = np.atleast_2d(np.asarray(cols, dtype=np.float64))
    result = np.zeros((rows.shape[0], cols.shape[0]), dtype=bool)
    if rows.shape[0] == 0 or cols.shape[0] == 0:
        return result
    for start in range(0, rows.shape[0], _CHUNK):
        block = rows[start : start + _CHUNK]
        leq = np.all(block[:, None, :] <= cols[None, :, :], axis=2)
        lt = np.any(block[:, None, :] < cols[None, :, :], axis=2)
        result[start : start + _CHUNK] = leq & lt
    return result


def dominators_of(point: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Indices of ``candidates`` rows that dominate ``point``."""
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.float64))
    if candidates.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    leq = np.all(candidates <= point, axis=1)
    lt = np.any(candidates < point, axis=1)
    return np.nonzero(leq & lt)[0].astype(np.intp)
