"""Skyline substrate: dominance tests, skyline algorithms, and layer peeling.

The paper builds coarse-level layers from iterated skylines (Definition 3)
using BSkyTree [28].  The skyline of a set is unique, so any correct
algorithm yields identical layers; this package provides three independent
implementations (BNL, SFS, and a pivot-based divide-and-conquer in the
spirit of BSkyTree) that are cross-checked in the test suite, plus the layer
peeling used by DG/DL and the convex (onion) peeling used by Onion/HL.
"""

from repro.skyline.dominance import (
    dominance_matrix,
    dominates,
    dominates_any,
    dominators_of,
    is_dominated,
)
from repro.skyline.bnl import skyline_bnl
from repro.skyline.sfs import skyline_sfs
from repro.skyline.bskytree import skyline_bskytree
from repro.skyline.layers import convex_layers, skyline, skyline_layers

__all__ = [
    "dominance_matrix",
    "dominates",
    "dominates_any",
    "dominators_of",
    "is_dominated",
    "skyline_bnl",
    "skyline_sfs",
    "skyline_bskytree",
    "skyline",
    "skyline_layers",
    "convex_layers",
]
