"""Linear scoring functions and the brute-force top-k reference.

The paper assumes monotone linear scoring: ``F(t) = Σ w_i t_i`` with strictly
positive weights normalized to sum to one, and top-k returns the ``k``
*lowest*-scoring tuples with ties broken by tuple id (Definition 1).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import InvalidQueryError, InvalidWeightError


def normalize_weights(weights: Sequence[float] | np.ndarray, d: int | None = None) -> np.ndarray:
    """Validate a weight vector and normalize it to sum to one.

    Weights must be finite and strictly positive, matching the paper's
    query model (``0 < w_i < 1`` after normalization, ``Σ w_i = 1``).
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise InvalidWeightError(f"weight vector must be 1-D, got shape {w.shape}")
    if d is not None and w.shape[0] != d:
        raise InvalidWeightError(f"expected {d} weights, got {w.shape[0]}")
    if w.shape[0] == 0:
        raise InvalidWeightError("weight vector is empty")
    if not np.all(np.isfinite(w)):
        raise InvalidWeightError("weights must be finite")
    if np.any(w <= 0):
        raise InvalidWeightError(
            f"weights must be strictly positive (monotone scoring), got {w.tolist()}"
        )
    return w / w.sum()


def random_weight_vector(d: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """A random weight vector uniform on the open simplex.

    Mirrors the paper's workload: ``0 < w_i < 1`` and ``Σ w_i = 1``.
    Components are clamped away from zero so the strict-positivity
    assumption holds even for unlucky draws.
    """
    rng = rng if rng is not None else np.random.default_rng()
    w = rng.dirichlet(np.ones(d))
    w = np.clip(w, 1e-9, None)
    return w / w.sum()


def score(matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Scores of all rows of ``matrix`` under a (normalized) weight vector."""
    return matrix @ weights


class LinearScore:
    """A reusable linear scoring function ``F(t) = Σ w_i t_i``.

    Wraps a validated, normalized weight vector with convenience calls for
    scoring single tuples or row batches.
    """

    __slots__ = ("weights",)

    def __init__(self, weights: Sequence[float] | np.ndarray, d: int | None = None) -> None:
        self.weights = normalize_weights(weights, d)

    @property
    def d(self) -> int:
        """Dimensionality of the scoring function."""
        return self.weights.shape[0]

    def __call__(self, values: np.ndarray) -> np.ndarray | float:
        """Score one tuple (1-D input) or a batch of rows (2-D input)."""
        values = np.asarray(values, dtype=np.float64)
        return values @ self.weights

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearScore({np.round(self.weights, 4).tolist()})"


def top_k_bruteforce(
    matrix: np.ndarray, weights: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Reference top-k by full scan: ``(ids, scores)`` sorted ascending.

    Ties are broken by tuple id (Definition 1's arbitrary-but-stable rule).
    Returns fewer than ``k`` entries when the relation is smaller than ``k``.
    """
    if k < 1:
        raise InvalidQueryError(f"retrieval size k must be >= 1, got {k}")
    n = matrix.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.float64)
    scores = matrix @ weights
    take = min(k, n)
    # Full lexsort by (score, id): exact deterministic tie-breaking even when
    # ties straddle the k-th position.
    order = np.lexsort((np.arange(n), scores))
    ids = order[:take].astype(np.intp)
    return ids, scores[ids]
