"""Relation schemas: attribute names and domain checking."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SchemaError


@dataclass(frozen=True)
class Schema:
    """Named attributes of a relation.

    The paper's model assumes every attribute domain is normalized to
    ``[0, 1]``; :meth:`validate_matrix` enforces shape and finiteness and
    (optionally) the normalized domain.
    """

    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError("a schema needs at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"duplicate attribute names in {self.attributes}")
        for name in self.attributes:
            if not name or not isinstance(name, str):
                raise SchemaError(f"invalid attribute name: {name!r}")

    @property
    def d(self) -> int:
        """Number of attributes (the paper's dimensionality ``d``)."""
        return len(self.attributes)

    @classmethod
    def anonymous(cls, d: int) -> "Schema":
        """Build a schema with generated names ``a0..a{d-1}``."""
        if d < 1:
            raise SchemaError(f"dimensionality must be >= 1, got {d}")
        return cls(tuple(f"a{i}" for i in range(d)))

    def index_of(self, name: str) -> int:
        """Position of attribute ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self.attributes.index(name)
        except ValueError:
            raise SchemaError(
                f"unknown attribute {name!r}; have {list(self.attributes)}"
            ) from None

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)
