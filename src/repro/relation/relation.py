"""The Relation: a dense, id-addressed tuple store over numpy.

All indexes in this library are built over a :class:`Relation`.  Tuples are
addressed by stable integer ids (row positions of the original matrix), so an
index can hand back ids and the caller can recover full tuples, regardless of
how the index shuffled or partitioned rows internally.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Sequence
from pathlib import Path

import numpy as np

from repro.exceptions import EmptyRelationError, SchemaError
from repro.relation.schema import Schema


class Relation:
    """An immutable relation ``R`` of ``n`` tuples over ``d`` attributes.

    Parameters
    ----------
    values:
        Array-like of shape ``(n, d)``.  Copied and stored as float64.
    schema:
        Attribute names; generated (``a0..``) when omitted.
    check_domain:
        When true (default), values must lie in ``[0, 1]`` — the paper's
        normalized-domain assumption.  Use :meth:`from_raw` to min-max
        normalize arbitrary data first.
    """

    def __init__(
        self,
        values: np.ndarray | Sequence[Sequence[float]],
        schema: Schema | None = None,
        *,
        check_domain: bool = True,
    ) -> None:
        matrix = np.asarray(values, dtype=np.float64)
        if matrix.ndim != 2:
            raise SchemaError(f"relation values must be 2-D, got shape {matrix.shape}")
        if matrix.shape[1] < 1:
            raise SchemaError("relation needs at least one attribute column")
        if not np.all(np.isfinite(matrix)):
            raise SchemaError("relation values must be finite")
        if schema is None:
            schema = Schema.anonymous(matrix.shape[1])
        elif schema.d != matrix.shape[1]:
            raise SchemaError(
                f"schema has {schema.d} attributes but values have "
                f"{matrix.shape[1]} columns"
            )
        if check_domain and matrix.size and (matrix.min() < 0.0 or matrix.max() > 1.0):
            raise SchemaError(
                "attribute values must lie in [0, 1]; normalize first "
                "(see Relation.from_raw)"
            )
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._schema = schema

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def wrap_unchecked(cls, matrix: np.ndarray, schema: Schema) -> "Relation":
        """Wrap an already-validated float64 matrix without copying it.

        Trusted constructor for deserializers (the mmap snapshot opener):
        the bytes were validated by the normal constructor when the
        relation was first built, so re-scanning them here would fault in
        every page of a lazily-mapped file just to re-prove finiteness.
        Only the O(1) shape/dtype invariants are checked.  The matrix is
        marked read-only; callers must not mutate it afterwards.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] < 1:
            raise SchemaError(
                f"relation values must be 2-D with >= 1 column, got shape "
                f"{matrix.shape}"
            )
        if matrix.dtype != np.float64:
            raise SchemaError(
                f"wrap_unchecked requires float64 values, got {matrix.dtype}"
            )
        if schema.d != matrix.shape[1]:
            raise SchemaError(
                f"schema has {schema.d} attributes but values have "
                f"{matrix.shape[1]} columns"
            )
        relation = cls.__new__(cls)
        if matrix.flags.writeable:
            matrix.setflags(write=False)
        relation._matrix = matrix
        relation._schema = schema
        return relation

    @classmethod
    def from_raw(
        cls, values: np.ndarray | Sequence[Sequence[float]], schema: Schema | None = None
    ) -> "Relation":
        """Build a relation from arbitrary finite data, min-max normalized.

        Columns with a constant value map to 0.0 (they cannot influence a
        normalized linear score anyway).
        """
        matrix = np.asarray(values, dtype=np.float64)
        if matrix.ndim != 2:
            raise SchemaError(f"relation values must be 2-D, got shape {matrix.shape}")
        if not np.all(np.isfinite(matrix)):
            raise SchemaError("relation values must be finite")
        if matrix.size == 0:
            return cls(matrix, schema, check_domain=False)
        lo = matrix.min(axis=0)
        hi = matrix.max(axis=0)
        span = hi - lo
        safe_span = np.where(span > 0, span, 1.0)
        normalized = (matrix - lo) / safe_span
        normalized[:, span == 0] = 0.0
        return cls(normalized, schema)

    @classmethod
    def from_csv(
        cls,
        path: str | Path,
        *,
        normalize: bool = False,
        delimiter: str = ",",
    ) -> "Relation":
        """Load a relation from a CSV file with a header row of attribute names."""
        path = Path(path)
        with path.open(newline="") as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise SchemaError(f"{path}: empty CSV file") from None
            rows = [[float(cell) for cell in row] for row in reader if row]
        schema = Schema(tuple(name.strip() for name in header))
        if normalize:
            return cls.from_raw(rows, schema)
        return cls(np.asarray(rows, dtype=np.float64).reshape(-1, schema.d), schema)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def matrix(self) -> np.ndarray:
        """The read-only ``(n, d)`` value matrix."""
        return self._matrix

    @property
    def schema(self) -> Schema:
        """Attribute names."""
        return self._schema

    @property
    def n(self) -> int:
        """Cardinality."""
        return self._matrix.shape[0]

    @property
    def d(self) -> int:
        """Dimensionality."""
        return self._matrix.shape[1]

    @property
    def ids(self) -> np.ndarray:
        """All tuple ids, ``0..n-1``."""
        return np.arange(self.n, dtype=np.intp)

    def tuple(self, tuple_id: int) -> np.ndarray:
        """The value vector of one tuple."""
        return self._matrix[tuple_id]

    def take(self, tuple_ids: Iterable[int] | np.ndarray) -> np.ndarray:
        """Value rows for a set of tuple ids, shape ``(len(ids), d)``."""
        return self._matrix[np.asarray(tuple_ids, dtype=np.intp)]

    def column(self, attribute: str) -> np.ndarray:
        """One attribute column by name."""
        return self._matrix[:, self._schema.index_of(attribute)]

    def require_nonempty(self, operation: str = "operation") -> None:
        """Raise :class:`EmptyRelationError` when the relation has no tuples."""
        if self.n == 0:
            raise EmptyRelationError(f"{operation} requires a non-empty relation")

    # ------------------------------------------------------------------ #
    # Persistence / misc
    # ------------------------------------------------------------------ #

    def to_csv(self, path: str | Path, *, delimiter: str = ",") -> None:
        """Write the relation (with a header row) to a CSV file."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(self._schema.attributes)
            writer.writerows(self._matrix.tolist())

    def subset(self, tuple_ids: Iterable[int] | np.ndarray) -> "Relation":
        """A new relation containing only ``tuple_ids`` (ids are re-based)."""
        return Relation(self.take(tuple_ids).copy(), self._schema, check_domain=False)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation(n={self.n}, d={self.d}, attributes={self._schema.attributes})"
