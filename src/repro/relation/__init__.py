"""Relation substrate: the in-memory tuple store the indexes are built over.

A :class:`~repro.relation.relation.Relation` is a dense numpy matrix of shape
``(n, d)`` with stable integer tuple ids and named attributes, matching the
paper's model of a relation ``R = (t^1, ..., t^n)`` over attributes
``A = (A_1, ..., A_d)`` with domains normalized to ``[0, 1]``.
"""

from repro.relation.relation import Relation
from repro.relation.schema import Schema
from repro.relation.scoring import (
    LinearScore,
    normalize_weights,
    random_weight_vector,
    score,
    top_k_bruteforce,
)

__all__ = [
    "Relation",
    "Schema",
    "LinearScore",
    "normalize_weights",
    "random_weight_vector",
    "score",
    "top_k_bruteforce",
]
