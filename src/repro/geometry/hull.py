"""d-dimensional convex hulls with degeneracy fallbacks.

Thin, hardened wrapper over ``scipy.spatial.ConvexHull`` (QHull — the same
library the paper uses [22]).  QHull raises on inputs whose affine hull is
lower-dimensional (coplanar points, tiny sets); :func:`convex_hull` retries
with joggling and reports failure through :class:`HullResult.ok` instead of
leaking qhull errors, so callers can switch to LP-based fallbacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import ConvexHull, QhullError


@dataclass
class HullResult:
    """Outcome of a convex-hull computation over a point set.

    Attributes
    ----------
    ok:
        False when QHull could not triangulate the input even with joggling
        (callers must use degenerate-input fallbacks).
    vertices:
        Indices (into the input) of hull vertices.
    equations:
        ``(f, d+1)`` facet equations ``[normal | offset]`` with outward
        normals: ``normal · x + offset <= 0`` inside the hull.
    simplices:
        ``(f, d)`` vertex indices (into the input) per facet.
    """

    ok: bool
    vertices: np.ndarray
    equations: np.ndarray
    simplices: np.ndarray


def convex_hull(points: np.ndarray) -> HullResult:
    """Convex hull of ``points``; never raises on degenerate input."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n, d = points.shape
    empty = HullResult(
        ok=False,
        vertices=np.empty(0, dtype=np.intp),
        equations=np.empty((0, d + 1)),
        simplices=np.empty((0, d), dtype=np.intp),
    )
    if n <= d:
        # Fewer points than d+1 can never span a full-dimensional hull.
        return empty
    for options in ("", "QJ"):
        try:
            hull = ConvexHull(points, qhull_options=options or None)
        except (QhullError, ValueError):
            continue
        return HullResult(
            ok=True,
            vertices=hull.vertices.astype(np.intp),
            equations=hull.equations,
            simplices=hull.simplices.astype(np.intp),
        )
    return empty
