"""From-scratch 2-D primitives: skyline sweep and lower-left convex chain.

In two dimensions the convex skyline (Definition 4) is exactly the lower-left
chain of the point set: the vertices of ``conv(S) + R₊²`` walked from the
min-``x`` point to the min-``y`` point with strictly increasing (negative)
slopes.  A plane sweep gives the 2-D skyline in O(n log n); an Andrew-style
monotone chain over the skyline staircase gives the convex chain.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.predicates import turns_left


def skyline_2d(points: np.ndarray) -> np.ndarray:
    """Indices of the 2-D skyline (strict dominance), ascending by index.

    Sweep in ``(x, y, id)`` order keeping the running minimum ``y``: a point
    is on the skyline iff no earlier-sorted point has ``y <=`` its own, except
    that exact duplicates survive together (neither strictly dominates).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if points.shape[1] != 2:
        raise ValueError(f"skyline_2d expects 2-D points, got d={points.shape[1]}")
    order = np.lexsort((np.arange(n), points[:, 1], points[:, 0]))
    keep: list[int] = []
    best_y = np.inf
    best_x = -np.inf  # x of the point that set best_y
    for idx in order:
        x, y = points[idx]
        if y < best_y:
            keep.append(int(idx))
            best_y = y
            best_x = x
        elif y == best_y and x == best_x:
            # Exact duplicate of the current staircase corner — not strictly
            # dominated, stays on the skyline.
            keep.append(int(idx))
        # else: some kept point has x <= x, y <= y with one strict -> dominated
    return np.asarray(sorted(keep), dtype=np.intp)


def lower_left_chain(points: np.ndarray) -> np.ndarray:
    """Indices of the 2-D convex skyline, in chain order (x ascending).

    Returns the convex-chain vertices from the min-``x`` corner of the
    skyline staircase to its min-``y`` corner.  Duplicate coordinates
    contribute a single vertex (the smallest index).  Collinear interior
    points are dropped — they minimize no weight vector uniquely and belong
    to later onion sublayers only if strictly above the chain, so we keep
    the CSKY *minimal*, matching hull-vertex semantics.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    if points.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    if points.shape[1] != 2:
        raise ValueError(f"lower_left_chain expects 2-D points, got d={points.shape[1]}")

    sky = skyline_2d(points)
    sky_pts = points[sky]
    # Deduplicate coordinates, keeping the lowest index per location.
    order = np.lexsort((sky, sky_pts[:, 1], sky_pts[:, 0]))
    ordered = sky[order]
    ordered_pts = points[ordered]
    unique_mask = np.ones(ordered.shape[0], dtype=bool)
    if ordered.shape[0] > 1:
        same = np.all(ordered_pts[1:] == ordered_pts[:-1], axis=1)
        unique_mask[1:] = ~same
    ordered = ordered[unique_mask]
    ordered_pts = points[ordered]

    # Skyline staircase is x-ascending / y-descending; Andrew monotone chain
    # with filtered-exact orientation tests (robust near collinearity).
    chain: list[int] = []
    for pos in range(ordered.shape[0]):
        p = ordered_pts[pos]
        while len(chain) >= 2:
            a = points[chain[-2]]
            b = points[chain[-1]]
            # Keep only strict left turns (convex toward the origin); drop
            # collinear middles.
            if turns_left(a, b, p):
                break
            chain.pop()
        chain.append(int(ordered[pos]))
    return np.asarray(chain, dtype=np.intp)
